"""Legacy setup shim.

The offline build environment lacks the ``wheel`` package, so PEP-517
editable installs (which require ``bdist_wheel``) fail.  This shim lets
``pip install -e .`` fall back to ``setup.py develop``.  All metadata
lives in ``pyproject.toml``; the explicit arguments here mirror it for
the legacy code path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Simulation-based reproduction of Bergeron (SC'98): Measurement of a "
        "Scientific Workload using the IBM Hardware Performance Monitor"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.23"],
    entry_points={
        "console_scripts": [
            "sp2-study = repro.cli:main",
            "sp2-ops = repro.ops_cli:main",
            "sp2-fleet = repro.fleet_cli:main",
        ]
    },
)
