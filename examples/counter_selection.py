#!/usr/bin/env python3
"""Working with the monitor's event space — §3's selection problem.

The POWER2 exposes ~320 signals but only 22 physical counters, and every
counter-group assignment "must be implemented and verified in the
monitoring software".  This example:

1. prints Table 1 (the NAS selection);
2. shows the verification gate rejecting an unverified group;
3. builds an alternative "I/O wait" oriented group (the selection §7
   wishes NAS had made) and measures with it;
4. demonstrates multipass sampling: more events than counters, at the
   price of extrapolation noise on bursty workloads.

Run::

    python examples/counter_selection.py
"""

from repro.analysis.tables import table1
from repro.hpm.events import NAS_SELECTION, CounterGroup, EventCatalog
from repro.hpm.monitor_api import MonitorInterface, MultipassSampler
from repro.power2.counters import rates_vector
from repro.power2.node import Node


def build_io_wait_group() -> CounterGroup:
    """§7: 'Other sites ... might consider selecting counter options
    which could also report I/O wait time in addition to CPU
    performance.'  This group trades the per-FPU flop breakdown for
    SIO-bus and stall visibility."""
    selection = {k: tuple(v) for k, v in NAS_SELECTION.selection.items()}
    selection["FXU"] = (
        "fxu0_insts",
        "fxu1_insts",
        "dcache_misses",
        "fxu_stall_cycles",
        "cycles",
    )
    selection["SCU"] = (
        "sio_bus_busy",
        "dcache_reloads",
        "dcache_stores",
        "dma_reads",
        "dma_writes",
    )
    return CounterGroup(name="io-wait-study", selection=selection)


def main() -> None:
    print(table1().render())

    catalog = EventCatalog()
    io_group = build_io_wait_group()
    catalog.register(io_group)  # registered but NOT verified

    node = Node(0)
    node.install_rates(
        0.0, rates_vector({"fpu0": 2e6, "fpu0_fp_add": 2e6, "fxu0": 4e6, "cycles": 3e7}),
        busy=True,
    )
    iface = MonitorInterface(node, catalog)

    print("\nProgramming the unverified 'io-wait-study' group:")
    try:
        iface.program("io-wait-study")
    except PermissionError as err:
        print(f"  refused, as §3 requires: {err}")

    catalog.verify("io-wait-study")
    iface.program("io-wait-study")
    print("  after verification: programmed OK "
          f"(group now in force: {iface.group.name})")

    # Multipass: alternate the two groups over one hour.
    iface.program("nas-table1")
    sampler = MultipassSampler(iface, ["nas-table1", "io-wait-study"])
    estimates = sampler.sample(0.0, 3600.0)
    direct = 2e6 * 3600.0
    est = estimates["nas-table1"]["user.fpu0"]
    print(
        f"\nMultipass estimate of one hour of fpu0 instructions: {est:.3g} "
        f"(true {direct:.3g}) — exact here because the rate is steady; on\n"
        "bursty workloads each group only sees half the time, which is why\n"
        "NAS froze Table 1's selection for the whole nine months."
    )


if __name__ == "__main__":
    main()
