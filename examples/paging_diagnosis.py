#!/usr/bin/env python3
"""The §6 paging diagnosis — the paper's "surprising finding".

Three views of the same mechanism:

1. a controlled experiment: the same job run at increasing memory
   demand, showing the fault rate, the system/user FXU inversion, and
   the performance collapse;
2. the campaign-level Figure 5 scatter (day performance vs system
   intervention);
3. the >64-node cliff of Figure 3, which the paper traced to paging.

Run::

    python examples/paging_diagnosis.py
"""

import numpy as np

from repro import figure3, figure5, run_study
from repro.cluster.machine import SP2Machine
from repro.pbs.scheduler import PBSServer
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams
from repro.util.tables import Table
from repro.workload.apps import application

MB = 1024 * 1024


def controlled_experiment() -> None:
    """One app, swept across memory demand: §6 in a test tube."""
    t = Table(
        title="Controlled §6 experiment: one 16-node CFD job vs memory demand",
        columns=(
            "Demand (MB/node)",
            "Mflops/node",
            "sys/user FXU",
            "slowdown",
        ),
    )
    rng = RngStreams(42)
    baseline = None
    for demand_mb in (96, 120, 128, 134, 140, 150, 170, 200):
        sim = Simulator()
        server = PBSServer(sim, SP2Machine(16))
        profile = application("multiblock_cfd").instantiate(
            rng.get(f"paging.{demand_mb}"), nodes=16
        )
        # Override the sampled demand with the sweep value.
        object.__setattr__(profile, "memory_bytes_per_node", demand_mb * MB)
        server.submit(0, "sweep", 16, profile)
        sim.run()
        rec = server.accounting.records[0]
        rate = rec.mflops_per_node
        if baseline is None:
            baseline = rate
        t.add_row(
            demand_mb,
            rate,
            rec.system_user_fxu_ratio,
            f"x{baseline / rate:.1f}" if rate > 0 else "stalled",
        )
    print(t.render())
    print(
        "\nThe fault rate saturates the paging disk shortly past 128 MB: user\n"
        "progress collapses while the VMM's system-mode FXU work explodes —\n"
        "exactly the counter signature §6 used to diagnose the wide jobs."
    )


def campaign_views() -> None:
    print("\nRunning a 30-day campaign for the workload-level views...", flush=True)
    dataset = run_study(seed=1, n_days=30)

    fig5 = figure5(dataset)
    print()
    print(fig5.render())
    x, y = fig5.series["x"], fig5.series["y"]
    if x.size >= 3 and x.std() > 0:
        r = np.corrcoef(x, y)[0, 1]
        print(f"\nday-level correlation(performance, system intervention) = {r:+.2f}"
              "  (paper: strongly negative)")

    fig3 = figure3(dataset)
    xs, ys = fig3.series["x"], fig3.series["y"]
    narrow = ys[(xs >= 8) & (xs <= 64)]
    wide = ys[xs > 64]
    print(
        f"\nFigure 3 cliff: {narrow.mean():.1f} Mflops/node at 8-64 nodes vs "
        f"{wide.mean() if wide.size else float('nan'):.1f} beyond 64 "
        "(paper: sustained to 64, sharp decrease past it)."
    )


def main() -> None:
    controlled_experiment()
    campaign_views()


if __name__ == "__main__":
    main()
