#!/usr/bin/env python3
"""A faulted campaign, end to end: injection, reporting, crash + resume.

§6 of the paper is a catalogue of pathology — paging storms,
unreachable nodes, lost samples.  This example runs a short campaign
under the ``pathological`` fault profile and walks the resilience
surface: the availability/MTBF table, the live fault alerts, the
gap-flagged collector intervals — then kills a shard worker on purpose
(the ``REPRO_CRASH_SHARD`` hook), watches the campaign hard-fail, and
resumes it from the surviving checkpoints to byte-identical output.

Run::

    python examples/fault_campaign.py [seed] [days]
"""

import os
import sys
import tempfile

from repro.analysis.export import dataset_to_json
from repro.core.study import StudyConfig, run_study
from repro.faults.report import render_fault_report
from repro.parallel import ShardExecutionError, run_parallel_study
from repro.parallel.worker import CRASH_ENV_VAR
from repro.telemetry.rules import render_alert


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 3
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 8

    # ------------------------------------------------------------------
    # 1. A faulted campaign and what it did to the measurement
    print(f"Running a {days}-day campaign under the 'pathological' profile...")
    dataset = run_study(seed, n_days=days, n_nodes=32, n_users=10,
                        fault_profile="pathological")
    log = dataset.faults
    print()
    print(render_fault_report(log))

    print()
    print("First fault alerts the streaming side raised:")
    fault_alerts = [a for a in dataset.telemetry.alerts if a.rule == "fault"]
    for alert in fault_alerts[:6]:
        print("  " + render_alert(alert))
    print(f"  ... {len(fault_alerts)} fault alerts in total")

    gaps = dataset.collector.gap_intervals()
    print()
    print(f"Collector passes dropped: {dataset.collector.passes_dropped} "
          f"({len(gaps)} gap-spanning intervals flagged 'interpolated')")
    for iv in gaps[:3]:
        print(f"  interval {iv.start / 3600:7.2f}h -> {iv.end / 3600:7.2f}h "
              f"spans {iv.seconds / 900:.0f} cadence periods")

    # ------------------------------------------------------------------
    # 2. Kill a shard worker, hard-fail, resume — byte-identical output
    print()
    print("Now the operational failure: a shard worker dies mid-campaign.")
    cfg = StudyConfig(seed=seed, n_days=days, n_nodes=32, n_users=10,
                      fault_profile=dataset.config.fault_profile)
    reference = run_parallel_study(cfg, workers=1, shard_days=2)

    with tempfile.TemporaryDirectory(prefix="sp2-ckpt-") as ckpt:
        os.environ[CRASH_ENV_VAR] = "1"  # shard 1's worker will die
        try:
            run_parallel_study(cfg, workers=1, shard_days=2,
                               checkpoint_dir=ckpt, max_attempts=1)
        except ShardExecutionError as err:
            print(f"  campaign failed as expected: {err}")
        finally:
            del os.environ[CRASH_ENV_VAR]

        survivors = sorted(f for f in os.listdir(ckpt) if f.endswith(".pkl"))
        print(f"  surviving checkpoints: {', '.join(survivors)}")

        resumed = run_parallel_study(cfg, workers=1, shard_days=2,
                                     checkpoint_dir=ckpt, resume=True)

    identical = dataset_to_json(resumed) == dataset_to_json(reference)
    print(f"  resumed output byte-identical to uninterrupted run: {identical}")
    if not identical:
        raise SystemExit("resume equivalence violated")


if __name__ == "__main__":
    main()
