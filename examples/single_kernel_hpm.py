#!/usr/bin/env python3
"""Measure individual kernels with the hardware monitor — §5's anchors.

The paper's §5 compares the workload against a fully blocked matrix
multiply: 240 vs ~17 Mflops, register reuse 3.0 vs 0.53.  This example
reproduces that comparison at the *instruction* level: each kernel's mix
runs through the POWER2 cycle model on a node, the monitor counts the
events, and the derived-metric layer computes exactly the ratios the
paper quotes — including the broken divide counter (watch the
``legacy_vector`` row: its divides burn cycles but report zero).

Run::

    python examples/single_kernel_hpm.py
"""

from repro.hpm.derived import workload_rates

from repro.power2.node import Node, PhaseKind, WorkPhase
from repro.power2.pipeline import CycleModel
from repro.util.tables import Table
from repro.workload.kernels import KERNELS

FLOPS_PER_RUN = 5e8


def measure(kernel_name: str) -> dict:
    """Run one kernel on a fresh node and read its counters."""
    k = KERNELS[kernel_name]
    node = Node(0)
    model = CycleModel(node.config)

    mix = k.mix_for_flops(FLOPS_PER_RUN)
    execution = model.execute(mix, k.memory_behaviour(), k.deps)
    result = node.run_phase(WorkPhase(kind=PhaseKind.COMPUTE, execution=execution))

    # Read the monitor the way RS2HPM's per-program mode does.
    deltas = node.snapshot()
    rates = workload_rates(deltas, result.wall_seconds, 1)
    return {
        "kernel": kernel_name,
        "mflops": rates.mflops_total,
        "true_mflops": mix.flops / result.wall_seconds / 1e6,
        "flops_per_memref": rates.flops_per_memory_inst,
        "fma_fraction": rates.fma_flop_fraction,
        "fpu_ratio": rates.fpu_ratio,
        "dcache_ratio": rates.dcache_miss_ratio,
        "tlb_ratio": rates.tlb_miss_ratio,
        "delay_per_memref": rates.delay_per_memory_inst(),
    }


def main() -> None:
    t = Table(
        title=f"Single-kernel HPM measurements ({FLOPS_PER_RUN:.0e} flops each)",
        columns=(
            "Kernel",
            "Mflops",
            "flops/memref",
            "fma frac",
            "FPU0:FPU1",
            "dcache miss",
            "TLB miss",
            "delay/memref",
        ),
    )
    for name in sorted(KERNELS):
        m = measure(name)
        t.add_row(
            name,
            m["mflops"],
            m["flops_per_memref"],
            m["fma_fraction"],
            m["fpu_ratio"],
            f"{m['dcache_ratio']:.2%}",
            f"{m['tlb_ratio']:.3%}",
            m["delay_per_memref"],
        )
    print(t.render())

    mm = measure("matmul_blocked")
    cfd = measure("cfd_multiblock")
    legacy = measure("legacy_vector")
    print()
    print("Paper anchors (§5):")
    print(f"  matmul ≈240 Mflops:        measured {mm['mflops']:.0f}")
    print(f"  matmul flops/memref = 3.0: measured {mm['flops_per_memref']:.2f}")
    print(f"  CFD FPU0:FPU1 ≈ 1.7:       measured {cfd['fpu_ratio']:.2f}")
    print(f"  CFD fma fraction ≈ 54%:    measured {cfd['fma_fraction']:.0%}")
    print()
    print(
        "Broken divide counter (§3): legacy_vector truly ran "
        f"{legacy['true_mflops']:.1f} Mflops but the monitor reports "
        f"{legacy['mflops']:.1f} — divides execute, cost 10 cycles each, "
        "and count as zero."
    )


if __name__ == "__main__":
    main()
