#!/usr/bin/env python3
"""§5's memory-hierarchy arithmetic, checked against real simulators.

The paper reasons about miss ratios analytically: "For real*8 data, we
would experience a cache-miss every 32 elements and a TLB miss ... every
512 elements."  This example generates actual address streams — the
sequential walk, large strides, a cache-blocked sweep, a multiblock
solver's block-hopping visits, random access — and runs them through the
reference 256 kB 4-way cache and 512-entry TLB simulators, printing the
analytic prediction next to the simulated truth.

Run::

    python examples/cache_exploration.py
"""

from repro.power2.config import POWER2_590
from repro.power2.dcache import SetAssociativeCache
from repro.power2.streams import (
    blocked_stream,
    measure_stream,
    multiblock_stream,
    random_stream,
    sequential_stream,
    strided_stream,
)
from repro.power2.tlb import TLB
from repro.util.rng import RngStreams
from repro.util.tables import Table


def main() -> None:
    cfg = POWER2_590
    rng = RngStreams(7).get("cache-exploration")
    t = Table(
        title="Access patterns through the POWER2 memory hierarchy "
        "(analytic prediction vs reference simulation)",
        columns=(
            "Pattern",
            "dcache predicted",
            "dcache simulated",
            "TLB predicted",
            "TLB simulated",
        ),
    )

    # 1. Sequential real*8 walk — §5's textbook case.
    m = measure_stream(sequential_stream(300_000))
    t.add_row(
        "sequential real*8",
        f"{SetAssociativeCache.sequential_miss_ratio(cfg.dcache):.2%}",
        f"{m.dcache_miss_ratio:.2%}",
        f"{TLB.sequential_miss_ratio(cfg.tlb):.3%}",
        f"{m.tlb_miss_ratio:.3%}",
    )

    # 2. Large strides — §5's TLB warning.
    for stride in (64, 512, 4096):
        m = measure_stream(strided_stream(80_000, stride))
        t.add_row(
            f"stride {stride} B",
            f"{SetAssociativeCache.strided_miss_ratio(cfg.dcache, stride):.2%}",
            f"{m.dcache_miss_ratio:.2%}",
            f"{TLB.strided_miss_ratio(cfg.tlb, stride):.3%}",
            f"{m.tlb_miss_ratio:.3%}",
        )

    # 3. Cache blocking — how the 240 Mflops matmul earns its reuse.
    m = measure_stream(blocked_stream(6, 128 * 1024, passes_per_block=8))
    t.add_row(
        "blocked 128 kB x8 passes",
        "≈1/(32·8)",
        f"{m.dcache_miss_ratio:.2%}",
        "≈1/(512·8)",
        f"{m.tlb_miss_ratio:.3%}",
    )

    # 4. Multiblock hopping — the workload's TLB-hostile shape (§7).
    m = measure_stream(
        multiblock_stream(rng, n_blocks=2048, block_bytes=64 * 1024, touches=4000, run_length=32)
    )
    t.add_row(
        "multiblock hopping",
        "(cache-friendly runs)",
        f"{m.dcache_miss_ratio:.2%}",
        "(page-hostile hops)",
        f"{m.tlb_miss_ratio:.3%}",
    )

    # 5. Random touches over 64 MB — the wall.
    m = measure_stream(random_stream(rng, 60_000, 64 << 20))
    t.add_row("random over 64 MB", "≈100%", f"{m.dcache_miss_ratio:.0%}", "≈100%", f"{m.tlb_miss_ratio:.0%}")

    print(t.render())
    print(
        "\n§5: 'a cache-miss every 32 elements and a TLB miss rate every 512\n"
        "elements' — first row; 'high TLB miss rates from programs accessing\n"
        "data with large memory strides' — the stride rows; the multiblock row\n"
        "is why the workload's TLB ratio (0.1%) sits so far above the\n"
        "cache-blocked codes in Table 4."
    )


if __name__ == "__main__":
    main()
