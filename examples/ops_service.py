#!/usr/bin/env python3
"""The telemetry service: campaigns as things you ask questions of.

``examples/live_ops.py`` shows the operator view after a campaign; this
example runs the *service* form of the same machinery: a campaign
ingested live into a :class:`~repro.ops.CampaignHub`, served over TCP
by :class:`~repro.ops.OpsServer`, and interrogated by a client speaking
the newline-delimited JSON protocol — catalog, metric windows, alert
subscriptions (server pushes), job rollups, and a per-job performance
report. Everything runs in one process here; ``sp2-ops serve`` /
``sp2-ops ask`` do the same across processes.

Run::

    python examples/ops_service.py [seed] [days]
"""

import asyncio
import sys

from repro.core.study import StudyConfig
from repro.faults.profile import FaultProfile
from repro.ops import CampaignHub, OpsClient, OpsServer, ingest_study


async def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 5
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 2

    hub = CampaignHub()
    server = await OpsServer.start(hub)
    print(f"service up on 127.0.0.1:{server.port}")

    # Subscribe *before* the campaign runs: alerts arrive as pushes
    # while the simulation is still going.
    watcher = await OpsClient.connect("127.0.0.1", server.port)
    await watcher.request("subscribe", campaign="*")

    print(f"ingesting a {days}-day campaign (seed {seed}, pathological faults)...")
    config = StudyConfig(
        seed=seed,
        n_days=days,
        n_nodes=16,
        n_users=8,
        fault_profile=FaultProfile.named("pathological"),
    )
    await ingest_study(hub, "prod", config, trace=True)

    pushed = []
    try:
        while True:
            pushed.append(await watcher.next_push(0.5))
    except TimeoutError:
        pass
    print(f"\n{len(pushed)} alerts pushed live; first few:")
    for push in pushed[:3]:
        alert = push["alert"]
        print(f"  [{alert['severity']:>8s}] {alert['rule']:<12s} {alert['message']}")

    async with await OpsClient.connect("127.0.0.1", server.port) as client:
        catalog = await client.request("catalog")
        entry = catalog["campaigns"][0]
        print(
            f"\ncatalog: campaign {entry['name']!r} is {entry['status']} — "
            f"{entry['jobs_finished']} jobs, {entry['events_fed']} events fed"
        )

        query = await client.request(
            "query", campaign="prod", metric="gflops.system", last=4, points=True
        )
        print(
            f"gflops.system: {query['count']} points, "
            f"p50 {query['quantiles']['p50']:.3f}, last window {query['values']}"
        )

        jobs = await client.request("jobs", campaign="prod", limit=3)
        print(f"\nlast {len(jobs['jobs'])} of {jobs['finished']} finished jobs:")
        for job in jobs["jobs"]:
            print(
                f"  job {job['job_id']:>3d}  {job['app']:<16s} "
                f"{job['total_mflops']:8.1f} Mflops on {job['nodes']} nodes"
            )

        report = await client.request(
            "report", campaign="prod", job=jobs["jobs"][0]["job_id"]
        )
        print()
        print(report["report"])

        ack = await client.request("shutdown")
        assert ack["stopping"] is True

    await watcher.close()
    await server.serve_until_shutdown()
    print("service stopped cleanly.")


if __name__ == "__main__":
    asyncio.run(main())
