#!/usr/bin/env python3
"""A federated campaign across three heterogeneous SP2-class centers.

The paper measured one 144-node machine; its modern descendants (XDMoD,
the Blue Waters workload report) compare workloads *across* centers.
This example builds a three-machine fleet — a memory-starved 64-node
center on a slow fabric, the NAS reference 144-node machine, and a
256-node center with a fast fabric but an unreliable first year — routes
one shared user population across it, and prints the cross-center
comparison: utilization, job-size distribution and application mix.

Run::

    python examples/fleet_campaign.py [seed] [days]
"""

import sys

from repro.fleet import (
    FleetSpec,
    MemberSpec,
    fleet_summary,
    render_fleet_report,
    run_fleet,
)


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 0
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 5

    spec = FleetSpec(
        name="tour",
        members=(
            MemberSpec(
                name="lewis",
                n_nodes=64,
                memory_mb=64,
                switch_latency_us=90.0,
                switch_bandwidth_mb_s=17.0,
                fault_profile="mild",
            ),
            MemberSpec(name="ames", n_nodes=144),
            MemberSpec(
                name="langley",
                n_nodes=256,
                memory_mb=256,
                tlb_entries=1024,
                switch_latency_us=30.0,
                switch_bandwidth_mb_s=68.0,
                fault_profile="pathological",
            ),
        ),
        seed=seed,
        n_days=days,
        n_users=48,
    )

    print(
        f"Routing one {spec.n_users}-user population across "
        f"{len(spec.members)} centers ({spec.total_nodes} nodes) for "
        f"{days} days..."
    )
    fleet = run_fleet(spec)
    summary = fleet_summary(fleet)
    print()
    print(render_fleet_report(summary))

    # ------------------------------------------------------------------
    # What heterogeneity did: same users, same demand stream — different
    # delivered performance per center.
    print()
    by_name = {m["name"]: m for m in summary["fleet"]["members"]}
    for name in ("lewis", "ames", "langley"):
        m = by_name[name]
        faults = m.get("faults")
        if faults is None:
            fault_note = "no faults injected"
        else:
            fault_note = (
                f"{faults['events_total']} fault events, "
                f"{100.0 * faults['availability']:.1f}% available"
            )
        print(
            f"{name:>8s}: {m['routed_submissions']:3d} jobs routed, "
            f"{m['time_weighted_mflops_per_node']:5.1f} MF/node time-weighted, "
            f"{m.get('alerts_total', 0)} telemetry alerts, {fault_note}"
        )


if __name__ == "__main__":
    main()
