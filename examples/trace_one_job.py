#!/usr/bin/env python3
"""Trace one 16-node batch job and read its critical path.

Wires a minimal traced stack — simulator, SP2 machine, PBS — submits a
single 16-node CFD job, and prints the span tree's verdict: where the
job's wall time went (compute / switch wait / I/O / paging) and the
longest dependency chain.  The same drill-down `sp2-trace critical-path`
gives for every job of a recorded campaign.

Run::

    python examples/trace_one_job.py [seed]
"""

import sys

import numpy as np

from repro.cluster.machine import SP2Machine
from repro.pbs.scheduler import PBSServer
from repro.sim.engine import Simulator
from repro.tracing import Tracer, analyze_jobs, render_critical_path
from repro.tracing.span import CAT_SWITCH
from repro.workload.apps import application


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 7

    # ------------------------------------------------------------------
    # A traced 16-node stack.
    # ------------------------------------------------------------------
    sim = Simulator()
    tracer = Tracer(lambda: sim.now)
    sim.tracer = tracer
    machine = SP2Machine(16)
    machine.switch.tracer = tracer
    machine.filesystem.tracer = tracer
    pbs = PBSServer(sim, machine, tracer=tracer)

    # One concrete job from the workload's majority family (§4).
    rng = np.random.default_rng(seed)
    profile = application("multiblock_cfd").instantiate(rng, nodes=16)
    print(
        f"Submitting one {profile.app_name} job: 16 nodes, "
        f"{profile.walltime_seconds / 3600:.1f} h requested, "
        f"{profile.memory_bytes_per_node / 2**20:.0f} MB/node"
    )
    pbs.submit("examples", profile.app_name, 16, profile)
    sim.run()

    # ------------------------------------------------------------------
    # The span tree's verdict.
    # ------------------------------------------------------------------
    (path,) = analyze_jobs(tracer.spans)
    print()
    print(render_critical_path(path))

    root = tracer.job_roots()[0]
    wall = path.wall_seconds
    waits = wall - path.breakdown.get("compute", 0.0)
    mflops = root.args.get("mflops", 0.0)  # whole-job Mflops rate
    print()
    print("flop/s vs wait:")
    print(f"  sustained        {mflops / path.nodes if path.nodes else 0.0:8.1f} Mflops/node")
    print(
        f"  compute time     {path.breakdown.get('compute', 0.0):8.0f} s "
        f"({path.fraction('compute'):.1%} of wall)"
    )
    print(f"  waiting          {waits:8.0f} s ({waits / wall if wall else 0.0:.1%})")
    for kind in ("switch-wait", "io", "paging"):
        if path.breakdown.get(kind, 0.0) > 0:
            print(f"    {kind:<12s} {path.breakdown[kind]:8.0f} s")
    print(
        "  (waits tick no user counters — §5's 'invisible' time, now "
        "attributed span by span)"
    )

    # ------------------------------------------------------------------
    # The cost models trace too: one halo exchange, span-recorded.
    # ------------------------------------------------------------------
    machine.switch.exchange(64 * 1024, 4, asynchronous=True)
    exchange = next(s for s in tracer.spans if s.category == CAT_SWITCH)
    print(
        f"\nswitch span: {exchange.name} of {exchange.args['bytes']:.0f} B "
        f"x{exchange.args['neighbors']} neighbors -> "
        f"{exchange.duration * 1e3:.2f} ms modeled"
    )
    print(f"\n{len(tracer.spans)} spans recorded; categories:")
    for cat, n in sorted(tracer.counts_by_category().items()):
        print(f"  {cat:<14s} {n}")


if __name__ == "__main__":
    main()
