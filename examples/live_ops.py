#!/usr/bin/env python3
"""Live operations: the telemetry the NAS operators did not have.

The paper found the §6 paging pathology months after the fact, by mining
nine months of collected files. This example runs a short campaign with
the streaming telemetry subsystem attached and shows what an operator
would have seen *while it happened*: the live metric feed, the alerts
the rule engine raised, campaign-wide streaming quantiles (P² sketches,
no raw history kept), and the per-job rollups frozen at each epilogue.

The same views are available from the shell::

    sp2-ops alerts --days 3 --seed 1
    sp2-ops tail   --days 3 --seed 1 --limit 24
    sp2-ops query  --metric fxu.sys_user_ratio --days 3 --seed 1 --plot
    sp2-ops jobs   --days 3 --seed 1 --top 10

Run::

    python examples/live_ops.py [seed] [days]
"""

import sys

from repro import run_study
from repro.telemetry import render_alerts
from repro.util.tables import Table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 3

    print(f"Running a {days}-day campaign (seed {seed}) with live telemetry...",
          flush=True)
    dataset = run_study(seed=seed, n_days=days)
    t = dataset.telemetry

    # ------------------------------------------------------------------
    # What the rule engine caught, as it happened
    # ------------------------------------------------------------------
    print()
    print("Alerts raised online:")
    print(render_alerts(t.engine.alerts))
    by_rule = t.engine.counts_by_rule()
    print(f"\n{len(t.engine.alerts)} alerts ({t.engine.suppressed} repeats "
          f"suppressed by cooldown): "
          + ", ".join(f"{r}={n}" for r, n in sorted(by_rule.items())))

    # ------------------------------------------------------------------
    # Streaming summaries: quantiles from P² sketches, not raw history
    # ------------------------------------------------------------------
    summaries = Table(
        title="Campaign metric summaries (streaming aggregates)",
        columns=("Metric", "n", "Last", "EWMA", "p50", "p99", "Max"),
    )
    for name in ("gflops.system", "fxu.sys_user_ratio", "tlb.miss_rate",
                 "mflops.node", "jobs.active"):
        s = t.store.summary(name)
        summaries.add_row(name, s.count, s.last, s.ewma,
                          s.quantiles[0.5], s.quantiles[0.99], s.max)
    print()
    print(summaries.render())

    # ------------------------------------------------------------------
    # Per-job rollups, frozen at epilogue time
    # ------------------------------------------------------------------
    top = Table(
        title="Top finished jobs by total Mflops (from live rollups)",
        columns=("Job", "User", "Nodes", "Mflops", "Sys/usr FXU"),
    )
    for r in t.rollups.top_by_mflops(8):
        top.add_row(r.record.job_id, r.record.user, r.record.nodes_requested,
                    r.total_mflops, r.system_user_fxu_ratio)
    print()
    print(top.render())

    suspects = t.rollups.paging_suspects()
    print(f"\n{len(t.rollups)} jobs finished; "
          f"{len(suspects)} flagged as paging suspects "
          f"(per-job system/user FXU ratio > 0.5).")


if __name__ == "__main__":
    main()
