#!/usr/bin/env python3
"""A NAS user's afternoon on the SP2 — the §2/§3 workflow end-to-end.

1. write a batch script with ``#PBS`` directives and ``rs2hpm`` markers;
2. ``qsub`` it, watch ``qstat`` while it queues behind a wide job that
   is draining the machine (§6);
3. read the RS2HPM epilogue report when it finishes;
4. use the per-program monitor interactively (the "preface interactive
   sessions with the appropriate RS2HPM commands" path) to compare the
   untuned and tuned versions of a kernel;
5. check the operator's daily report, where the wide job shows up as a
   paging suspect.

Run::

    python examples/user_session.py
"""

from repro.analysis.opsreport import day_ops, render_day_report
from repro.cluster.machine import SP2Machine
from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy
from repro.hpm.jobreport import render_job_report
from repro.hpm.program import ProgramMonitor
from repro.pbs.qcmds import PBSCommands
from repro.pbs.scheduler import PBSServer
from repro.power2.node import Node, PhaseKind, WorkPhase
from repro.power2.pipeline import CycleModel
from repro.sim.engine import Simulator
from repro.workload.kernels import kernel

SCRIPT = """\
#!/bin/sh
#PBS -N wingflow
#PBS -l nodes=16,walltime=02:00:00
cd $HOME/cases/wing
rs2hpm start
mpirun -np 16 ./arc3d wing.inp
rs2hpm stop
"""

WIDE_SCRIPT = "#PBS -N hog\n#PBS -l nodes=96\n./bigjob huge.inp\n"


def batch_part() -> None:
    sim = Simulator()
    server = PBSServer(sim, SP2Machine(96 + 8))
    q = PBSCommands(server, seed=2)

    print("$ cat wing.pbs")
    print(SCRIPT)
    wide = q.qsub(WIDE_SCRIPT, user=3)  # someone's oversubscribed monster
    mine = q.qsub(SCRIPT, user=7)

    print("$ qsub wing.pbs")
    print(f"{mine.job_id}.sp2-pbs")
    print("\n$ qstat")
    print(q.qstat_render())

    sim.run()
    record = next(
        r for r in server.accounting.records if r.job_id == mine.job_id
    )
    print("\n# epilogue report (head):")
    print("\n".join(render_job_report(record).splitlines()[:11]))
    print("...")
    hog = next(r for r in server.accounting.records if r.job_id == wide.job_id)
    print(
        f"\nthe 96-node job meanwhile: {hog.mflops_per_node:.2f} Mflops/node, "
        f"sys/user FXU {hog.system_user_fxu_ratio:.1f} — paging (§6)."
    )


def interactive_part() -> None:
    print("\n--- interactive tuning session (rs2hpm per-program mode) ---")
    node = Node(0)
    model = CycleModel(node.config)

    def run(kernel_name: str, flops: float) -> None:
        k = kernel(kernel_name)
        execution = model.execute(k.mix_for_flops(flops), k.memory_behaviour(), k.deps)
        node.run_phase(WorkPhase(kind=PhaseKind.COMPUTE, execution=execution))

    with ProgramMonitor(node, first_phase="before-tuning") as pm:
        run("legacy_vector", 3e7)
        pm.mark("after-tuning")
        run("cfd_tuned", 3e7)

    before = pm.report.phase("before-tuning").rates
    after = pm.report.phase("after-tuning").rates
    print(
        f"before: {before.mflops_total:6.1f} Mflops  fma {before.fma_flop_fraction:4.0%}  "
        f"flops/memref {before.flops_per_memory_inst:.2f}"
    )
    print(
        f"after : {after.mflops_total:6.1f} Mflops  fma {after.fma_flop_fraction:4.0%}  "
        f"flops/memref {after.flops_per_memory_inst:.2f}"
    )
    print("(§7: the better codes reach ≥80% fma and reuse registers)")


def operator_part() -> None:
    print("\n--- the operator's morning report ---")
    dataset: StudyDataset = WorkloadStudy(
        StudyConfig(seed=3, n_days=3, n_nodes=144, n_users=40)
    ).run()
    worst = min(
        range(3), key=lambda d: day_ops(dataset, d).gflops
    )
    print(render_day_report(day_ops(dataset, worst)))


def main() -> None:
    batch_part()
    interactive_part()
    operator_part()


if __name__ == "__main__":
    main()
