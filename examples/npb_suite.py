#!/usr/bin/env python3
"""Run the NAS Parallel Benchmarks 2.1 suite on the simulated SP2.

The paper anchors its Table 4 on NPB BT (44 Mflops/CPU on 49 CPUs) and
cites the NPB 2.1 results report.  This example runs the whole suite as
PBS jobs on a simulated machine, captures each run with the RS2HPM
prologue/epilogue path, and prints the per-benchmark comparison —
including the PHPM parallel balance view for BT.

Run::

    python examples/npb_suite.py
"""

from repro.cluster.machine import SP2Machine
from repro.hpm.phpm import ParallelJobReport
from repro.pbs.scheduler import PBSServer
from repro.sim.engine import Simulator
from repro.util.tables import Table
from repro.workload.npb import NPB_SUITE


def main() -> None:
    t = Table(
        title="NPB 2.1 on the simulated SP2 (one PBS job per benchmark)",
        columns=(
            "Benchmark",
            "Procs",
            "Mflops/node",
            "Total Gflops",
            "Walltime (s)",
            "Comm %",
        ),
    )

    bt_record = None
    for key in sorted(NPB_SUITE):
        spec = NPB_SUITE[key]
        profile = spec.job_profile()

        sim = Simulator()
        server = PBSServer(sim, SP2Machine(max(spec.processes, 49)))
        server.submit(0, profile.app_name, spec.processes, profile)
        sim.run()
        rec = server.accounting.records[0]
        if key == "BT.A":
            bt_record = rec

        t.add_row(
            key,
            spec.processes,
            rec.mflops_per_node,
            rec.mflops_per_node * spec.processes / 1e3,
            rec.walltime_seconds,
            f"{profile.comm_fraction:.0%}",
        )

    print(t.render())
    print(
        "\nPaper anchor: BT on 49 CPUs at 44 Mflops/CPU (Table 4); EP is pure\n"
        "compute; SP pays the most communication; MG and FT punish the memory\n"
        "hierarchy — the orderings of the NPB 2.1 report."
    )

    if bt_record is not None:
        print("\nPHPM parallel view of the BT.A run:")
        print(ParallelJobReport(bt_record).summary())


if __name__ == "__main__":
    main()
