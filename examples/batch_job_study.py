#!/usr/bin/env python3
"""The §6 batch-job study: Figures 2-4 and the parallelism profile.

Replays a campaign, then works entirely from the PBS accounting database
the prologue/epilogue scripts populated — the same data path the paper's
batch analysis used (600-second filter included).

Run::

    python examples/batch_job_study.py [seed] [days]
"""

import sys


from repro import figure2, figure3, figure4, run_study
from repro.hpm.jobreport import render_job_report
from repro.util.tables import Table


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1
    days = int(sys.argv[2]) if len(sys.argv) > 2 else 30

    print(f"Running a {days}-day campaign (seed {seed})...", flush=True)
    dataset = run_study(seed=seed, n_days=days)
    acct = dataset.accounting

    # ------------------------------------------------------------------
    # Parallelism profile (the Figure 2 data, tabulated)
    # ------------------------------------------------------------------
    t = Table(
        title="Batch jobs by nodes requested (>600 s wall clock, as in §6)",
        columns=("Nodes", "Jobs", "Walltime (h)", "Mean Mflops/node"),
    )
    for b in acct.walltime_by_nodes():
        t.add_row(b.nodes, b.job_count, b.total_walltime_seconds / 3600.0, b.mean_mflops_per_node)
    print()
    print(t.render())
    print(f"\nMost popular node count (by walltime): {acct.most_popular_nodes()}"
          f"  (paper: 16)")
    print(f"Time-weighted average: {acct.time_weighted_mflops_per_node():.1f} "
          f"Mflops/node  (paper: 19)")

    # ------------------------------------------------------------------
    # Figures 2-4
    # ------------------------------------------------------------------
    for fig in (figure2(dataset), figure3(dataset), figure4(dataset)):
        print()
        print(fig.render())

    f4 = figure4(dataset)
    rates = f4.series["job_mflops"]
    if rates.size:
        print(
            f"\n16-node job history: mean {rates.mean():.0f} Mflops, "
            f"std {rates.std():.0f} (paper: 320 with spread 200); "
            "no improvement trend, as the paper found."
        )

    # ------------------------------------------------------------------
    # One epilogue report, as users saw them (§3)
    # ------------------------------------------------------------------
    champion = max(acct.filtered(), key=lambda r: r.mflops_per_node)
    print(f"\nBest per-node job: {champion.app_name} on "
          f"{champion.nodes_requested} nodes at "
          f"{champion.mflops_per_node:.1f} Mflops/node "
          f"(paper's champion: 40 Mflops/node on 28 nodes).")
    print("\nIts RS2HPM epilogue report (truncated):")
    print("\n".join(render_job_report(champion).splitlines()[:14]))
    print("...")


if __name__ == "__main__":
    main()
