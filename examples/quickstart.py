#!/usr/bin/env python3
"""Quickstart: run a one-month NAS SP2 campaign and read the results.

This is the five-minute tour of the public API:

1. run a campaign (machine + PBS + workload + RS2HPM sampling);
2. print the paper-vs-measured headline comparison;
3. regenerate Table 2 and Figure 1 from the measured counters.

Run::

    python examples/quickstart.py [seed]
"""

import sys

from repro import figure1, paper_comparison, run_study, table2


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 1

    # A 30-day campaign on the full 144-node machine takes ~10 s.
    print("Running a 30-day campaign on 144 nodes...", flush=True)
    dataset = run_study(seed=seed, n_days=30)

    # The headline block: every §5-§7 number, paper vs this campaign.
    print()
    print(paper_comparison(dataset))

    # Tables are regenerated from the same counter algebra the paper
    # used (per-node rates over the >2 Gflops days).
    print()
    print(table2(dataset).render())

    # Figures carry both the data series and an ASCII render.
    fig = figure1(dataset)
    print()
    print(fig.render())
    print()
    g = fig.series["daily_gflops"]
    print(
        f"Campaign: {g.mean():.2f} Gflops mean daily rate, "
        f"{len(dataset.accounting)} jobs accounted, "
        f"{dataset.accounting.time_weighted_mflops_per_node():.1f} Mflops/node "
        f"time-weighted job average."
    )


if __name__ == "__main__":
    main()
