#!/usr/bin/env python3
"""From real code to counter data — the full §4 pipeline on one program.

Runs an actual NumPy Jacobi solver on the §6 champion's geometry
(96×96×32 per node, 28 nodes, nearest-neighbour halos), then:

1. verifies the numerics converge (it is a real solver, not a model);
2. counts its per-sweep instructions from the stencil, costs them with
   the POWER2 cycle model, and reports the predicted Mflops/node;
3. wraps the counted mix as a PBS job profile, runs it through the
   batch system with the RS2HPM prologue/epilogue, and compares the
   *measured counter rates* with the prediction;
4. compares both against the campaign's statistical champion app.

Run::

    python examples/real_solver_measurement.py
"""


from repro.cluster.machine import SP2Machine
from repro.pbs.scheduler import PBSServer
from repro.power2.pipeline import CycleModel
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams
from repro.workload.apps import application
from repro.workload.profile import CommPattern, profile_from_mix
from repro.workload.solver import DecomposedJacobi

MB = 1024 * 1024


def main() -> None:
    # ------------------------------------------------------------------
    # 1. Really solve something.
    # ------------------------------------------------------------------
    print("Convergence check on a small decomposed grid (8 ranks, 12^3 each)...")
    demo = DecomposedJacobi((24, 24, 24), 8)
    demo.set_uniform_load(1.0)
    r1 = demo.iterate(1)
    r300 = demo.iterate(299)
    print(f"  max update after 1 sweep: {r1:.3e}; after 300: {r300:.3e} "
          f"({'converging' if r300 < 0.5 * r1 else 'NOT converging'})")

    print("\nInstrumented run at the champion's geometry (28 ranks, 96x96x32 each)...")
    grid = (96 * 7, 96 * 2, 32 * 2)  # 28 = 7x2x2 ranks of 96x96x32
    sim_solver = DecomposedJacobi(grid, 28, variables=25)
    sim_solver.set_uniform_load(1.0)
    sim_solver.iterate(3)  # really sweep a few times

    # ------------------------------------------------------------------
    # 2. Count and cost one sweep.
    # ------------------------------------------------------------------
    rank0 = sim_solver.solvers[0]
    mix = rank0.sweep_mix()
    result = CycleModel().execute(
        mix, rank0.memory_behaviour(), rank0.dependency_profile()
    )
    print(
        f"\nCounted sweep: {mix.flops / 1e6:.1f} Mflop, "
        f"flops/memref {mix.flops / mix.memory_insts:.2f}; "
        f"cycle model predicts {result.mflops:.1f} Mflops/node flat out."
    )

    # ------------------------------------------------------------------
    # 3. Run it as a batch job and measure with the counters.
    # ------------------------------------------------------------------
    halo = sim_solver.halo_bytes_per_iteration(0) / 6.0  # per neighbour
    profile = profile_from_mix(
        app_name="jacobi_real",
        mix=mix,
        memory=rank0.memory_behaviour(),
        deps=rank0.dependency_profile(),
        nodes=28,
        iterations_mix_count=25.0,  # 25 variables sweep per iteration
        walltime_seconds=3600.0,
        memory_bytes_per_node=90 * MB,
        comm=CommPattern(neighbors=6, bytes_per_neighbor=halo, asynchronous=True),
    )
    sim = Simulator()
    server = PBSServer(sim, SP2Machine(28))
    server.submit(0, "jacobi_real", 28, profile)
    sim.run()
    record = server.accounting.records[0]
    print(
        f"Batch run measured by RS2HPM: {record.mflops_per_node:.1f} Mflops/node "
        f"over {record.walltime_seconds:.0f}s "
        f"(comm fraction {profile.comm_fraction:.1%})."
    )

    # ------------------------------------------------------------------
    # 4. Compare with the statistical champion.
    # ------------------------------------------------------------------
    champ = application("navier_stokes_async").instantiate(
        RngStreams(1).get("champ"), nodes=28
    )
    print(
        f"\nStatistical champion app at 28 nodes: {champ.mflops_per_node:.1f} "
        f"Mflops/node; the instrumented Jacobi lands at "
        f"{record.mflops_per_node:.1f} — same §6 regime, derived two "
        "independent ways (paper: ≈40)."
    )


if __name__ == "__main__":
    main()
