"""Experiment: Table 4 — hierarchical memory performance.

Paper: cache-miss ratio 1% (workload) / 3% (sequential) / 1.2% (BT);
TLB 0.1% / 0.2% / 0.06%; Mflops/CPU 17 (workload) / 44 (BT on 49 CPUs).
The orderings are the experiment's point: BT's rearranged loop nests
beat both the workload and the no-reuse bound on the TLB.
"""


from repro.analysis.tables import table4


def _pct(cell: str) -> float:
    return float(cell.rstrip("%"))


def test_table4(campaign, benchmark, capsys):
    table = benchmark(table4, campaign)
    cache = {col: _pct(table.rows[0][i]) for i, col in enumerate(table.columns) if i}
    tlb = {col: _pct(table.rows[1][i]) for i, col in enumerate(table.columns) if i}
    mflops_wl = table.rows[2][1]
    mflops_bt = table.rows[2][3]

    # Orderings (the paper's comparison).
    assert cache["Sequential Access"] > cache["NAS Workload"]
    assert tlb["NPB BT on 49 CPUs"] < tlb["NAS Workload"]
    assert tlb["NPB BT on 49 CPUs"] < tlb["Sequential Access"]
    assert mflops_bt > 1.5 * mflops_wl

    # Magnitudes.
    assert 0.5 <= cache["NAS Workload"] <= 2.0  # paper: 1%
    assert cache["Sequential Access"] == 3.1  # exactly 8/256
    assert 0.8 <= cache["NPB BT on 49 CPUs"] <= 1.6  # paper: 1.2%
    assert 0.15 <= tlb["Sequential Access"] <= 0.25  # paper: 0.2%
    assert 38.0 <= mflops_bt <= 50.0  # paper: 44

    with capsys.disabled():
        print()
        print(table.render())
        print(
            "\n  paper: cache 1%/3%/1.2%; TLB 0.1%/0.2%/0.06%; Mflops 17/-/44\n"
            f"  measured Mflops/CPU: workload {mflops_wl:.1f}, BT {mflops_bt:.1f}"
        )
