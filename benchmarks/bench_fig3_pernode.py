"""Experiment: Figure 3 — per-node job performance vs nodes requested.

Paper: the per-node rate is sustained in many cases up to 64 nodes,
collapses sharply beyond 64, and peaks at ≈40 Mflops/node around 28
nodes (the asynchronous Navier-Stokes solver).
"""

import numpy as np

from repro.analysis.figures import figure3


def test_figure3(campaign, benchmark, capsys):
    fig = benchmark(figure3, campaign)
    x, y = fig.series["x"], fig.series["y"]

    mid = y[(x >= 8) & (x <= 64)]
    wide = y[x > 64]
    assert mid.mean() > 10.0  # sustained moderate-parallelism rates
    if wide.size:
        assert wide.mean() < 0.6 * mid.mean()  # the >64 collapse

    # The champion: ≈40 Mflops/node in the 16-48 node range.
    peak_x = x[int(np.argmax(y))]
    assert 16 <= peak_x <= 48
    assert 35.0 <= y.max() <= 60.0

    with capsys.disabled():
        print()
        print(fig.render())
        print(
            f"\n  champion: {y.max():.1f} Mflops/node at {peak_x:.0f} nodes "
            "(paper: ≈40 at 28); "
            f"8-64-node mean {mid.mean():.1f}; >64-node mean "
            f"{wide.mean() if wide.size else float('nan'):.1f}"
        )
