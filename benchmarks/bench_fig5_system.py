"""Experiment: Figure 5 — node performance vs system intervention.

Paper: days with high (System FXU)/(User FXU) ratios display below-
average performance — the counter signature that exposed paging as the
machine's hidden performance killer (§6).
"""

import numpy as np

from repro.analysis.figures import figure5


def test_figure5(campaign, benchmark, capsys):
    fig = benchmark(figure5, campaign)
    x, y = fig.series["x"], fig.series["y"]

    assert np.isfinite(x).all() and np.isfinite(y).all()
    assert x.size == campaign.config.n_days

    # The declining shape: high-intervention days perform worse than
    # low-intervention days.
    if x.std() > 0:
        median_x = np.median(x)
        calm = y[x <= median_x]
        stormy = y[x > median_x]
        if calm.size and stormy.size:
            assert stormy.mean() <= calm.mean() * 1.05
        corr = np.corrcoef(x, y)[0, 1]
        assert corr < 0.15

    with capsys.disabled():
        print()
        print(fig.render())
        if x.std() > 0:
            print(
                f"\n  correlation(intervention, performance) = "
                f"{np.corrcoef(x, y)[0, 1]:+.2f} (paper: clearly negative); "
                f"intervention range {x.min():.2f}-{x.max():.2f}"
            )
