"""Extension experiment: the NPB 2.1 suite on the simulated SP2.

Not a table in the paper, but its §5/§7 and Table 4 lean on NPB 2.1
(Saphir, Woo & Yarrow 1996) for calibration: BT at 44 Mflops/CPU on 49
CPUs with the best TLB behaviour in Table 4.  This experiment runs the
whole suite and asserts the report's qualitative orderings.
"""

from repro.workload.npb import NPB_SUITE, npb, suite_report


def test_npb_suite(benchmark, capsys):
    rows = benchmark(suite_report)
    by_name = {r["benchmark"]: r for r in rows}

    # Table 4's anchor.
    bt = by_name["BT.A"]
    assert npb("BT").processes == 49
    assert 35.0 <= bt["mflops_per_node"] <= 50.0  # paper: 44

    # NPB 2.1 orderings on the SP2.
    assert bt["mflops_per_node"] > 1.3 * by_name["SP.A"]["mflops_per_node"]
    assert by_name["EP.A"]["dcache_ratio"] < 0.002
    assert by_name["SP.A"]["comm_fraction"] > by_name["LU.A"]["comm_fraction"]
    assert by_name["MG.A"]["tlb_ratio"] > bt["tlb_ratio"]
    assert by_name["FT.A"]["tlb_ratio"] > bt["tlb_ratio"]
    # Class scaling: B is the same code on a bigger grid.
    assert by_name["BT.B"]["walltime_s"] > 2.0 * bt["walltime_s"]

    with capsys.disabled():
        print()
        header = f"{'bench':8s} {'procs':>5s} {'Mflops/node':>12s} {'Gflops':>7s} {'wall s':>8s} {'comm':>6s} {'dc%':>6s} {'tlb%':>7s}"
        print("  " + header)
        for key in sorted(NPB_SUITE):
            r = by_name[key]
            print(
                f"  {key:8s} {r['processes']:5d} {r['mflops_per_node']:12.1f} "
                f"{r['total_gflops']:7.2f} {r['walltime_s']:8.0f} "
                f"{r['comm_fraction']:6.1%} {100 * r['dcache_ratio']:6.2f} "
                f"{100 * r['tlb_ratio']:7.3f}"
            )
        print("\n  paper anchor: BT.A = 44 Mflops/CPU on 49 CPUs (Table 4)")
