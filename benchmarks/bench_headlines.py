"""Experiment: the §5-§7 headline numbers, paper vs measured.

The abstract's claims — 1.3 Gflops ≈ 3% of peak, 64% utilization, a
5.7 Gflops 15-minute peak, 19 Mflops/node time-weighted job average,
fma ≈54% of flops, FPU0:FPU1 ≈1.7, flops/memref ≈0.53, 16 nodes the
most popular choice — all derived from one campaign's counters.
"""

from repro.analysis.report import headline_report, paper_comparison


def test_headlines(campaign, benchmark, capsys):
    report = benchmark(headline_report, campaign)

    by_claim = {h.claim: h for h in report}
    # Every headline within 3x; at least half within ±40%.
    for h in report:
        assert 1 / 3 <= h.ratio <= 3.0, h.claim
    close = sum(1 for h in report if 0.7 <= h.ratio <= 1.4)
    assert close >= len(report) // 2

    # The qualitative claims that define the paper:
    assert by_claim["most popular node count"].measured_value == 16
    assert by_claim["system efficiency (of aggregate peak)"].measured_value < 0.09
    assert by_claim["FPU0:FPU1 instruction ratio"].measured_value > 1.3

    with capsys.disabled():
        print()
        print(paper_comparison(campaign))


def test_campaign_simulation_speed(benchmark):
    """How long a simulated week takes to run (the simulator's own
    performance, not the paper's)."""
    from repro.core.study import run_study

    result = benchmark.pedantic(
        lambda: run_study(seed=5, n_days=2, n_nodes=144, n_users=60),
        rounds=1,
        iterations=1,
    )
    assert len(result.accounting) > 0
