"""Experiment: Table 2 — Mips/Mops/Mflops over the >2 Gflops days.

Paper values (per node): Mips 45.7 ± 10.5, Mops 48.3 ± 10.2,
Mflops 17.4 ± 3.8; the filtered sample averages 2.5 Gflops system-wide.
The benchmark measures the day-filter + derivation pass over the
campaign's counter samples.
"""

from repro.analysis.tables import busy_days, table2

PAPER = {"Mips": 45.7, "Mops": 48.3, "Mflops": 17.4}


def test_table2(campaign, benchmark, capsys):
    table = benchmark(table2, campaign)
    avg = {row[0]: row[2] for row in table.rows}
    # Shape assertions: same ordering and the paper's magnitudes.
    assert avg["Mops"] > avg["Mips"] > avg["Mflops"]
    for name, paper_value in PAPER.items():
        assert 0.5 * paper_value <= avg[name] <= 1.6 * paper_value, name
    with capsys.disabled():
        print()
        print(table.render())
        for name in ("Mips", "Mops", "Mflops"):
            print(f"  paper {name}: {PAPER[name]}  measured: {avg[name]:.1f}")


def test_busy_day_filter(campaign, benchmark):
    idx, rates = benchmark(busy_days, campaign)
    assert len(idx) >= 1
    # Paper: 30 of 270 days (≈11%); allow a broad band.
    assert len(idx) / campaign.config.n_days <= 0.5
