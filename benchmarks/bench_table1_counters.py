"""Experiment: Table 1 — the NAS counter selection.

Regenerates the counter table from the event catalog and validates the
physical constraints (22 counters, 5/5/5/2/5 slots).  The benchmark
measures the selection-validation path, which is what RS2HPM runs every
time a group is programmed.
"""

from repro.analysis.tables import table1
from repro.hpm.events import NAS_SELECTION


def test_table1(benchmark, capsys):
    table = benchmark(table1)
    assert len(table.rows) == 22
    with capsys.disabled():
        print()
        print(table.render())


def test_selection_validation(benchmark):
    benchmark(NAS_SELECTION.validate)
