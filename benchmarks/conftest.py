"""Shared campaign for the benchmark/experiment harness.

One campaign is run per session and every table/figure regenerates from
it — the same structure as the paper (nine months of data, one analysis
pass).  Default length is 60 days so the suite runs in ~20 s; set
``REPRO_BENCH_DAYS=270`` to regenerate the full nine-month study (the
numbers recorded in EXPERIMENTS.md come from that setting).
"""

from __future__ import annotations

import os

import pytest

from repro.core.study import run_study

BENCH_DAYS = int(os.environ.get("REPRO_BENCH_DAYS", "60"))
BENCH_SEED = int(os.environ.get("REPRO_BENCH_SEED", "0"))


BENCH_DIR = os.path.dirname(os.path.abspath(__file__))


def pytest_collection_modifyitems(items):
    """Everything under benchmarks/ carries the registered ``bench``
    marker, so a plain unit run can deselect the timing harness with
    ``pytest tests/ benchmarks/ -m "not bench"``.  The hook sees the
    whole session's items, so scope the marker by path."""
    for item in items:
        if str(item.path).startswith(BENCH_DIR):
            item.add_marker(pytest.mark.bench)


@pytest.fixture(scope="session")
def campaign():
    """The measured dataset every experiment analyses."""
    return run_study(seed=BENCH_SEED, n_days=BENCH_DAYS, n_nodes=144, n_users=60)
