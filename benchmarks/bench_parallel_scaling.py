"""Experiment: wall-clock scaling of the sharded campaign runner.

Runs the same campaign configuration through
:func:`repro.parallel.run_parallel_study` at increasing worker counts
and reports wall time and speedup versus one worker.  Because the merge
is deterministic, every row of the table is the *same experiment* — the
runner guards this by fingerprinting each dataset and asserting the
fingerprints match across worker counts.

Two entry points:

* ``pytest benchmarks/ --benchmark-only`` runs a small scaling check as
  part of the experiment harness;
* ``python benchmarks/bench_parallel_scaling.py --days 270 --workers
  1 2 4`` reproduces the full nine-month scaling table (the CI build
  artifact).  Speedup tracks the physical core count: expect ≥2× at 4
  workers on ≥4 cores, and ~1× on a single-core container.
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from dataclasses import dataclass

from repro.core.study import StudyConfig, StudyDataset
from repro.parallel import plan_shards, run_parallel_study


@dataclass(frozen=True)
class ScalingPoint:
    """One row of the scaling table."""

    workers: int
    seconds: float
    speedup: float  # vs the 1-worker row


def _fingerprint(dataset: StudyDataset) -> tuple:
    """A cheap identity for "same merged campaign" assertions."""
    daily = dataset.daily_gflops()
    return (
        len(dataset.accounting),
        dataset.events_processed,
        len(dataset.collector.samples),
        round(float(daily.sum()), 9) if daily.size else 0.0,
    )


def measure_scaling(
    config: StudyConfig,
    worker_counts: list[int],
    *,
    shard_days: int | None = None,
) -> list[ScalingPoint]:
    """Time the sharded runner at each worker count (identical output
    asserted across all of them)."""
    points: list[ScalingPoint] = []
    baseline: float | None = None
    reference: tuple | None = None
    for workers in worker_counts:
        t0 = time.perf_counter()
        dataset = run_parallel_study(config, workers=workers, shard_days=shard_days)
        dt = time.perf_counter() - t0
        fp = _fingerprint(dataset)
        if reference is None:
            reference = fp
        elif fp != reference:
            raise AssertionError(
                f"workers={workers} changed the merged campaign: {fp} != {reference}"
            )
        if baseline is None:
            baseline = dt
        points.append(ScalingPoint(workers=workers, seconds=dt, speedup=baseline / dt))
    return points


def render_table(
    points: list[ScalingPoint], config: StudyConfig, shard_days: int | None
) -> str:
    shards = plan_shards(config.n_days, shard_days)
    lines = [
        f"# sp2 parallel scaling — {config.n_days}-day campaign, "
        f"{config.n_nodes} nodes, seed {config.seed}",
        f"# {len(shards)} shards ({shards[0].n_days} days each), "
        f"{os.cpu_count()} cpu cores visible",
        f"{'workers':>8s} {'seconds':>10s} {'speedup':>8s}",
    ]
    for p in points:
        lines.append(f"{p.workers:>8d} {p.seconds:>10.2f} {p.speedup:>7.2f}x")
    return "\n".join(lines)


def test_parallel_scaling(benchmark, capsys):
    """Sharded runner scaling on a short campaign (worker counts 1/2/4;
    the full 270-day table is the script / CI-artifact path)."""
    days = min(int(os.environ.get("REPRO_BENCH_DAYS", "60")), 24)
    config = StudyConfig(seed=0, n_days=days, n_nodes=144, n_users=60)

    points = benchmark.pedantic(
        lambda: measure_scaling(config, [1, 2, 4], shard_days=max(1, days // 6)),
        rounds=1,
        iterations=1,
    )
    assert [p.workers for p in points] == [1, 2, 4]
    assert all(p.seconds > 0 for p in points)

    with capsys.disabled():
        print()
        print(render_table(points, config, max(1, days // 6)))


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description="sp2 sharded-runner scaling table")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--days", type=int, default=270)
    p.add_argument("--nodes", type=int, default=144)
    p.add_argument("--users", type=int, default=60)
    p.add_argument("--shard-days", type=int, default=None)
    p.add_argument("--workers", type=int, nargs="+", default=[1, 2, 4])
    p.add_argument("--out", type=str, default=None, help="also write the table here")
    args = p.parse_args(argv)

    config = StudyConfig(
        seed=args.seed, n_days=args.days, n_nodes=args.nodes, n_users=args.users
    )
    points = measure_scaling(config, args.workers, shard_days=args.shard_days)
    table = render_table(points, config, args.shard_days)
    print(table)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(table + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
