"""Experiment: Figure 1 — system performance history.

Paper: daily rate swinging 0.5-3.5 Gflops around a ≈1.3 Gflops average;
utilization moving average around 0.64 with a 0.95 peak; a 3.4 Gflops
best day and a 5.7 Gflops best 15-minute interval; *no upward trend*
despite the machine being configured for code development.
"""


from repro.analysis.figures import figure1


def test_figure1(campaign, benchmark, capsys):
    fig = benchmark(figure1, campaign)
    daily = fig.series["daily_gflops"]
    util_ma = fig.series["utilization_moving_avg"]

    assert len(daily) == campaign.config.n_days
    assert 0.7 <= daily.mean() <= 2.2  # paper: ≈1.3
    assert daily.max() <= 6.0  # paper's best day: 3.4
    assert util_ma.max() <= 1.0

    # No improvement trend (paper: "no obvious trend toward increased
    # performance as time passes"): the second half must not beat the
    # first half by more than 40%.
    half = len(daily) // 2
    if half >= 7:
        assert daily[half:].mean() <= 1.4 * daily[:half].mean() + 0.3

    _, interval = campaign.interval_gflops()
    assert interval.max() <= 8.0  # paper's 15-min peak: 5.7

    with capsys.disabled():
        print()
        print(fig.render())
        print(
            f"\n  daily mean {daily.mean():.2f} Gflops (paper 1.3); "
            f"best day {daily.max():.2f} (paper 3.4); "
            f"best 15-min {interval.max():.2f} (paper 5.7); "
            f"util mean {campaign.daily_utilization().mean():.2f} (paper 0.64)"
        )
