"""Experiment: Table 3 — the full per-unit breakdown.

Paper values (per node, filtered days): Mflops-All 17.4 (add 9.5, div
0.0, mult 3.2, fma 4.7); Mips-FP 14.8 (unit0 9.4, unit1 5.4); Mips-FXU
27.6; Mips-ICU 3.3; dcache misses 0.30 M/s; TLB 0.04 M/s; icache
0.014 M/s; DMA reads 0.024 / writes 0.017 MT/s.
"""

from repro.analysis.tables import table3

PAPER_AVG = {
    "Mflops-All": 17.4,
    "Mflops-add": 9.5,
    "Mflops-div": 0.0,
    "Mflops-mult": 3.2,
    "Mflops-fma": 4.7,
    "Mips-Floating Point (Total)": 14.8,
    "Mips-Floating Point (Unit 0)": 9.4,
    "Mips-Floating Point (Unit 1)": 5.4,
    "Mips-Fixed Point Unit (Total)": 27.6,
    "Mips-Inst Cache Unit": 3.3,
    "Data Cache Misses-Million/S": 0.30,
    "TLB-Million/S": 0.04,
    "Instruction Cache Misses-Million/S": 0.014,
    "DMA reads-MTransfer/S": 0.024,
    "DMA writes-MTransfer/S": 0.017,
}


def test_table3(campaign, benchmark, capsys):
    table = benchmark(table3, campaign)
    avg = {row[0]: row[2] for row in table.rows if not str(row[0]).startswith("--")}

    # Structural facts from the paper that must hold exactly.
    assert avg["Mflops-div"] == 0.0  # broken divide counter (§3)
    assert avg["Mips-Floating Point (Unit 0)"] > avg["Mips-Floating Point (Unit 1)"]
    assert (
        avg["Mflops-add"] + avg["Mflops-mult"] + avg["Mflops-fma"]
        == avg["Mflops-All"]
        or abs(avg["Mflops-add"] + avg["Mflops-mult"] + avg["Mflops-fma"] - avg["Mflops-All"]) < 1e-6
    )
    # Magnitudes within a factor of ~3 of the paper.
    for name, paper in PAPER_AVG.items():
        if paper == 0.0:
            continue
        assert paper / 3.5 <= avg[name] <= paper * 3.5, (name, avg[name])

    with capsys.disabled():
        print()
        print(table.render())
        print("\n  paper vs measured (filtered-day averages):")
        for name, paper in PAPER_AVG.items():
            print(f"    {name:<38s} paper {paper:>7.3g}   measured {avg[name]:>7.3g}")
