"""Experiment: query-service capacity — latency under concurrent load.

Drives the ``repro.ops`` TCP service with many simultaneous clients (the
default is 1000, the ISSUE floor) hammering the mixed query surface —
``ping``, ``query``, ``jobs``, ``alerts`` — against a completed campaign,
and reports request latency percentiles measured through the same P²
sketches the telemetry layer uses (``repro.telemetry.sketch``), so the
benchmark exercises the estimator it reports with.

Entry points, mirroring ``bench_fleet``:

* ``pytest benchmarks/ --benchmark-only`` runs a short capacity check;
* ``python benchmarks/bench_ops_service.py --out benchmarks/BENCH_ops.json``
  records the reference numbers with per-repeat p99 samples; ``--check``
  is the statistical gate (docs/STATS.md): the load run repeats
  ``--repeats`` times and fails only when the measured p99 sample's
  confidence interval sits entirely above the tolerance-scaled baseline
  CI.  Latency is machine-dependent, so the default tolerance is loose —
  the gate exists to catch order-of-magnitude regressions (an accidental
  O(n) scan per request, a lost writer task), not scheduler jitter.
  Old baselines without ``samples`` fall back to the one-ratio check.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import sys
import time
from dataclasses import dataclass

from repro.core.study import StudyConfig, WorkloadStudy
from repro.ops import CampaignHub, OpsClient, OpsServer
from repro.ops.ingest import replay_into_hub
from repro.stats.estimators import mean_ci
from repro.stats.gate import ci_overlap_gate, render_gate
from repro.telemetry.sketch import QuantileSet

#: The mixed request diet each client cycles through.
REQUEST_MIX = (
    ("ping", {}),
    ("query", {"campaign": "bench", "metric": "gflops.system"}),
    ("jobs", {"campaign": "bench", "limit": 5}),
    ("alerts", {"campaign": "bench", "since": 0}),
)


@dataclass(frozen=True)
class LoadResult:
    """One load run: how many clients, how fast, how slow at the tail."""

    clients: int
    requests: int
    errors: int
    seconds: float
    p50_ms: float
    p95_ms: float
    p99_ms: float

    @property
    def rps(self) -> float:
        return self.requests / self.seconds if self.seconds > 0 else 0.0


def _raise_fd_limit(needed: int) -> None:
    """Each client costs a socket pair; lift the soft RLIMIT_NOFILE."""
    try:
        import resource
    except ImportError:  # non-POSIX: hope the default is enough
        return
    soft, hard = resource.getrlimit(resource.RLIMIT_NOFILE)
    want = min(hard, max(soft, needed))
    if want > soft:
        resource.setrlimit(resource.RLIMIT_NOFILE, (want, hard))


def build_hub(*, seed: int = 5, n_days: int = 2, n_nodes: int = 32) -> CampaignHub:
    """A completed campaign for the service to answer questions about."""
    config = StudyConfig(seed=seed, n_days=n_days, n_nodes=n_nodes, n_users=8)
    dataset = WorkloadStudy(config).run()
    hub = CampaignHub()
    hub.register("bench", kind="single", meta={"seed": seed})
    replay_into_hub(hub, "bench", dataset)
    hub.complete("bench", {"jobs": len(dataset.accounting)})
    return hub


async def _run_load(
    hub: CampaignHub, *, clients: int, requests_per_client: int
) -> LoadResult:
    server = await OpsServer.start(hub)
    sketch = QuantileSet((0.5, 0.95, 0.99))
    errors = 0
    connected = 0
    gate = asyncio.Event()  # hold everyone until all clients connected
    ready = asyncio.Event()
    connect_gate = asyncio.Semaphore(128)  # smooth the connect burst

    async def one_client(i: int) -> int:
        nonlocal errors, connected
        async with connect_gate:
            client = await OpsClient.connect("127.0.0.1", server.port)
        async with client:
            connected += 1
            if connected == clients:
                ready.set()
            await gate.wait()
            done = 0
            for r in range(requests_per_client):
                op, operands = REQUEST_MIX[(i + r) % len(REQUEST_MIX)]
                t0 = time.perf_counter()
                try:
                    await client.request(op, **operands)
                except Exception:
                    errors += 1
                else:
                    done += 1
                sketch.add((time.perf_counter() - t0) * 1e3)
            return done

    try:
        tasks = [asyncio.ensure_future(one_client(i)) for i in range(clients)]
        await ready.wait()  # every client is connected and holding
        t0 = time.perf_counter()
        gate.set()
        done = await asyncio.gather(*tasks)
        seconds = time.perf_counter() - t0
    finally:
        await server.close()

    values = sketch.values()
    return LoadResult(
        clients=clients,
        requests=sum(done),
        errors=errors,
        seconds=seconds,
        p50_ms=values[0.5],
        p95_ms=values[0.95],
        p99_ms=values[0.99],
    )


def measure_service_load(
    *, clients: int = 1000, requests_per_client: int = 4, hub: CampaignHub | None = None
) -> LoadResult:
    _raise_fd_limit(2 * clients + 256)
    return asyncio.run(
        _run_load(
            hub or build_hub(), clients=clients, requests_per_client=requests_per_client
        )
    )


def render_result(result: LoadResult) -> str:
    return "\n".join(
        [
            "# sp2-ops service load — mixed ping/query/jobs/alerts diet",
            f"{'clients':>8s} {'reqs':>7s} {'errors':>7s} {'seconds':>8s} "
            f"{'req/s':>9s} {'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s}",
            f"{result.clients:>8d} {result.requests:>7d} {result.errors:>7d} "
            f"{result.seconds:>8.2f} {result.rps:>9.0f} {result.p50_ms:>8.2f} "
            f"{result.p95_ms:>8.2f} {result.p99_ms:>8.2f}",
        ]
    )


def test_service_load(benchmark, capsys):
    """The service must survive 1000 concurrent clients without dropping
    a single request.

    The hard latency gate lives in the script's ``--check`` mode against
    recorded numbers; here the assertions are structural — every request
    answered, no errors, sane percentile ordering — so the test passes
    on any CI machine while still catching a broken writer path."""
    result = benchmark.pedantic(
        lambda: measure_service_load(clients=1000, requests_per_client=2),
        rounds=1,
        iterations=1,
    )
    assert result.errors == 0
    assert result.requests == 1000 * 2
    assert 0 < result.p50_ms <= result.p99_ms

    with capsys.disabled():
        print()
        print(render_result(result))


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description="sp2-ops query service load test")
    p.add_argument("--clients", type=int, default=1000)
    p.add_argument("--requests", type=int, default=4, help="requests per client")
    p.add_argument("--seed", type=int, default=5)
    p.add_argument("--days", type=int, default=2)
    p.add_argument("--nodes", type=int, default=32)
    p.add_argument("--out", type=str, default=None, help="write results JSON here")
    p.add_argument(
        "--repeats",
        type=int,
        default=3,
        help="load-run repeats: each contributes one p99 sample (default 3)",
    )
    p.add_argument(
        "--check",
        type=str,
        default=None,
        help="recorded BENCH_ops.json to compare the p99 latency "
        "distribution against (CI overlap)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=10.0,
        help="scale the baseline CI ceiling: fail only when the measured "
        "p99 CI sits entirely above tolerance × the baseline CI upper bound",
    )
    args = p.parse_args(argv)
    if args.repeats < 1:
        print("error: --repeats must be positive", file=sys.stderr)
        return 2

    hub = build_hub(seed=args.seed, n_days=args.days, n_nodes=args.nodes)
    results = [
        measure_service_load(
            clients=args.clients, requests_per_client=args.requests, hub=hub
        )
        for _ in range(args.repeats)
    ]
    result = min(results, key=lambda r: r.p99_ms)  # the headline row
    samples = [r.p99_ms for r in results]
    est = mean_ci(samples)
    print(render_result(result))
    print(
        f"# p99 distribution: {est.mean:.2f} ms "
        f"[{est.ci_low:.2f}, {est.ci_high:.2f}] over n={est.n} repeats"
    )
    errors = sum(r.errors for r in results)
    if errors:
        print(f"FAIL: {errors} requests errored under load", file=sys.stderr)
        return 1

    record = {
        "config": {
            "clients": args.clients,
            "requests_per_client": args.requests,
            "seed": args.seed,
            "n_days": args.days,
            "n_nodes": args.nodes,
            "repeats": args.repeats,
        },
        "results": {
            "requests": result.requests,
            "errors": errors,
            "seconds": round(result.seconds, 4),
            "rps": round(result.rps, 1),
            "p50_ms": round(result.p50_ms, 3),
            "p95_ms": round(result.p95_ms, 3),
            "p99_ms": round(result.p99_ms, 3),
        },
        "samples": [round(s, 3) for s in samples],
        "ci": {"low": round(est.ci_low, 3), "high": round(est.ci_high, 3), "n": est.n},
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.check:
        with open(args.check) as fh:
            recorded = json.load(fh)
        if "samples" in recorded:
            gate = ci_overlap_gate(
                samples,
                recorded["samples"],
                higher_is_better=False,
                tolerance=args.tolerance,
            )
            print(render_gate(gate, "service p99 latency"))
            if not gate.passed:
                print(
                    "FAIL: service p99 latency regressed past the recorded "
                    "latency distribution",
                    file=sys.stderr,
                )
                return 1
        else:
            # Pre-statistical baseline: single-ratio fallback.
            ceiling = args.tolerance * recorded["results"]["p99_ms"]
            measured = result.p99_ms
            print(
                f"perf gate (legacy ratio): measured p99 {measured:.2f} ms vs "
                f"recorded {recorded['results']['p99_ms']:.2f} ms "
                f"(ceiling {ceiling:.2f} ms)"
            )
            if measured > ceiling:
                print(
                    f"FAIL: service p99 latency regressed past "
                    f"{args.tolerance:.0f}x the recorded value",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
