"""Experiment: §5's trend search — "no obvious trends in the RS2HPM
workload data".

The paper expected fma-heavy days to run faster and missy days slower,
and found neither; the only strong signal in the counter data turned out
to be the §6 system-intervention ratio.  This experiment repeats the
search on the simulated campaign and asserts the same outcome.
"""

from repro.analysis.trends import render_trend_report, trend_report


def test_no_obvious_cpu_side_trends(campaign, benchmark, capsys):
    trends = benchmark(trend_report, campaign)
    by_name = {t.predictor: t for t in trends}

    # §5's candidates come up weak...
    assert not by_name["fma flop fraction"].is_obvious_trend
    assert not by_name["cache miss ratio"].is_obvious_trend
    assert not by_name["TLB miss ratio"].is_obvious_trend

    # ...while the §6 signal is the strong one (user cycle fraction and
    # the system/user ratio are the wall-time-aware measures).
    assert abs(by_name["user cycle fraction"].correlation) >= 0.3
    assert by_name["system/user FXU ratio"].correlation < 0.0

    with capsys.disabled():
        print()
        print(render_trend_report(trends))
