"""Ablations: remove one modelled mechanism at a time and show the
paper's signature disappear.

Four mechanisms carry the paper's findings (DESIGN.md §5):

1. **Asynchronous messaging** explains the 28-node champion (§6) —
   forcing it synchronous erases the ≈40 Mflops/node peak.
2. **Paging physics** explains the >64-node cliff (§6) — with enough
   node memory the wide jobs run at normal per-node rates and the
   system/user FXU signature vanishes.
3. **Dependency stalls** explain the 3%-of-peak CPU efficiency (§5) —
   with perfect ILP the CFD kernel more than doubles its rate, far above
   anything the paper measured.
4. **Queue draining** explains why wide jobs ran at all — with strict
   backfill and no drain they starve behind a stream of narrow jobs.
"""

import numpy as np

from repro.cluster.machine import SP2Machine
from repro.pbs.queue import JobQueue
from repro.pbs.scheduler import PBSServer
from repro.power2.config import MachineConfig
from repro.power2.pipeline import CycleModel, DependencyProfile
from repro.sim.engine import Simulator
from repro.util.rng import RngStreams
from repro.workload.apps import application
from repro.workload.kernels import kernel
from repro.workload.profile import CommPattern, build_job_profile

MB = 1024 * 1024


def test_async_messaging_ablation(benchmark, capsys):
    """Champion app, async vs forced-sync communication."""

    def run() -> tuple[float, float]:
        k = kernel("cfd_tuned")
        # One iteration over a 96x96x32 block (§6's champion geometry)
        # is ~5e7 flops, so the halo exchange is a real fraction of the
        # iteration — which is exactly why asynchrony mattered.
        common = dict(
            app_name="ns",
            kernel=k,
            nodes=28,
            flops_per_node_per_iteration=5e7,
            walltime_seconds=3600.0,
            memory_bytes_per_node=90 * MB,
            serial_fraction=0.08,
        )
        async_profile = build_job_profile(
            comm=CommPattern(neighbors=6, bytes_per_neighbor=1.9e6, asynchronous=True),
            **common,
        )
        sync_profile = build_job_profile(
            comm=CommPattern(neighbors=6, bytes_per_neighbor=1.9e6, asynchronous=False),
            **common,
        )
        return async_profile.mflops_per_node, sync_profile.mflops_per_node

    async_rate, sync_rate = benchmark(run)
    assert async_rate > 1.15 * sync_rate
    assert async_rate >= 35.0  # the §6 champion's ≈40
    with capsys.disabled():
        print(
            f"\n  28-node Navier-Stokes: async {async_rate:.1f} Mflops/node "
            f"vs forced-sync {sync_rate:.1f} — asynchronous messaging is the "
            "champion's edge (§6)"
        )


def test_paging_ablation(benchmark, capsys):
    """The >64-node cliff disappears with 4x node memory."""

    def run() -> tuple[float, float, float, float]:
        rng = RngStreams(77)
        results = []
        for label, memory_bytes in (("128 MB", None), ("512 MB", 512 * MB)):
            sim = Simulator()
            config = (
                MachineConfig()
                if memory_bytes is None
                else MachineConfig(memory_bytes=memory_bytes)
            )
            machine = SP2Machine(144, config)
            server = PBSServer(sim, machine)
            profile = application("wide_paging").instantiate(
                rng.get(f"paging-{label}"), nodes=96
            )
            server.submit(0, "wide", 96, profile)
            sim.run()
            rec = server.accounting.records[0]
            results.append((rec.mflops_per_node, rec.system_user_fxu_ratio))
        (rate_128, ratio_128), (rate_512, ratio_512) = results
        return rate_128, ratio_128, rate_512, ratio_512

    rate_128, ratio_128, rate_512, ratio_512 = benchmark(run)
    assert rate_512 > 2.0 * rate_128  # cliff gone with memory
    assert ratio_128 > 5.0 * ratio_512  # signature gone too
    with capsys.disabled():
        print(
            f"\n  96-node oversubscribed job: {rate_128:.1f} Mflops/node, "
            f"sys/user FXU {ratio_128:.2f} on 128 MB nodes; with 512 MB "
            f"nodes {rate_512:.1f} Mflops/node, ratio {ratio_512:.2f} — "
            "memory oversubscription is the §6 cliff"
        )


def test_dependency_stall_ablation(benchmark, capsys):
    """Perfect ILP inflates the CFD kernel far beyond anything measured."""

    def run() -> tuple[float, float]:
        k = kernel("cfd_multiblock")
        model = CycleModel()
        mix = k.mix_for_flops(1e7)
        measured = model.execute(mix, k.memory_behaviour(), k.deps).mflops
        perfect = model.execute(
            mix, k.memory_behaviour(), DependencyProfile(ilp=1.0, load_use_fraction=0.0)
        ).mflops
        return measured, perfect

    measured, perfect = benchmark(run)
    assert perfect > 1.8 * measured
    with capsys.disabled():
        print(
            f"\n  CFD kernel: {measured:.1f} Mflops with the measured "
            f"dependency profile vs {perfect:.1f} with perfect ILP — "
            "\"dependencies among the various instructions limit the "
            "amount of instruction-level parallelism\" (§5)"
        )


def test_drain_policy_ablation(benchmark, capsys):
    """Without draining, a wide job starves behind steady narrow traffic."""

    def run() -> tuple[float, float]:
        waits = []
        for drain in (True, False):
            sim = Simulator()
            machine = SP2Machine(144)
            # drain=True is the NAS policy; drain=False treats wide jobs
            # like any backfillable job (threshold above machine size).
            queue = JobQueue(wide_threshold=64 if drain else 1000)
            server = PBSServer(sim, machine, queue=queue)
            rng = RngStreams(11)
            narrow_app = application("multiblock_cfd")

            # Steady narrow traffic: a 16-node job every 10 minutes.
            def submit_narrow(s, i=[0]):
                profile = narrow_app.instantiate(rng.get(f"n{i[0]}"), nodes=16)
                server.submit(0, "narrow", 16, profile)
                i[0] += 1

            for k in range(200):
                sim.schedule_at(k * 600.0, submit_narrow)
            # The wide job arrives at t=1h.
            wide_profile = application("wide_sync").instantiate(rng.get("wide"), nodes=128)
            wide_box = {}

            def submit_wide(s):
                wide_box["job"] = server.submit(1, "wide", 128, wide_profile)

            sim.schedule_at(3600.0, submit_wide)
            sim.run(until=200 * 600.0)
            wide_job = wide_box["job"]
            started = [
                r for r in server.accounting.records if r.job_id == wide_job.job_id
            ]
            if started:
                waits.append(started[0].queue_wait_seconds)
            elif wide_job.job_id in server.running:
                waits.append(
                    server.running[wide_job.job_id].start_time - wide_job.submit_time
                )
            else:
                waits.append(float("inf"))  # never started: starved
        return waits[0], waits[1]

    wait_drain, wait_nodrain = benchmark.pedantic(run, rounds=1, iterations=1)
    assert wait_drain < wait_nodrain
    with capsys.disabled():
        nodrain = "starved (never started)" if np.isinf(wait_nodrain) else f"{wait_nodrain/3600:.1f} h"
        print(
            f"\n  128-node job queue wait: {wait_drain/3600:.1f} h with NAS's "
            f"drain policy vs {nodrain} with plain backfill — draining is "
            "why wide jobs ran at all (§6)"
        )
