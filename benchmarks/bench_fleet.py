"""Experiment: federation cost — fleet wall time vs member count.

Times ``run_fleet`` on fleets of 1..N identical 32-node members at a
fixed per-fleet demand model, and reports how wall time grows with the
member count.  The interesting number is the *overhead factor*: measured
time ratio over the capacity ratio.  Routing and per-member campaign
setup are the only federation costs, so the factor should stay near 1 —
a fleet of three machines should cost about three machines, not more.

Entry points, mirroring ``bench_hotpath``:

* ``pytest benchmarks/ --benchmark-only`` runs a short scaling check;
* ``python benchmarks/bench_fleet.py --out benchmarks/BENCH_fleet.json``
  records the reference numbers with per-repeat overhead-factor samples;
  ``--check`` is the statistical gate (docs/STATS.md): it fails only
  when the measured factor's confidence interval sits entirely above
  the tolerance-scaled baseline CI.  Old baselines without ``samples``
  fall back to the single-ratio comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass

from repro.fleet.runner import run_fleet
from repro.fleet.spec import FleetSpec, MemberSpec
from repro.stats.estimators import mean_ci
from repro.stats.gate import ci_overlap_gate, render_gate


@dataclass(frozen=True)
class FleetPoint:
    """One row of the member-count scaling table."""

    n_members: int
    total_nodes: int
    submissions: int
    jobs: int
    seconds: float


def _spec(n_members: int, *, seed: int, n_days: int, n_users: int) -> FleetSpec:
    return FleetSpec(
        name=f"bench{n_members}",
        members=tuple(
            MemberSpec(name=f"c{i}", n_nodes=32) for i in range(n_members)
        ),
        seed=seed,
        n_days=n_days,
        n_users=n_users,
    )


def measure_fleet_scaling(
    member_counts: list[int],
    *,
    seed: int = 0,
    n_days: int = 4,
    n_users: int = 16,
    repeats: int = 1,
) -> tuple[list[FleetPoint], list[float]]:
    """(best-of-``repeats`` points, per-repeat overhead-factor samples).

    Every repeat sweeps the whole member-count ladder once, so each
    contributes one end-to-end overhead-factor observation — the sample
    the statistical gate consumes.
    """
    seconds = {n: [] for n in member_counts}
    meta: dict[int, FleetPoint] = {}
    for _ in range(repeats):
        for n in member_counts:
            spec = _spec(n, seed=seed, n_days=n_days, n_users=n_users)
            t0 = time.perf_counter()
            fleet = run_fleet(spec)
            seconds[n].append(time.perf_counter() - t0)
            meta[n] = FleetPoint(
                n_members=n,
                total_nodes=spec.total_nodes,
                submissions=fleet.trace.total_submissions,
                jobs=sum(len(m.dataset.accounting) for m in fleet.members),
                seconds=0.0,
            )
    points = [
        FleetPoint(
            n_members=n,
            total_nodes=meta[n].total_nodes,
            submissions=meta[n].submissions,
            jobs=meta[n].jobs,
            seconds=min(seconds[n]),
        )
        for n in member_counts
    ]
    base_n, top_n = member_counts[0], member_counts[-1]
    capacity_ratio = meta[top_n].total_nodes / meta[base_n].total_nodes
    samples = [
        (seconds[top_n][r] / seconds[base_n][r]) / capacity_ratio
        for r in range(repeats)
    ]
    return points, samples


def overhead_factor(points: list[FleetPoint]) -> float:
    """Largest fleet's time ratio over its capacity ratio (1.0 = a
    fleet costs exactly its aggregate capacity)."""
    base, top = points[0], points[-1]
    capacity_ratio = top.total_nodes / base.total_nodes
    return (top.seconds / base.seconds) / capacity_ratio


def render_table(points: list[FleetPoint], *, n_days: int, seed: int) -> str:
    lines = [
        f"# sp2 fleet federation — {n_days}-day campaigns, 32-node members, "
        f"seed {seed}",
        f"{'members':>8s} {'nodes':>6s} {'subs':>6s} {'jobs':>6s} "
        f"{'seconds':>9s} {'s/member':>9s}",
    ]
    for p in points:
        lines.append(
            f"{p.n_members:>8d} {p.total_nodes:>6d} {p.submissions:>6d} "
            f"{p.jobs:>6d} {p.seconds:>9.2f} {p.seconds / p.n_members:>9.2f}"
        )
    lines.append(f"# overhead factor (largest vs single): {overhead_factor(points):.2f}")
    return "\n".join(lines)


def test_fleet_scaling(benchmark, capsys):
    """Fleet cost grows with capacity, not combinatorially.

    The hard gate lives in the script's ``--check`` mode; here a
    3-member fleet only has to stay under 3x the *ideal* capacity
    scaling — generous enough for any CI machine, tight enough to catch
    a quadratic routing or merge path."""
    days = min(int(os.environ.get("REPRO_BENCH_DAYS", "60")), 3)
    points, _ = benchmark.pedantic(
        lambda: measure_fleet_scaling([1, 2, 3], n_days=days, n_users=12),
        rounds=1,
        iterations=1,
    )
    assert [p.n_members for p in points] == [1, 2, 3]
    assert all(p.seconds > 0 and p.jobs > 0 for p in points)
    assert overhead_factor(points) < 3.0

    with capsys.disabled():
        print()
        print(render_table(points, n_days=days, seed=0))


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description="sp2 fleet federation scaling")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--days", type=int, default=4)
    p.add_argument("--users", type=int, default=16)
    p.add_argument(
        "--members",
        type=int,
        nargs="+",
        default=[1, 2, 3, 4],
        help="member counts to time",
    )
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--out", type=str, default=None, help="write results JSON here")
    p.add_argument(
        "--check",
        type=str,
        default=None,
        help="recorded BENCH_fleet.json to compare the overhead factor against",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=1.5,
        help="scale the baseline CI ceiling: fail only when the measured "
        "factor's CI sits entirely above tolerance × the baseline CI "
        "upper bound",
    )
    args = p.parse_args(argv)

    points, samples = measure_fleet_scaling(
        args.members,
        seed=args.seed,
        n_days=args.days,
        n_users=args.users,
        repeats=args.repeats,
    )
    est = mean_ci(samples)
    print(render_table(points, n_days=args.days, seed=args.seed))
    print(
        f"# factor distribution: {est.mean:.3f} "
        f"[{est.ci_low:.3f}, {est.ci_high:.3f}] over n={est.n} repeats"
    )
    record = {
        "config": {
            "seed": args.seed,
            "n_days": args.days,
            "n_users": args.users,
            "members": args.members,
            "repeats": args.repeats,
        },
        "points": [
            {
                "n_members": p.n_members,
                "total_nodes": p.total_nodes,
                "submissions": p.submissions,
                "jobs": p.jobs,
                "seconds": round(p.seconds, 4),
            }
            for p in points
        ],
        "overhead_factor": round(est.mean, 3),
        "samples": [round(s, 4) for s in samples],
        "ci": {"low": round(est.ci_low, 3), "high": round(est.ci_high, 3), "n": est.n},
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.check:
        with open(args.check) as fh:
            recorded = json.load(fh)
        if "samples" in recorded:
            gate = ci_overlap_gate(
                samples,
                recorded["samples"],
                higher_is_better=False,
                tolerance=args.tolerance,
            )
            print(render_gate(gate, "fleet overhead factor"))
            if not gate.passed:
                print(
                    "FAIL: fleet federation overhead regressed past the "
                    "recorded factor distribution",
                    file=sys.stderr,
                )
                return 1
        else:
            # Pre-statistical baseline: single-ratio fallback.
            ceiling = args.tolerance * recorded["overhead_factor"]
            measured = record["overhead_factor"]
            print(
                f"perf gate (legacy ratio): measured factor {measured:.2f} vs "
                f"recorded {recorded['overhead_factor']:.2f} (ceiling {ceiling:.2f})"
            )
            if measured > ceiling:
                print(
                    f"FAIL: fleet federation overhead regressed past "
                    f"{args.tolerance:.0%} of the recorded factor",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
