"""Extension experiment: sensitivity of the headlines to the free knobs.

Three sweeps, each a robustness claim:

* **demand_mean** — performance scales with offered load (Figure 1's
  fluctuations are demand, §5), roughly linearly below saturation;
* **memory_bytes** — §7's counterfactual: with bigger node memories the
  wide jobs recover (it was oversubscription, not width);
* **paging_fault_limit** — the fault-service ceiling sets how much time
  thrashing steals from a wide job, yet the whole-campaign averages
  barely move either way: the pathology hides inside the averages,
  which is exactly why the paper needed the per-job system/user FXU
  split to find it (§5/§6).
"""

import numpy as np

from repro.analysis.sensitivity import render_sweep, sweep

MB = 1024 * 1024


def test_demand_sweep(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: sweep("demand_mean", [0.2, 0.45, 0.8], n_days=8, seed=3),
        rounds=1,
        iterations=1,
    )
    g = [p.daily_gflops_mean for p in points]
    u = [p.utilization_mean for p in points]
    assert g[0] < g[1] < g[2]  # more demand, more Gflops
    assert u[0] < u[1] < u[2]
    # Per-job rates stay put: demand moves load, not code quality.
    tw = [p.tw_job_mflops for p in points]
    assert max(tw) < 1.5 * min(tw)
    with capsys.disabled():
        print()
        print(render_sweep("demand_mean", points))


def test_memory_sweep(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: sweep(
            "memory_bytes", [128 * MB, 256 * MB, 512 * MB], n_days=8, seed=5
        ),
        rounds=1,
        iterations=1,
    )
    wide = [p.wide_job_mflops for p in points]
    finite = [w for w in wide if np.isfinite(w)]
    if len(finite) >= 2:
        # §7 counterfactual: more memory, faster wide jobs.
        assert finite[-1] > 1.5 * finite[0]
    with capsys.disabled():
        print()
        print(render_sweep("memory_bytes", points))


def test_paging_disk_sweep(benchmark, capsys):
    points = benchmark.pedantic(
        lambda: sweep("paging_fault_limit", [40.0, 110.0, 300.0], n_days=8, seed=5),
        rounds=1,
        iterations=1,
    )
    # Whole-campaign averages barely move (paging jobs are a small
    # share), which is itself the §5 point: the counters' averages hid
    # the pathology.
    g = [p.daily_gflops_mean for p in points]
    assert max(g) < 1.4 * min(g)
    with capsys.disabled():
        print()
        print(render_sweep("paging_fault_limit", points))
