"""Experiment: Figure 2 — batch-job walltime vs nodes requested.

Paper: 16, 32 and 8-node jobs consume most of the wall clock time;
essentially none is consumed by jobs requesting more than 64 nodes
(the queues had to be drained for them, §6).
"""

import numpy as np

from repro.analysis.figures import figure2


def test_figure2(campaign, benchmark, capsys):
    fig = benchmark(figure2, campaign)
    x, y = fig.series["x"], fig.series["y"]
    total = y.sum()

    assert x[int(np.argmax(y))] == 16  # the paper's most popular choice
    moderate = y[(x == 8) | (x == 16) | (x == 32)].sum()
    assert moderate > 0.5 * total
    assert y[x > 64].sum() < 0.1 * total

    with capsys.disabled():
        print()
        print(fig.render())
        print(
            f"\n  16/32/8-node walltime share: {moderate / total:.0%} "
            f"(paper: dominant); >64-node share: {y[x > 64].sum() / total:.1%} "
            "(paper: essentially none)"
        )
