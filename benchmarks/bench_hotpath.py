"""Experiment: the vectorized counter-accrual hot path.

Times the same serial campaign under the legacy per-node scalar path and
the batched store (:mod:`repro.power2.batch`), asserts the two datasets
are the *same experiment* (fingerprint match — the backends are bitwise
equivalent), and reports the speedup.

Two entry points, mirroring ``bench_parallel_scaling``:

* ``pytest benchmarks/ --benchmark-only`` runs a short differential
  timing as part of the experiment harness;
* ``python benchmarks/bench_hotpath.py --out benchmarks/BENCH_hotpath.json``
  records the reference numbers *with their per-repeat sample set*.

The ``--check`` gate is statistical (docs/STATS.md): repeats accumulate
adaptively until the speedup's relative standard error converges (or
``--max-repeats`` hits), then the measured sample's confidence interval
is compared against the recorded baseline distribution.  The gate fails
only when the measured CI falls entirely below the tolerance-scaled
baseline CI — noise overlap passes, and converged runs stop early
instead of burning fixed CI minutes.  Baselines recorded before the
statistical gate (no ``samples`` key) fall back to the one-ratio check.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass

from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy
from repro.power2.batch import resolve_backend
from repro.stats.estimators import mean_ci, relative_standard_error
from repro.stats.gate import ci_overlap_gate, render_gate

BACKENDS = ("scalar", "vectorized")


@dataclass(frozen=True)
class HotpathPoint:
    """One row of the backend-timing table."""

    backend: str
    seconds: float
    speedup: float  # vs the scalar row


def _fingerprint(dataset: StudyDataset) -> tuple:
    """A cheap identity for "same campaign" assertions."""
    daily = dataset.daily_gflops()
    return (
        len(dataset.accounting),
        dataset.events_processed,
        len(dataset.collector.samples),
        round(float(daily.sum()), 9) if daily.size else 0.0,
    )


def _paired_run(config: StudyConfig) -> dict[str, float]:
    """One timing of each backend on the same campaign, identity-checked."""
    seconds: dict[str, float] = {}
    reference: tuple | None = None
    for backend in BACKENDS:
        cfg = StudyConfig(
            seed=config.seed,
            n_days=config.n_days,
            n_nodes=config.n_nodes,
            n_users=config.n_users,
            accrual_backend=backend,
        )
        t0 = time.perf_counter()
        dataset = WorkloadStudy(cfg).run()
        seconds[backend] = time.perf_counter() - t0
        fp = _fingerprint(dataset)
        if reference is None:
            reference = fp
        elif fp != reference:
            raise AssertionError(
                f"backend={backend} changed the campaign: {fp} != {reference}"
            )
    return seconds


def measure_hotpath_samples(
    config: StudyConfig,
    *,
    min_repeats: int = 3,
    max_repeats: int = 8,
    target_rse: float = 0.05,
) -> tuple[list[HotpathPoint], list[float], dict[str, float]]:
    """Adaptive paired timings: (best-of table, speedup samples, best s).

    Each repeat times both backends back to back and contributes one
    speedup sample; repeats stop as soon as the sample's RSE reaches
    ``target_rse`` (with at least ``min_repeats``), or at ``max_repeats``.
    """
    if min_repeats < 1:
        raise ValueError(f"min_repeats must be positive, got {min_repeats}")
    max_repeats = max(max_repeats, min_repeats)
    best = {b: float("inf") for b in BACKENDS}
    samples: list[float] = []
    while len(samples) < max_repeats:
        seconds = _paired_run(config)
        for b in BACKENDS:
            best[b] = min(best[b], seconds[b])
        samples.append(seconds["scalar"] / seconds["vectorized"])
        if (
            len(samples) >= min_repeats
            and relative_standard_error(samples) <= target_rse
        ):
            break
    base = best["scalar"]
    points = [
        HotpathPoint(backend=b, seconds=best[b], speedup=base / best[b])
        for b in BACKENDS
    ]
    return points, samples, best


def measure_hotpath(config: StudyConfig, *, repeats: int = 1) -> list[HotpathPoint]:
    """Best-of-``repeats`` serial campaign time per accrual backend."""
    points, _, _ = measure_hotpath_samples(
        config, min_repeats=repeats, max_repeats=repeats
    )
    return points


def render_table(points: list[HotpathPoint], config: StudyConfig) -> str:
    lines = [
        f"# sp2 counter hot path — {config.n_days}-day campaign, "
        f"{config.n_nodes} nodes, seed {config.seed}",
        f"# vectorized resolves to {resolve_backend('vectorized')!r}, "
        f"{os.cpu_count()} cpu cores visible",
        f"{'backend':>12s} {'seconds':>10s} {'speedup':>8s}",
    ]
    for p in points:
        lines.append(f"{p.backend:>12s} {p.seconds:>10.2f} {p.speedup:>7.2f}x")
    return "\n".join(lines)


def test_hotpath_speedup(benchmark, capsys):
    """Scalar vs vectorized serial campaign (identity asserted).

    The hard regression gate lives in the script's ``--check`` mode
    against the recorded BENCH_hotpath.json distribution; here the
    vectorized path only has to not *lose* to scalar, which holds with
    wide margin on any machine."""
    days = min(int(os.environ.get("REPRO_BENCH_DAYS", "60")), 8)
    config = StudyConfig(seed=0, n_days=days, n_nodes=144, n_users=60)

    points = benchmark.pedantic(
        lambda: measure_hotpath(config, repeats=1), rounds=1, iterations=1
    )
    assert [p.backend for p in points] == list(BACKENDS)
    assert all(p.seconds > 0 for p in points)
    assert points[1].speedup > 1.0

    with capsys.disabled():
        print()
        print(render_table(points, config))


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description="sp2 counter hot-path timing")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--days", type=int, default=12)
    p.add_argument("--nodes", type=int, default=144)
    p.add_argument("--users", type=int, default=60)
    p.add_argument(
        "--repeats", type=int, default=3, help="minimum paired repeats (default 3)"
    )
    p.add_argument(
        "--max-repeats",
        type=int,
        default=8,
        help="repeat cutoff when the speedup sample has not converged",
    )
    p.add_argument(
        "--target-rse",
        type=float,
        default=0.05,
        help="stop repeating once the speedup sample's relative standard "
        "error reaches this (default 0.05)",
    )
    p.add_argument("--out", type=str, default=None, help="write results JSON here")
    p.add_argument(
        "--check",
        type=str,
        default=None,
        help="recorded BENCH_hotpath.json to compare the measured speedup "
        "distribution against (CI overlap)",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.8,
        help="scale the baseline CI floor: fail only when the measured CI "
        "sits entirely below tolerance × the baseline CI lower bound",
    )
    args = p.parse_args(argv)

    config = StudyConfig(
        seed=args.seed, n_days=args.days, n_nodes=args.nodes, n_users=args.users
    )
    points, samples, _ = measure_hotpath_samples(
        config,
        min_repeats=args.repeats,
        max_repeats=args.max_repeats,
        target_rse=args.target_rse,
    )
    est = mean_ci(samples)
    print(render_table(points, config))
    print(
        f"# speedup distribution: {est.mean:.3f} "
        f"[{est.ci_low:.3f}, {est.ci_high:.3f}] over n={est.n} repeats"
    )
    record = {
        "config": {
            "seed": args.seed,
            "n_days": args.days,
            "n_nodes": args.nodes,
            "n_users": args.users,
            "repeats": args.repeats,
            "max_repeats": args.max_repeats,
            "target_rse": args.target_rse,
        },
        "backend_resolved": resolve_backend("vectorized"),
        "points": [
            {"backend": p.backend, "seconds": round(p.seconds, 4), "speedup": round(p.speedup, 3)}
            for p in points
        ],
        "speedup": round(est.mean, 3),
        "samples": [round(s, 4) for s in samples],
        "ci": {"low": round(est.ci_low, 3), "high": round(est.ci_high, 3), "n": est.n},
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.check:
        with open(args.check) as fh:
            recorded = json.load(fh)
        if "samples" in recorded:
            gate = ci_overlap_gate(
                samples,
                recorded["samples"],
                higher_is_better=True,
                tolerance=args.tolerance,
            )
            print(render_gate(gate, "vectorized speedup"))
            if not gate.passed:
                print(
                    "FAIL: vectorized hot path regressed below the recorded "
                    "speedup distribution",
                    file=sys.stderr,
                )
                return 1
        else:
            # Pre-statistical baseline: single-ratio fallback.
            floor = args.tolerance * recorded["speedup"]
            measured = record["speedup"]
            print(
                f"perf gate (legacy ratio): measured {measured:.2f}x vs recorded "
                f"{recorded['speedup']:.2f}x (floor {floor:.2f}x)"
            )
            if measured < floor:
                print(
                    f"FAIL: vectorized hot path regressed below {args.tolerance:.0%} "
                    "of the recorded speedup",
                    file=sys.stderr,
                )
                return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
