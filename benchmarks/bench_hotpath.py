"""Experiment: the vectorized counter-accrual hot path.

Times the same serial campaign under the legacy per-node scalar path and
the batched store (:mod:`repro.power2.batch`), asserts the two datasets
are the *same experiment* (fingerprint match — the backends are bitwise
equivalent), and reports the speedup.

Two entry points, mirroring ``bench_parallel_scaling``:

* ``pytest benchmarks/ --benchmark-only`` runs a short differential
  timing as part of the experiment harness;
* ``python benchmarks/bench_hotpath.py --out benchmarks/BENCH_hotpath.json``
  records the reference numbers.  With ``--check``, the measured
  speedup is compared against the recorded one and the run fails if it
  regressed by more than ``--tolerance`` (CI's perf-regression gate:
  ratios are machine-portable where absolute seconds are not).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass

from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy
from repro.power2.batch import resolve_backend

BACKENDS = ("scalar", "vectorized")


@dataclass(frozen=True)
class HotpathPoint:
    """One row of the backend-timing table."""

    backend: str
    seconds: float
    speedup: float  # vs the scalar row


def _fingerprint(dataset: StudyDataset) -> tuple:
    """A cheap identity for "same campaign" assertions."""
    daily = dataset.daily_gflops()
    return (
        len(dataset.accounting),
        dataset.events_processed,
        len(dataset.collector.samples),
        round(float(daily.sum()), 9) if daily.size else 0.0,
    )


def measure_hotpath(
    config: StudyConfig, *, repeats: int = 1
) -> list[HotpathPoint]:
    """Best-of-``repeats`` serial campaign time per accrual backend."""
    seconds: dict[str, float] = {}
    reference: tuple | None = None
    for backend in BACKENDS:
        cfg = StudyConfig(
            seed=config.seed,
            n_days=config.n_days,
            n_nodes=config.n_nodes,
            n_users=config.n_users,
            accrual_backend=backend,
        )
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            dataset = WorkloadStudy(cfg).run()
            best = min(best, time.perf_counter() - t0)
        fp = _fingerprint(dataset)
        if reference is None:
            reference = fp
        elif fp != reference:
            raise AssertionError(
                f"backend={backend} changed the campaign: {fp} != {reference}"
            )
        seconds[backend] = best
    base = seconds["scalar"]
    return [
        HotpathPoint(backend=b, seconds=seconds[b], speedup=base / seconds[b])
        for b in BACKENDS
    ]


def render_table(points: list[HotpathPoint], config: StudyConfig) -> str:
    lines = [
        f"# sp2 counter hot path — {config.n_days}-day campaign, "
        f"{config.n_nodes} nodes, seed {config.seed}",
        f"# vectorized resolves to {resolve_backend('vectorized')!r}, "
        f"{os.cpu_count()} cpu cores visible",
        f"{'backend':>12s} {'seconds':>10s} {'speedup':>8s}",
    ]
    for p in points:
        lines.append(f"{p.backend:>12s} {p.seconds:>10.2f} {p.speedup:>7.2f}x")
    return "\n".join(lines)


def test_hotpath_speedup(benchmark, capsys):
    """Scalar vs vectorized serial campaign (identity asserted).

    The hard regression gate lives in the script's ``--check`` mode
    against the recorded BENCH_hotpath.json ratio; here the vectorized
    path only has to not *lose* to scalar, which holds with wide margin
    on any machine."""
    days = min(int(os.environ.get("REPRO_BENCH_DAYS", "60")), 8)
    config = StudyConfig(seed=0, n_days=days, n_nodes=144, n_users=60)

    points = benchmark.pedantic(
        lambda: measure_hotpath(config, repeats=1), rounds=1, iterations=1
    )
    assert [p.backend for p in points] == list(BACKENDS)
    assert all(p.seconds > 0 for p in points)
    assert points[1].speedup > 1.0

    with capsys.disabled():
        print()
        print(render_table(points, config))


def main(argv: list[str] | None = None) -> int:
    p = argparse.ArgumentParser(description="sp2 counter hot-path timing")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--days", type=int, default=12)
    p.add_argument("--nodes", type=int, default=144)
    p.add_argument("--users", type=int, default=60)
    p.add_argument("--repeats", type=int, default=3)
    p.add_argument("--out", type=str, default=None, help="write results JSON here")
    p.add_argument(
        "--check",
        type=str,
        default=None,
        help="recorded BENCH_hotpath.json to compare the measured speedup against",
    )
    p.add_argument(
        "--tolerance",
        type=float,
        default=0.8,
        help="fail --check if measured speedup < tolerance × recorded speedup",
    )
    args = p.parse_args(argv)

    config = StudyConfig(
        seed=args.seed, n_days=args.days, n_nodes=args.nodes, n_users=args.users
    )
    points = measure_hotpath(config, repeats=args.repeats)
    print(render_table(points, config))
    record = {
        "config": {
            "seed": args.seed,
            "n_days": args.days,
            "n_nodes": args.nodes,
            "n_users": args.users,
            "repeats": args.repeats,
        },
        "backend_resolved": resolve_backend("vectorized"),
        "points": [
            {"backend": p.backend, "seconds": round(p.seconds, 4), "speedup": round(p.speedup, 3)}
            for p in points
        ],
        "speedup": round(points[-1].speedup, 3),
    }
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(record, fh, indent=2)
            fh.write("\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.check:
        with open(args.check) as fh:
            recorded = json.load(fh)
        floor = args.tolerance * recorded["speedup"]
        measured = record["speedup"]
        print(
            f"perf gate: measured {measured:.2f}x vs recorded "
            f"{recorded['speedup']:.2f}x (floor {floor:.2f}x)"
        )
        if measured < floor:
            print(
                f"FAIL: vectorized hot path regressed below {args.tolerance:.0%} "
                "of the recorded speedup",
                file=sys.stderr,
            )
            return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
