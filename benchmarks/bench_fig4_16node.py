"""Experiment: Figure 4 — 16-node job performance history.

Paper: whole-job rates averaging ≈320 Mflops with a spread of ≈200, and
a moving average showing *no improvement trend* over the nine months —
users never rewrote their codes (§6/§7).
"""


from repro.analysis.figures import figure4


def test_figure4(campaign, benchmark, capsys):
    fig = benchmark(figure4, campaign)
    rates = fig.series["job_mflops"]
    ma = fig.series["job_mflops_moving_avg"]

    assert rates.size >= 20  # 16-node jobs are the most popular choice
    assert 200.0 <= rates.mean() <= 480.0  # paper: 320
    assert rates.std() >= 60.0  # paper: spread 200

    # No improvement trend: late moving average within 35% of early.
    if rates.size >= 40:
        early = ma[: rates.size // 4].mean()
        late = ma[-rates.size // 4 :].mean()
        assert late <= 1.35 * early + 30.0

    with capsys.disabled():
        print()
        print(fig.render())
        print(
            f"\n  {rates.size} sixteen-node jobs: mean {rates.mean():.0f} Mflops "
            f"(paper 320), std {rates.std():.0f} (paper ≈200), "
            "flat moving average (paper: no trend)"
        )
