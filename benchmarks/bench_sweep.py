"""Extension experiment: the sweep orchestrator as a what-if instrument.

Two claims, each a measurement:

* **Planning is free, execution is the cost.** Expanding and
  fingerprinting a 12-cell cross-product is milliseconds; the cells
  themselves are campaigns.  The planner can therefore always show the
  full bill (`sp2-sweep plan`) before a single campaign runs.
* **The cache turns re-runs into reads.** A second `run_sweep` over an
  unchanged spec executes zero campaigns — the speedup *is* the
  campaign cost, which is what makes iterating on one axis of a large
  sweep affordable.
"""

from __future__ import annotations

import os
import time

from repro.sweep import SweepSpec, plan_sweep, run_sweep

DAYS = min(int(os.environ.get("REPRO_BENCH_DAYS", "60")), 4)


def make_spec():
    return SweepSpec.from_dict(
        {
            "name": "bench",
            "base": {"n_days": DAYS, "n_nodes": 32, "n_users": 12, "seed": 3},
            "axes": {
                "page_kb": [4, 16],
                "fault_profile": [None, "pathological"],
            },
        }
    )


def test_planning_cost(benchmark):
    spec = make_spec()
    plan = benchmark(lambda: plan_sweep(spec))
    assert plan.n_cells == 4
    assert plan.baseline is plan.cells[0]


def test_cache_reuse_speedup(benchmark, tmp_path, capsys):
    spec = make_spec()
    plan = plan_sweep(spec)
    cache = str(tmp_path / "cells")

    t0 = time.perf_counter()
    cold = run_sweep(plan, cache_dir=cache)
    cold_s = time.perf_counter() - t0
    assert cold.executed == plan.n_cells

    warm = benchmark.pedantic(
        lambda: run_sweep(plan, cache_dir=cache), rounds=1, iterations=1
    )
    assert warm.executed == 0 and warm.reused == plan.n_cells
    warm_s = benchmark.stats.stats.mean
    with capsys.disabled():
        print()
        print(
            f"sweep of {plan.n_cells} cells x {DAYS} days: "
            f"cold {cold_s:.2f}s, cached {warm_s:.3f}s "
            f"({cold_s / warm_s:.0f}x)"
        )
    # The cached pass must not be doing campaign work.
    assert warm_s < cold_s / 2
