"""``sp2-study repeat`` — the adaptive-stopping statistical campaign.

Examples::

    sp2-study repeat --target-rse 0.02                  # run until converged
    sp2-study repeat --target-ci 0.05 --max-repeats 32  # CI half-width rule
    sp2-study repeat --seeds 0,1,2,3 --json out.json    # fixed seed list
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.stats.annotate import (
    format_estimate,
    repeat_headline_block,
    repeat_summary,
    repeat_tables,
)
from repro.stats.campaign import CampaignRepeater, CampaignRepeatSpec
from repro.stats.metrics import DEFAULT_TARGET_METRIC
from repro.stats.stopping import HalfWidthRule, KSStableRule, RSERule


def build_repeat_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="sp2-study repeat",
        description="Repeat the campaign across seeds until the target "
        "statistic converges; report every headline and table with a "
        "confidence interval.",
    )
    p.add_argument("--seed0", type=int, default=0, help="first seed (default 0)")
    p.add_argument(
        "--seeds",
        type=str,
        default=None,
        metavar="LIST",
        help="comma-separated explicit seed list; runs all of them (no "
        "adaptive stopping) and is invariant to --batch and --workers",
    )
    p.add_argument("--days", type=int, default=30, help="campaign length in days")
    p.add_argument("--nodes", type=int, default=144, help="cluster size")
    p.add_argument("--users", type=int, default=60, help="user population size")
    p.add_argument(
        "--batch", type=int, default=8, metavar="N",
        help="repeats per batch between rule evaluations (default 8)",
    )
    p.add_argument(
        "--max-repeats", type=int, default=256, metavar="N",
        help="unconditional repeat cutoff (default 256)",
    )
    p.add_argument(
        "--target-rse", type=float, default=None, metavar="X",
        help="stop when the relative standard error of the target metric "
        "drops to X (e.g. 0.02)",
    )
    p.add_argument(
        "--target-ci", type=float, default=None, metavar="X",
        help="stop when the relative 95%% CI half-width drops to X",
    )
    p.add_argument(
        "--ks-threshold", type=float, default=None, metavar="X",
        help="stop when the newest batch's KS distance to the prior "
        "sample drops to X",
    )
    p.add_argument(
        "--metric", type=str, default=DEFAULT_TARGET_METRIC, metavar="NAME",
        help=f"target statistic for the stopping rules (default {DEFAULT_TARGET_METRIC})",
    )
    p.add_argument(
        "--confidence", type=float, default=0.95, metavar="C",
        help="confidence level for every reported interval (default 0.95)",
    )
    p.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="run each batch's seeds across N worker processes (samples "
        "are per-seed pure functions: output never depends on N)",
    )
    p.add_argument(
        "--shard-days", type=int, default=None, metavar="K",
        help="shard each campaign's day range (forwarded to the shard "
        "runner; part of the experiment definition)",
    )
    p.add_argument("--fault-profile", default=None, metavar="NAME")
    p.add_argument(
        "--accrual-backend", default="auto",
        choices=["auto", "scalar", "vectorized", "numpy", "python"],
    )
    p.add_argument("--tables", action="store_true", help="print Tables 1-4 with CIs")
    p.add_argument(
        "--json", type=pathlib.Path, default=None,
        help="write the annotated summary JSON here",
    )
    return p


def _parse_seeds(text: str) -> list[int]:
    try:
        return [int(tok) for tok in text.split(",") if tok.strip() != ""]
    except ValueError as err:
        raise SystemExit(f"error: bad --seeds list {text!r}: {err}")


def repeat_main(argv: list[str] | None = None) -> int:
    args = build_repeat_parser().parse_args(argv)
    if args.batch < 1 or args.max_repeats < 1:
        print("error: --batch and --max-repeats must be positive", file=sys.stderr)
        return 2

    rules = []
    if args.target_rse is not None:
        rules.append(RSERule(args.target_rse))
    if args.target_ci is not None:
        rules.append(HalfWidthRule(args.target_ci, relative=True,
                                   confidence=args.confidence))
    if args.ks_threshold is not None:
        rules.append(KSStableRule(args.ks_threshold))
    seeds = _parse_seeds(args.seeds) if args.seeds is not None else None
    if not rules and seeds is None:
        # No convergence criterion and no fixed list: default to the RSE
        # rule so a bare `sp2-study repeat` still stops on convergence.
        rules.append(RSERule(0.05))

    spec = CampaignRepeatSpec(
        n_days=args.days,
        n_nodes=args.nodes,
        n_users=args.users,
        fault_profile=args.fault_profile,
        accrual_backend=args.accrual_backend,
        shard_days=args.shard_days,
    )
    rule_names = ", ".join(r.describe() for r in rules) or "none"
    how = (
        f"fixed seeds {seeds}" if seeds is not None
        else f"adaptive from seed {args.seed0}, batch {args.batch}, "
        f"max {args.max_repeats}, rules [{rule_names}]"
    )
    print(
        f"Repeating {args.days}-day campaigns on {args.nodes} nodes "
        f"({how}, target {args.metric})...",
        file=sys.stderr,
    )

    t0 = time.time()

    def narrate(n: int, est) -> None:
        if est is not None:
            print(
                f"  batch done: n={n}, {args.metric} = "
                f"{format_estimate(est)} (rse {est.rse:.4f})",
                file=sys.stderr,
            )

    repeater = CampaignRepeater(
        spec=spec,
        rules=rules,
        max_repeats=args.max_repeats,
        batch_size=args.batch,
        target_metric=args.metric,
        confidence=args.confidence,
        workers=args.workers or 1,
        on_batch=narrate,
    )
    try:
        result = repeater.run(seed0=args.seed0, seeds=seeds)
    except KeyError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    print(
        f"Stopped after {result.n} campaigns in {time.time() - t0:.1f}s "
        f"(rule={result.stopped.rule}: {result.stopped.detail}).",
        file=sys.stderr,
    )

    if result.samples.get("campaign.jobs_accounted") and not any(
        result.samples["campaign.jobs_accounted"]
    ):
        print(
            "error: every repeated campaign finished zero jobs — nothing "
            "was measured (check --days/--users)",
            file=sys.stderr,
        )
        return 1

    print(repeat_headline_block(result))
    est = result.estimate(args.metric)
    shape = result.shape()
    print()
    print(
        f"target {args.metric}: {format_estimate(est, result.stopped.rule)} "
        f"(rse {est.rse:.4f}, distribution {shape.label})"
    )

    if args.tables:
        for table in repeat_tables(result):
            print()
            print(table.render())

    if args.json is not None:
        payload = repeat_summary(result, config=spec.as_dict())
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote {args.json}", file=sys.stderr)
    return 0
