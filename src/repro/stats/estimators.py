"""Estimator primitives for adaptive campaigns.

Everything here is numpy + stdlib: the repo deliberately depends on
nothing heavier, so the Student-t quantile is computed from the
regularized incomplete beta function (continued fraction, Numerical
Recipes §6.4) rather than imported from scipy.

Guarantees (pinned by ``tests/stats/test_calibration.py``):

* ``mean_ci`` at 95% nominal coverage covers the true mean of normal,
  lognormal and bimodal synthetic distributions at ≥93% empirical rate;
* ``bootstrap_ci`` is deterministic for a given ``seed``;
* every estimator is order-independent in its input sample.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


# ----------------------------------------------------------------------
# Student-t quantile (no scipy)
# ----------------------------------------------------------------------
def _betacf(a: float, b: float, x: float) -> float:
    """Continued fraction for the incomplete beta (Lentz's method)."""
    tiny = 1e-30
    qab, qap, qam = a + b, a + 1.0, a - 1.0
    c = 1.0
    d = 1.0 - qab * x / qap
    if abs(d) < tiny:
        d = tiny
    d = 1.0 / d
    h = d
    for m in range(1, 200):
        m2 = 2 * m
        aa = m * (b - m) * x / ((qam + m2) * (a + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        h *= d * c
        aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2))
        d = 1.0 + aa * d
        if abs(d) < tiny:
            d = tiny
        c = 1.0 + aa / c
        if abs(c) < tiny:
            c = tiny
        d = 1.0 / d
        delta = d * c
        h *= delta
        if abs(delta - 1.0) < 1e-12:
            break
    return h


def betainc(a: float, b: float, x: float) -> float:
    """Regularized incomplete beta function I_x(a, b)."""
    if not 0.0 <= x <= 1.0:
        raise ValueError(f"x must be in [0, 1], got {x}")
    if x == 0.0 or x == 1.0:
        return x
    ln_front = (
        math.lgamma(a + b)
        - math.lgamma(a)
        - math.lgamma(b)
        + a * math.log(x)
        + b * math.log1p(-x)
    )
    front = math.exp(ln_front)
    if x < (a + 1.0) / (a + b + 2.0):
        return front * _betacf(a, b, x) / a
    return 1.0 - front * _betacf(b, a, 1.0 - x) / b


def t_cdf(t: float, df: float) -> float:
    """CDF of Student's t with ``df`` degrees of freedom."""
    if df <= 0:
        raise ValueError(f"df must be positive, got {df}")
    if t == 0.0:
        return 0.5
    tail = 0.5 * betainc(df / 2.0, 0.5, df / (df + t * t))
    return 1.0 - tail if t > 0 else tail


def t_ppf(p: float, df: float) -> float:
    """Quantile of Student's t: the inverse of :func:`t_cdf`.

    Bisection on the CDF with an expanding bracket — df=1 at p=0.975 is
    12.7, so the bracket has to grow before it can shrink.  Accurate to
    ~1e-9, plenty below the Monte-Carlo noise any caller can resolve.
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    if df <= 0:
        raise ValueError(f"df must be positive, got {df}")
    if p == 0.5:
        return 0.0
    if p < 0.5:
        return -t_ppf(1.0 - p, df)
    lo, hi = 0.0, 1.0
    while t_cdf(hi, df) < p:
        hi *= 2.0
        if hi > 1e12:  # pragma: no cover - p astronomically close to 1
            break
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if t_cdf(mid, df) < p:
            lo = mid
        else:
            hi = mid
        if hi - lo < 1e-12 * max(1.0, hi):
            break
    return 0.5 * (lo + hi)


# ----------------------------------------------------------------------
# Interval estimates
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Estimate:
    """A point estimate with its confidence interval.

    ``rse`` is the relative standard error of the mean; for n < 2 (no
    dispersion information) the interval degenerates to the point and
    ``rse`` is ``inf`` — a single repeat never reads as converged.
    """

    mean: float
    ci_low: float
    ci_high: float
    std: float
    n: int
    confidence: float

    @property
    def halfwidth(self) -> float:
        return (self.ci_high - self.ci_low) / 2.0

    @property
    def relative_halfwidth(self) -> float:
        if self.mean == 0.0:
            return float("inf") if self.halfwidth else 0.0
        return self.halfwidth / abs(self.mean)

    @property
    def rse(self) -> float:
        if self.n < 2:
            return float("inf")
        if self.mean == 0.0:
            return float("inf") if self.std else 0.0
        return (self.std / math.sqrt(self.n)) / abs(self.mean)

    def as_dict(self) -> dict:
        return {
            "mean": self.mean,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
            "n": self.n,
        }


def mean_ci(sample, confidence: float = 0.95) -> Estimate:
    """Student-t confidence interval for the mean of ``sample``."""
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    x = np.asarray(sample, dtype=float)
    if x.size == 0:
        raise ValueError("mean_ci needs at least one observation")
    m = float(np.mean(x))
    if x.size == 1:
        return Estimate(m, m, m, 0.0, 1, confidence)
    s = float(np.std(x, ddof=1))
    hw = t_ppf(0.5 + confidence / 2.0, x.size - 1) * s / math.sqrt(x.size)
    return Estimate(m, m - hw, m + hw, s, int(x.size), confidence)


def bootstrap_ci(
    sample,
    stat=np.mean,
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> Estimate:
    """Percentile-bootstrap interval for an arbitrary statistic.

    Deterministic for a given ``seed`` — the resampling stream is a
    fresh ``default_rng(seed)``, so two calls with identical arguments
    return identical intervals (the determinism tests rely on it).
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if n_boot < 1:
        raise ValueError(f"n_boot must be positive, got {n_boot}")
    x = np.asarray(sample, dtype=float)
    if x.size == 0:
        raise ValueError("bootstrap_ci needs at least one observation")
    point = float(stat(x))
    if x.size == 1:
        return Estimate(point, point, point, 0.0, 1, confidence)
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, x.size, size=(n_boot, x.size))
    reps = np.apply_along_axis(stat, 1, x[idx])
    alpha = (1.0 - confidence) / 2.0
    lo, hi = np.quantile(reps, [alpha, 1.0 - alpha])
    return Estimate(
        point, float(lo), float(hi), float(np.std(reps, ddof=1)), int(x.size), confidence
    )


def quantile_ci(
    sample,
    q: float,
    *,
    confidence: float = 0.95,
    n_boot: int = 2000,
    seed: int = 0,
) -> Estimate:
    """Bootstrap interval for the ``q`` quantile (e.g. a p99 latency)."""
    if not 0.0 <= q <= 1.0:
        raise ValueError(f"q must be in [0, 1], got {q}")
    return bootstrap_ci(
        sample,
        lambda v: float(np.quantile(v, q)),
        confidence=confidence,
        n_boot=n_boot,
        seed=seed,
    )


def relative_standard_error(sample) -> float:
    """std-error of the mean over |mean|; ``inf`` when undefined (n<2)."""
    x = np.asarray(sample, dtype=float)
    if x.size < 2:
        return float("inf")
    m = float(np.mean(x))
    s = float(np.std(x, ddof=1))
    if m == 0.0:
        return float("inf") if s else 0.0
    return (s / math.sqrt(x.size)) / abs(m)


# ----------------------------------------------------------------------
# Distributional checks
# ----------------------------------------------------------------------
def ks_statistic(a, b) -> float:
    """Two-sample Kolmogorov–Smirnov statistic sup|F_a - F_b|."""
    xa = np.sort(np.asarray(a, dtype=float))
    xb = np.sort(np.asarray(b, dtype=float))
    if xa.size == 0 or xb.size == 0:
        raise ValueError("ks_statistic needs non-empty samples")
    grid = np.concatenate([xa, xb])
    cdf_a = np.searchsorted(xa, grid, side="right") / xa.size
    cdf_b = np.searchsorted(xb, grid, side="right") / xb.size
    return float(np.max(np.abs(cdf_a - cdf_b)))


@dataclass(frozen=True)
class DistributionShape:
    """Result of the unimodal-vs-multimodal classifier."""

    label: str  # "unimodal" | "multimodal" | "insufficient"
    modes: int
    #: AIC(1 component) - AIC(best 2-component split); positive favours
    #: the split.  0.0 when the sample was too small to classify.
    aic_gain: float
    #: Best split point when ``multimodal``, else ``None``.
    split: float | None = None

    def as_dict(self) -> dict:
        return {
            "label": self.label,
            "modes": self.modes,
            "aic_gain": self.aic_gain,
            "split": self.split,
        }


def _gauss_loglik(x: np.ndarray) -> float:
    """Max log-likelihood of a Gaussian fit (MLE variance, floored)."""
    var = max(float(np.var(x)), 1e-18)
    return -0.5 * x.size * (math.log(2.0 * math.pi * var) + 1.0)


def classify_distribution(sample, *, min_n: int = 8, min_cluster: int = 3) -> DistributionShape:
    """Unimodal vs multimodal, the SHARP ``aic``/``jenks`` shape.

    Fits one Gaussian against the best two-cluster hard split (every
    Jenks-style break of the sorted sample is tried) and compares AIC:
    one component has 2 parameters, the split mixture 5.  A split only
    wins when both clusters keep ``min_cluster`` members and the AIC
    gain is positive — heavy but *contiguous* tails stay unimodal, a
    paging-storm's bimodal lobes do not.
    """
    x = np.sort(np.asarray(sample, dtype=float))
    if x.size < min_n:
        return DistributionShape("insufficient", 1, 0.0)
    aic_one = 2 * 2 - 2 * _gauss_loglik(x)
    best_gain, best_split = -float("inf"), None
    for k in range(min_cluster, x.size - min_cluster + 1):
        left, right = x[:k], x[k:]
        w_l, w_r = k / x.size, (x.size - k) / x.size
        loglik = (
            _gauss_loglik(left)
            + _gauss_loglik(right)
            + k * math.log(w_l)
            + (x.size - k) * math.log(w_r)
        )
        gain = aic_one - (2 * 5 - 2 * loglik)
        if gain > best_gain:
            best_gain = gain
            best_split = float((left[-1] + right[0]) / 2.0)
    if best_split is not None and best_gain > 0.0:
        return DistributionShape("multimodal", 2, best_gain, best_split)
    return DistributionShape("unimodal", 1, best_gain if best_split is not None else 0.0)
