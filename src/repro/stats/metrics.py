"""Flatten one campaign into ``{metric: value}`` for the repeater.

One repeat = one seed = one dict.  Keys are stable, namespaced strings:

* ``campaign.*`` — the ``--json`` campaign block (always present);
* ``headline.<claim>`` — every §5–§7 headline's measured value;
* ``table2.<row>.avg`` / ``table3.<section>.<row>.avg`` — the busy-day
  table cells (present only when the seed produced busy days — short
  campaigns on quiet seeds legitimately miss them, and the repeater
  records per-metric seed lists so the estimates stay honest);
* ``table4.<column>.<rate>`` — the hierarchical-memory cells.

The row layouts are imported from :mod:`repro.analysis.tables`, so a
table edit automatically propagates to the statistical layer.
"""

from __future__ import annotations

from repro.analysis.report import headline_report
from repro.analysis.tables import (
    TABLE2_ROWS,
    TABLE3_SECTIONS,
    busy_days,
    table4_values,
)
from repro.core.study import StudyDataset

#: The stopping rules' default target statistic.
DEFAULT_TARGET_METRIC = "campaign.daily_gflops_mean"


def collect_metrics(dataset: StudyDataset) -> dict[str, float]:
    """Every reported number of one campaign, as a flat float dict."""
    daily = dataset.daily_gflops()
    util = dataset.daily_utilization()[: len(daily)]
    _, interval = dataset.interval_gflops()
    acct = dataset.accounting
    idx, rates = busy_days(dataset)

    out: dict[str, float] = {
        "campaign.jobs_accounted": float(len(acct)),
        "campaign.events_processed": float(dataset.events_processed),
        "campaign.daily_gflops_mean": float(daily.mean()) if daily.size else 0.0,
        "campaign.daily_gflops_max": float(daily.max()) if daily.size else 0.0,
        "campaign.utilization_mean": float(util.mean()) if util.size else 0.0,
        "campaign.utilization_max": float(util.max()) if util.size else 0.0,
        "campaign.interval_gflops_max": float(interval.max()) if interval.size else 0.0,
        "campaign.busy_days": float(len(idx)),
        "campaign.time_weighted_mflops_per_node": float(
            acct.time_weighted_mflops_per_node()
        ),
    }

    # Availability block: the fault axis's first-order observables.  A
    # healthy campaign is *exactly* up — 1.0 availability, zero downtime,
    # zero kills, with zero across-seed variance — so any real fault
    # process separates from it with non-overlapping CIs, which is what
    # differential sweep reports flag.
    log = dataset.faults
    out["campaign.availability"] = float(log.availability()) if log is not None else 1.0
    out["campaign.node_down_hours"] = (
        float(log.node_down_seconds / 3600.0) if log is not None else 0.0
    )
    out["campaign.jobs_killed"] = float(log.jobs_killed) if log is not None else 0.0

    for h in headline_report(dataset):
        out[f"headline.{h.claim}"] = float(h.measured_value)

    if rates:
        for label, get in TABLE2_ROWS:
            out[f"table2.{label}.avg"] = float(
                sum(get(r) for r in rates) / len(rates)
            )
        for section, entries in TABLE3_SECTIONS:
            for label, get in entries:
                out[f"table3.{section}.{label}.avg"] = float(
                    sum(get(r) for r in rates) / len(rates)
                )
        for key, value in table4_values(dataset).items():
            out[f"table4.{key}"] = float(value)
    return out
