"""The statistical perf-regression gate.

The old gates compared one measured ratio against one recorded ratio —
a single noisy number against another single noisy number, so the
tolerance had to absorb both machines' run-to-run variance.  The
CI-overlap gate compares *distributions*: the recorded baseline carries
its per-repeat samples, the measured run carries its own, and the gate
fails only when the measured confidence interval lies entirely on the
regressed side of the (tolerance-scaled) baseline interval.

``tolerance`` keeps its old operational meaning: for a higher-is-better
metric (a speedup) it scales the baseline floor down (0.8 = "worse than
80% of baseline is a regression"); for lower-is-better (latency, an
overhead factor) it scales the ceiling up.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.stats.estimators import Estimate, mean_ci


@dataclass(frozen=True)
class GateResult:
    """Verdict of one CI-overlap comparison."""

    passed: bool
    reason: str
    measured: Estimate
    baseline: Estimate
    #: The tolerance-scaled baseline bound the measured CI was held to.
    bound: float

    def as_dict(self) -> dict:
        return {
            "passed": self.passed,
            "reason": self.reason,
            "measured": self.measured.as_dict(),
            "baseline": self.baseline.as_dict(),
            "bound": self.bound,
        }


def ci_overlap_gate(
    measured_samples,
    baseline_samples,
    *,
    higher_is_better: bool = True,
    tolerance: float = 1.0,
    confidence: float = 0.95,
) -> GateResult:
    """PASS unless the measured CI clears the baseline CI entirely.

    Higher-is-better: fail iff ``measured.ci_high < tolerance ×
    baseline.ci_low`` — every plausible measured value sits below every
    plausible (scaled) baseline value.  Lower-is-better mirrors it.
    Overlapping intervals — or a measured mean at least as good as
    baseline — always pass: noise is not a regression.
    """
    if tolerance <= 0:
        raise ValueError(f"tolerance must be positive, got {tolerance}")
    measured = mean_ci(measured_samples, confidence)
    baseline = mean_ci(baseline_samples, confidence)
    if higher_is_better:
        bound = tolerance * baseline.ci_low
        passed = measured.ci_high >= bound or measured.mean >= baseline.mean
        relation = ">=" if passed else "<"
        reason = (
            f"measured CI [{measured.ci_low:.4g}, {measured.ci_high:.4g}] "
            f"(n={measured.n}) upper bound {relation} scaled baseline floor "
            f"{bound:.4g} (baseline CI [{baseline.ci_low:.4g}, "
            f"{baseline.ci_high:.4g}], n={baseline.n}, tolerance {tolerance:g})"
        )
    else:
        bound = tolerance * baseline.ci_high
        passed = measured.ci_low <= bound or measured.mean <= baseline.mean
        relation = "<=" if passed else ">"
        reason = (
            f"measured CI [{measured.ci_low:.4g}, {measured.ci_high:.4g}] "
            f"(n={measured.n}) lower bound {relation} scaled baseline ceiling "
            f"{bound:.4g} (baseline CI [{baseline.ci_low:.4g}, "
            f"{baseline.ci_high:.4g}], n={baseline.n}, tolerance {tolerance:g})"
        )
    return GateResult(passed, reason, measured, baseline, bound)


def render_gate(result: GateResult, metric: str) -> str:
    """The one-paragraph verdict the bench ``--check`` modes print."""
    verdict = "PASS" if result.passed else "FAIL"
    return (
        f"perf gate [{metric}]: {verdict} (CI overlap) — {result.reason}"
    )
