"""``value ± halfwidth [n=…, rule=…]`` reporting for repeat campaigns.

Takes a :class:`~repro.stats.repeater.RepeatResult` and renders the same
artefacts a single campaign prints — the headline block, Tables 1–4 and
the ``--json`` summary — with every numeric value replaced by an
across-seed estimate ``{mean, ci_low, ci_high, n, rule}``.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.report import PAPER_CLAIMS
from repro.analysis.tables import TABLE2_ROWS, TABLE3_SECTIONS, table1
from repro.stats.estimators import Estimate
from repro.stats.repeater import RepeatResult
from repro.util.tables import Table


def estimate_payload(result: RepeatResult, metric: str) -> dict[str, Any]:
    """The canonical JSON annotation for one metric."""
    est = result.estimate(metric)
    payload = est.as_dict()
    payload["rule"] = result.stopped.rule
    return payload


def format_estimate(est: Estimate, rule: str | None = None, fmt: str = "{:.3g}") -> str:
    """``1.27 ± 0.034 [n=48, rule=rse]`` (the ``±`` reads as the 95% CI
    half-width around the across-seed mean)."""
    base = f"{fmt.format(est.mean)} ± {fmt.format(est.halfwidth)}"
    tag = f"n={est.n}" if rule is None else f"n={est.n}, rule={rule}"
    return f"{base} [{tag}]"


# ----------------------------------------------------------------------
# Headline block
# ----------------------------------------------------------------------
def _headline_metrics(result: RepeatResult) -> list[str]:
    """``headline.*`` metrics in the paper's reporting order."""
    present = {m for m in result.metrics() if m.startswith("headline.")}
    ordered = [
        f"headline.{claim}" for claim in PAPER_CLAIMS if f"headline.{claim}" in present
    ]
    return ordered + sorted(present.difference(ordered))


def repeat_headline_lines(result: RepeatResult) -> list[str]:
    """The paper-vs-measured block with error bars on every claim."""
    rule = result.stopped.rule
    lines = [
        f"Paper vs measured ({result.n} campaigns, rule={rule}):",
        "",
    ]
    for metric in _headline_metrics(result):
        claim = metric[len("headline."):]
        paper, unit = PAPER_CLAIMS.get(claim, (None, ""))
        est = result.estimate(metric)
        pm = f"{est.mean:>8.3g} ± {est.halfwidth:<8.3g}"
        if paper:
            ratio = est.mean / paper
            lines.append(
                f"{claim:<48s} paper {paper:>8.3g} {unit:<10s}"
                f" measured {pm} (x{ratio:.2f}, n={est.n})"
            )
        else:  # pragma: no cover - every claim is in PAPER_CLAIMS today
            lines.append(f"{claim:<48s} measured {pm} (n={est.n})")
    return lines


def repeat_headline_block(result: RepeatResult) -> str:
    return "\n".join(repeat_headline_lines(result))


# ----------------------------------------------------------------------
# Tables 1–4 with error bars
# ----------------------------------------------------------------------
def _pm_cell(result: RepeatResult, metric: str) -> tuple[object, object, object]:
    """(mean, ±halfwidth, n) cells, or blanks when no seed produced it."""
    if metric not in result.samples:
        return "", "", ""
    est = result.estimate(metric)
    return est.mean, f"±{est.halfwidth:.3g}", est.n


def repeat_table2(result: RepeatResult) -> Table:
    t = Table(
        title=f"Table 2 (across {result.n} campaigns): Measured Major Rates",
        columns=("Rates", "Avg Rate", "95% CI", "n"),
    )
    for label, _ in TABLE2_ROWS:
        mean, pm, n = _pm_cell(result, f"table2.{label}.avg")
        t.add_row(label, mean, pm, n)
    return t


def repeat_table3(result: RepeatResult) -> Table:
    t = Table(
        title=f"Table 3 (across {result.n} campaigns): breakdown",
        columns=("Rates", "Avg", "95% CI", "n"),
    )
    for section, entries in TABLE3_SECTIONS:
        t.add_section(section)
        for label, _ in entries:
            mean, pm, n = _pm_cell(result, f"table3.{section}.{label}.avg")
            t.add_row(label, mean, pm, n)
    return t


#: Table 4's (row label, workload metric, analytic columns) layout.
_TABLE4_ROWS = (
    (
        "Cache Miss Ratio",
        "table4.workload.cache_miss_ratio",
        "table4.sequential.cache_miss_ratio",
        "table4.npb_bt.cache_miss_ratio",
    ),
    (
        "TLB Miss Ratio",
        "table4.workload.tlb_miss_ratio",
        "table4.sequential.tlb_miss_ratio",
        "table4.npb_bt.tlb_miss_ratio",
    ),
    ("Mflops/CPU", "table4.workload.mflops", None, "table4.npb_bt.mflops"),
)


def repeat_table4(result: RepeatResult) -> Table:
    t = Table(
        title=f"Table 4 (across {result.n} campaigns): Hierarchical Memory",
        columns=("Rate", "NAS Workload", "95% CI", "Sequential Access", "NPB BT"),
    )
    for label, wl, seq, bt in _TABLE4_ROWS:
        mean, pm, _ = _pm_cell(result, wl)
        seq_cell = result.estimate(seq).mean if seq and seq in result.samples else ""
        bt_cell = result.estimate(bt).mean if bt and bt in result.samples else ""
        t.add_row(label, mean, pm, seq_cell, bt_cell)
    return t


def repeat_tables(result: RepeatResult) -> list[Table]:
    """Tables 1–4; Table 1 is the static counter layout (no error bars —
    nothing in it is measured)."""
    return [table1(), repeat_table2(result), repeat_table3(result), repeat_table4(result)]


# ----------------------------------------------------------------------
# JSON summary
# ----------------------------------------------------------------------
def _table_payload(result: RepeatResult, prefix: str) -> dict[str, Any]:
    return {
        metric[len(prefix):]: estimate_payload(result, metric)
        for metric in result.metrics()
        if metric.startswith(prefix)
    }


def repeat_summary(
    result: RepeatResult, config: dict[str, Any] | None = None
) -> dict[str, Any]:
    """The ``sp2-study repeat --json`` payload.

    Every numeric table/headline/campaign value carries
    ``{mean, ci_low, ci_high, n, rule}``; the full per-seed sample set
    rides along under ``samples`` so downstream tooling (and the CI
    artifact) can re-estimate anything without re-running campaigns.
    """
    shape = result.shape()
    out: dict[str, Any] = {
        "repeat": {
            "target_metric": result.target_metric,
            "rule": result.stopped.rule,
            "detail": result.stopped.detail,
            "n": result.n,
            "batch_sizes": result.batch_sizes,
            "seeds": result.seeds,
            "confidence": result.confidence,
            "distribution": shape.as_dict(),
        },
        "config": config or {},
        "campaign": _table_payload(result, "campaign."),
        "headlines": [
            {
                "claim": metric[len("headline."):],
                "paper": PAPER_CLAIMS.get(metric[len("headline."):], (None, ""))[0],
                "unit": PAPER_CLAIMS.get(metric[len("headline."):], (None, ""))[1],
                "measured": estimate_payload(result, metric),
            }
            for metric in _headline_metrics(result)
        ],
        "tables": {
            "table1": {"static": True, "rows": len(table1().rows)},
            "table2": _table_payload(result, "table2."),
            "table3": _table_payload(result, "table3."),
            "table4": _table_payload(result, "table4."),
        },
        "samples": {
            metric: {
                "seeds": result.metric_seeds[metric],
                "values": result.samples[metric],
            }
            for metric in result.metrics()
        },
    }
    return out
