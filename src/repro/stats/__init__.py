"""Statistical campaign layer — error bars on every headline.

Every table and headline the reproduction reports used to be a point
estimate from one seed; the paper's own §6 pathologies (paging storms,
switch contention) are exactly the heavy-tailed behaviour where a single
realization can mislead.  This package supplies the missing discipline:

* :mod:`repro.stats.estimators` — mean/quantile confidence intervals
  (Student t and bootstrap), relative standard error, a two-sample
  KS-stability check, and a unimodal-vs-multimodal classifier;
* :mod:`repro.stats.stopping` — pluggable adaptive stopping rules
  (CI half-width, RSE target, KS stability, max-repeats cutoff);
* :mod:`repro.stats.repeater` — the batch-wise multi-seed campaign
  driver that evaluates the rules and records every per-seed sample;
* :mod:`repro.stats.campaign` — the concrete ``sp2-study`` repeat unit
  (one seed → one campaign → one flat metric dict);
* :mod:`repro.stats.annotate` — ``value ± halfwidth [n=…, rule=…]``
  reporting for Tables 1–4, the headline block and ``--json``;
* :mod:`repro.stats.gate` — the CI-overlap perf-regression gate the
  benchmark ``--check`` modes use instead of one-ratio thresholds.
"""

from repro.stats.estimators import (
    DistributionShape,
    Estimate,
    bootstrap_ci,
    classify_distribution,
    ks_statistic,
    mean_ci,
    quantile_ci,
    relative_standard_error,
    t_ppf,
)
from repro.stats.gate import GateResult, ci_overlap_gate
from repro.stats.repeater import Repeater, RepeatResult
from repro.stats.stopping import (
    HalfWidthRule,
    KSStableRule,
    MaxRepeatsRule,
    RSERule,
    SampleHistory,
    StopDecision,
)

__all__ = [
    "DistributionShape",
    "Estimate",
    "GateResult",
    "HalfWidthRule",
    "KSStableRule",
    "MaxRepeatsRule",
    "RSERule",
    "RepeatResult",
    "Repeater",
    "SampleHistory",
    "StopDecision",
    "bootstrap_ci",
    "ci_overlap_gate",
    "classify_distribution",
    "ks_statistic",
    "mean_ci",
    "quantile_ci",
    "relative_standard_error",
    "t_ppf",
]
