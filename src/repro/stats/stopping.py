"""Adaptive stopping rules — run *until* the statistic converges.

The exemplar shape is SHARP's repeater family (``ci``/``rse``/``ks``,
"Adaptive stopping rule for performance measurements", SC'23): after
each batch of repeats a rule inspects the sample history and either
stops the campaign with a named reason or asks for another batch.

Termination is structural, not hoped-for: the
:class:`~repro.stats.repeater.Repeater` always enforces a max-repeats
cutoff on top of whatever convergence rules are configured, so every
campaign halts (the calibration suite property-tests this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.stats.estimators import ks_statistic, mean_ci, relative_standard_error


@dataclass(frozen=True)
class StopDecision:
    """Why a campaign stopped: the rule's name and a rendered detail."""

    rule: str
    detail: str

    def as_dict(self) -> dict:
        return {"rule": self.rule, "detail": self.detail}


@dataclass
class SampleHistory:
    """Per-batch samples of the target statistic, in arrival order."""

    batches: list[list[float]] = field(default_factory=list)

    def extend(self, batch: list[float]) -> None:
        if batch:
            self.batches.append([float(v) for v in batch])

    @property
    def values(self) -> list[float]:
        return [v for batch in self.batches for v in batch]

    @property
    def n(self) -> int:
        return sum(len(b) for b in self.batches)


class StoppingRule:
    """One convergence criterion; subclasses override :meth:`check`."""

    name = "abstract"

    def check(self, history: SampleHistory) -> StopDecision | None:
        raise NotImplementedError

    def describe(self) -> str:
        return self.name


@dataclass
class HalfWidthRule(StoppingRule):
    """Stop when the CI half-width shrinks to ``target``.

    ``relative`` (the default) measures the half-width as a fraction of
    |mean| — the form headline metrics want; absolute mode suits metrics
    with a meaningful zero such as ratios-to-paper.
    """

    target: float
    relative: bool = True
    confidence: float = 0.95
    min_n: int = 3
    name: str = field(default="ci-halfwidth", init=False)

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError(f"target half-width must be positive, got {self.target}")

    def check(self, history: SampleHistory) -> StopDecision | None:
        if history.n < self.min_n:
            return None
        est = mean_ci(history.values, self.confidence)
        width = est.relative_halfwidth if self.relative else est.halfwidth
        if width <= self.target:
            kind = "relative " if self.relative else ""
            return StopDecision(
                self.name,
                f"{kind}CI half-width {width:.4g} <= {self.target:g} at n={est.n}",
            )
        return None

    def describe(self) -> str:
        rel = "relative" if self.relative else "absolute"
        return f"{self.name}({rel} target {self.target:g})"


@dataclass
class RSERule(StoppingRule):
    """Stop when the relative standard error of the mean hits ``target``."""

    target: float
    min_n: int = 3
    name: str = field(default="rse", init=False)

    def __post_init__(self) -> None:
        if self.target <= 0:
            raise ValueError(f"target RSE must be positive, got {self.target}")

    def check(self, history: SampleHistory) -> StopDecision | None:
        if history.n < self.min_n:
            return None
        rse = relative_standard_error(history.values)
        if rse <= self.target:
            return StopDecision(
                self.name, f"RSE {rse:.4g} <= {self.target:g} at n={history.n}"
            )
        return None

    def describe(self) -> str:
        return f"{self.name}(target {self.target:g})"


@dataclass
class KSStableRule(StoppingRule):
    """Stop when the newest batch no longer moves the distribution.

    Compares the latest batch against everything seen before it with the
    two-sample KS statistic; below ``threshold`` the campaign's empirical
    distribution has stabilized.  Both sides must hold ``min_side``
    observations — the KS statistic of two tiny samples is vacuously
    coarse.
    """

    threshold: float = 0.3
    min_side: int = 5
    name: str = field(default="ks-stable", init=False)

    def __post_init__(self) -> None:
        if not 0.0 < self.threshold <= 1.0:
            raise ValueError(f"KS threshold must be in (0, 1], got {self.threshold}")

    def check(self, history: SampleHistory) -> StopDecision | None:
        if len(history.batches) < 2:
            return None
        last = history.batches[-1]
        prev = [v for batch in history.batches[:-1] for v in batch]
        if len(last) < self.min_side or len(prev) < self.min_side:
            return None
        stat = ks_statistic(prev, last)
        if stat <= self.threshold:
            return StopDecision(
                self.name,
                f"KS {stat:.4g} <= {self.threshold:g} "
                f"(batch of {len(last)} vs {len(prev)} prior)",
            )
        return None

    def describe(self) -> str:
        return f"{self.name}(threshold {self.threshold:g})"


@dataclass
class MaxRepeatsRule(StoppingRule):
    """The unconditional cutoff — fires at ``limit`` repeats, always."""

    limit: int
    name: str = field(default="max-repeats", init=False)

    def __post_init__(self) -> None:
        if self.limit < 1:
            raise ValueError(f"repeat limit must be positive, got {self.limit}")

    def check(self, history: SampleHistory) -> StopDecision | None:
        if history.n >= self.limit:
            return StopDecision(
                self.name, f"reached the {self.limit}-repeat cutoff unconverged"
            )
        return None

    def describe(self) -> str:
        return f"{self.name}({self.limit})"
