"""The concrete ``sp2-study`` repeat unit: seed in, metric dict out.

``CampaignRepeatSpec`` is the picklable description of one repeat — the
same campaign parameters ``sp2-study`` takes, minus the seed.  The batch
runner fans a batch of seeds across worker processes (the same pool
context policy as :mod:`repro.parallel.runner`); because each repeat is
a pure function of its seed, the collected samples are identical
whatever worker count executed them.
"""

from __future__ import annotations

import dataclasses
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.core.study import StudyConfig, WorkloadStudy, run_study
from repro.parallel.runner import _pool_context
from repro.stats.metrics import DEFAULT_TARGET_METRIC, collect_metrics
from repro.stats.repeater import Repeater, RepeatResult
from repro.stats.stopping import StoppingRule


@dataclass(frozen=True)
class CampaignRepeatSpec:
    """One repeat's campaign parameters (everything but the seed)."""

    n_days: int = 30
    n_nodes: int = 144
    n_users: int = 60
    fault_profile: str | None = None
    accrual_backend: str = "auto"
    #: Shard width for within-campaign sharded execution (None = serial
    #: campaign inside each repeat; the repeat layer parallelizes across
    #: seeds, not within one seed).
    shard_days: int | None = None

    def as_dict(self) -> dict:
        return {
            "n_days": self.n_days,
            "n_nodes": self.n_nodes,
            "n_users": self.n_users,
            "fault_profile": self.fault_profile,
            "accrual_backend": self.accrual_backend,
            "shard_days": self.shard_days,
        }


def run_campaign_metrics(spec: CampaignRepeatSpec, seed: int) -> dict[str, float]:
    """One repeat: run the campaign for ``seed`` and flatten it."""
    dataset = run_study(
        seed,
        n_days=spec.n_days,
        n_nodes=spec.n_nodes,
        n_users=spec.n_users,
        shard_days=spec.shard_days,
        fault_profile=spec.fault_profile,
        accrual_backend=spec.accrual_backend,
    )
    return collect_metrics(dataset)


def _repeat_task(payload: tuple[CampaignRepeatSpec, int]) -> dict[str, float]:
    spec, seed = payload
    return run_campaign_metrics(spec, seed)


def make_batch_runner(
    spec: CampaignRepeatSpec,
    *,
    workers: int = 1,
    start_method: str | None = None,
) -> Callable[[Sequence[int]], list[dict[str, float]]]:
    """A batch executor mapping seeds → metric dicts, order preserved."""

    def run_batch(seeds: Sequence[int]) -> list[dict[str, float]]:
        payloads = [(spec, int(s)) for s in seeds]
        n_procs = min(workers, len(payloads))
        if n_procs <= 1:
            return [_repeat_task(p) for p in payloads]
        ctx = _pool_context(start_method)
        with ProcessPoolExecutor(max_workers=n_procs, mp_context=ctx) as pool:
            return list(pool.map(_repeat_task, payloads))

    return run_batch


# ----------------------------------------------------------------------
# Full-config repeat unit (the scenario-sweep layer's per-cell estimator)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ConfigRepeatSpec:
    """One repeat over an arbitrary resolved :class:`StudyConfig`.

    Where :class:`CampaignRepeatSpec` carries the handful of flags
    ``sp2-study repeat`` exposes, this carries the *whole* frozen config
    — machine geometry, switch fabric, scheduler policy, fault profile —
    so a sweep cell with overridden TLB entries or memory size gets the
    same ``mean ± hw [n, rule]`` treatment.  The spec is picklable (all
    nested configs are frozen dataclasses of plain values), so batches
    fan across the worker pool exactly like the CLI repeat path.
    """

    config: StudyConfig
    #: Shard width for within-campaign sharded execution (None = serial).
    shard_days: int | None = None

    def run_one(self, seed: int) -> dict[str, float]:
        cfg = (
            self.config
            if seed == self.config.seed
            else dataclasses.replace(self.config, seed=seed)
        )
        if self.shard_days is not None:
            from repro.parallel.runner import run_parallel_study

            dataset = run_parallel_study(cfg, workers=1, shard_days=self.shard_days)
        else:
            dataset = WorkloadStudy(cfg).run()
        return collect_metrics(dataset)


def _config_repeat_task(payload: tuple[ConfigRepeatSpec, int]) -> dict[str, float]:
    spec, seed = payload
    return spec.run_one(seed)


def make_config_batch_runner(
    spec: ConfigRepeatSpec,
    *,
    workers: int = 1,
    start_method: str | None = None,
) -> Callable[[Sequence[int]], list[dict[str, float]]]:
    """A batch executor over a full config, order preserved."""

    def run_batch(seeds: Sequence[int]) -> list[dict[str, float]]:
        payloads = [(spec, int(s)) for s in seeds]
        n_procs = min(workers, len(payloads))
        if n_procs <= 1:
            return [_config_repeat_task(p) for p in payloads]
        ctx = _pool_context(start_method)
        with ProcessPoolExecutor(max_workers=n_procs, mp_context=ctx) as pool:
            return list(pool.map(_config_repeat_task, payloads))

    return run_batch


@dataclass
class CampaignRepeater:
    """A :class:`~repro.stats.repeater.Repeater` bound to ``sp2-study``."""

    spec: CampaignRepeatSpec = field(default_factory=CampaignRepeatSpec)
    rules: Sequence[StoppingRule] = ()
    max_repeats: int = 256
    batch_size: int = 8
    target_metric: str = DEFAULT_TARGET_METRIC
    confidence: float = 0.95
    workers: int = 1
    start_method: str | None = None
    on_batch: Callable | None = None

    def run(
        self, *, seed0: int = 0, seeds: Sequence[int] | None = None
    ) -> RepeatResult:
        repeater = Repeater(
            run_one=lambda seed: run_campaign_metrics(self.spec, seed),
            rules=self.rules,
            max_repeats=self.max_repeats,
            batch_size=self.batch_size,
            target_metric=self.target_metric,
            confidence=self.confidence,
            batch_runner=make_batch_runner(
                self.spec, workers=self.workers, start_method=self.start_method
            ),
            on_batch=self.on_batch,
        )
        return repeater.run(seed0=seed0, seeds=seeds)
