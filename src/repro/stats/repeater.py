"""The adaptive multi-seed campaign driver.

``Repeater`` runs one measurement function over a stream of seeds in
batches, folds each batch into a :class:`~repro.stats.stopping.SampleHistory`
for the target metric, and stops the moment a convergence rule fires —
or unconditionally at the max-repeats cutoff.  The full per-seed sample
set of *every* collected metric is recorded, not just the target: the
reporting layer attaches confidence intervals to each table cell and
headline from the same run.

Determinism contract (mirroring ``repro.parallel``):

* per-seed results are pure functions of the seed, so the result is
  byte-identical whatever worker count executed the batches;
* with an explicit ``seeds`` list the campaign is *fixed*: every seed
  runs, no adaptive evaluation happens mid-stream, and the result is
  additionally invariant to ``batch_size``;
* in adaptive mode the seed stream is ``seed0, seed0+1, …`` and the
  stopping decision depends only on the accumulated sample — again
  independent of workers, but batch size is part of the experiment
  definition (rules are evaluated at batch boundaries).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Sequence

from repro.stats.estimators import (
    DistributionShape,
    Estimate,
    classify_distribution,
    mean_ci,
)
from repro.stats.stopping import (
    MaxRepeatsRule,
    SampleHistory,
    StopDecision,
    StoppingRule,
)

#: One repeat: seed in, flat ``{metric: value}`` out.
MetricFn = Callable[[int], dict[str, float]]
#: Optional batch executor: seeds in, per-seed metric dicts out, order
#: preserved (the campaign layer supplies a process-pool implementation).
BatchRunner = Callable[[Sequence[int]], list[dict[str, float]]]


@dataclass
class RepeatResult:
    """Everything an adaptive campaign measured."""

    #: Seeds actually run, in execution order.
    seeds: list[int]
    #: Seed count of each batch, in order.
    batch_sizes: list[int]
    #: Per-metric samples aligned with ``seeds`` (a metric missing from
    #: some repeat — e.g. a busy-day table on a quiet seed — records
    #: only the seeds that produced it, in ``metric_seeds``).
    samples: dict[str, list[float]]
    #: Seeds that produced each metric (== ``seeds`` for total metrics).
    metric_seeds: dict[str, list[int]]
    #: Why the campaign stopped.
    stopped: StopDecision
    #: The statistic the stopping rules watched.
    target_metric: str
    confidence: float = 0.95

    @property
    def n(self) -> int:
        return len(self.seeds)

    def metrics(self) -> list[str]:
        return sorted(self.samples)

    def sample(self, metric: str) -> list[float]:
        return self.samples[metric]

    def estimate(self, metric: str, confidence: float | None = None) -> Estimate:
        return mean_ci(self.samples[metric], confidence or self.confidence)

    def shape(self, metric: str | None = None) -> DistributionShape:
        return classify_distribution(self.samples[metric or self.target_metric])

    def convergence_trace(self) -> list[int]:
        """Cumulative repeat counts at each batch boundary."""
        out, total = [], 0
        for size in self.batch_sizes:
            total += size
            out.append(total)
        return out


@dataclass
class Repeater:
    """Drive ``run_one`` until the target metric converges.

    ``rules`` are evaluated in order after every batch; the first that
    fires names the stop.  ``max_repeats`` is enforced as an implicit
    final :class:`MaxRepeatsRule` so the loop always terminates.
    ``batch_runner`` overrides how a batch of seeds is executed (the
    campaign layer plugs the worker pool in here); the default maps
    serially in-process.
    """

    run_one: MetricFn
    rules: Sequence[StoppingRule] = ()
    max_repeats: int = 256
    batch_size: int = 8
    target_metric: str = "value"
    confidence: float = 0.95
    batch_runner: BatchRunner | None = None
    #: Called after each batch with (n_so_far, latest Estimate | None) —
    #: the CLI uses it to narrate convergence.
    on_batch: Callable[[int, Estimate | None], None] | None = field(
        default=None, repr=False
    )

    def __post_init__(self) -> None:
        if self.max_repeats < 1:
            raise ValueError(f"max_repeats must be positive, got {self.max_repeats}")
        if self.batch_size < 1:
            raise ValueError(f"batch_size must be positive, got {self.batch_size}")

    # ------------------------------------------------------------------
    def _run_batch(self, seeds: list[int]) -> list[dict[str, float]]:
        if self.batch_runner is not None:
            results = self.batch_runner(seeds)
            if len(results) != len(seeds):
                raise RuntimeError(
                    f"batch runner returned {len(results)} results for "
                    f"{len(seeds)} seeds"
                )
            return results
        return [self.run_one(seed) for seed in seeds]

    def _fold(
        self,
        seeds: list[int],
        results: list[dict[str, float]],
        samples: dict[str, list[float]],
        metric_seeds: dict[str, list[int]],
    ) -> list[float]:
        batch_values: list[float] = []
        for seed, metrics in zip(seeds, results):
            if self.target_metric not in metrics:
                raise KeyError(
                    f"repeat for seed {seed} produced no {self.target_metric!r} "
                    f"(got {sorted(metrics)[:8]}...)"
                )
            for name, value in metrics.items():
                samples.setdefault(name, []).append(float(value))
                metric_seeds.setdefault(name, []).append(seed)
            batch_values.append(float(metrics[self.target_metric]))
        return batch_values

    # ------------------------------------------------------------------
    def run(
        self, *, seed0: int = 0, seeds: Sequence[int] | None = None
    ) -> RepeatResult:
        """Adaptive campaign from ``seed0``, or a fixed ``seeds`` list."""
        samples: dict[str, list[float]] = {}
        metric_seeds: dict[str, list[int]] = {}
        history = SampleHistory()
        run_seeds: list[int] = []
        batch_sizes: list[int] = []

        if seeds is not None:
            seed_list = [int(s) for s in seeds]
            if not seed_list:
                raise ValueError("explicit seeds list must not be empty")
            if len(set(seed_list)) != len(seed_list):
                raise ValueError(f"duplicate seeds in {seed_list}")
            # Fixed campaign: the seed list *is* the experiment — every
            # seed runs and no mid-stream decision happens, so the
            # result is invariant to batch size by construction.
            for start in range(0, len(seed_list), self.batch_size):
                batch = seed_list[start : start + self.batch_size]
                values = self._fold(
                    batch, self._run_batch(batch), samples, metric_seeds
                )
                history.extend(values)
                run_seeds.extend(batch)
                batch_sizes.append(len(batch))
                if self.on_batch is not None:
                    self.on_batch(history.n, mean_ci(history.values, self.confidence))
            stopped = StopDecision(
                "fixed-seeds", f"ran the full {len(seed_list)}-seed list"
            )
            return RepeatResult(
                seeds=run_seeds,
                batch_sizes=batch_sizes,
                samples=samples,
                metric_seeds=metric_seeds,
                stopped=stopped,
                target_metric=self.target_metric,
                confidence=self.confidence,
            )

        cutoff = MaxRepeatsRule(self.max_repeats)
        stopped: StopDecision | None = None
        while stopped is None:
            want = min(self.batch_size, self.max_repeats - history.n)
            batch = [seed0 + len(run_seeds) + i for i in range(want)]
            values = self._fold(batch, self._run_batch(batch), samples, metric_seeds)
            history.extend(values)
            run_seeds.extend(batch)
            batch_sizes.append(len(batch))
            if self.on_batch is not None:
                self.on_batch(history.n, mean_ci(history.values, self.confidence))
            for rule in self.rules:
                stopped = rule.check(history)
                if stopped is not None:
                    break
            if stopped is None:
                stopped = cutoff.check(history)
        return RepeatResult(
            seeds=run_seeds,
            batch_sizes=batch_sizes,
            samples=samples,
            metric_seeds=metric_seeds,
            stopped=stopped,
            target_metric=self.target_metric,
            confidence=self.confidence,
        )
