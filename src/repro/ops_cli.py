"""``sp2-ops`` — the live operations view of a campaign.

Where ``sp2-study`` prints the paper's post-hoc artefacts, ``sp2-ops``
replays a campaign through the streaming telemetry subsystem and renders
what an operator console would have shown *while it ran*: the rolling
15-minute feed, the fired alerts, campaign-wide metric statistics, and
the finished-job rollups.

Since PR 7 it is also the *service*: ``sp2-ops serve`` keeps campaigns
resident in a :mod:`repro.ops` hub behind a TCP query API, ``sp2-ops
ask`` is the line client, and ``sp2-ops report`` renders one job's
performance page.

Examples::

    sp2-ops alerts --days 30 --seed 1          # what fired, when
    sp2-ops tail   --days 3  --seed 1          # the live feed, alerts inline
    sp2-ops query  --metric tlb.miss_rate --days 30 --plot
    sp2-ops jobs   --days 30 --top 10
    sp2-ops report --job 17 --days 30 --trace  # one job's performance page
    sp2-ops serve  --days 30 --port 7571       # campaign behind the query API
    sp2-ops ask query --port 7571 --campaign campaign --metric gflops.system
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy, run_study
from repro.telemetry.rules import render_alert, render_alerts
from repro.telemetry.service import METRIC_CATALOG, TelemetryService
from repro.workload.traces import SECONDS_PER_DAY

#: Exit-code convention shared by every sp2-* CLI (CONTRIBUTING.md):
#: 0 = success, 1 = operational failure (ran but measured/served
#: nothing, or the service died), 2 = usage error (bad arguments,
#: unknown names).
EXIT_OK, EXIT_OPERATIONAL, EXIT_USAGE = 0, 1, 2


def _fmt_time(t: float) -> str:
    day, rem = divmod(t, SECONDS_PER_DAY)
    hh, mm = divmod(int(rem) // 60, 60)
    return f"d{int(day):03d} {hh:02d}:{mm:02d}"


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def add_campaign_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    p.add_argument("--days", type=_positive_int, default=3, help="campaign length in days")
    p.add_argument("--nodes", type=_positive_int, default=144, help="cluster size")
    p.add_argument("--users", type=_positive_int, default=60, help="user population size")
    p.add_argument(
        "--fault-profile",
        default=None,
        metavar="NAME",
        help="inject faults from a named profile (none, mild, pathological)",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="replay the campaign through the sharded runner on N workers",
    )
    p.add_argument(
        "--shard-days",
        type=_positive_int,
        default=None,
        metavar="K",
        help="days per shard for --workers",
    )


def run_campaign(args: argparse.Namespace) -> StudyDataset:
    t0 = time.time()
    faulty = f", faults={args.fault_profile}" if args.fault_profile else ""
    print(
        f"Replaying {args.days}-day campaign on {args.nodes} nodes "
        f"(seed {args.seed}, {args.users} users{faulty})...",
        file=sys.stderr,
    )
    dataset = run_study(
        args.seed,
        n_days=args.days,
        n_nodes=args.nodes,
        n_users=args.users,
        workers=args.workers,
        shard_days=args.shard_days,
        fault_profile=args.fault_profile,
    )
    print(f"Replay done in {time.time() - t0:.1f}s.", file=sys.stderr)
    return dataset


def _telemetry(dataset: StudyDataset) -> TelemetryService:
    # Every WorkloadStudy-run dataset carries its service; the replay
    # path covers datasets loaded from elsewhere.
    if dataset.telemetry is not None:
        return dataset.telemetry
    return TelemetryService.replay(dataset.collector.samples, dataset.accounting.records)


def _no_samples(dataset: StudyDataset) -> bool:
    """A campaign with zero samples watched nothing: exiting 0 would let
    a broken collector read as "all healthy" (exit-code convention:
    operational failure, 1)."""
    if len(dataset.collector.samples) > 0:
        return False
    print(
        "error: campaign produced zero collector samples — nothing was "
        "monitored (check --days / the collector cadence)",
        file=sys.stderr,
    )
    return True


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_alerts(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    if _no_samples(dataset):
        return EXIT_OPERATIONAL
    alerts = t.alerts
    if args.rule:
        # "fault" alerts come straight from the injector, not from an
        # engine rule — still a filterable rule name here.
        known = {r.name for r in t.engine.rules} | {"fault"}
        if args.rule not in known:
            print(
                f"unknown rule {args.rule!r}; available: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return EXIT_USAGE
        alerts = [a for a in alerts if a.rule == args.rule]
    print(render_alerts(alerts))
    by_rule = ", ".join(f"{k}={v}" for k, v in sorted(t.alert_counts().items()))
    print(
        f"-- {len(alerts)} alert(s) shown, {len(t.alerts)} fired "
        f"({by_rule or 'none'}), {t.engine.suppressed} suppressed by cooldown, "
        f"{t.intervals_seen} intervals watched"
    )
    return EXIT_OK


#: Series rendered by ``tail`` (one column each).
TAIL_SERIES = (
    "gflops.system",
    "fxu.sys_user_ratio",
    "tlb.miss_rate",
    "nodes.reporting",
    "jobs.active",
)


def cmd_tail(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    if _no_samples(dataset):
        return EXIT_OPERATIONAL
    times, gflops = t.store.window("gflops.system")
    _, ratio = t.store.window("fxu.sys_user_ratio")
    _, tlb = t.store.window("tlb.miss_rate")
    _, nodes = t.store.window("nodes.reporting")
    _, active = t.store.window("jobs.active")

    n = len(times)
    start = 0 if args.limit in (None, 0) else max(0, n - args.limit)
    alerts = iter(t.alerts)
    pending = next(alerts, None)
    # Fast-forward alerts that precede the visible window.
    while pending is not None and start > 0 and pending.time < times[start]:
        pending = next(alerts, None)
    print(
        f"{'TIME':<10s} {'GFLOPS':>7s} {'SYS/USR':>8s} {'TLB M/s':>8s} "
        f"{'NODES':>6s} {'JOBS':>5s}"
    )
    shown = 0
    for i in range(start, n):
        while pending is not None and pending.time <= times[i]:
            print("! " + render_alert(pending))
            pending = next(alerts, None)
        print(
            f"{_fmt_time(times[i]):<10s} {gflops[i]:7.2f} {ratio[i]:8.3f} "
            f"{tlb[i]:8.3f} {int(nodes[i]):6d} {int(active[i]):5d}"
        )
        shown += 1
    while pending is not None:
        print("! " + render_alert(pending))
        pending = next(alerts, None)
    # The ring caps every displayed series identically, but report the
    # worst case rather than trusting that: a silently truncated feed is
    # the one thing an operator console must never show as complete.
    dropped = max(
        (t.store.series(name).dropped for name in TAIL_SERIES if name in t.store),
        default=0,
    )
    note = f" (ring evicted {dropped} older samples)" if dropped else ""
    print(f"-- {shown} of {t.intervals_seen} intervals shown{note}")
    return EXIT_OK


def cmd_query(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    if _no_samples(dataset):
        return EXIT_OPERATIONAL
    if args.metric not in t.store.names():
        known = "\n  ".join(
            f"{name:<22s} {METRIC_CATALOG.get(name, '')}" for name in t.store.names()
        )
        print(f"unknown metric {args.metric!r}; available:\n  {known}", file=sys.stderr)
        return EXIT_USAGE
    t0 = args.day_from * SECONDS_PER_DAY if args.day_from is not None else None
    t1 = (args.day_to + 1) * SECONDS_PER_DAY if args.day_to is not None else None
    s = t.store.summary(args.metric)
    times, values = t.store.window(args.metric, t0, t1)
    print(f"metric   : {args.metric} — {METRIC_CATALOG.get(args.metric, '?')}")
    print(f"points   : {s.count} appended, {s.dropped} evicted, {len(times)} in window")
    print(f"last     : {s.last:.4g}   ewma {s.ewma:.4g}")
    print(f"range    : min {s.min:.4g}   max {s.max:.4g}")
    qtext = "   ".join(f"p{int(p * 100):d} {v:.4g}" for p, v in sorted(s.quantiles.items()))
    print(f"quantiles: {qtext}  (P² streaming estimates)")
    if s.dropped:
        print(
            f"warning  : ring evicted {s.dropped} older points — the window "
            "covers the retained tail only (aggregates still span the "
            "full campaign)"
        )
    if args.plot and len(values):
        from repro.util.asciiplot import ascii_series

        print()
        print(ascii_series(values, title=f"{args.metric} over the window"))
    return EXIT_OK


def cmd_jobs(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    if _no_samples(dataset):
        return EXIT_OPERATIONAL
    rollups = t.rollups.for_user(args.user) if args.user is not None else list(
        t.rollups.finished
    )
    rollups.sort(key=lambda r: r.total_mflops, reverse=True)
    shown = rollups if args.top in (None, 0) else rollups[: args.top]
    print(
        f"{'JOB':>6s} {'APP':<20s} {'USER':>5s} {'NODES':>5s} {'WALL h':>7s} "
        f"{'MFLOPS':>9s} {'MF/NODE':>8s} {'SYS/USR':>8s}  FINALIZED"
    )
    for r in shown:
        rec = r.record
        print(
            f"{r.job_id:>6d} {r.app_name:<20.20s} {r.user:>5d} "
            f"{rec.nodes_requested:>5d} {rec.walltime_seconds / 3600:7.2f} "
            f"{r.total_mflops:9.1f} {r.mflops_per_node:8.2f} "
            f"{r.system_user_fxu_ratio:8.3f}  {_fmt_time(r.finalized_at)}"
        )
    suspects = t.rollups.paging_suspects()
    print(
        f"-- {len(shown)} of {len(t.rollups)} finished jobs shown, "
        f"{len(t.rollups.active)} still active, {len(suspects)} paging suspect(s)"
    )
    return EXIT_OK


# ----------------------------------------------------------------------
# The service verbs (PR 7): serve / report / ask
# ----------------------------------------------------------------------

def _study_config(args: argparse.Namespace) -> StudyConfig:
    profile = None
    if args.fault_profile:
        from repro.faults.profile import FaultProfile

        profile = FaultProfile.named(args.fault_profile)
        if profile.is_null:
            profile = None
    return StudyConfig(
        seed=args.seed,
        n_days=args.days,
        n_nodes=args.nodes,
        n_users=args.users,
        fault_profile=profile,
    )


def cmd_report(args: argparse.Namespace) -> int:
    """One job's performance page, from a replayed campaign."""
    from repro.ops import CampaignHub, UnknownJob
    from repro.ops.ingest import replay_into_hub
    from repro.tracing.tracer import Tracer

    if args.trace and (args.workers or args.shard_days):
        print(
            "error: --trace needs the serial runner (drop --workers/--shard-days)",
            file=sys.stderr,
        )
        return EXIT_USAGE
    if args.workers or args.shard_days:
        dataset = run_campaign(args)
    else:
        t0 = time.time()
        print(
            f"Replaying {args.days}-day campaign on {args.nodes} nodes "
            f"(seed {args.seed}{', traced' if args.trace else ''})...",
            file=sys.stderr,
        )
        tracer = Tracer() if args.trace else None
        dataset = WorkloadStudy(_study_config(args), tracer=tracer).run()
        print(f"Replay done in {time.time() - t0:.1f}s.", file=sys.stderr)
    if len(dataset.accounting) == 0:
        print(
            "error: campaign finished zero jobs — nothing to report on",
            file=sys.stderr,
        )
        return EXIT_OPERATIONAL

    hub = CampaignHub()
    hub.register("campaign", kind="single")
    replay_into_hub(hub, "campaign", dataset)
    try:
        print(hub.job_report("campaign", args.job))
    except UnknownJob as exc:
        ids = sorted(r.job_id for r in dataset.accounting.records)
        span = f"{ids[0]}..{ids[-1]}" if ids else "(none)"
        print(f"error: {exc} — finished job ids: {span}", file=sys.stderr)
        return EXIT_USAGE
    return EXIT_OK


def cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        print("sp2-ops serve: interrupted", file=sys.stderr)
        return EXIT_OPERATIONAL


async def _serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.ops import CampaignHub, OpsServer, ingest_fleet, ingest_study
    from repro.ops.ingest import replay_into_hub

    if args.fleet is not None:
        from repro.fleet.spec import PRESETS

        if args.fleet not in PRESETS:
            print(
                f"error: unknown fleet preset {args.fleet!r}; "
                f"available: {', '.join(sorted(PRESETS))}",
                file=sys.stderr,
            )
            return EXIT_USAGE

    hub = CampaignHub(
        max_campaigns=args.max_campaigns,
        store_capacity=args.store_capacity,
        max_series=args.max_series,
    )
    server = await OpsServer.start(hub, host=args.host, port=args.port)
    print(
        f"sp2-ops service listening on {args.host}:{server.port}", file=sys.stderr
    )
    if args.port_file is not None:
        # Written after bind: waiting on this file is the race-free way
        # for scripts (and the CI smoke) to learn the ephemeral port.
        pathlib.Path(args.port_file).write_text(f"{server.port}\n")

    t0 = time.time()
    if args.fleet is not None:
        from repro.fleet.spec import PRESETS

        fleet = await ingest_fleet(
            hub,
            args.name,
            PRESETS[args.fleet],
            workers=args.workers,
            shard_days=args.shard_days,
        )
        jobs = sum(len(m.dataset.accounting) for m in fleet.members)
        if args.json is not None:
            from repro.fleet.analysis import fleet_summary

            document = {"spec": PRESETS[args.fleet].to_dict(), **fleet_summary(fleet)}
            args.json.parent.mkdir(parents=True, exist_ok=True)
            args.json.write_text(
                json.dumps(document, indent=2, sort_keys=True) + "\n"
            )
            print(f"wrote {args.json}", file=sys.stderr)
    elif args.workers or args.shard_days:
        # The sharded runner has no live bus; run it out, then replay
        # through the canonical ordering — same end state.
        dataset = await asyncio.to_thread(run_campaign, args)
        hub.register(args.name, kind="single", meta={"seed": args.seed})
        replay_into_hub(hub, args.name, dataset)
        hub.complete(args.name, {"jobs": len(dataset.accounting)})
        jobs = len(dataset.accounting)
        _write_dataset_json(args, dataset)
    else:
        dataset = await ingest_study(
            hub, args.name, _study_config(args), trace=args.trace
        )
        jobs = len(dataset.accounting)
        _write_dataset_json(args, dataset)
    print(
        f"campaign {args.name!r} resident after {time.time() - t0:.1f}s "
        f"({jobs} jobs); serving until a shutdown op arrives.",
        file=sys.stderr,
    )
    if jobs == 0:
        print("error: campaign finished zero jobs", file=sys.stderr)
        await server.close()
        return EXIT_OPERATIONAL
    await server.serve_until_shutdown()
    print("sp2-ops service: clean shutdown.", file=sys.stderr)
    return EXIT_OK


def _write_dataset_json(args: argparse.Namespace, dataset: StudyDataset) -> None:
    if args.json is None:
        return
    # Byte-identical to a detached ``sp2-study --json`` of the same
    # campaign: the ingest tap is a pure bus subscriber (CI diffs them).
    from repro.analysis.export import dataset_to_json

    args.json.parent.mkdir(parents=True, exist_ok=True)
    args.json.write_text(dataset_to_json(dataset))
    print(f"wrote {args.json}", file=sys.stderr)


#: ask exit codes: a refused/failed request is usage (2) when the server
#: understood and rejected it, operational (1) when the service itself
#: is unreachable or broke.
_ASK_USAGE_ERRORS = frozenset(
    {"bad-request", "unknown-op", "unknown-campaign", "unknown-metric", "unknown-job"}
)


def _resolve_port(args: argparse.Namespace) -> int | None:
    if args.port is not None:
        return args.port
    if args.port_file is not None:
        try:
            return int(pathlib.Path(args.port_file).read_text().strip())
        except (OSError, ValueError) as exc:
            print(f"error: cannot read port from {args.port_file}: {exc}", file=sys.stderr)
            return None
    print("error: ask needs --port or --port-file", file=sys.stderr)
    return None


def cmd_ask(args: argparse.Namespace) -> int:
    import asyncio

    port = _resolve_port(args)
    if port is None:
        return EXIT_USAGE
    return asyncio.run(_ask(args, port))


async def _ask(args: argparse.Namespace, port: int) -> int:
    import asyncio

    from repro.ops import OpsClient, OpsServiceError

    operands = {
        key: value
        for key, value in (
            ("campaign", args.campaign),
            ("metric", args.metric),
            ("job", args.job),
            ("member", args.member),
            ("since", args.since),
            ("limit", args.limit),
            ("last", args.last),
            ("points", args.points or None),
        )
        if value is not None
    }
    try:
        client = await OpsClient.connect(args.host, port)
    except OSError as exc:
        print(f"error: cannot reach {args.host}:{port}: {exc}", file=sys.stderr)
        return EXIT_OPERATIONAL
    async with client:
        try:
            response = await asyncio.wait_for(
                client.request(args.op, **operands), args.timeout
            )
        except OpsServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return EXIT_USAGE if exc.code in _ASK_USAGE_ERRORS else EXIT_OPERATIONAL
        except (asyncio.TimeoutError, ConnectionError) as exc:
            print(f"error: service did not answer: {exc!r}", file=sys.stderr)
            return EXIT_OPERATIONAL
        if args.op == "report":
            print(response["report"])
        else:
            print(json.dumps(response, indent=2, sort_keys=True))
        if args.op == "subscribe" and args.watch:
            for _ in range(args.watch):
                try:
                    push = await client.next_push(args.timeout)
                except asyncio.TimeoutError:
                    print(
                        f"error: no alert push within {args.timeout:.0f}s",
                        file=sys.stderr,
                    )
                    return EXIT_OPERATIONAL
                print(json.dumps(push, indent=2, sort_keys=True))
    return EXIT_OK


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="sp2-ops",
        description="Live operations view of an SP2 measurement campaign.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    p_alerts = sub.add_parser("alerts", help="alerts fired during the campaign")
    add_campaign_args(p_alerts)
    p_alerts.add_argument("--rule", default=None, help="only this rule's alerts")
    p_alerts.set_defaults(func=cmd_alerts)

    p_tail = sub.add_parser("tail", help="the 15-minute live feed, alerts inline")
    add_campaign_args(p_tail)
    p_tail.add_argument(
        "--limit", type=int, default=48, help="show the last N intervals (0 = all)"
    )
    p_tail.set_defaults(func=cmd_tail)

    p_query = sub.add_parser("query", help="campaign-wide statistics for one metric")
    add_campaign_args(p_query)
    p_query.add_argument("--metric", required=True, help="metric name (see docs/TELEMETRY.md)")
    p_query.add_argument("--day-from", type=int, default=None, help="window start day")
    p_query.add_argument("--day-to", type=int, default=None, help="window end day (inclusive)")
    p_query.add_argument("--plot", action="store_true", help="ASCII-plot the window")
    p_query.set_defaults(func=cmd_query)

    p_jobs = sub.add_parser("jobs", help="finished-job rollups")
    add_campaign_args(p_jobs)
    p_jobs.add_argument("--top", type=int, default=15, help="show the top N by Mflops (0 = all)")
    p_jobs.add_argument("--user", type=int, default=None, help="only this user's jobs")
    p_jobs.set_defaults(func=cmd_jobs)

    p_report = sub.add_parser(
        "report", help="one finished job's performance page (MPCDF-style)"
    )
    add_campaign_args(p_report)
    p_report.add_argument("--job", type=int, required=True, help="finished job id")
    p_report.add_argument(
        "--trace",
        action="store_true",
        help="run traced to attribute wall time across phases",
    )
    p_report.set_defaults(func=cmd_report, standalone=True)

    p_serve = sub.add_parser(
        "serve", help="run a campaign into the resident hub and serve the query API"
    )
    add_campaign_args(p_serve)
    p_serve.add_argument("--name", default="campaign", help="campaign name in the hub")
    p_serve.add_argument(
        "--fleet",
        default=None,
        metavar="PRESET",
        help="serve a fleet preset (federated fleet.* metrics) instead of "
        "a single campaign",
    )
    p_serve.add_argument(
        "--trace", action="store_true", help="record job spans for report attribution"
    )
    p_serve.add_argument("--host", default="127.0.0.1", help="bind address")
    p_serve.add_argument("--port", type=int, default=0, help="TCP port (0 = ephemeral)")
    p_serve.add_argument(
        "--port-file",
        default=None,
        metavar="PATH",
        help="write the bound port here once listening (for scripts)",
    )
    p_serve.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        metavar="PATH",
        help="also export the campaign summary JSON (byte-identical to a "
        "detached sp2-study --json run)",
    )
    p_serve.add_argument(
        "--max-campaigns", type=_positive_int, default=8, help="resident campaign cap"
    )
    p_serve.add_argument(
        "--store-capacity",
        type=_positive_int,
        default=None,
        help="per-metric ring capacity",
    )
    p_serve.add_argument(
        "--max-series",
        type=_positive_int,
        default=None,
        help="per-store series cap (least-recently-appended eviction)",
    )
    p_serve.set_defaults(func=cmd_serve, standalone=True)

    p_ask = sub.add_parser("ask", help="one request against a running service")
    from repro.ops.protocol import REQUEST_OPS

    p_ask.add_argument("op", choices=REQUEST_OPS, help="protocol op to send")
    p_ask.add_argument("--host", default="127.0.0.1", help="service address")
    p_ask.add_argument("--port", type=int, default=None, help="service port")
    p_ask.add_argument(
        "--port-file", default=None, metavar="PATH", help="read the port from this file"
    )
    p_ask.add_argument("--campaign", default=None, help="campaign name")
    p_ask.add_argument("--metric", default=None, help="metric name (query)")
    p_ask.add_argument("--job", type=int, default=None, help="job id (report)")
    p_ask.add_argument("--member", default=None, help="fleet member (jobs/report)")
    p_ask.add_argument("--since", type=int, default=None, help="alert cursor (alerts)")
    p_ask.add_argument("--limit", type=int, default=None, help="row cap (jobs)")
    p_ask.add_argument("--last", type=int, default=None, help="last N points (query)")
    p_ask.add_argument(
        "--points", action="store_true", help="include raw points (query)"
    )
    p_ask.add_argument(
        "--watch",
        type=int,
        default=0,
        metavar="N",
        help="after subscribe, print N alert pushes before exiting",
    )
    p_ask.add_argument(
        "--timeout", type=float, default=30.0, help="per-request timeout seconds"
    )
    p_ask.set_defaults(func=cmd_ask, standalone=True)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        if getattr(args, "standalone", False):
            # serve/report/ask drive their own campaign (or none at all).
            return args.func(args)
        dataset = run_campaign(args)
        return args.func(dataset, args)
    except BrokenPipeError:
        # Downstream closed the pipe (| head, | grep -q): not our error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return EXIT_OK


if __name__ == "__main__":
    raise SystemExit(main())
