"""``sp2-ops`` — the live operations view of a campaign.

Where ``sp2-study`` prints the paper's post-hoc artefacts, ``sp2-ops``
replays a campaign through the streaming telemetry subsystem and renders
what an operator console would have shown *while it ran*: the rolling
15-minute feed, the fired alerts, campaign-wide metric statistics, and
the finished-job rollups.

Examples::

    sp2-ops alerts --days 30 --seed 1          # what fired, when
    sp2-ops tail   --days 3  --seed 1          # the live feed, alerts inline
    sp2-ops query  --metric tlb.miss_rate --days 30 --plot
    sp2-ops jobs   --days 30 --top 10
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.core.study import StudyDataset, run_study
from repro.telemetry.rules import render_alert, render_alerts
from repro.telemetry.service import METRIC_CATALOG, TelemetryService
from repro.workload.traces import SECONDS_PER_DAY


def _fmt_time(t: float) -> str:
    day, rem = divmod(t, SECONDS_PER_DAY)
    hh, mm = divmod(int(rem) // 60, 60)
    return f"d{int(day):03d} {hh:02d}:{mm:02d}"


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def add_campaign_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    p.add_argument("--days", type=_positive_int, default=3, help="campaign length in days")
    p.add_argument("--nodes", type=_positive_int, default=144, help="cluster size")
    p.add_argument("--users", type=_positive_int, default=60, help="user population size")
    p.add_argument(
        "--fault-profile",
        default=None,
        metavar="NAME",
        help="inject faults from a named profile (none, mild, pathological)",
    )
    p.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="replay the campaign through the sharded runner on N workers",
    )
    p.add_argument(
        "--shard-days",
        type=_positive_int,
        default=None,
        metavar="K",
        help="days per shard for --workers",
    )


def run_campaign(args: argparse.Namespace) -> StudyDataset:
    t0 = time.time()
    faulty = f", faults={args.fault_profile}" if args.fault_profile else ""
    print(
        f"Replaying {args.days}-day campaign on {args.nodes} nodes "
        f"(seed {args.seed}, {args.users} users{faulty})...",
        file=sys.stderr,
    )
    dataset = run_study(
        args.seed,
        n_days=args.days,
        n_nodes=args.nodes,
        n_users=args.users,
        workers=args.workers,
        shard_days=args.shard_days,
        fault_profile=args.fault_profile,
    )
    print(f"Replay done in {time.time() - t0:.1f}s.", file=sys.stderr)
    return dataset


def _telemetry(dataset: StudyDataset) -> TelemetryService:
    # Every WorkloadStudy-run dataset carries its service; the replay
    # path covers datasets loaded from elsewhere.
    if dataset.telemetry is not None:
        return dataset.telemetry
    return TelemetryService.replay(dataset.collector.samples, dataset.accounting.records)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_alerts(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    if len(dataset.collector.samples) == 0:
        # A campaign with zero samples watched nothing: exiting 0 would
        # let a broken collector read as "no alerts, all healthy".
        print(
            "error: campaign produced zero collector samples — nothing was "
            "monitored (check --days / the collector cadence)",
            file=sys.stderr,
        )
        return 1
    alerts = t.alerts
    if args.rule:
        # "fault" alerts come straight from the injector, not from an
        # engine rule — still a filterable rule name here.
        known = {r.name for r in t.engine.rules} | {"fault"}
        if args.rule not in known:
            print(
                f"unknown rule {args.rule!r}; available: {', '.join(sorted(known))}",
                file=sys.stderr,
            )
            return 2
        alerts = [a for a in alerts if a.rule == args.rule]
    print(render_alerts(alerts))
    by_rule = ", ".join(f"{k}={v}" for k, v in sorted(t.alert_counts().items()))
    print(
        f"-- {len(alerts)} alert(s) shown, {len(t.alerts)} fired "
        f"({by_rule or 'none'}), {t.engine.suppressed} suppressed by cooldown, "
        f"{t.intervals_seen} intervals watched"
    )
    return 0


def cmd_tail(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    times, gflops = t.store.window("gflops.system")
    _, ratio = t.store.window("fxu.sys_user_ratio")
    _, tlb = t.store.window("tlb.miss_rate")
    _, nodes = t.store.window("nodes.reporting")
    _, active = t.store.window("jobs.active")

    n = len(times)
    start = 0 if args.limit in (None, 0) else max(0, n - args.limit)
    alerts = iter(t.alerts)
    pending = next(alerts, None)
    # Fast-forward alerts that precede the visible window.
    while pending is not None and start > 0 and pending.time < times[start]:
        pending = next(alerts, None)
    print(
        f"{'TIME':<10s} {'GFLOPS':>7s} {'SYS/USR':>8s} {'TLB M/s':>8s} "
        f"{'NODES':>6s} {'JOBS':>5s}"
    )
    shown = 0
    for i in range(start, n):
        while pending is not None and pending.time <= times[i]:
            print("! " + render_alert(pending))
            pending = next(alerts, None)
        print(
            f"{_fmt_time(times[i]):<10s} {gflops[i]:7.2f} {ratio[i]:8.3f} "
            f"{tlb[i]:8.3f} {int(nodes[i]):6d} {int(active[i]):5d}"
        )
        shown += 1
    while pending is not None:
        print("! " + render_alert(pending))
        pending = next(alerts, None)
    dropped = t.store.series("gflops.system").dropped
    note = f" (ring evicted {dropped} older samples)" if dropped else ""
    print(f"-- {shown} of {t.intervals_seen} intervals shown{note}")
    return 0


def cmd_query(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    if args.metric not in t.store.names():
        known = "\n  ".join(
            f"{name:<22s} {METRIC_CATALOG.get(name, '')}" for name in t.store.names()
        )
        print(f"unknown metric {args.metric!r}; available:\n  {known}", file=sys.stderr)
        return 2
    t0 = args.day_from * SECONDS_PER_DAY if args.day_from is not None else None
    t1 = (args.day_to + 1) * SECONDS_PER_DAY if args.day_to is not None else None
    s = t.store.summary(args.metric)
    times, values = t.store.window(args.metric, t0, t1)
    print(f"metric   : {args.metric} — {METRIC_CATALOG.get(args.metric, '?')}")
    print(f"points   : {s.count} appended, {s.dropped} evicted, {len(times)} in window")
    print(f"last     : {s.last:.4g}   ewma {s.ewma:.4g}")
    print(f"range    : min {s.min:.4g}   max {s.max:.4g}")
    qtext = "   ".join(f"p{int(p * 100):d} {v:.4g}" for p, v in sorted(s.quantiles.items()))
    print(f"quantiles: {qtext}  (P² streaming estimates)")
    if args.plot and len(values):
        from repro.util.asciiplot import ascii_series

        print()
        print(ascii_series(values, title=f"{args.metric} over the window"))
    return 0


def cmd_jobs(dataset: StudyDataset, args: argparse.Namespace) -> int:
    t = _telemetry(dataset)
    rollups = t.rollups.for_user(args.user) if args.user is not None else list(
        t.rollups.finished
    )
    rollups.sort(key=lambda r: r.total_mflops, reverse=True)
    shown = rollups if args.top in (None, 0) else rollups[: args.top]
    print(
        f"{'JOB':>6s} {'APP':<20s} {'USER':>5s} {'NODES':>5s} {'WALL h':>7s} "
        f"{'MFLOPS':>9s} {'MF/NODE':>8s} {'SYS/USR':>8s}  FINALIZED"
    )
    for r in shown:
        rec = r.record
        print(
            f"{r.job_id:>6d} {r.app_name:<20.20s} {r.user:>5d} "
            f"{rec.nodes_requested:>5d} {rec.walltime_seconds / 3600:7.2f} "
            f"{r.total_mflops:9.1f} {r.mflops_per_node:8.2f} "
            f"{r.system_user_fxu_ratio:8.3f}  {_fmt_time(r.finalized_at)}"
        )
    suspects = t.rollups.paging_suspects()
    print(
        f"-- {len(shown)} of {len(t.rollups)} finished jobs shown, "
        f"{len(t.rollups.active)} still active, {len(suspects)} paging suspect(s)"
    )
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="sp2-ops",
        description="Live operations view of an SP2 measurement campaign.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    p_alerts = sub.add_parser("alerts", help="alerts fired during the campaign")
    add_campaign_args(p_alerts)
    p_alerts.add_argument("--rule", default=None, help="only this rule's alerts")
    p_alerts.set_defaults(func=cmd_alerts)

    p_tail = sub.add_parser("tail", help="the 15-minute live feed, alerts inline")
    add_campaign_args(p_tail)
    p_tail.add_argument(
        "--limit", type=int, default=48, help="show the last N intervals (0 = all)"
    )
    p_tail.set_defaults(func=cmd_tail)

    p_query = sub.add_parser("query", help="campaign-wide statistics for one metric")
    add_campaign_args(p_query)
    p_query.add_argument("--metric", required=True, help="metric name (see docs/TELEMETRY.md)")
    p_query.add_argument("--day-from", type=int, default=None, help="window start day")
    p_query.add_argument("--day-to", type=int, default=None, help="window end day (inclusive)")
    p_query.add_argument("--plot", action="store_true", help="ASCII-plot the window")
    p_query.set_defaults(func=cmd_query)

    p_jobs = sub.add_parser("jobs", help="finished-job rollups")
    add_campaign_args(p_jobs)
    p_jobs.add_argument("--top", type=int, default=15, help="show the top N by Mflops (0 = all)")
    p_jobs.add_argument("--user", type=int, default=None, help="only this user's jobs")
    p_jobs.set_defaults(func=cmd_jobs)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    dataset = run_campaign(args)
    return args.func(dataset, args)


if __name__ == "__main__":
    raise SystemExit(main())
