"""Discrete-event simulation kernel.

The SP2 campaign is replayed at *job* granularity: job arrivals, PBS
scheduling decisions, prologue/epilogue counter captures, and the
15-minute RS2HPM cron samples are all events on one simulated clock.
Within a job, counter accrual is computed analytically by the POWER2
model (vectorized over nodes and intervals), so the event queue stays
small even for a 270-day, 144-node campaign.
"""

from repro.sim.engine import Event, SimClock, Simulator
from repro.sim.periodic import PeriodicTask

__all__ = ["Event", "SimClock", "Simulator", "PeriodicTask"]
