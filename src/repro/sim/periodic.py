"""Periodic task helper — the 15-minute cron sampler is one of these."""

from __future__ import annotations

from typing import Callable

from repro.sim.engine import Event, Simulator


class PeriodicTask:
    """Re-arms itself every ``period`` seconds until stopped.

    The callback receives the simulator; the first firing happens at
    ``start`` (default: one period from scheduling time), matching cron
    semantics where the job first runs at the next interval boundary.
    """

    def __init__(
        self,
        sim: Simulator,
        period: float,
        callback: Callable[[Simulator], None],
        *,
        start: float | None = None,
        name: str = "periodic",
    ) -> None:
        if period <= 0:
            raise ValueError(f"period must be positive, got {period}")
        self.sim = sim
        self.period = period
        self.callback = callback
        self.name = name
        self.fired = 0
        self._stopped = False
        self._event: Event | None = None
        first = sim.now + period if start is None else start
        self._event = sim.schedule_at(first, self._fire, name=name)

    def _fire(self, sim: Simulator) -> None:
        if self._stopped:
            return
        self.fired += 1
        self.callback(sim)
        if not self._stopped:
            self._event = sim.schedule(self.period, self._fire, name=self.name)

    def stop(self) -> None:
        """Stop firing; a pending event is cancelled."""
        self._stopped = True
        if self._event is not None:
            self._event.cancel()
