"""Event-queue simulator.

A deliberately small kernel: a priority queue of timestamped events with
stable FIFO ordering for ties.  Handlers may schedule further events.
Time is in seconds of simulated wall clock from campaign start.
"""

from __future__ import annotations

import heapq
import itertools
import warnings
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.bus import EventBus
    from repro.tracing.tracer import Tracer


@dataclass(order=True)
class Event:
    """One scheduled callback.

    Ordering is (time, sequence) so simultaneous events fire in the order
    they were scheduled — important for prologue-before-sample semantics
    at interval boundaries.
    """

    time: float
    seq: int
    handler: Callable[["Simulator"], None] = field(compare=False)
    name: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event dead; it is skipped when popped."""
        self.cancelled = True


class SimClock:
    """Monotonic simulated clock owned by the :class:`Simulator`."""

    def __init__(self) -> None:
        self._now = 0.0

    @property
    def now(self) -> float:
        return self._now

    def _advance(self, t: float) -> None:
        if t < self._now:
            raise ValueError(f"clock cannot run backwards: {t} < {self._now}")
        self._now = t


class Simulator:
    """Priority-queue discrete-event simulator."""

    def __init__(self, *, label: str = "") -> None:
        self.clock = SimClock()
        self._queue: list[Event] = []
        self._seq = itertools.count()
        self.events_processed = 0
        #: Diagnostic name for this simulator instance; sharded campaigns
        #: label each shard's engine so warnings identify their shard.
        self.label = label
        #: Optional span tracer; each dispatched event becomes a span so
        #: spans opened inside handlers nest under it (machine timeline).
        self.tracer: "Tracer | None" = None
        #: Optional telemetry bus for engine-level notices (truncation).
        self.bus: "EventBus | None" = None

    @property
    def now(self) -> float:
        return self.clock.now

    def schedule(
        self,
        delay: float,
        handler: Callable[["Simulator"], None],
        *,
        name: str = "",
    ) -> Event:
        """Schedule ``handler`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay})")
        return self.schedule_at(self.now + delay, handler, name=name)

    def schedule_at(
        self,
        time: float,
        handler: Callable[["Simulator"], None],
        *,
        name: str = "",
    ) -> Event:
        """Schedule ``handler`` at an absolute simulated time."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past ({time} < {self.now})")
        ev = Event(time=time, seq=next(self._seq), handler=handler, name=name)
        heapq.heappush(self._queue, ev)
        return ev

    def every(
        self,
        period: float,
        handler: Callable[["Simulator"], None],
        *,
        start: float | None = None,
        name: str = "periodic",
    ):
        """Periodic hook: run ``handler`` every ``period`` seconds.

        Returns the armed :class:`~repro.sim.periodic.PeriodicTask` (its
        ``stop()`` disarms the hook).  This is the attachment point the
        measurement and telemetry layers use — the 15-minute cron, the
        utilization probe — without each caller importing the periodic
        machinery.
        """
        from repro.sim.periodic import PeriodicTask

        return PeriodicTask(self, period, handler, start=start, name=name)

    def peek(self) -> Optional[float]:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._queue and self._queue[0].cancelled:
            heapq.heappop(self._queue)
        return self._queue[0].time if self._queue else None

    def step(self) -> bool:
        """Run the next event.  Returns ``False`` when the queue is empty."""
        while self._queue:
            ev = heapq.heappop(self._queue)
            if ev.cancelled:
                continue
            self.clock._advance(ev.time)
            self.events_processed += 1
            tracer = self.tracer
            if tracer is not None and tracer.enabled:
                from repro.tracing.span import CAT_SIM_EVENT

                with tracer.span(ev.name or "event", CAT_SIM_EVENT, seq=ev.seq):
                    ev.handler(self)
            else:
                ev.handler(self)
            return True
        return False

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at a time horizon.

        With ``until`` set, events at exactly ``until`` still fire and the
        clock is left at ``until`` (so periodic samplers scheduled on the
        horizon boundary are included, as the paper's final-day 15-minute
        sample would be).

        Exhausting ``max_events`` with live events still queued (inside
        the horizon) means the campaign was *truncated*, not finished —
        a ``RuntimeWarning`` is issued and, when a telemetry bus is
        attached, a ``sim.truncated`` event is published so downstream
        artifacts can flag the run.
        """
        processed = 0
        truncated_at: float | None = None
        while True:
            nxt = self.peek()
            if nxt is None:
                break
            if until is not None and nxt > until:
                break
            if max_events is not None and processed >= max_events:
                truncated_at = nxt
                break
            self.step()
            processed += 1
        if truncated_at is not None:
            where = f"simulation {self.label!r}" if self.label else "simulation"
            warnings.warn(
                f"{where} truncated by max_events={max_events} at t={self.now:.0f}s "
                f"with events still queued (next at t={truncated_at:.0f}s); "
                "results cover a partial campaign",
                RuntimeWarning,
                stacklevel=2,
            )
            if self.bus is not None:
                from repro.telemetry.bus import TOPIC_SIM_TRUNCATED, SimTruncated

                self.bus.publish(
                    TOPIC_SIM_TRUNCATED,
                    SimTruncated(
                        time=self.now,
                        events_processed=self.events_processed,
                        next_event_time=truncated_at,
                    ),
                )
        if until is not None and until > self.now:
            self.clock._advance(until)
