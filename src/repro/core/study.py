"""Run the measurement campaign end-to-end.

The study replays a :class:`~repro.workload.traces.CampaignTrace`
through PBS on an :class:`~repro.cluster.machine.SP2Machine`, with the
RS2HPM collector sampling every node at 15-minute intervals — the same
three data paths §3 describes (system-wide cron samples, per-job
prologue/epilogue deltas, and per-node daemons), feeding the same
analyses §5–§6 report.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.machine import SP2Machine
from repro.faults.events import FaultLog
from repro.faults.profile import FaultProfile
from repro.power2.config import MachineConfig, SwitchConfig
from repro.hpm.collector import SAMPLE_INTERVAL_SECONDS, SystemCollector
from repro.hpm.daemon import NodeDaemon
from repro.hpm.derived import DerivedRates, workload_rates
from repro.pbs.accounting import AccountingLog
from repro.pbs.scheduler import PBSServer
from repro.sim.engine import Simulator
from repro.telemetry.bus import EventBus
from repro.telemetry.service import TelemetryService
from repro.tracing.tracer import Tracer
from repro.util.rng import RngStreams
from repro.workload.traces import SECONDS_PER_DAY, CampaignTrace, generate_trace

#: Queue policies :class:`~repro.pbs.queue.JobQueue` implements.
SCHEDULER_POLICIES = ("backfill", "fifo")


@dataclass(frozen=True)
class StudyConfig:
    """Campaign parameters (defaults = the paper's setup)."""

    seed: int = 0
    n_days: int = 270
    n_nodes: int = 144
    n_users: int = 60
    sample_interval: float = SAMPLE_INTERVAL_SECONDS
    #: Cadence of the utilization probe (how often we record how many
    #: nodes are servicing PBS jobs).
    utilization_probe_interval: float = SAMPLE_INTERVAL_SECONDS
    #: Per-node hardware constants (None = the POWER2/590 defaults).
    machine_config: MachineConfig | None = None
    #: Switch fabric characteristics (None = the SP2 High Performance
    #: Switch defaults) — fleet members override this per machine.
    switch_config: SwitchConfig | None = None
    #: Override the demand model's mean target load (None = default).
    demand_mean: float | None = None
    #: Fault-injection profile (None or a null profile = healthy run;
    #: healthy campaigns are byte-identical to pre-fault releases).
    fault_profile: FaultProfile | None = None
    #: Counter-accrual backend (see :mod:`repro.power2.batch`):
    #: ``auto`` picks the fastest vectorized store available; ``scalar``
    #: forces the legacy per-node path.  Every backend produces bitwise
    #: identical measurements — the flag exists for differential testing
    #: and benchmarking, not for trading accuracy against speed.
    accrual_backend: str = "auto"
    #: PBS queue policy: ``backfill`` is NAS's drain-for-wide-jobs
    #: conditional backfill (the paper's setup, §6); ``fifo`` disables
    #: backfill entirely so nothing starts ahead of a blocked head —
    #: the what-if axis scenario sweeps explore.
    scheduler_policy: str = "backfill"
    #: Node count above which a blocked head-of-queue job drains the
    #: machine instead of being backfilled past (§6's 64-node limit).
    scheduler_wide_threshold: int = 64

    def __post_init__(self) -> None:
        # Fail at construction with the offending value, not days deep
        # inside the simulation with an empty-collector traceback.
        if self.n_days <= 0:
            raise ValueError(f"n_days must be positive, got {self.n_days}")
        if self.n_nodes <= 0:
            raise ValueError(f"n_nodes must be positive, got {self.n_nodes}")
        if self.n_users <= 0:
            raise ValueError(f"n_users must be positive, got {self.n_users}")
        if self.sample_interval <= 0:
            raise ValueError(
                f"sample_interval must be positive, got {self.sample_interval}"
            )
        if self.utilization_probe_interval <= 0:
            raise ValueError(
                "utilization_probe_interval must be positive, got "
                f"{self.utilization_probe_interval}"
            )
        if self.demand_mean is not None and self.demand_mean <= 0:
            raise ValueError(f"demand_mean must be positive, got {self.demand_mean}")
        if self.scheduler_policy not in SCHEDULER_POLICIES:
            raise ValueError(
                f"unknown scheduler_policy {self.scheduler_policy!r}; "
                f"available: {', '.join(SCHEDULER_POLICIES)}"
            )
        if self.scheduler_wide_threshold <= 0:
            raise ValueError(
                "scheduler_wide_threshold must be positive, got "
                f"{self.scheduler_wide_threshold}"
            )
        from repro.power2.batch import resolve_backend

        resolve_backend(self.accrual_backend)  # unknown names raise here


@dataclass
class StudyDataset:
    """Everything the campaign measured."""

    config: StudyConfig
    trace: CampaignTrace
    collector: SystemCollector
    accounting: AccountingLog
    #: (probe time, busy node count) pairs.
    utilization_probes: list[tuple[float, int]] = field(default_factory=list)
    #: The streaming observability view built while the campaign ran
    #: (None for datasets assembled outside :class:`WorkloadStudy`).
    telemetry: TelemetryService | None = None
    #: Simulator events dispatched during the campaign (attribution /
    #: truncation forensics; 0 for hand-assembled datasets).
    events_processed: int = 0
    #: The span tracer the campaign ran with (None = tracing off).
    tracer: Tracer | None = None
    #: Fault-injection record (None = campaign ran without faults).
    faults: FaultLog | None = None

    # ------------------------------------------------------------------
    # Day-level series (the paper's Figure 1 axes)
    # ------------------------------------------------------------------
    def daily_rates(self) -> list[DerivedRates]:
        """Per-day derived rates over all nodes (per-node convention).

        Intervals are grouped by the calendar day their *start* falls in
        rather than by position, so collector gaps (dropped passes under
        fault injection) don't shift later days; a gap-spanning interval
        simply contributes its counts to the day it started in.
        """
        out: list[DerivedRates] = []
        grouped: dict[int, list] = {}
        for iv in self.collector.intervals():
            grouped.setdefault(int(iv.start // SECONDS_PER_DAY), []).append(iv)
        for d in range(self.config.n_days):
            chunk = grouped.get(d)
            if not chunk:
                break
            totals: dict[str, int] = {}
            for iv in chunk:
                for k, v in iv.totals.items():
                    totals[k] = totals.get(k, 0) + v
            seconds = chunk[-1].end - chunk[0].start
            out.append(workload_rates(totals, seconds, self.config.n_nodes))
        return out

    def daily_gflops(self) -> np.ndarray:
        return np.array([r.gflops_system() for r in self.daily_rates()])

    def interval_gflops(self) -> tuple[np.ndarray, np.ndarray]:
        """(interval end times, system Gflops) at the 15-minute cadence —
        the series behind the paper's 5.7 Gflops 15-minute maximum."""
        ivs = self.collector.intervals()
        times = np.array([iv.end for iv in ivs])
        rates = np.empty(len(ivs))
        for i, iv in enumerate(ivs):
            r = workload_rates(iv.totals, iv.seconds, self.config.n_nodes)
            rates[i] = r.gflops_system()
        return times, rates

    def interval_dma_bytes_per_node(self) -> tuple[np.ndarray, np.ndarray]:
        """(interval ends, per-node DMA bytes/s) — §5's message-passing
        traffic series (avg ≈1.3 MB/s, best 15-minute ≈5.4 MB/s)."""
        from repro.power2.node import DMA_TRANSFER_BYTES

        ivs = self.collector.intervals()
        times = np.array([iv.end for iv in ivs])
        rates = np.array(
            [
                (iv.totals.get("user.dma_read", 0) + iv.totals.get("user.dma_write", 0))
                * DMA_TRANSFER_BYTES
                / (iv.seconds * max(iv.n_nodes, 1))
                for iv in ivs
            ]
        )
        return times, rates

    def daily_utilization(self) -> np.ndarray:
        """Fraction of node-time servicing PBS jobs, per day (§5's 64%)."""
        if not self.utilization_probes:
            return np.zeros(0)
        times = np.array([t for t, _ in self.utilization_probes])
        busy = np.array([b for _, b in self.utilization_probes], dtype=float)
        days = (times / SECONDS_PER_DAY).astype(int)
        out = np.zeros(self.config.n_days)
        for d in range(self.config.n_days):
            mask = days == d
            if mask.any():
                out[d] = busy[mask].mean() / self.config.n_nodes
        return out


class WorkloadStudy:
    """Wires machine, PBS, collector and trace together and runs them."""

    def __init__(
        self,
        config: StudyConfig | None = None,
        *,
        tracer: Tracer | None = None,
        fault_streams: RngStreams | None = None,
    ) -> None:
        self.config = config or StudyConfig()
        #: RNG tree the fault schedule is drawn from.  ``None`` defaults
        #: to the root tree for the config's seed; the sharded runner
        #: passes each shard's spawned tree so shard fault schedules are
        #: independent yet reproducible.
        self._fault_streams = fault_streams
        self.sim = Simulator()
        self.machine = SP2Machine(
            self.config.n_nodes,
            self.config.machine_config,
            accrual_backend=self.config.accrual_backend,
            switch_config=self.config.switch_config,
        )
        # One bus per campaign: the collector and PBS publish, the
        # telemetry service consumes — the streaming counterpart of §3's
        # "stores this data for later analysis".
        self.bus = EventBus()
        # One tracer per campaign (optional): bound to the simulation
        # clock and threaded through every instrumented layer, spans
        # republished on the bus.
        self.tracer = tracer
        if tracer is not None:
            tracer.bind_clock(lambda: self.sim.now)
            if tracer.bus is None:
                tracer.bus = self.bus
        self.sim.tracer = tracer
        self.sim.bus = self.bus
        self.telemetry = TelemetryService(bus=self.bus, tracer=tracer)
        # Queue policy from the config; the defaults build exactly the
        # queue PBSServer would build itself, so healthy campaigns stay
        # byte-identical to pre-sweep releases.
        from repro.pbs.queue import JobQueue

        queue = JobQueue(
            wide_threshold=self.config.scheduler_wide_threshold,
            backfill=self.config.scheduler_policy == "backfill",
        )
        self.pbs = PBSServer(
            self.sim, self.machine, queue=queue, bus=self.bus, tracer=tracer
        )
        self.machine.switch.tracer = tracer
        self.machine.filesystem.tracer = tracer
        self.daemons = [NodeDaemon.for_node(n) for n in self.machine.nodes]
        self.collector = SystemCollector(
            self.daemons,
            interval=self.config.sample_interval,
            bus=self.bus,
            tracer=tracer,
        )
        self._utilization_probes: list[tuple[float, int]] = []

    def _probe_utilization(self, sim: Simulator) -> None:
        self._utilization_probes.append((sim.now, self.pbs.busy_node_count()))

    def run(self, trace: CampaignTrace | None = None) -> StudyDataset:
        """Replay the trace; returns the measured dataset."""
        cfg = self.config
        trace = trace or generate_trace(
            cfg.seed,
            n_days=cfg.n_days,
            n_nodes=cfg.n_nodes,
            n_users=cfg.n_users,
            demand_mean=cfg.demand_mean,
            machine_config=cfg.machine_config,
        )
        if trace.n_nodes != cfg.n_nodes:
            raise ValueError(
                f"trace was generated for {trace.n_nodes} nodes, study has {cfg.n_nodes}"
            )

        # Arm fault injection (no-op on healthy campaigns: the injector,
        # its streams, and its schedule are never built, so the healthy
        # path draws exactly the same random numbers as before).
        injector = None
        profile = cfg.fault_profile
        if profile is not None and not profile.is_null:
            from repro.faults.injector import FaultInjector

            streams = self._fault_streams or RngStreams(cfg.seed)
            injector = FaultInjector(profile, streams)
            injector.arm(self, trace.horizon_seconds)

        # Arm the samplers (baseline sample at t=0 included).
        self.collector.attach(self.sim)
        self._probe_utilization(self.sim)
        self.sim.every(
            cfg.utilization_probe_interval,
            self._probe_utilization,
            name="utilization-probe",
        )

        # Schedule every submission.
        for sub in trace.submissions:
            self.sim.schedule_at(
                sub.time,
                lambda sim, s=sub: self.pbs.submit(s.user, s.app_name, s.nodes, s.profile),
                name=f"submit-{sub.app_name}",
            )

        if self.tracer is not None and self.tracer.enabled:
            from repro.tracing.span import CAT_CAMPAIGN

            with self.tracer.span(
                "campaign",
                CAT_CAMPAIGN,
                seed=cfg.seed,
                days=cfg.n_days,
                nodes=cfg.n_nodes,
            ):
                self.sim.run(until=trace.horizon_seconds)
        else:
            self.sim.run(until=trace.horizon_seconds)

        # Final sync so trailing partial intervals are consistent.
        for node in self.machine.nodes:
            node.sync(trace.horizon_seconds)

        return StudyDataset(
            config=cfg,
            trace=trace,
            collector=self.collector,
            accounting=self.pbs.accounting,
            utilization_probes=self._utilization_probes,
            telemetry=self.telemetry,
            events_processed=self.sim.events_processed,
            tracer=self.tracer,
            faults=(
                injector.finalize(trace.horizon_seconds) if injector is not None else None
            ),
        )


def run_study(
    seed: int = 0,
    *,
    n_days: int = 270,
    n_nodes: int = 144,
    n_users: int = 60,
    workers: int | None = None,
    shard_days: int | None = None,
    fault_profile: "FaultProfile | str | None" = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    shard_attempts: int = 3,
    accrual_backend: str = "auto",
) -> StudyDataset:
    """One-call campaign: generate the trace, run it, return the data.

    With ``workers`` and/or ``shard_days`` set, the campaign runs through
    the sharded runner (:func:`repro.parallel.run_parallel_study`): split
    into day-range shards, executed across worker processes, merged
    deterministically.  The merged output depends on the shard plan but
    never on the worker count.

    ``fault_profile`` (a profile object or a name from
    :data:`repro.faults.PROFILES`) arms fault injection.
    ``checkpoint_dir``/``resume``/``shard_attempts`` enable the runner's
    checkpoint-restart path; they imply the sharded runner even without
    ``workers``/``shard_days`` (a single-shard plan, still byte-identical
    to the serial run).

    ``accrual_backend`` selects how counters integrate (scalar per-node
    vs. batched store, :mod:`repro.power2.batch`); every backend yields
    bitwise identical output.
    """
    profile = None
    if fault_profile is not None:
        profile = (
            FaultProfile.named(fault_profile)
            if isinstance(fault_profile, str)
            else fault_profile
        )
        if profile.is_null:
            profile = None
    cfg = StudyConfig(
        seed=seed,
        n_days=n_days,
        n_nodes=n_nodes,
        n_users=n_users,
        fault_profile=profile,
        accrual_backend=accrual_backend,
    )
    sharded = (
        workers is not None
        or shard_days is not None
        or checkpoint_dir is not None
        or resume
    )
    if not sharded:
        return WorkloadStudy(cfg).run()
    from repro.parallel.runner import run_parallel_study

    return run_parallel_study(
        cfg,
        workers=workers or 1,
        shard_days=shard_days,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        max_attempts=shard_attempts,
    )
