"""Study orchestration — the paper's nine months as one object.

:class:`~repro.core.study.WorkloadStudy` wires the substrates together
(machine + PBS + RS2HPM collector + workload trace), runs the campaign
on the simulation clock, and returns a :class:`~repro.core.study.StudyDataset`
with everything the analysis layer needs: the 15-minute system samples,
the batch-job accounting log, and the utilization series.
"""

from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy, run_study

__all__ = ["StudyConfig", "StudyDataset", "WorkloadStudy", "run_study"]
