"""User population and demand model.

§5 attributes Figure 1's large day-to-day swings to *load demand*, not
code variability: "The fluctuations shown in Figure 1 result more from
load demand than code variability."  The demand model is therefore an
AR(1) day-level random walk over target machine load, modulated by a
weekly pattern, and the user population maps each submission to a user
with persistent application preferences (users resubmit the same codes
for months — which keeps Figure 4's per-node-count histories flat, as
the paper observed: no improvement trend over time).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.workload.apps import popularity_weights


@dataclass(frozen=True)
class UserProfile:
    """One account: preference weights over the application catalog."""

    user_id: int
    app_names: tuple[str, ...]
    app_weights: np.ndarray

    def pick_app(self, rng: np.random.Generator) -> str:
        return str(rng.choice(self.app_names, p=self.app_weights))


class UserPopulation:
    """A fixed population with Dirichlet-skewed app preferences."""

    def __init__(self, n_users: int, rng: np.random.Generator) -> None:
        if n_users <= 0:
            raise ValueError("need at least one user")
        names, base = popularity_weights()
        self.users: list[UserProfile] = []
        for uid in range(n_users):
            # Concentrated Dirichlet around the global popularity makes
            # each user favour a couple of codes without erasing the
            # global mix.
            prefs = rng.dirichlet(base * 12.0 + 0.05)
            self.users.append(
                UserProfile(user_id=uid, app_names=tuple(names), app_weights=prefs)
            )

    def __len__(self) -> int:
        return len(self.users)

    def pick_user(self, rng: np.random.Generator) -> UserProfile:
        return self.users[int(rng.integers(len(self.users)))]


class DemandModel:
    """AR(1) day-level target load with a weekly rhythm.

    ``demand(day)`` returns the target fraction of machine node-seconds
    users will try to consume that day.  Calibrated so the *achieved*
    utilization averages ≈0.64 with a ≈0.95 ceiling (§5), once queueing
    losses are taken.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        n_days: int,
        *,
        mean: float = 0.44,
        phi: float = 0.82,
        sigma: float = 0.16,
        weekend_factor: float = 0.62,
    ) -> None:
        if n_days <= 0:
            raise ValueError("need at least one day")
        if not 0.0 <= phi < 1.0:
            raise ValueError("phi must be in [0, 1)")
        self.n_days = n_days
        levels = np.empty(n_days)
        x = mean
        for d in range(n_days):
            x = mean + phi * (x - mean) + rng.normal(0.0, sigma)
            weekly = weekend_factor if d % 7 in (5, 6) else 1.0
            levels[d] = np.clip(x * weekly, 0.05, 1.08)
        self.levels = levels

    def demand(self, day: int) -> float:
        return float(self.levels[day])

    def submit_time_in_day(self, rng: np.random.Generator) -> float:
        """Seconds-into-day of one submission: a work-hours bulge over a
        uniform floor (batch scripts also fire overnight)."""
        if rng.random() < 0.65:
            # Work-hours bulge centred mid-afternoon.
            t = rng.normal(14.5 * 3600.0, 3.2 * 3600.0)
            return float(np.clip(t, 0.0, 86399.0))
        return float(rng.uniform(0.0, 86400.0))
