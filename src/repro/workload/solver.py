"""A real structured-grid solver, instrumented for the POWER2 model.

§4 sketches the typical NAS code: a 3-D block, ~50 points on a side,
~25 variables per point, nearest-neighbour halo exchange.  This module
is a working miniature of that code path — an actual NumPy 7-point
Jacobi relaxation over a decomposed grid — wired to the reproduction's
measurement stack:

* the sweep really executes (vectorized NumPy, per the hpc-parallel
  guides) and its residual really converges;
* each sweep's *instruction mix* is derived by operation counting from
  the stencil (7 loads + 1 store + 8 flops per point, fma-able pairs),
  so the same work can be costed by the POWER2 cycle model and counted
  by the hardware monitor — real code in, counter data out.

This is the bridge between "we simulate the workload statistically" and
"a user's actual program": the examples run both paths on the same
solver and compare.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power2.isa import InstructionMix
from repro.power2.pipeline import DependencyProfile, MemoryBehaviour
from repro.workload.decomposition import Decomposition


@dataclass(frozen=True)
class SweepCounts:
    """Operation counts for one Jacobi sweep over one subdomain."""

    points: int
    flops: float
    loads: float
    stores: float

    @property
    def flops_per_memref(self) -> float:
        return self.flops / (self.loads + self.stores)


class JacobiSolver:
    """7-point Jacobi relaxation of ∇²u = f on one rank's subdomain.

    The halo is one cell wide; ``exchange_halos`` copies faces between
    rank arrays the way the message-passing layer would (the switch
    model charges the wall time separately).
    """

    #: Per interior point: 6 neighbour loads + 1 rhs load, 1 store.
    LOADS_PER_POINT = 7.0
    STORES_PER_POINT = 1.0
    #: 6 adds + 1 multiply + 1 subtract — 8 flops, of which 6 pair into
    #: 3 fma-able add/mul couples on the POWER2.
    FLOPS_PER_POINT = 8.0
    FMA_FLOP_FRACTION = 0.5

    def __init__(self, shape: tuple[int, int, int], *, h: float = 1.0) -> None:
        if any(s < 1 for s in shape):
            raise ValueError("subdomain must have at least one interior point")
        self.shape = shape
        self.h = h
        full = tuple(s + 2 for s in shape)  # +1 halo each side
        self.u = np.zeros(full)
        self.f = np.zeros(full)

    # ------------------------------------------------------------------
    # Numerics
    # ------------------------------------------------------------------
    def sweep(self) -> float:
        """One Jacobi sweep; returns the max update (∞-norm residual)."""
        u, f, h2 = self.u, self.f, self.h * self.h
        new = (
            u[:-2, 1:-1, 1:-1]
            + u[2:, 1:-1, 1:-1]
            + u[1:-1, :-2, 1:-1]
            + u[1:-1, 2:, 1:-1]
            + u[1:-1, 1:-1, :-2]
            + u[1:-1, 1:-1, 2:]
            - h2 * f[1:-1, 1:-1, 1:-1]
        ) / 6.0
        delta = float(np.abs(new - u[1:-1, 1:-1, 1:-1]).max())
        self.u[1:-1, 1:-1, 1:-1] = new
        return delta

    def interior_points(self) -> int:
        return int(np.prod(self.shape))

    # ------------------------------------------------------------------
    # Instrumentation
    # ------------------------------------------------------------------
    def sweep_counts(self) -> SweepCounts:
        """Operation counts for one sweep, by stencil arithmetic."""
        n = self.interior_points()
        return SweepCounts(
            points=n,
            flops=n * self.FLOPS_PER_POINT,
            loads=n * self.LOADS_PER_POINT,
            stores=n * self.STORES_PER_POINT,
        )

    def sweep_mix(self) -> InstructionMix:
        """The sweep as a POWER2 instruction mix (counted, not guessed)."""
        c = self.sweep_counts()
        fma_flops = c.flops * self.FMA_FLOP_FRACTION
        fma_insts = fma_flops / 2.0
        single = c.flops - fma_flops
        return InstructionMix(
            fp_add=single * 0.85,  # the neighbour additions
            fp_mul=single * 0.15,  # the h² and 1/6 scalings
            fp_fma=fma_insts,
            fp_misc=c.points * 0.5,  # fp stores overlap hardware (§2)
            loads=c.loads,
            stores=c.stores,
            int_ops=c.points * 0.4,  # addressing updates
            branches=c.points * 0.15,
            cr_ops=c.points * 0.03,
        )

    def memory_behaviour(self) -> MemoryBehaviour:
        """Stencil sweeps stream planes: three planes of reuse."""
        return MemoryBehaviour(
            dcache_miss_ratio=0.012, tlb_miss_ratio=0.0008, icache_miss_ratio=1e-4
        )

    @staticmethod
    def dependency_profile() -> DependencyProfile:
        """The neighbour sum is a short reduction chain per point."""
        return DependencyProfile(ilp=0.72, load_use_fraction=0.3)


class DecomposedJacobi:
    """The solver run over a :class:`Decomposition` — §4 end to end."""

    def __init__(
        self,
        global_shape: tuple[int, int, int],
        n_ranks: int,
        *,
        variables: int = 1,
    ) -> None:
        self.decomp = Decomposition(global_shape, n_ranks)
        self.decomp.check()
        self.variables = variables
        self.solvers = [
            JacobiSolver(self.decomp.subdomain(r).shape) for r in range(n_ranks)
        ]
        self.iterations_done = 0

    def set_uniform_load(self, value: float = 1.0) -> None:
        for s in self.solvers:
            s.f[1:-1, 1:-1, 1:-1] = value

    def exchange_halos(self) -> float:
        """Copy faces between neighbouring ranks; returns bytes moved."""
        moved = 0.0
        for rank, solver in enumerate(self.solvers):
            for label, nb_rank in self.decomp.neighbors(rank).items():
                axis = "xyz".index(label[0])
                positive = label[1] == "+"
                nb = self.solvers[nb_rank]
                src = [slice(1, -1)] * 3
                dst = [slice(1, -1)] * 3
                if positive:
                    src[axis] = slice(-2, -1)  # my high interior plane
                    dst[axis] = slice(0, 1)  # neighbour's low halo
                else:
                    src[axis] = slice(1, 2)
                    dst[axis] = slice(-1, None)
                plane = solver.u[tuple(src)]
                nb.u[tuple(dst)] = plane
                moved += plane.nbytes
        return moved

    def iterate(self, n: int = 1) -> float:
        """n halo-exchange + sweep rounds; returns the last residual."""
        residual = float("inf")
        for _ in range(n):
            self.exchange_halos()
            residual = max(s.sweep() for s in self.solvers)
            self.iterations_done += 1
        return residual

    # ------------------------------------------------------------------
    def per_rank_mix(self, rank: int) -> InstructionMix:
        return self.solvers[rank].sweep_mix()

    def halo_bytes_per_iteration(self, rank: int) -> float:
        return self.decomp.halo_bytes(rank, variables=self.variables)
