"""Synthetic NAS workload generation.

The paper's nine months of production cannot be replayed from data (none
survives), so this subpackage regenerates it *mechanistically* from the
population §4–§6 describe:

* :mod:`repro.workload.kernels` — instruction-mix models of the
  computational kernels (multiblock CFD solvers, optimization sweeps,
  blocked matrix multiply, strided legacy codes, NPB BT, sequential
  access), each with an access-pattern-derived memory behaviour and a
  dependency profile;
* :mod:`repro.workload.profile` — turns a kernel + parallel structure
  (halo exchange, I/O cadence) into the steady per-node counter rates
  PBS installs on nodes;
* :mod:`repro.workload.apps` — the application catalog with node-count
  and memory-demand distributions (including the §6 paging-prone wide
  jobs);
* :mod:`repro.workload.users` — the user population and submission
  process (diurnal demand, day-to-day load random walk);
* :mod:`repro.workload.traces` — the 270-day campaign trace generator.
"""

from repro.workload.kernels import KernelSpec, KERNELS, kernel
from repro.workload.profile import JobProfile, build_job_profile
from repro.workload.apps import ApplicationTemplate, APPLICATIONS, application
from repro.workload.users import UserPopulation, DemandModel
from repro.workload.traces import CampaignTrace, Submission, generate_trace
from repro.workload.npb import NPB_SUITE, NPBSpec, npb, suite_report

__all__ = [
    "KernelSpec",
    "KERNELS",
    "kernel",
    "JobProfile",
    "build_job_profile",
    "ApplicationTemplate",
    "APPLICATIONS",
    "application",
    "UserPopulation",
    "DemandModel",
    "CampaignTrace",
    "Submission",
    "generate_trace",
    "NPB_SUITE",
    "NPBSpec",
    "npb",
    "suite_report",
]
