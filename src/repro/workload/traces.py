"""Campaign trace generation: 270 days of submissions.

``generate_trace`` draws the full nine-month submission stream — who
submits what, when, on how many nodes, with which concrete job profile —
from one seed.  Each day's submissions are budgeted in node-seconds
against that day's demand level, so machine load tracks the demand
random walk and Figure 1's shape emerges from queueing rather than
being painted on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.power2.config import MachineConfig
from repro.util.rng import RngStreams, spawn_stream
from repro.workload.apps import APPLICATIONS, application
from repro.workload.profile import JobProfile
from repro.workload.users import DemandModel, UserPopulation

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class Submission:
    """One job submission in the trace."""

    time: float
    user: int
    app_name: str
    nodes: int
    profile: JobProfile

    @property
    def node_seconds(self) -> float:
        return self.nodes * self.profile.walltime_seconds


@dataclass
class CampaignTrace:
    """The full submission stream plus the models that produced it."""

    seed: int
    n_days: int
    n_nodes: int
    submissions: list[Submission] = field(default_factory=list)
    demand_levels: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def horizon_seconds(self) -> float:
        return self.n_days * SECONDS_PER_DAY

    def total_node_seconds(self) -> float:
        return float(sum(s.node_seconds for s in self.submissions))

    def offered_load(self) -> float:
        """Submitted node-seconds over machine capacity for the horizon."""
        return self.total_node_seconds() / (self.n_nodes * self.horizon_seconds)


def generate_trace(
    seed: int = 0,
    *,
    n_days: int = 270,
    n_nodes: int = 144,
    n_users: int = 60,
    demand_mean: float | None = None,
    machine_config: MachineConfig | None = None,
) -> CampaignTrace:
    """Generate the campaign submission trace.

    Per day: the demand model gives a target load fraction; submissions
    are drawn (user → app → concrete job) until the day's node-second
    budget is spent.  Long jobs spill their node-seconds into later days
    naturally when PBS runs them.

    ``machine_config`` is the machine the jobs will run on: the profiles'
    cache/TLB miss ratios and cycle counts are evaluated against its
    geometry (``None`` = the stock POWER2/590), while every random draw
    stays machine-independent — the *same* jobs run on a different
    machine, which is what a what-if sweep over TLB or page geometry
    means.
    """
    if n_days <= 0:
        raise ValueError("need at least one day")
    streams = RngStreams(seed)
    pop_rng = streams.get("workload.population")
    demand_rng = streams.get("workload.demand")
    sub_rng = streams.get("workload.submissions")

    population = UserPopulation(n_users, pop_rng)
    if demand_mean is None:
        demand = DemandModel(demand_rng, n_days)
    else:
        demand = DemandModel(demand_rng, n_days, mean=demand_mean)

    trace = CampaignTrace(
        seed=seed, n_days=n_days, n_nodes=n_nodes, demand_levels=demand.levels.copy()
    )
    for day in range(n_days):
        _fill_day(
            trace, day, demand.demand(day), population, demand, sub_rng,
            machine_config=machine_config,
        )

    trace.submissions.sort(key=lambda s: s.time)
    return trace


def _fill_day(
    trace: CampaignTrace,
    day: int,
    demand_level: float,
    population: UserPopulation,
    demand: DemandModel,
    rng: np.random.Generator,
    *,
    machine_config: MachineConfig | None = None,
) -> None:
    """Draw one day's submissions into ``trace`` (day indexed within the
    trace).  Extracted so the serial generator and the per-shard
    generator share one draw sequence per day."""
    n_nodes = trace.n_nodes
    budget = demand_level * n_nodes * SECONDS_PER_DAY
    spent = 0.0
    # Guard: a single enormous job may overshoot the budget; allow it
    # but stop the day there (matches real users, who don't budget).
    while spent < budget:
        user = population.pick_user(rng)
        app = application(user.pick_app(rng))
        if min(app.node_choices) > n_nodes:
            continue  # this code cannot run on a small test machine
        nodes = app.sample_nodes(rng)
        if nodes > n_nodes:
            nodes = max(c for c in app.node_choices if c <= n_nodes)
        profile = app.instantiate(rng, nodes=nodes, config=machine_config)
        t = day * SECONDS_PER_DAY + demand.submit_time_in_day(rng)
        sub = Submission(
            time=t,
            user=user.user_id,
            app_name=app.name,
            nodes=profile.nodes,
            profile=profile,
        )
        trace.submissions.append(sub)
        spent += sub.node_seconds


def generate_shard_trace(
    seed: int,
    *,
    shard_id: int,
    day_start: int,
    day_end: int,
    n_days: int,
    n_nodes: int = 144,
    n_users: int = 60,
    demand_mean: float | None = None,
    machine_config: MachineConfig | None = None,
) -> CampaignTrace:
    """The submission stream for one day-range shard of a campaign.

    The campaign-level models are shared — the user population and the
    demand random walk are drawn from the *campaign* seed over the full
    ``n_days``, so every shard sees the same users and the same global
    demand shape.  The per-submission draws come from
    :func:`repro.util.rng.spawn_stream`, so shard ``shard_id``'s
    submissions are a pure function of ``(seed, shard_id)`` — unaffected
    by other shards, worker count, or scheduling order.

    Times in the returned trace are *shard-local* (day 0 is
    ``day_start``); the merge layer offsets them back onto the campaign
    clock.
    """
    if not 0 <= day_start < day_end <= n_days:
        raise ValueError(
            f"shard days [{day_start}, {day_end}) outside campaign of {n_days} days"
        )
    streams = RngStreams(seed)
    population = UserPopulation(n_users, streams.get("workload.population"))
    demand_rng = streams.get("workload.demand")
    if demand_mean is None:
        demand = DemandModel(demand_rng, n_days)
    else:
        demand = DemandModel(demand_rng, n_days, mean=demand_mean)

    sub_rng = spawn_stream(seed, shard_id).get("workload.submissions")
    trace = CampaignTrace(
        seed=seed,
        n_days=day_end - day_start,
        n_nodes=n_nodes,
        demand_levels=demand.levels[day_start:day_end].copy(),
    )
    for local_day, day in enumerate(range(day_start, day_end)):
        _fill_day(
            trace, local_day, demand.demand(day), population, demand, sub_rng,
            machine_config=machine_config,
        )

    trace.submissions.sort(key=lambda s: s.time)
    return trace


def slice_trace(trace: CampaignTrace, day_start: int, day_end: int) -> CampaignTrace:
    """The day range ``[day_start, day_end)`` of ``trace``, on a local
    clock (day 0 of the slice is ``day_start``).

    The sharded runner uses this to split an externally supplied trace
    (a fleet member's routed submission stream) into day-range shards —
    the counterpart of :func:`generate_shard_trace` for traces that are
    *given* rather than drawn.  Submissions keep their identity; only the
    clock moves.
    """
    if not 0 <= day_start < day_end <= trace.n_days:
        raise ValueError(
            f"slice days [{day_start}, {day_end}) outside trace of {trace.n_days} days"
        )
    from dataclasses import replace

    offset = day_start * SECONDS_PER_DAY
    end = day_end * SECONDS_PER_DAY
    if offset == 0.0:
        subs = [s for s in trace.submissions if s.time < end]
    else:
        subs = [
            replace(s, time=s.time - offset)
            for s in trace.submissions
            if offset <= s.time < end
        ]
    return CampaignTrace(
        seed=trace.seed,
        n_days=day_end - day_start,
        n_nodes=trace.n_nodes,
        submissions=subs,
        demand_levels=trace.demand_levels[day_start:day_end].copy(),
    )


def submissions_by_app(trace: CampaignTrace) -> dict[str, int]:
    """Submission counts per application (diagnostics)."""
    out: dict[str, int] = {name: 0 for name in APPLICATIONS}
    for s in trace.submissions:
        out[s.app_name] += 1
    return out
