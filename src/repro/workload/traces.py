"""Campaign trace generation: 270 days of submissions.

``generate_trace`` draws the full nine-month submission stream — who
submits what, when, on how many nodes, with which concrete job profile —
from one seed.  Each day's submissions are budgeted in node-seconds
against that day's demand level, so machine load tracks the demand
random walk and Figure 1's shape emerges from queueing rather than
being painted on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import RngStreams
from repro.workload.apps import APPLICATIONS, application
from repro.workload.profile import JobProfile
from repro.workload.users import DemandModel, UserPopulation

SECONDS_PER_DAY = 86400.0


@dataclass(frozen=True)
class Submission:
    """One job submission in the trace."""

    time: float
    user: int
    app_name: str
    nodes: int
    profile: JobProfile

    @property
    def node_seconds(self) -> float:
        return self.nodes * self.profile.walltime_seconds


@dataclass
class CampaignTrace:
    """The full submission stream plus the models that produced it."""

    seed: int
    n_days: int
    n_nodes: int
    submissions: list[Submission] = field(default_factory=list)
    demand_levels: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def horizon_seconds(self) -> float:
        return self.n_days * SECONDS_PER_DAY

    def total_node_seconds(self) -> float:
        return float(sum(s.node_seconds for s in self.submissions))

    def offered_load(self) -> float:
        """Submitted node-seconds over machine capacity for the horizon."""
        return self.total_node_seconds() / (self.n_nodes * self.horizon_seconds)


def generate_trace(
    seed: int = 0,
    *,
    n_days: int = 270,
    n_nodes: int = 144,
    n_users: int = 60,
    demand_mean: float | None = None,
) -> CampaignTrace:
    """Generate the campaign submission trace.

    Per day: the demand model gives a target load fraction; submissions
    are drawn (user → app → concrete job) until the day's node-second
    budget is spent.  Long jobs spill their node-seconds into later days
    naturally when PBS runs them.
    """
    if n_days <= 0:
        raise ValueError("need at least one day")
    streams = RngStreams(seed)
    pop_rng = streams.get("workload.population")
    demand_rng = streams.get("workload.demand")
    sub_rng = streams.get("workload.submissions")

    population = UserPopulation(n_users, pop_rng)
    if demand_mean is None:
        demand = DemandModel(demand_rng, n_days)
    else:
        demand = DemandModel(demand_rng, n_days, mean=demand_mean)

    trace = CampaignTrace(
        seed=seed, n_days=n_days, n_nodes=n_nodes, demand_levels=demand.levels.copy()
    )
    capacity_per_day = n_nodes * SECONDS_PER_DAY

    for day in range(n_days):
        budget = demand.demand(day) * capacity_per_day
        spent = 0.0
        # Guard: a single enormous job may overshoot the budget; allow it
        # but stop the day there (matches real users, who don't budget).
        while spent < budget:
            user = population.pick_user(sub_rng)
            app = application(user.pick_app(sub_rng))
            if min(app.node_choices) > n_nodes:
                continue  # this code cannot run on a small test machine
            nodes = app.sample_nodes(sub_rng)
            if nodes > n_nodes:
                nodes = max(c for c in app.node_choices if c <= n_nodes)
            profile = app.instantiate(sub_rng, nodes=nodes)
            t = day * SECONDS_PER_DAY + demand.submit_time_in_day(sub_rng)
            sub = Submission(
                time=t,
                user=user.user_id,
                app_name=app.name,
                nodes=profile.nodes,
                profile=profile,
            )
            trace.submissions.append(sub)
            spent += sub.node_seconds

    trace.submissions.sort(key=lambda s: s.time)
    return trace


def submissions_by_app(trace: CampaignTrace) -> dict[str, int]:
    """Submission counts per application (diagnostics)."""
    out: dict[str, int] = {name: 0 for name in APPLICATIONS}
    for s in trace.submissions:
        out[s.app_name] += 1
    return out
