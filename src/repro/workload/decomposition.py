"""Domain decomposition — §4's parallelization strategy.

"The flowfield surrounding a complete aircraft is partitioned into
blocks ... Parallelization of the computation occurs thru a domain
decomposition strategy allocating one or more blocks to each processor.
Each processor runs a copy of the flow solver and the various processors
communicate with each other generally through nearest neighbor
communication."

This module implements that machinery for structured 3-D grids: split a
global grid into a processor grid, compute each rank's sub-extent, its
face neighbours, and its halo-exchange volume — the numbers the job
profiles' :class:`~repro.workload.profile.CommPattern` summarizes.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np


def factor3(p: int) -> tuple[int, int, int]:
    """Most-cubic 3-factor decomposition of ``p`` processors."""
    if p <= 0:
        raise ValueError("processor count must be positive")
    best: tuple[int, int, int] | None = None
    best_score = None
    for a in range(1, int(round(p ** (1 / 3))) + 2):
        if p % a:
            continue
        q = p // a
        for b in range(a, int(q**0.5) + 1):
            if q % b:
                continue
            c = q // b
            dims = (a, b, c)
            score = max(dims) / min(dims)
            if best_score is None or score < best_score:
                best, best_score = dims, score
    if best is None:
        best = (1, 1, p)
    return best


@dataclass(frozen=True)
class Subdomain:
    """One rank's piece of the global grid."""

    rank: int
    coords: tuple[int, int, int]
    lo: tuple[int, int, int]
    hi: tuple[int, int, int]  # exclusive

    @property
    def shape(self) -> tuple[int, int, int]:
        return tuple(h - l for l, h in zip(self.lo, self.hi))  # type: ignore[return-value]

    @property
    def cells(self) -> int:
        return int(np.prod(self.shape))

    def face_area(self, axis: int) -> int:
        s = self.shape
        return int(np.prod([s[i] for i in range(3) if i != axis]))


class Decomposition:
    """A structured 3-D grid split over a processor grid."""

    def __init__(
        self,
        global_shape: tuple[int, int, int],
        n_ranks: int,
        *,
        proc_grid: tuple[int, int, int] | None = None,
    ) -> None:
        if any(s <= 0 for s in global_shape):
            raise ValueError("grid extents must be positive")
        self.global_shape = tuple(int(s) for s in global_shape)
        if proc_grid is None:
            # Align the largest processor dimension with the largest
            # grid axis (minimizes surface-to-volume of the subdomains).
            dims = sorted(factor3(n_ranks))
            axis_order = np.argsort(np.argsort([-s for s in self.global_shape]))
            proc_grid = tuple(dims[::-1][axis_order[a]] for a in range(3))
        self.proc_grid = proc_grid
        if int(np.prod(self.proc_grid)) != n_ranks:
            raise ValueError(
                f"processor grid {self.proc_grid} does not cover {n_ranks} ranks"
            )
        if any(p > s for p, s in zip(self.proc_grid, self.global_shape)):
            raise ValueError("more processors than grid planes along an axis")
        self.n_ranks = n_ranks

    # ------------------------------------------------------------------
    def _extent(self, axis: int, coord: int) -> tuple[int, int]:
        """Near-equal split of one axis (remainder spread from the low
        end, as the classic block distribution does)."""
        n, p = self.global_shape[axis], self.proc_grid[axis]
        base, extra = divmod(n, p)
        lo = coord * base + min(coord, extra)
        hi = lo + base + (1 if coord < extra else 0)
        return lo, hi

    def coords_of(self, rank: int) -> tuple[int, int, int]:
        if not 0 <= rank < self.n_ranks:
            raise ValueError(f"rank {rank} out of range")
        px, py, pz = self.proc_grid
        return (rank // (py * pz), (rank // pz) % py, rank % pz)

    def rank_of(self, coords: tuple[int, int, int]) -> int:
        px, py, pz = self.proc_grid
        x, y, z = coords
        return (x * py + y) * pz + z

    def subdomain(self, rank: int) -> Subdomain:
        coords = self.coords_of(rank)
        extents = [self._extent(axis, coords[axis]) for axis in range(3)]
        return Subdomain(
            rank=rank,
            coords=coords,
            lo=tuple(e[0] for e in extents),
            hi=tuple(e[1] for e in extents),
        )

    def neighbors(self, rank: int) -> dict[str, int]:
        """Face neighbours: axis+direction label → neighbour rank."""
        coords = self.coords_of(rank)
        out: dict[str, int] = {}
        for axis, sign in itertools.product(range(3), (-1, +1)):
            nb = list(coords)
            nb[axis] += sign
            if 0 <= nb[axis] < self.proc_grid[axis]:
                label = f"{'xyz'[axis]}{'-' if sign < 0 else '+'}"
                out[label] = self.rank_of(tuple(nb))  # type: ignore[arg-type]
        return out

    def halo_bytes(self, rank: int, *, variables: int, element_bytes: int = 8) -> float:
        """Bytes exchanged per iteration by one rank (all faces, both
        directions counted once as sends)."""
        sub = self.subdomain(rank)
        total_faces = 0
        for label in self.neighbors(rank):
            axis = "xyz".index(label[0])
            total_faces += sub.face_area(axis)
        return float(total_faces * variables * element_bytes)

    # ------------------------------------------------------------------
    def check(self) -> None:
        """Partition invariants: disjoint cover of the global grid."""
        seen = 0
        for r in range(self.n_ranks):
            seen += self.subdomain(r).cells
        if seen != int(np.prod(self.global_shape)):
            raise AssertionError("subdomains do not cover the grid exactly")

    def balance(self) -> float:
        """max/mean cell count over ranks (1.0 = perfect)."""
        cells = [self.subdomain(r).cells for r in range(self.n_ranks)]
        return max(cells) / (sum(cells) / len(cells))
