"""Instruction-mix models of the workload's computational kernels.

A :class:`KernelSpec` describes a code's *per-flop* instruction economy:
how its flops split across add/mul/div/fma, how many memory instructions
support each flop (the §5 register-reuse ratio), how much instruction-
level parallelism its dependency graph exposes, and what its memory
access pattern does to the cache and TLB.  Miss ratios are derived from
the access-pattern parameters with the same formulas the reference
cache/TLB simulators validate (see ``tests/power2/test_dcache.py``).

Anchors from the paper:

* the workload-average CFD mix (Table 3): fma ≈54% of flops,
  flops/memref ≈0.6, ilp ≈0.74 (FPU ratio 1.7), cache-miss ratio ≈1%,
  TLB ≈0.1%;
* the blocked matrix multiply (§5): 240 Mflops, flops/memref = 3.0,
  nearly all fma;
* NPB BT (Table 4): 44 Mflops/CPU, miss ratios 1.2% / 0.06%;
* the no-reuse sequential walk (Table 4): 3% / 0.2%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.power2.config import MachineConfig, POWER2_590
from repro.power2.dcache import SetAssociativeCache
from repro.power2.isa import InstructionMix
from repro.power2.pipeline import (
    CycleModel,
    DependencyProfile,
    ExecutionResult,
    MemoryBehaviour,
)
from repro.power2.tlb import TLB


@dataclass(frozen=True)
class AccessPattern:
    """Cache-relevant shape of a kernel's memory references.

    ``reuse_fraction`` is the fraction of references satisfied from
    previously touched lines/pages (blocking and loop order raise it);
    ``stride_bytes`` is the dominant stride of the *non-reused* walk.
    """

    reuse_fraction: float = 0.0
    stride_bytes: int = 8
    #: Multiplier on the stride-derived TLB miss ratio.  Codes that jump
    #: between many grid blocks (multiblock CFD) touch far more pages
    #: than a single strided walk — §7 calls out "relatively high TLB
    #: miss rates" as a workload signature.
    tlb_locality_factor: float = 1.0

    def dcache_miss_ratio(self, config: MachineConfig = POWER2_590) -> float:
        base = SetAssociativeCache.strided_miss_ratio(config.dcache, self.stride_bytes)
        return (1.0 - self.reuse_fraction) * base

    def tlb_miss_ratio(self, config: MachineConfig = POWER2_590) -> float:
        base = TLB.strided_miss_ratio(config.tlb, self.stride_bytes)
        return min(1.0, (1.0 - self.reuse_fraction) * base * self.tlb_locality_factor)


@dataclass(frozen=True)
class KernelSpec:
    """One computational kernel's per-flop instruction economy."""

    name: str
    description: str
    #: Fraction of flops produced by fma instructions (2 flops each).
    fma_flop_fraction: float
    #: Of the non-fma flops, fraction that are adds (rest multiplies,
    #: minus the divide share below).
    add_share: float
    #: Fraction of flops that are divides (the monitor won't report
    #: them, but they execute and cost 10 cycles each).
    div_flop_fraction: float
    #: Memory instructions per flop (1 / the §5 register-reuse ratio).
    mem_insts_per_flop: float
    #: Fraction of memory instructions issued as quad (two doublewords).
    quad_fraction: float
    #: FP-unit non-arithmetic instructions per flop (moves, fp stores).
    fp_misc_per_flop: float
    #: Integer/addressing instructions per flop.
    int_per_flop: float
    #: Branches per flop (loop ends; §5 reads ≈11% of instructions).
    branch_per_flop: float
    #: Condition-register ops per flop.
    cr_per_flop: float
    deps: DependencyProfile
    access: AccessPattern
    #: I-cache misses per instruction (loops mostly re-execute, §5:
    #: ≈0.4%% of fetches miss for the workload).
    icache_miss_ratio: float = 2.5e-4

    def mix_for_flops(self, flops: float) -> InstructionMix:
        """The instruction mix that produces ``flops`` flops."""
        if flops < 0:
            raise ValueError("flops cannot be negative")
        fma_flops = flops * self.fma_flop_fraction
        div = flops * self.div_flop_fraction
        single_flops = flops - fma_flops - div
        mem = flops * self.mem_insts_per_flop
        quad = mem * self.quad_fraction
        nonquad = mem - quad
        return InstructionMix(
            fp_add=single_flops * self.add_share,
            fp_mul=single_flops * (1.0 - self.add_share),
            fp_div=div,
            fp_fma=fma_flops / 2.0,
            fp_misc=flops * self.fp_misc_per_flop,
            # Loads outnumber stores roughly 2:1 in solver sweeps.
            loads=nonquad * (2.0 / 3.0),
            stores=nonquad * (1.0 / 3.0),
            quad_loads=quad * (2.0 / 3.0),
            quad_stores=quad * (1.0 / 3.0),
            int_ops=flops * self.int_per_flop,
            branches=flops * self.branch_per_flop,
            cr_ops=flops * self.cr_per_flop,
        )

    def memory_behaviour(self, config: MachineConfig = POWER2_590) -> MemoryBehaviour:
        return MemoryBehaviour(
            dcache_miss_ratio=self.access.dcache_miss_ratio(config),
            tlb_miss_ratio=self.access.tlb_miss_ratio(config),
            icache_miss_ratio=self.icache_miss_ratio,
        )

    def with_(self, **changes: object) -> "KernelSpec":
        """A modified copy (used for per-job variability)."""
        return replace(self, **changes)


def _k(**kw: object) -> KernelSpec:
    return KernelSpec(**kw)  # type: ignore[arg-type]


#: The kernel catalog.  Every application template references one.
KERNELS: dict[str, KernelSpec] = {
    k.name: k
    for k in (
        _k(
            name="cfd_multiblock",
            description="Implicit multiblock CFD solver sweep (the workload's bulk)",
            fma_flop_fraction=0.50,
            add_share=0.60,
            div_flop_fraction=0.015,
            mem_insts_per_flop=1.55,
            quad_fraction=0.10,
            fp_misc_per_flop=0.12,
            int_per_flop=0.10,
            branch_per_flop=0.20,
            cr_per_flop=0.05,
            deps=DependencyProfile(ilp=0.74, load_use_fraction=0.25),
            access=AccessPattern(
                reuse_fraction=0.68, stride_bytes=8, tlb_locality_factor=2.5
            ),
        ),
        _k(
            name="cfd_tuned",
            description="Cache-blocked CFD solver (the better-performing codes, §7)",
            fma_flop_fraction=0.72,
            add_share=0.55,
            div_flop_fraction=0.01,
            mem_insts_per_flop=1.00,
            quad_fraction=0.35,
            fp_misc_per_flop=0.08,
            int_per_flop=0.06,
            branch_per_flop=0.08,
            cr_per_flop=0.02,
            deps=DependencyProfile(ilp=0.78, load_use_fraction=0.22),
            access=AccessPattern(reuse_fraction=0.85, stride_bytes=8),
        ),
        _k(
            name="legacy_vector",
            description="Unported vector-machine code: long strides, poor reuse",
            fma_flop_fraction=0.30,
            add_share=0.55,
            div_flop_fraction=0.03,
            mem_insts_per_flop=2.0,
            quad_fraction=0.0,
            fp_misc_per_flop=0.15,
            int_per_flop=0.12,
            branch_per_flop=0.18,
            cr_per_flop=0.05,
            deps=DependencyProfile(ilp=0.55, load_use_fraction=0.40),
            access=AccessPattern(
                reuse_fraction=0.50, stride_bytes=32, tlb_locality_factor=2.0
            ),
        ),
        _k(
            name="matmul_blocked",
            description="Fully blocked, unrolled single-node matrix multiply (§5's 240 Mflops anchor)",
            fma_flop_fraction=0.98,
            add_share=0.50,
            div_flop_fraction=0.0,
            mem_insts_per_flop=1.0 / 3.0,
            quad_fraction=0.60,
            fp_misc_per_flop=0.01,
            int_per_flop=0.02,
            branch_per_flop=0.01,
            cr_per_flop=0.005,
            deps=DependencyProfile(ilp=0.98, load_use_fraction=0.01),
            access=AccessPattern(reuse_fraction=0.995, stride_bytes=8),
        ),
        _k(
            name="npb_bt",
            description="NAS Parallel Benchmark BT: loop nests rearranged for cache reuse (Table 4)",
            fma_flop_fraction=0.70,
            add_share=0.55,
            div_flop_fraction=0.01,
            mem_insts_per_flop=1.15,
            quad_fraction=0.25,
            fp_misc_per_flop=0.10,
            int_per_flop=0.08,
            branch_per_flop=0.10,
            cr_per_flop=0.03,
            deps=DependencyProfile(ilp=0.78, load_use_fraction=0.20),
            access=AccessPattern(reuse_fraction=0.62, stride_bytes=8),
        ),
        _k(
            name="sequential_access",
            description="Single large array walked once, no reuse (Table 4's bound)",
            fma_flop_fraction=0.0,
            add_share=1.0,
            div_flop_fraction=0.0,
            mem_insts_per_flop=1.0,
            quad_fraction=0.0,
            fp_misc_per_flop=0.02,
            int_per_flop=0.05,
            branch_per_flop=0.06,
            cr_per_flop=0.01,
            deps=DependencyProfile(ilp=0.80, load_use_fraction=0.50),
            access=AccessPattern(reuse_fraction=0.0, stride_bytes=8),
        ),
        _k(
            name="spectral_em",
            description="BLAS3-heavy electromagnetic scattering solver (§5's 29 Gflops code family)",
            fma_flop_fraction=0.80,
            add_share=0.55,
            div_flop_fraction=0.005,
            mem_insts_per_flop=0.90,
            quad_fraction=0.45,
            fp_misc_per_flop=0.06,
            int_per_flop=0.05,
            branch_per_flop=0.05,
            cr_per_flop=0.015,
            deps=DependencyProfile(ilp=0.80, load_use_fraction=0.12),
            access=AccessPattern(reuse_fraction=0.90, stride_bytes=8),
        ),
        _k(
            name="nonfp_preproc",
            description="Grid generation / preprocessing: integer and I/O heavy, little FP",
            fma_flop_fraction=0.05,
            add_share=0.80,
            div_flop_fraction=0.01,
            mem_insts_per_flop=6.0,
            quad_fraction=0.0,
            fp_misc_per_flop=0.30,
            int_per_flop=4.0,
            branch_per_flop=1.5,
            cr_per_flop=0.4,
            deps=DependencyProfile(ilp=0.60, load_use_fraction=0.35),
            access=AccessPattern(reuse_fraction=0.55, stride_bytes=16),
        ),
    )
}


def kernel(name: str) -> KernelSpec:
    """Look up a kernel by name."""
    try:
        return KERNELS[name]
    except KeyError:
        raise KeyError(f"unknown kernel {name!r}; known: {sorted(KERNELS)}") from None


@lru_cache(maxsize=4096)
def evaluate_kernel(
    spec: KernelSpec, flops: float, config: MachineConfig = POWER2_590
) -> ExecutionResult:
    """Cost ``flops`` flops of ``spec`` on ``config`` — memoized.

    The cycle model is a pure function of ``(spec, flops, config)`` and
    every argument is a frozen, hashable dataclass, so repeated
    evaluations (double campaign runs in differential tests, re-merged
    shards, the NPB suite report regenerating tables) return the *same*
    frozen :class:`~repro.power2.pipeline.ExecutionResult` instead of
    re-running the dispatch/cache/TLB pipeline.  Identical object,
    identical bits — memoization cannot change output.

    Only catalog-style :class:`KernelSpec` kernels are cacheable;
    instrumented-code adapters (``_MixKernel``) are unhashable by design
    and take the uncached path in
    :func:`repro.workload.profile.build_job_profile`.
    """
    model = CycleModel(config)
    mix = spec.mix_for_flops(flops)
    return model.execute(mix, spec.memory_behaviour(config), spec.deps)


def clear_kernel_cache() -> None:
    """Drop memoized kernel evaluations (for leak-hunting tests)."""
    evaluate_kernel.cache_clear()
