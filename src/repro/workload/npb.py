"""The NAS Parallel Benchmarks 2.1, as workload jobs.

The paper cites NPB 2.1 (Saphir, Woo & Yarrow 1996) and uses BT's
RS2HPM-measured miss ratios in Table 4.  This module models the five
pencil-and-paper-specified NPB codes the SP2 era ran — BT, SP, LU, MG,
FT — plus EP, each as a kernel-economy + parallel-structure template at
classes A and B, so the reproduction can run the whole suite as jobs and
compare per-benchmark behaviour (who stresses the TLB, who communicates
hardest, who computes fastest).

Flop counts per class follow the NPB 2 report's nominal operation
counts; grids are the published class sizes.  The per-code instruction
economies reuse the kernel catalog's parameterization, specialised per
benchmark (e.g. MG's strided inter-grid transfers, FT's transpose
all-to-all).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from repro.power2.pipeline import DependencyProfile
from repro.workload.kernels import AccessPattern, KernelSpec
from repro.workload.profile import CommPattern, IOPattern, JobProfile, build_job_profile

MB = 1024 * 1024


@dataclass(frozen=True)
class NPBSpec:
    """One NPB code at one class size."""

    name: str
    klass: str
    #: Published problem size (grid points or FFT size).
    problem: str
    #: Total operations for the full run, in Gflops (NPB 2 report).
    total_gflop: float
    #: Standard process count used on the NAS SP2 runs.
    processes: int
    kernel: KernelSpec
    #: Per-iteration halo / transpose communication per node.
    comm: CommPattern
    iterations: int
    memory_per_node: float

    def job_profile(self) -> JobProfile:
        """Build the job profile for one full benchmark run.

        Memoized per ``(benchmark, class)``: the spec is a frozen
        hashable dataclass and the build is pure, so regenerating
        Table 4 or the suite report reuses the frozen profile.
        """
        return _cached_job_profile(self)

    def _build_job_profile(self) -> JobProfile:
        flops_per_node_per_iter = (
            self.total_gflop * 1e9 / self.processes / self.iterations
        )
        profile = build_job_profile(
            app_name=f"npb.{self.name.lower()}.{self.klass}",
            kernel=self.kernel,
            nodes=self.processes,
            flops_per_node_per_iteration=flops_per_node_per_iter,
            walltime_seconds=1.0,  # placeholder, replaced below
            memory_bytes_per_node=self.memory_per_node,
            comm=self.comm,
            io=IOPattern(),
            serial_fraction=0.04,
        )
        # The run's true walltime follows from its own rate.
        walltime = (
            self.total_gflop * 1e9 / self.processes / (profile.mflops_per_node * 1e6)
        )
        return JobProfile(
            app_name=profile.app_name,
            kernel_name=profile.kernel_name,
            nodes=profile.nodes,
            walltime_seconds=walltime,
            memory_bytes_per_node=profile.memory_bytes_per_node,
            user_rates=profile.user_rates,
            system_rates=profile.system_rates,
            mflops_per_node=profile.mflops_per_node,
            compute_fraction=profile.compute_fraction,
            comm_fraction=profile.comm_fraction,
            io_fraction=profile.io_fraction,
        )


@lru_cache(maxsize=64)
def _cached_job_profile(spec: "NPBSpec") -> JobProfile:
    return spec._build_job_profile()


def _kernel(name: str, **kw: object) -> KernelSpec:
    defaults = dict(
        description=f"NPB {name} kernel economy",
        add_share=0.55,
        div_flop_fraction=0.005,
        quad_fraction=0.25,
        fp_misc_per_flop=0.10,
        int_per_flop=0.08,
        branch_per_flop=0.10,
        cr_per_flop=0.03,
    )
    defaults.update(kw)
    return KernelSpec(name=f"npb_{name.lower()}", **defaults)  # type: ignore[arg-type]


_BT_KERNEL = _kernel(
    "BT",
    fma_flop_fraction=0.70,
    mem_insts_per_flop=1.15,
    deps=DependencyProfile(ilp=0.78, load_use_fraction=0.20),
    access=AccessPattern(reuse_fraction=0.62, stride_bytes=8),
)
_SP_KERNEL = _kernel(
    "SP",
    fma_flop_fraction=0.62,
    mem_insts_per_flop=1.35,
    deps=DependencyProfile(ilp=0.72, load_use_fraction=0.24),
    access=AccessPattern(reuse_fraction=0.55, stride_bytes=8, tlb_locality_factor=1.5),
)
_LU_KERNEL = _kernel(
    "LU",
    fma_flop_fraction=0.66,
    mem_insts_per_flop=1.25,
    deps=DependencyProfile(ilp=0.60, load_use_fraction=0.30),  # wavefront chains
    access=AccessPattern(reuse_fraction=0.60, stride_bytes=8),
)
_MG_KERNEL = _kernel(
    "MG",
    fma_flop_fraction=0.45,
    mem_insts_per_flop=1.70,
    deps=DependencyProfile(ilp=0.75, load_use_fraction=0.30),
    # Inter-grid restriction/prolongation strides across pages.
    access=AccessPattern(reuse_fraction=0.40, stride_bytes=16, tlb_locality_factor=2.0),
)
_FT_KERNEL = _kernel(
    "FT",
    fma_flop_fraction=0.55,
    mem_insts_per_flop=1.10,
    deps=DependencyProfile(ilp=0.80, load_use_fraction=0.18),
    access=AccessPattern(reuse_fraction=0.45, stride_bytes=64, tlb_locality_factor=1.8),
)
_EP_KERNEL = _kernel(
    "EP",
    fma_flop_fraction=0.35,
    mem_insts_per_flop=0.25,  # nearly no memory traffic
    div_flop_fraction=0.04,   # log/sqrt-heavy random number kernels
    deps=DependencyProfile(ilp=0.85, load_use_fraction=0.05),
    access=AccessPattern(reuse_fraction=0.97, stride_bytes=8),
)


def _halo(kbytes: float, neighbors: int = 6, *, async_: bool = False, syncs: int = 1) -> CommPattern:
    return CommPattern(
        neighbors=neighbors,
        bytes_per_neighbor=kbytes * 1024,
        asynchronous=async_,
        global_syncs=syncs,
    )


#: The suite at the class sizes the SP2 ran.  total_gflop values follow
#: the NPB 2 report's nominal counts (within rounding).
NPB_SUITE: dict[str, NPBSpec] = {
    spec.name + "." + spec.klass: spec
    for spec in (
        NPBSpec(
            "BT", "A", "64x64x64", 168.3, 49, _BT_KERNEL,
            _halo(400.0, async_=True), 200, 60 * MB,
        ),
        NPBSpec(
            "BT", "B", "102x102x102", 721.5, 49, _BT_KERNEL,
            _halo(900.0, async_=True), 200, 110 * MB,
        ),
        NPBSpec(
            "SP", "A", "64x64x64", 102.0, 49, _SP_KERNEL,
            _halo(450.0, syncs=3), 400, 55 * MB,
        ),
        NPBSpec(
            "LU", "A", "64x64x64", 119.3, 32, _LU_KERNEL,
            _halo(120.0, neighbors=4, syncs=2), 250, 50 * MB,
        ),
        NPBSpec(
            "MG", "A", "256x256x256", 3.9, 32, _MG_KERNEL,
            _halo(300.0, syncs=2), 4, 60 * MB,
        ),
        NPBSpec(
            "FT", "A", "256x256x128", 7.1, 32, _FT_KERNEL,
            # The transpose is an all-to-all: model as many neighbours.
            _halo(250.0, neighbors=31, syncs=1), 6, 90 * MB,
        ),
        NPBSpec(
            "EP", "A", "2^28 pairs", 26.7, 32, _EP_KERNEL,
            CommPattern(global_syncs=1), 16, 20 * MB,
        ),
    )
}


def npb(name: str, klass: str = "A") -> NPBSpec:
    """Look up a suite entry, e.g. ``npb("BT")`` or ``npb("BT", "B")``."""
    key = f"{name.upper()}.{klass.upper()}"
    try:
        return NPB_SUITE[key]
    except KeyError:
        raise KeyError(f"unknown NPB entry {key!r}; known: {sorted(NPB_SUITE)}") from None


def suite_report() -> list[dict[str, float | str]]:
    """Run every suite entry's profile; returns one row per benchmark."""
    rows: list[dict[str, float | str]] = []
    for key in sorted(NPB_SUITE):
        spec = NPB_SUITE[key]
        profile = spec.job_profile()
        rows.append(
            {
                "benchmark": key,
                "processes": spec.processes,
                "mflops_per_node": profile.mflops_per_node,
                "total_gflops": profile.mflops_per_node * spec.processes / 1e3,
                "walltime_s": profile.walltime_seconds,
                "comm_fraction": profile.comm_fraction,
                "dcache_ratio": spec.kernel.access.dcache_miss_ratio(),
                "tlb_ratio": spec.kernel.access.tlb_miss_ratio(),
            }
        )
    return rows
