"""Job execution profiles: from kernel + parallel structure to rates.

PBS (see :mod:`repro.pbs.scheduler`) runs a job by installing constant
per-second counter rate vectors on its dedicated nodes.  This module
builds those vectors from first principles:

1. the kernel's instruction mix for one *iteration* of per-node work is
   costed by the cycle model (compute seconds + counter events);
2. the iteration's communication phase is costed by the switch model
   (halo-exchange wall time + DMA transfer counts; §5: "Most of the DMA
   traffic represents message-passing I/O");
3. periodic checkpoint I/O to the NFS home filesystems adds amortized
   wall time and DMA traffic;
4. user counter events ÷ iteration wall seconds = user rate vector;
   message-protocol and NFS-client work runs in *system* mode and joins
   the background OS vector.

The resulting :class:`JobProfile` satisfies the
:class:`repro.pbs.job.ExecutionProfile` protocol.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.cluster.switch import HighPerformanceSwitch
from repro.power2.config import MachineConfig, POWER2_590
from repro.power2.counters import (
    BANK_SIZE,
    counter_index,
    execution_event_counts,
    rates_vector,
)
from repro.power2.node import (
    DMA_TRANSFER_BYTES,
    OS_BASE_CYCLE_FRACTION,
    OS_BASE_FXU_RATE,
    OS_BASE_ICU_RATE,
)
from repro.power2.pipeline import CycleModel
from repro.workload.kernels import KernelSpec, evaluate_kernel

#: System-mode protocol cost per message and per byte (MPI/PVM stacks of
#: the era ran their transport in kernel mode through the adapter).
PROTOCOL_INSTS_PER_MESSAGE = 4.0e3
PROTOCOL_INSTS_PER_KBYTE = 0.9e3


@dataclass(frozen=True)
class CommPattern:
    """Per-iteration communication of one node of the job."""

    neighbors: int = 0
    bytes_per_neighbor: float = 0.0
    asynchronous: bool = False
    #: Barriers/reductions per iteration (synchronous solvers).
    global_syncs: int = 0

    @property
    def bytes_per_iteration(self) -> float:
        return self.neighbors * self.bytes_per_neighbor


@dataclass(frozen=True)
class IOPattern:
    """Periodic checkpoint/plot-file output to the home filesystems."""

    bytes_per_checkpoint: float = 0.0
    iterations_per_checkpoint: int = 50

    @property
    def bytes_per_iteration(self) -> float:
        if self.iterations_per_checkpoint <= 0:
            return 0.0
        return self.bytes_per_checkpoint / self.iterations_per_checkpoint


@dataclass(frozen=True)
class JobProfile:
    """Steady-state per-node behaviour of one job (PBS's contract)."""

    app_name: str
    kernel_name: str
    nodes: int
    walltime_seconds: float
    memory_bytes_per_node: float
    user_rates: np.ndarray
    system_rates: np.ndarray
    mflops_per_node: float
    #: Diagnostics for tests/ablations.
    compute_fraction: float
    comm_fraction: float
    io_fraction: float

    def __post_init__(self) -> None:
        if self.walltime_seconds <= 0:
            raise ValueError("job walltime must be positive")
        if self.user_rates.shape != (BANK_SIZE,) or self.system_rates.shape != (BANK_SIZE,):
            raise ValueError("rate vectors must be bank-ordered")


class _MixKernel:
    """Adapter presenting a counted instruction mix as a kernel.

    Lets :func:`build_job_profile` run on *instrumented real code* (see
    :mod:`repro.workload.solver`) whose per-iteration mix was measured
    by operation counting rather than drawn from the statistical
    catalog.
    """

    def __init__(self, name, mix, behaviour, deps):
        self.name = name
        self._mix = mix
        self._behaviour = behaviour
        self.deps = deps

    def mix_for_flops(self, flops: float):
        base = self._mix.flops
        if base <= 0:
            raise ValueError("instrumented mix produces no flops")
        return self._mix.scaled(flops / base)

    def memory_behaviour(self, config=None):
        return self._behaviour


def profile_from_mix(
    *,
    app_name: str,
    mix,
    memory,
    deps,
    nodes: int,
    iterations_mix_count: float = 1.0,
    **kwargs,
) -> "JobProfile":
    """Build a job profile from a counted per-iteration instruction mix.

    ``mix`` is the work of one iteration on one node (e.g. a solver
    sweep from :meth:`repro.workload.solver.JacobiSolver.sweep_mix`,
    times ``iterations_mix_count`` if several sweeps form an
    iteration).  Remaining keyword arguments are passed through to
    :func:`build_job_profile`.
    """
    kernel = _MixKernel(app_name, mix, memory, deps)
    return build_job_profile(
        app_name=app_name,
        kernel=kernel,  # type: ignore[arg-type]
        nodes=nodes,
        flops_per_node_per_iteration=mix.flops * iterations_mix_count,
        **kwargs,
    )


def build_job_profile(
    *,
    app_name: str,
    kernel: KernelSpec,
    nodes: int,
    flops_per_node_per_iteration: float,
    walltime_seconds: float,
    memory_bytes_per_node: float,
    comm: CommPattern | None = None,
    io: IOPattern | None = None,
    switch: HighPerformanceSwitch | None = None,
    config: MachineConfig | None = None,
    serial_fraction: float = 0.0,
) -> JobProfile:
    """Build the steady-rate profile for one job.

    ``walltime_seconds`` is how long the job holds its nodes (from the
    submission model); the iteration structure determines the *rates*
    during that time.  ``serial_fraction`` models load imbalance and
    serial sections: that fraction of each iteration's wall time does no
    user-counter work at all.
    """
    if nodes <= 0:
        raise ValueError("job needs at least one node")
    if flops_per_node_per_iteration < 0:
        raise ValueError("flops per iteration cannot be negative")
    if not 0.0 <= serial_fraction < 1.0:
        raise ValueError("serial_fraction must be in [0, 1)")
    cfg = config or POWER2_590
    sw = switch or HighPerformanceSwitch()
    comm = comm or CommPattern()
    io = io or IOPattern()
    if nodes == 1:
        comm = CommPattern()  # nobody to talk to

    # 1. Compute phase.  Catalog kernels are frozen/hashable, so their
    # evaluation memoizes; instrumented-mix adapters are not and run the
    # model directly.
    if isinstance(kernel, KernelSpec):
        result = evaluate_kernel(kernel, flops_per_node_per_iteration, cfg)
    else:
        model = CycleModel(cfg)
        mix = kernel.mix_for_flops(flops_per_node_per_iteration)
        result = model.execute(mix, kernel.memory_behaviour(cfg), kernel.deps)
    mix = result.mix
    compute_s = result.seconds

    # 2. Communication phase.
    comm_s = 0.0
    if comm.neighbors > 0 and nodes > 1:
        cost = sw.exchange(
            comm.bytes_per_neighbor, comm.neighbors, asynchronous=comm.asynchronous
        )
        comm_s += cost.seconds
    if comm.global_syncs > 0 and nodes > 1:
        comm_s += comm.global_syncs * sw.global_sync_seconds(nodes)

    # 3. Amortized checkpoint I/O.  The NFS server rate is shared; the
    # switch hop plus a mid-range server rate approximate §2's setup.
    io_bytes = io.bytes_per_iteration
    io_s = 0.0
    if io_bytes > 0:
        io_s = sw.message_seconds(io_bytes) + io_bytes / 12e6

    iter_wall = (compute_s + comm_s + io_s) / (1.0 - serial_fraction)
    if iter_wall <= 0:
        raise ValueError("iteration has no cost; give the job some work")

    # 4. User rates: the compute phase's counter events spread over the
    # iteration wall time (waits tick no user counters, §5).
    user_counts = execution_event_counts(result)
    user_vec = rates_vector(user_counts) / iter_wall

    # DMA transfers: message passing + NFS traffic, counted on the SCU
    # (mode-independent in Table 1's selection; RS2HPM banked them user).
    # Table 1's directions are memory-centric: dma_read = memory → I/O
    # device (message sends, file writes), dma_write = I/O device →
    # memory (message receives, file reads).
    msg_bytes = 2.0 * comm.bytes_per_iteration  # sent + received
    dma_read_transfers = (msg_bytes * 0.5 + io_bytes) / DMA_TRANSFER_BYTES
    dma_write_transfers = (msg_bytes * 0.5) / DMA_TRANSFER_BYTES
    user_vec[counter_index("dma_read")] += dma_read_transfers / iter_wall
    user_vec[counter_index("dma_write")] += dma_write_transfers / iter_wall

    # 5. System rates: background OS + message-protocol + NFS client.
    n_messages = 2.0 * comm.neighbors + 2.0 * comm.global_syncs
    protocol_insts = (
        n_messages * PROTOCOL_INSTS_PER_MESSAGE
        + (msg_bytes + io_bytes) / 1024.0 * PROTOCOL_INSTS_PER_KBYTE
    )
    proto_rate = protocol_insts / iter_wall
    system_vec = rates_vector(
        {
            "fxu0": OS_BASE_FXU_RATE * 0.5 + proto_rate * 0.45,
            "fxu1": OS_BASE_FXU_RATE * 0.5 + proto_rate * 0.45,
            "icu0": OS_BASE_ICU_RATE + proto_rate * 0.10,
            "cycles": OS_BASE_CYCLE_FRACTION * cfg.clock_hz + proto_rate * 1.2,
        }
    )

    total = compute_s + comm_s + io_s
    return JobProfile(
        app_name=app_name,
        kernel_name=kernel.name,
        nodes=nodes,
        walltime_seconds=walltime_seconds,
        memory_bytes_per_node=memory_bytes_per_node,
        user_rates=user_vec,
        system_rates=system_vec,
        mflops_per_node=mix.flops / iter_wall / 1e6,
        compute_fraction=compute_s / total,
        comm_fraction=comm_s / total,
        io_fraction=io_s / total,
    )
