"""The application catalog — §4's population, made generative.

Each :class:`ApplicationTemplate` describes one family of codes the
paper names (multiblock CFD solvers, multidisciplinary optimization
sweeps, the asynchronous Navier–Stokes code of §6, unported vector
codes, BLAS3 electromagnetics, preprocessing jobs, the paging-prone wide
jobs) with distributions over node count, per-iteration work, memory
demand, communication shape, and walltime.  ``instantiate`` draws one
concrete job and builds its :class:`~repro.workload.profile.JobProfile`.

Per-job kernel jitter (ILP, register reuse, fma fraction) produces the
wide per-job spread Figure 4 shows (320 ± 200 Mflops for 16-node jobs)
without per-figure tuning.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.power2.config import MachineConfig
from repro.power2.pipeline import DependencyProfile
from repro.workload.kernels import KernelSpec, kernel
from repro.workload.profile import CommPattern, IOPattern, JobProfile, build_job_profile

MB = 1024 * 1024


@lru_cache(maxsize=2048)
def _cached_profile(
    app_name: str,
    kernel_spec: KernelSpec,
    nodes: int,
    flops_iter: float,
    walltime: float,
    memory: float,
    comm: CommPattern,
    io: IOPattern,
    serial: float,
    config: MachineConfig | None = None,
) -> JobProfile:
    """Memoized profile construction for one concrete job draw.

    Every argument is hashable and :func:`build_job_profile` is pure, so
    re-drawing the same job (a differential scalar-vs-vectorized pair, a
    re-merged shard, a resumed campaign) reuses the frozen profile —
    same object, same bits — instead of re-running the cycle model and
    switch costing.  Profiles are immutable downstream: PBS derives new
    arrays from the rate vectors, never writes into them.
    """
    return build_job_profile(
        app_name=app_name,
        kernel=kernel_spec,
        nodes=nodes,
        flops_per_node_per_iteration=flops_iter,
        walltime_seconds=walltime,
        memory_bytes_per_node=memory,
        comm=comm,
        io=io,
        config=config,
        serial_fraction=serial,
    )


def clear_profile_cache() -> None:
    """Drop memoized job profiles (for leak-hunting tests)."""
    _cached_profile.cache_clear()


@dataclass(frozen=True)
class ApplicationTemplate:
    """One family of user codes."""

    name: str
    kernel_name: str
    description: str
    #: Relative submission frequency in the workload.
    popularity: float
    node_choices: tuple[int, ...]
    node_weights: tuple[float, ...]
    #: Lognormal(mean, sigma) of per-node flops per iteration.
    flops_per_iter_log10_mean: float
    flops_per_iter_log10_sigma: float
    #: Lognormal walltime (seconds).
    walltime_log10_mean: float
    walltime_log10_sigma: float
    #: Uniform memory demand per node (bytes).
    memory_min: float
    memory_max: float
    #: Communication structure.
    neighbors: int = 0
    halo_kbytes_mean: float = 0.0
    asynchronous: bool = False
    global_syncs: int = 0
    #: Load imbalance / serial section range (uniform).
    serial_fraction_range: tuple[float, float] = (0.0, 0.0)
    checkpoint_mbytes: float = 0.0
    #: Per-job jitter scales.
    ilp_jitter: float = 0.04
    mem_ratio_jitter: float = 0.15
    fma_jitter: float = 0.06

    def __post_init__(self) -> None:
        if len(self.node_choices) != len(self.node_weights):
            raise ValueError(f"{self.name}: node choices/weights length mismatch")
        if not self.node_choices:
            raise ValueError(f"{self.name}: needs node choices")
        kernel(self.kernel_name)  # validate reference

    # ------------------------------------------------------------------
    def sample_nodes(self, rng: np.random.Generator) -> int:
        w = np.asarray(self.node_weights, dtype=float)
        return int(rng.choice(self.node_choices, p=w / w.sum()))

    def _jittered_kernel(self, rng: np.random.Generator) -> KernelSpec:
        base = kernel(self.kernel_name)
        ilp = float(np.clip(base.deps.ilp + rng.normal(0, self.ilp_jitter), 0.05, 0.995))
        mem_scale = float(np.exp(rng.normal(0, self.mem_ratio_jitter)))
        fma = float(
            np.clip(base.fma_flop_fraction + rng.normal(0, self.fma_jitter), 0.0, 0.99)
        )
        return base.with_(
            deps=DependencyProfile(ilp=ilp, load_use_fraction=base.deps.load_use_fraction),
            mem_insts_per_flop=base.mem_insts_per_flop * mem_scale,
            fma_flop_fraction=fma,
        )

    def instantiate(
        self,
        rng: np.random.Generator,
        *,
        nodes: int | None = None,
        config: MachineConfig | None = None,
    ) -> JobProfile:
        """Draw one concrete job of this family.

        ``config`` is the machine the job will run on; the kernel's
        cache/TLB miss ratios are evaluated against *its* geometry, so a
        sweep over TLB entries or page size actually changes the
        workload's measured rates.  ``None`` means the stock POWER2/590.
        The draw sequence is config-independent: the same rng produces
        the same job on every machine.
        """
        n = self.sample_nodes(rng) if nodes is None else nodes
        k = self._jittered_kernel(rng)
        flops_iter = 10.0 ** rng.normal(
            self.flops_per_iter_log10_mean, self.flops_per_iter_log10_sigma
        )
        walltime = 10.0 ** rng.normal(self.walltime_log10_mean, self.walltime_log10_sigma)
        walltime = float(np.clip(walltime, 60.0, 3.0 * 86400.0))
        memory = rng.uniform(self.memory_min, self.memory_max)
        lo, hi = self.serial_fraction_range
        serial = float(rng.uniform(lo, hi)) if hi > lo else lo
        halo_bytes = (
            self.halo_kbytes_mean * 1024.0 * float(np.exp(rng.normal(0, 0.3)))
            if self.neighbors
            else 0.0
        )
        comm = CommPattern(
            neighbors=self.neighbors if n > 1 else 0,
            bytes_per_neighbor=halo_bytes,
            asynchronous=self.asynchronous,
            global_syncs=self.global_syncs if n > 1 else 0,
        )
        io = IOPattern(bytes_per_checkpoint=self.checkpoint_mbytes * MB)
        return _cached_profile(
            self.name, k, n, flops_iter, walltime, memory, comm, io, serial, config
        )


def _app(**kw: object) -> ApplicationTemplate:
    return ApplicationTemplate(**kw)  # type: ignore[arg-type]


#: The catalog.  Popularities are submission-count weights; together with
#: each family's walltime and node distributions they produce Figure 2's
#: walltime concentration at 16/32/8 nodes.
APPLICATIONS: dict[str, ApplicationTemplate] = {
    a.name: a
    for a in (
        _app(
            name="multiblock_cfd",
            kernel_name="cfd_multiblock",
            description="Multiblock aerodynamics solvers — the workload's majority (§4)",
            popularity=0.36,
            node_choices=(4, 8, 16, 32, 64),
            node_weights=(0.08, 0.22, 0.42, 0.22, 0.06),
            flops_per_iter_log10_mean=8.5,
            flops_per_iter_log10_sigma=0.35,
            walltime_log10_mean=3.95,  # ≈ 2.5 h
            walltime_log10_sigma=0.42,
            memory_min=40 * MB,
            memory_max=115 * MB,
            neighbors=6,
            halo_kbytes_mean=1600.0,
            global_syncs=2,
            serial_fraction_range=(0.25, 0.55),
            checkpoint_mbytes=130.0,
        ),
        _app(
            name="opt_sweep",
            kernel_name="cfd_multiblock",
            description="Multidisciplinary optimization: independent configurations (§4)",
            popularity=0.10,
            node_choices=(8, 16, 32),
            node_weights=(0.3, 0.55, 0.15),
            flops_per_iter_log10_mean=8.6,
            flops_per_iter_log10_sigma=0.3,
            walltime_log10_mean=4.1,
            walltime_log10_sigma=0.35,
            memory_min=30 * MB,
            memory_max=100 * MB,
            neighbors=0,  # embarrassingly parallel
            global_syncs=0,
            serial_fraction_range=(0.10, 0.30),
            checkpoint_mbytes=60.0,
        ),
        _app(
            name="navier_stokes_async",
            kernel_name="cfd_tuned",
            description="Asynchronous-messaging Navier–Stokes (§6's 40 Mflops/node champion)",
            popularity=0.06,
            node_choices=(16, 24, 28, 32),
            node_weights=(0.15, 0.2, 0.5, 0.15),
            flops_per_iter_log10_mean=8.8,
            flops_per_iter_log10_sigma=0.25,
            walltime_log10_mean=4.0,
            walltime_log10_sigma=0.35,
            memory_min=60 * MB,
            memory_max=110 * MB,
            neighbors=6,
            halo_kbytes_mean=1900.0,
            asynchronous=True,
            serial_fraction_range=(0.04, 0.14),
            checkpoint_mbytes=170.0,
        ),
        _app(
            name="legacy_vector",
            kernel_name="legacy_vector",
            description="Codes written for vector machines, ported unchanged (§7)",
            popularity=0.22,
            node_choices=(1, 2, 4, 8, 16),
            node_weights=(0.15, 0.12, 0.25, 0.26, 0.22),
            flops_per_iter_log10_mean=8.2,
            flops_per_iter_log10_sigma=0.35,
            walltime_log10_mean=4.0,
            walltime_log10_sigma=0.45,
            memory_min=30 * MB,
            memory_max=110 * MB,
            neighbors=2,
            halo_kbytes_mean=800.0,
            global_syncs=1,
            serial_fraction_range=(0.10, 0.35),
            checkpoint_mbytes=90.0,
        ),
        _app(
            name="spectral_em",
            kernel_name="spectral_em",
            description="BLAS3-heavy electromagnetics (the Farhat code family, §5)",
            popularity=0.06,
            node_choices=(16, 32, 48, 64),
            node_weights=(0.45, 0.40, 0.10, 0.05),
            flops_per_iter_log10_mean=9.0,
            flops_per_iter_log10_sigma=0.3,
            walltime_log10_mean=4.15,
            walltime_log10_sigma=0.35,
            memory_min=70 * MB,
            memory_max=120 * MB,
            neighbors=3,
            halo_kbytes_mean=2600.0,
            global_syncs=1,
            serial_fraction_range=(0.30, 0.55),
            checkpoint_mbytes=300.0,
        ),
        _app(
            name="nonfp_preproc",
            kernel_name="nonfp_preproc",
            description="Grid generation and pre/post-processing (little floating point)",
            popularity=0.08,
            node_choices=(1, 4, 8),
            node_weights=(0.5, 0.3, 0.2),
            flops_per_iter_log10_mean=7.2,
            flops_per_iter_log10_sigma=0.4,
            walltime_log10_mean=3.6,
            walltime_log10_sigma=0.4,
            memory_min=20 * MB,
            memory_max=90 * MB,
            neighbors=0,
            serial_fraction_range=(0.05, 0.25),
            checkpoint_mbytes=250.0,
        ),
        _app(
            name="wide_paging",
            kernel_name="cfd_multiblock",
            description="Wide jobs whose automatic arrays oversubscribe node memory (§6)",
            popularity=0.025,
            node_choices=(80, 96, 112, 128),
            node_weights=(0.35, 0.3, 0.2, 0.15),
            flops_per_iter_log10_mean=8.5,
            flops_per_iter_log10_sigma=0.3,
            walltime_log10_mean=3.85,
            walltime_log10_sigma=0.3,
            memory_min=135 * MB,  # > 128 MB: pages
            memory_max=200 * MB,
            neighbors=6,
            halo_kbytes_mean=1300.0,
            global_syncs=2,
            serial_fraction_range=(0.15, 0.40),
            checkpoint_mbytes=170.0,
        ),
        _app(
            name="wide_sync",
            kernel_name="cfd_multiblock",
            description="Wide synchronous-communication jobs (§6's other >64-node failure)",
            popularity=0.015,
            node_choices=(72, 96, 128),
            node_weights=(0.45, 0.35, 0.2),
            flops_per_iter_log10_mean=7.6,
            flops_per_iter_log10_sigma=0.25,
            walltime_log10_mean=3.8,
            walltime_log10_sigma=0.3,
            memory_min=40 * MB,
            memory_max=110 * MB,
            neighbors=8,
            halo_kbytes_mean=2000.0,
            global_syncs=8,
            serial_fraction_range=(0.30, 0.60),
            checkpoint_mbytes=110.0,
        ),
        _app(
            name="npb_bt_benchmark",
            kernel_name="npb_bt",
            description="NPB BT runs (Table 4's 44 Mflops/CPU on 49 nodes; short, filtered from §6)",
            popularity=0.05,
            node_choices=(49,),
            node_weights=(1.0,),
            flops_per_iter_log10_mean=8.9,
            flops_per_iter_log10_sigma=0.15,
            walltime_log10_mean=2.5,  # ≈ 320 s: below the 600 s filter
            walltime_log10_sigma=0.08,
            memory_min=50 * MB,
            memory_max=90 * MB,
            neighbors=6,
            halo_kbytes_mean=1000.0,
            asynchronous=True,
            serial_fraction_range=(0.02, 0.08),
        ),
        _app(
            name="matmul_benchmark",
            kernel_name="matmul_blocked",
            description="Single-node blocked matmul runs (§5's 240 Mflops anchor; short)",
            popularity=0.03,
            node_choices=(1,),
            node_weights=(1.0,),
            flops_per_iter_log10_mean=9.0,
            flops_per_iter_log10_sigma=0.2,
            walltime_log10_mean=2.45,
            walltime_log10_sigma=0.08,  # always < 600 s: outside the Fig 3 filter
            memory_min=5 * MB,
            memory_max=30 * MB,
            ilp_jitter=0.005,
            mem_ratio_jitter=0.03,
            fma_jitter=0.005,
        ),
    )
}


def application(name: str) -> ApplicationTemplate:
    try:
        return APPLICATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown application {name!r}; known: {sorted(APPLICATIONS)}"
        ) from None


def popularity_weights() -> tuple[list[str], np.ndarray]:
    """(names, normalized submission weights) for the submission model."""
    names = sorted(APPLICATIONS)
    w = np.array([APPLICATIONS[n].popularity for n in names])
    return names, w / w.sum()
