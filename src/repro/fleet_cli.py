"""``sp2-fleet`` — federated campaigns across many SP2-class machines.

Where ``sp2-study`` measures the paper's one 144-node machine,
``sp2-fleet`` runs a whole *fleet* of heterogeneous centers against a
shared user population and compares the workloads XDMoD-style: per
-center utilization, job-size distribution and application mix.

Examples::

    sp2-fleet run --preset demo2 --days 5            # quick 2-center fleet
    sp2-fleet run --preset demo3 --json              # machine-readable block
    sp2-fleet run --spec fleet.json --out run.json   # custom fleet, saved
    sp2-fleet report run.json                        # re-render saved tables
    sp2-fleet compare baseline.json contender.json   # center-by-center diff
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys
import time

from repro.fleet.analysis import compare_fleets, fleet_summary, render_fleet_report
from repro.fleet.runner import run_fleet
from repro.fleet.spec import PRESETS, ROUTING_POLICIES, FleetSpec


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {value}")
    return value


def _load_json(path: str) -> dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path!r}: {exc}")


def _build_spec(args: argparse.Namespace) -> FleetSpec:
    if args.spec is not None:
        spec = FleetSpec.from_dict(_load_json(args.spec))
    else:
        spec = PRESETS[args.preset]
    overrides = {
        "n_days": args.days,
        "seed": args.seed,
        "n_users": args.users,
        "routing": args.routing,
    }
    applied = {k: v for k, v in overrides.items() if v is not None}
    return dataclasses.replace(spec, **applied) if applied else spec


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _build_spec(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    t0 = time.time()
    print(
        f"Running fleet {spec.name!r}: {len(spec.members)} centers, "
        f"{spec.total_nodes} nodes, {spec.n_days} days, seed {spec.seed}...",
        file=sys.stderr,
    )
    fleet = run_fleet(spec, workers=args.workers, shard_days=args.shard_days)
    print(f"Fleet campaign done in {time.time() - t0:.1f}s.", file=sys.stderr)
    document = {"spec": spec.to_dict(), **fleet_summary(fleet)}
    if args.out is not None:
        with open(args.out, "w") as fh:
            json.dump(document, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"Saved fleet summary to {args.out}.", file=sys.stderr)
    if args.json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print(render_fleet_report(document))
    # Exit-code convention (CONTRIBUTING.md): a campaign that measured
    # nothing is an operational failure, not a success — outputs above
    # are still written so the empty run can be inspected.
    total_jobs = sum(len(m.dataset.accounting) for m in fleet.members)
    if total_jobs == 0:
        print(
            "error: fleet campaign finished zero jobs — nothing was measured",
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    document = _load_json(args.summary)
    if "fleet" not in document:
        print(
            f"error: {args.summary!r} has no 'fleet' block — is it a "
            "'sp2-fleet run --out' file?",
            file=sys.stderr,
        )
        return 2
    print(render_fleet_report(document))
    return 0


def cmd_compare(args: argparse.Namespace) -> int:
    docs = [_load_json(p) for p in (args.a, args.b)]
    for path, doc in zip((args.a, args.b), docs):
        if "fleet" not in doc:
            print(f"error: {path!r} has no 'fleet' block", file=sys.stderr)
            return 2
    table = compare_fleets(docs[0], docs[1], label_a=args.a, label_b=args.b)
    print(table.render())
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="sp2-fleet",
        description="Federated SP2 measurement campaigns across many machines.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    p_run = sub.add_parser("run", help="run a fleet campaign and report")
    source = p_run.add_mutually_exclusive_group()
    source.add_argument(
        "--preset",
        choices=sorted(PRESETS),
        default="demo2",
        help="built-in fleet definition (default demo2)",
    )
    source.add_argument(
        "--spec", metavar="FILE", default=None, help="fleet definition JSON file"
    )
    p_run.add_argument("--days", type=_positive_int, default=None, help="override n_days")
    p_run.add_argument("--seed", type=int, default=None, help="override the fleet seed")
    p_run.add_argument("--users", type=_positive_int, default=None, help="override n_users")
    p_run.add_argument(
        "--routing",
        choices=ROUTING_POLICIES,
        default=None,
        help="override the routing policy",
    )
    p_run.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        metavar="N",
        help="run each member campaign through the sharded runner on N workers",
    )
    p_run.add_argument(
        "--shard-days",
        type=_positive_int,
        default=None,
        metavar="K",
        help="days per shard for --workers",
    )
    p_run.add_argument(
        "--json", action="store_true", help="print the fleet block as JSON"
    )
    p_run.add_argument(
        "--out", metavar="FILE", default=None, help="also save the JSON document"
    )
    p_run.set_defaults(func=cmd_run)

    p_report = sub.add_parser("report", help="render tables from a saved run")
    p_report.add_argument("summary", help="JSON file from 'sp2-fleet run --out'")
    p_report.set_defaults(func=cmd_report)

    p_cmp = sub.add_parser("compare", help="center-by-center diff of two runs")
    p_cmp.add_argument("a", help="baseline JSON file")
    p_cmp.add_argument("b", help="contender JSON file")
    p_cmp.set_defaults(func=cmd_compare)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
