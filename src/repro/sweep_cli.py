"""``sp2-sweep`` — declarative scenario sweeps with differential reports.

Where ``sp2-study`` measures one configuration and ``sp2-study repeat``
puts error bars on it, ``sp2-sweep`` crosses whole *axes* of
configurations — TLB entries, memory size, fault profile, scheduler
policy, switch latency — plans the cells, caches each by configuration
fingerprint, and diffs the results.

Examples::

    sp2-sweep axes                                   # what can be swept
    sp2-sweep plan --spec tlb.yaml                   # cells + fingerprints
    sp2-sweep run --spec tlb.yaml --cache-dir .sweep --out sweep.json
    sp2-sweep run --spec tlb.yaml --cache-dir .sweep # again: 100% reuse
    sp2-sweep report sweep.json                      # re-render saved run
    sp2-sweep compare sweep.json baseline tlb_entries=1024

Exit codes follow the repo-wide contract (CONTRIBUTING.md): 0 success,
1 operational failure (zero-cell plan, a cell that measured zero jobs),
2 usage error (bad spec, unknown axis/cell/selector).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.sweep.cache import load_cell
from repro.sweep.executor import run_sweep
from repro.sweep.planner import (
    axis_help,
    cell_name,
    parse_selector,
    plan_sweep,
)
from repro.sweep.report import (
    render_compare,
    render_plan_table,
    render_sweep_report,
)
from repro.sweep.spec import SweepSpec, load_spec_file


def _load_spec(args: argparse.Namespace) -> SweepSpec:
    return load_spec_file(args.spec)


def _parse_only(spec: SweepSpec, pairs: list[str] | None) -> dict | None:
    """Repeatable ``--only`` flags intersect: each one is a constraint
    every kept cell must satisfy, so conflicting values for the same
    axis legitimately select zero cells (the exit-1 path) rather than
    last-flag-wins surprising the caller."""
    if not pairs:
        return None
    only: dict = {}
    for pair in pairs:
        for axis, value in parse_selector(spec, pair).items():
            if axis not in only:
                only[axis] = value
            elif only[axis] != value:
                allowed = only[axis] if isinstance(only[axis], list) else [only[axis]]
                only[axis] = [v for v in allowed if v == value]
    return only


def _load_document(path: str) -> dict:
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"error: cannot read {path!r}: {exc}")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------
def cmd_axes(args: argparse.Namespace) -> int:
    print("Sweepable axes (base settings use the same names):")
    print(axis_help())
    return 0


def cmd_plan(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args)
        plan = plan_sweep(spec, only=_parse_only(spec, args.only))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    cached: set[str] = set()
    if args.cache_dir is not None:
        cached = {
            c.fingerprint
            for c in plan.cells
            if load_cell(str(args.cache_dir), c.fingerprint) is not None
        }
    print(render_plan_table(plan, cached).render())
    if plan.n_cells == 0:
        print("error: plan selected zero cells (--only filtered everything out)",
              file=sys.stderr)
        return 1
    reusable = len(cached)
    print(
        f"\ncells: {plan.n_cells} planned, {plan.n_cells - reusable} to "
        f"execute, {reusable} cached"
    )
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    try:
        spec = _load_spec(args)
        plan = plan_sweep(spec, only=_parse_only(spec, args.only))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if plan.n_cells == 0:
        print("error: plan selected zero cells (--only filtered everything out)",
              file=sys.stderr)
        return 1

    t0 = time.time()
    print(
        f"Running sweep {spec.name!r}: {plan.n_cells} cells"
        + (", repeat per cell" if spec.repeat is not None else "")
        + (f", cache {args.cache_dir}" if args.cache_dir is not None else "")
        + "...",
        file=sys.stderr,
    )

    def progress(cell, cached: bool) -> None:
        how = "cache" if cached else "ran"
        print(f"  [{cell.index + 1}/{plan.n_cells}] {cell.name}: {how}",
              file=sys.stderr)

    result = run_sweep(
        plan,
        cache_dir=str(args.cache_dir) if args.cache_dir is not None else None,
        workers=args.workers or 1,
        force=args.force,
        progress=progress,
    )
    print(f"Sweep done in {time.time() - t0:.1f}s.", file=sys.stderr)

    document = result.document()
    if args.out is not None:
        args.out.parent.mkdir(parents=True, exist_ok=True)
        args.out.write_text(json.dumps(document, indent=2) + "\n")
        print(f"wrote {args.out}", file=sys.stderr)
    if args.out_dir is not None:
        args.out_dir.mkdir(parents=True, exist_ok=True)
        for r in result.results:
            path = args.out_dir / f"{r.cell.name}.json"
            # A single-run cell file is byte-identical to what
            # `sp2-study --json` writes at the same settings (the
            # degeneracy contract); repeat cells save the full document.
            payload = r.summary if r.summary is not None else r.document
            path.write_text(json.dumps(payload, indent=2) + "\n")
            print(f"wrote {path}", file=sys.stderr)

    if args.json:
        print(json.dumps(document, indent=2))
    else:
        print(render_sweep_report(document))
    pct = 100.0 * result.reuse_fraction
    print(
        f"\ncells: {plan.n_cells} planned, {result.executed} executed, "
        f"{result.reused} reused ({pct:.0f}% cache reuse)"
    )

    empty = result.zero_job_cells()
    if empty:
        print(
            "error: cells measured zero jobs — nothing to compare: "
            + ", ".join(empty),
            file=sys.stderr,
        )
        return 1
    return 0


def cmd_report(args: argparse.Namespace) -> int:
    document = _load_document(args.summary)
    try:
        print(render_sweep_report(document))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _resolve_name(document: dict, text: str) -> str:
    """A compare operand → a cell name, via the saved spec block."""
    cells = document.get("sweep", {}).get("cells", [])
    names = {c.get("name") for c in cells}
    if text in names:
        return text
    spec = SweepSpec.from_dict(document.get("spec") or {})
    if text == "baseline":
        return cell_name(spec.baseline_overrides())
    selector = parse_selector(spec, text)
    return cell_name({**spec.baseline_overrides(), **selector})


def cmd_compare(args: argparse.Namespace) -> int:
    document = _load_document(args.summary)
    try:
        a = _resolve_name(document, args.a)
        b = _resolve_name(document, args.b)
        print(render_compare(document, a, b))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="sp2-sweep",
        description="Declarative scenario sweeps over the SP2 measurement "
        "campaign, with per-cell caching and differential reports.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    p_axes = sub.add_parser("axes", help="list the sweepable axes")
    p_axes.set_defaults(func=cmd_axes)

    def add_common(sp: argparse.ArgumentParser) -> None:
        sp.add_argument("--spec", metavar="FILE", required=True,
                        help="sweep definition (JSON or YAML-subset file)")
        sp.add_argument(
            "--only", metavar="AXIS=VALUE", action="append", default=None,
            help="restrict the plan to matching cells (repeatable)",
        )
        sp.add_argument(
            "--cache-dir", type=pathlib.Path, default=None, metavar="DIR",
            help="per-cell result cache keyed by config fingerprint",
        )

    p_plan = sub.add_parser("plan", help="expand and fingerprint the cells")
    add_common(p_plan)
    p_plan.set_defaults(func=cmd_plan)

    p_run = sub.add_parser("run", help="execute the sweep (cache-aware)")
    add_common(p_run)
    p_run.add_argument("--workers", type=int, default=None, metavar="N",
                       help="processes per cell (shards or repeat seeds); "
                       "never changes output, only wall time")
    p_run.add_argument("--force", action="store_true",
                       help="recompute every cell, ignoring the cache")
    p_run.add_argument("--out", type=pathlib.Path, default=None, metavar="FILE",
                       help="save the whole-sweep JSON document here")
    p_run.add_argument("--out-dir", type=pathlib.Path, default=None, metavar="DIR",
                       help="write one JSON file per cell here")
    p_run.add_argument("--json", action="store_true",
                       help="print the sweep document as JSON")
    p_run.set_defaults(func=cmd_run)

    p_report = sub.add_parser("report", help="re-render a saved sweep run")
    p_report.add_argument("summary", help="JSON file from 'sp2-sweep run --out'")
    p_report.set_defaults(func=cmd_report)

    p_cmp = sub.add_parser(
        "compare", help="diff two cells' tables and headlines"
    )
    p_cmp.add_argument("summary", help="JSON file from 'sp2-sweep run --out'")
    p_cmp.add_argument("a", help="baseline cell ('baseline', a cell name, "
                       "or axis=value[,axis=value])")
    p_cmp.add_argument("b", help="contender cell (same forms)")
    p_cmp.set_defaults(func=cmd_compare)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Downstream closed the pipe (| head, | grep -q): not our error.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
