"""``sp2-study`` — run a campaign and print the paper's artefacts.

Examples::

    sp2-study --days 30 --seed 1                  # headlines only
    sp2-study --days 270 --tables --figures       # the full paper
    sp2-study --days 30 --csv-dir out/            # dump figure CSVs
    sp2-study repeat --target-rse 0.02            # error bars on everything
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

from repro.analysis import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    paper_comparison,
    table1,
    table2,
    table3,
    table4,
)
from repro.core.study import run_study


def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="sp2-study",
        description="Replay the NAS SP2 RS2HPM measurement campaign on the simulator.",
    )
    p.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    p.add_argument("--days", type=int, default=30, help="campaign length in days")
    p.add_argument("--nodes", type=int, default=144, help="cluster size")
    p.add_argument("--users", type=int, default=60, help="user population size")
    p.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="run the campaign as day-range shards on N worker processes "
        "(output depends on the shard plan, never on N)",
    )
    p.add_argument(
        "--shard-days",
        type=int,
        default=None,
        metavar="K",
        help="days per shard for --workers (default 15); implies sharded "
        "execution even with one worker",
    )
    p.add_argument(
        "--fault-profile",
        default=None,
        metavar="NAME",
        help="inject faults from a named profile (none, mild, pathological); "
        "omitted = healthy campaign, byte-identical to earlier releases",
    )
    p.add_argument(
        "--checkpoint-dir",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="persist per-shard checkpoints here (crash tolerance; implies "
        "sharded execution)",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="load finished shards from --checkpoint-dir instead of "
        "recomputing them (resumed output is byte-identical to an "
        "uninterrupted run)",
    )
    p.add_argument(
        "--accrual-backend",
        default="auto",
        choices=["auto", "scalar", "vectorized", "numpy", "python"],
        metavar="NAME",
        help="counter-accrual backend: auto/vectorized (batched store, "
        "numpy when available), numpy, python, or scalar (legacy "
        "per-node path); all backends produce byte-identical output",
    )
    p.add_argument(
        "--shard-attempts",
        type=int,
        default=3,
        metavar="N",
        help="retry crashed shard workers up to N attempts total (default 3)",
    )
    p.add_argument("--tables", action="store_true", help="print Tables 1-4")
    p.add_argument("--figures", action="store_true", help="print ASCII Figures 1-5")
    p.add_argument(
        "--csv-dir", type=pathlib.Path, default=None, help="write figure CSVs here"
    )
    p.add_argument(
        "--json", type=pathlib.Path, default=None, help="write a campaign summary JSON here"
    )
    return p


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "repeat":
        # The statistical campaign verb: multi-seed adaptive repetition
        # with error bars on every headline (docs/STATS.md).  Plain
        # `sp2-study` flags keep their historical single-campaign
        # behaviour byte-for-byte.
        from repro.stats.cli import repeat_main

        return repeat_main(argv[1:])
    args = build_parser().parse_args(argv)
    if args.resume and args.checkpoint_dir is None:
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2
    t0 = time.time()
    sharded = (
        args.workers is not None
        or args.shard_days is not None
        or args.checkpoint_dir is not None
    )
    how = f", {args.workers or 1} workers" if sharded else ""
    faulty = f", faults={args.fault_profile}" if args.fault_profile else ""
    print(
        f"Running {args.days}-day campaign on {args.nodes} nodes "
        f"(seed {args.seed}, {args.users} users{how}{faulty})...",
        file=sys.stderr,
    )
    try:
        dataset = run_study(
            args.seed,
            n_days=args.days,
            n_nodes=args.nodes,
            n_users=args.users,
            workers=args.workers,
            shard_days=args.shard_days,
            fault_profile=args.fault_profile,
            checkpoint_dir=(
                str(args.checkpoint_dir) if args.checkpoint_dir is not None else None
            ),
            resume=args.resume,
            shard_attempts=args.shard_attempts,
            accrual_backend=args.accrual_backend,
        )
    except Exception as err:  # noqa: BLE001 - operator-facing boundary
        from repro.parallel.runner import ShardExecutionError

        if isinstance(err, ShardExecutionError):
            print(f"error: {err}", file=sys.stderr)
            if args.checkpoint_dir is not None:
                print(
                    f"hint: rerun with --checkpoint-dir {args.checkpoint_dir} "
                    "--resume to pick up from the completed shards",
                    file=sys.stderr,
                )
            return 1
        raise
    print(f"Campaign done in {time.time() - t0:.1f}s.", file=sys.stderr)

    print(paper_comparison(dataset))

    if dataset.faults is not None:
        from repro.faults.report import availability_table

        print()
        print(availability_table(dataset.faults).render())

    if len(dataset.accounting) == 0:
        # A campaign with no finished jobs measured nothing; exiting 0
        # would let an empty run masquerade as a successful study.
        print(
            "error: campaign finished zero jobs — nothing was measured "
            "(check --days/--users)",
            file=sys.stderr,
        )
        return 1

    if args.tables:
        print()
        print(table1().render())
        for gen in (table2, table3, table4):
            print()
            try:
                print(gen(dataset).render())
            except ValueError as err:
                print(f"({gen.__name__} unavailable: {err})")

    figures = [
        figure1(dataset),
        figure2(dataset),
        figure3(dataset),
        figure4(dataset),
        figure5(dataset),
    ]
    if args.figures:
        for fig in figures:
            print()
            print(fig.render())

    if args.csv_dir is not None:
        args.csv_dir.mkdir(parents=True, exist_ok=True)
        for fig in figures:
            path = args.csv_dir / f"{fig.name}.csv"
            path.write_text(fig.csv())
            print(f"wrote {path}", file=sys.stderr)

    if args.json is not None:
        from repro.analysis.export import dataset_to_json

        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(dataset_to_json(dataset))
        print(f"wrote {args.json}", file=sys.stderr)

    return 0


if __name__ == "__main__":
    raise SystemExit(main())
