"""The sharded campaign runner: plan → execute → merge.

``run_parallel_study`` is the parallel counterpart of
:meth:`repro.core.study.WorkloadStudy.run`.  Determinism contract:

* the merged dataset is a pure function of ``(config, shard_days)`` —
  the ``workers`` count and the pool's scheduling order never change a
  byte of the output (the differential tests assert this);
* a single-shard plan (``shard_days >= n_days``) is byte-identical to
  the serial path (same trace streams, zero offsets);
* multi-shard plans are a different — equally valid — statistical
  realization of the same campaign distribution: each shard's
  submissions come from its own spawned stream, and PBS queues drain at
  shard boundaries (see docs/PARALLEL.md for the boundary semantics).
"""

from __future__ import annotations

import multiprocessing
import os

from repro.core.study import StudyConfig, StudyDataset
from repro.parallel.merge import merge_shard_results
from repro.parallel.plan import Shard, plan_shards
from repro.parallel.worker import ShardResult, _run_shard_task, run_shard


def _pool_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, deterministic here: workers only read
    the pickled payload), else spawn.  Overridable for portability tests
    and via ``REPRO_MP_START`` for operational tuning."""
    if start_method is None:
        start_method = os.environ.get("REPRO_MP_START")
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def execute_shards(
    config: StudyConfig,
    shards: list[Shard],
    *,
    workers: int = 1,
    tracing: bool = False,
    start_method: str | None = None,
) -> list[ShardResult]:
    """Run every shard, in-process or across a worker pool.

    Results are returned in shard-index order regardless of completion
    order (``Pool.map`` preserves input order), so the merge sees the
    same sequence either way.
    """
    payloads = [(config, shard, len(shards), tracing) for shard in shards]
    n_procs = min(workers, len(shards))
    if n_procs <= 1:
        return [run_shard(config, shard, len(shards), tracing=tracing) for shard in shards]
    ctx = _pool_context(start_method)
    with ctx.Pool(processes=n_procs) as pool:
        return pool.map(_run_shard_task, payloads)


def run_parallel_study(
    config: StudyConfig | None = None,
    *,
    workers: int = 1,
    shard_days: int | None = None,
    tracing: bool = False,
    telemetry: bool = True,
    start_method: str | None = None,
) -> StudyDataset:
    """Run a campaign as independent day-range shards and merge.

    Parameters
    ----------
    workers:
        Worker processes for shard execution.  ``1`` runs the same
        shards serially in-process; the merged output is identical.
    shard_days:
        Day-range width per shard (default
        :data:`repro.parallel.plan.DEFAULT_SHARD_DAYS`).  Part of the
        experiment definition: changing it changes the realization the
        way a different seed would, changing ``workers`` never does.
    tracing:
        Give each shard a span tracer and merge the spans (shard-offset
        span ids) into ``dataset.tracer``.
    telemetry:
        Rebuild the streaming telemetry view over the merged streams
        (deterministic replay).  ``False`` skips it; the analysis layer
        falls back to the accounting log, byte-identically.
    """
    config = config or StudyConfig()
    shards = plan_shards(config.n_days, shard_days)
    results = execute_shards(
        config, shards, workers=workers, tracing=tracing, start_method=start_method
    )
    return merge_shard_results(config, results, telemetry=telemetry, tracing=tracing)
