"""The sharded campaign runner: plan → execute → merge.

``run_parallel_study`` is the parallel counterpart of
:meth:`repro.core.study.WorkloadStudy.run`.  Determinism contract:

* the merged dataset is a pure function of ``(config, shard_days)`` —
  the ``workers`` count and the pool's scheduling order never change a
  byte of the output (the differential tests assert this);
* a single-shard plan (``shard_days >= n_days``) is byte-identical to
  the serial path (same trace streams, zero offsets);
* multi-shard plans are a different — equally valid — statistical
  realization of the same campaign distribution: each shard's
  submissions come from its own spawned stream, and PBS queues drain at
  shard boundaries (see docs/PARALLEL.md for the boundary semantics).

Resilience (docs/FAULTS.md): with a ``checkpoint_dir``, each worker
persists its shard result the moment it finishes; a worker crash mid
campaign loses only the in-flight shards.  The runner detects the broken
pool, backs off exponentially, reloads whatever the dead batch managed
to checkpoint, and retries the remainder — and because shard results are
pure functions of ``(config, shard, n_shards)``, an interrupted-then
resumed campaign merges to output byte-identical to an uninterrupted
one.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import TYPE_CHECKING

from repro.core.study import StudyConfig, StudyDataset

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.workload.traces import CampaignTrace
from repro.parallel.checkpoint import config_fingerprint, load_shard_result
from repro.parallel.merge import merge_shard_results
from repro.parallel.plan import Shard, plan_shards
from repro.parallel.worker import ShardResult, SimulatedWorkerCrash, _run_shard_task


class ShardExecutionError(RuntimeError):
    """Shards still failing after every retry attempt."""

    def __init__(self, shard_indices: list[int], attempts: int) -> None:
        self.shard_indices = shard_indices
        self.attempts = attempts
        super().__init__(
            f"shards {shard_indices} failed after {attempts} attempt(s); "
            "completed shards are checkpointed — fix the cause and rerun "
            "with resume"
        )


def _pool_context(start_method: str | None) -> multiprocessing.context.BaseContext:
    """Fork where available (cheap, deterministic here: workers only read
    the pickled payload), else spawn.  Overridable for portability tests
    and via ``REPRO_MP_START`` for operational tuning."""
    if start_method is None:
        start_method = os.environ.get("REPRO_MP_START")
    if start_method is None:
        methods = multiprocessing.get_all_start_methods()
        start_method = "fork" if "fork" in methods else "spawn"
    return multiprocessing.get_context(start_method)


def _run_batch(
    payloads: list[tuple],
    *,
    workers: int,
    start_method: str | None,
) -> "list[ShardResult | None]":
    """One attempt over a batch of shard payloads, index-aligned.

    A crashed worker (``os._exit`` → ``BrokenProcessPool``) or an
    in-process simulated crash yields ``None`` in that slot; completed
    slots keep their results, so one dying worker doesn't discard its
    siblings' finished work.
    """
    results: "list[ShardResult | None]" = [None] * len(payloads)
    n_procs = min(workers, len(payloads))
    if n_procs <= 1:
        for i, payload in enumerate(payloads):
            try:
                results[i] = _run_shard_task(payload)
            except SimulatedWorkerCrash:
                results[i] = None
        return results
    ctx = _pool_context(start_method)
    with ProcessPoolExecutor(max_workers=n_procs, mp_context=ctx) as pool:
        futures = [pool.submit(_run_shard_task, payload) for payload in payloads]
        for i, future in enumerate(futures):
            try:
                results[i] = future.result()
            except (BrokenProcessPool, SimulatedWorkerCrash):
                results[i] = None
    return results


def execute_shards(
    config: StudyConfig,
    shards: list[Shard],
    *,
    workers: int = 1,
    tracing: bool = False,
    start_method: str | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    max_attempts: int = 3,
    backoff_seconds: float = 1.0,
    traces: "list | None" = None,
    fault_namespace: tuple[int, ...] = (),
) -> list[ShardResult]:
    """Run every shard, in-process or across a worker pool.

    Results come back in shard-index order regardless of completion
    order, so the merge sees the same sequence either way.  With a
    ``checkpoint_dir``, finished shards are persisted worker-side and —
    when ``resume`` is set — loaded instead of recomputed.  Failed
    shards are retried up to ``max_attempts`` times total, sleeping
    ``backoff_seconds × 2^(attempt-1)`` between attempts; shards still
    failing then raise :class:`ShardExecutionError`.

    ``traces`` (shard-index-aligned, shard-local clocks) injects
    pre-built submission streams instead of per-shard generation — the
    fleet runner's path.  Checkpoints identify a shard by config alone,
    so injected traces and checkpointing are mutually exclusive.
    """
    if max_attempts < 1:
        raise ValueError(f"max_attempts must be at least 1, got {max_attempts}")
    if resume and checkpoint_dir is None:
        raise ValueError("resume requires a checkpoint_dir")
    if traces is not None:
        if len(traces) != len(shards):
            raise ValueError(
                f"got {len(traces)} traces for {len(shards)} shards"
            )
        if checkpoint_dir is not None:
            raise ValueError(
                "checkpointing identifies shards by config alone and cannot "
                "be combined with injected traces"
            )
    n_shards = len(shards)
    fingerprint = ""
    if checkpoint_dir is not None:
        fingerprint = config_fingerprint(config, n_shards)
        os.makedirs(checkpoint_dir, exist_ok=True)

    done: dict[int, ShardResult] = {}
    if resume and checkpoint_dir is not None:
        for shard in shards:
            cached = load_shard_result(checkpoint_dir, fingerprint, shard.index)
            if cached is not None:
                done[shard.index] = cached

    pending = [s for s in shards if s.index not in done]
    attempt = 0
    while pending:
        attempt += 1
        if attempt > 1:
            delay = backoff_seconds * 2 ** (attempt - 2)
            if delay > 0:
                time.sleep(delay)
        by_index = (
            {shard.index: trace for shard, trace in zip(shards, traces)}
            if traces is not None
            else {}
        )
        payloads = [
            (
                config,
                shard,
                n_shards,
                tracing,
                checkpoint_dir if checkpoint_dir is not None else None,
                fingerprint,
                by_index.get(shard.index),
                fault_namespace,
            )
            for shard in pending
        ]
        batch = _run_batch(payloads, workers=workers, start_method=start_method)
        failed: list[Shard] = []
        for shard, result in zip(pending, batch):
            if result is not None:
                done[shard.index] = result
            else:
                failed.append(shard)
        if failed and checkpoint_dir is not None:
            # A broken pool loses every still-queued future, but workers
            # checkpoint results themselves — harvest what the dead
            # batch actually finished before recomputing.
            still_failed = []
            for shard in failed:
                cached = load_shard_result(checkpoint_dir, fingerprint, shard.index)
                if cached is not None:
                    done[shard.index] = cached
                else:
                    still_failed.append(shard)
            failed = still_failed
        pending = failed
        if pending and attempt >= max_attempts:
            raise ShardExecutionError([s.index for s in pending], attempt)
    return [done[s.index] for s in shards]


def run_parallel_study(
    config: StudyConfig | None = None,
    *,
    workers: int = 1,
    shard_days: int | None = None,
    tracing: bool = False,
    telemetry: bool = True,
    start_method: str | None = None,
    checkpoint_dir: str | None = None,
    resume: bool = False,
    max_attempts: int = 3,
    backoff_seconds: float = 1.0,
    trace: "CampaignTrace | None" = None,
    fault_namespace: tuple[int, ...] = (),
) -> StudyDataset:
    """Run a campaign as independent day-range shards and merge.

    Parameters
    ----------
    workers:
        Worker processes for shard execution.  ``1`` runs the same
        shards serially in-process; the merged output is identical.
    shard_days:
        Day-range width per shard (default
        :data:`repro.parallel.plan.DEFAULT_SHARD_DAYS`).  Part of the
        experiment definition: changing it changes the realization the
        way a different seed would, changing ``workers`` never does.
    tracing:
        Give each shard a span tracer and merge the spans (shard-offset
        span ids) into ``dataset.tracer``.
    telemetry:
        Rebuild the streaming telemetry view over the merged streams
        (deterministic replay).  ``False`` skips it; the analysis layer
        falls back to the accounting log, byte-identically.
    checkpoint_dir:
        Directory for per-shard checkpoint files (crash tolerance).
    resume:
        Load valid checkpoints from ``checkpoint_dir`` instead of
        recomputing those shards.
    max_attempts / backoff_seconds:
        Retry policy for crashed shard workers (exponential backoff).
    trace:
        A pre-built campaign trace to replay instead of per-shard
        generation (fleet members route a shared demand stream here).
        Split into day-range shards by
        :func:`repro.workload.traces.slice_trace`; incompatible with
        checkpointing.
    fault_namespace:
        RNG spawn-key prefix for fault schedules (fleet members pass
        :func:`repro.util.rng.member_key`; the empty default is the
        single-machine tree).
    """
    config = config or StudyConfig()
    shards = plan_shards(config.n_days, shard_days)
    traces = None
    if trace is not None:
        from repro.workload.traces import slice_trace

        if trace.n_days != config.n_days or trace.n_nodes != config.n_nodes:
            raise ValueError(
                f"trace covers {trace.n_days} days on {trace.n_nodes} nodes, "
                f"config wants {config.n_days} days on {config.n_nodes}"
            )
        traces = [slice_trace(trace, s.day_start, s.day_end) for s in shards]
    results = execute_shards(
        config,
        shards,
        workers=workers,
        tracing=tracing,
        start_method=start_method,
        checkpoint_dir=checkpoint_dir,
        resume=resume,
        max_attempts=max_attempts,
        backoff_seconds=backoff_seconds,
        traces=traces,
        fault_namespace=fault_namespace,
    )
    return merge_shard_results(config, results, telemetry=telemetry, tracing=tracing)
