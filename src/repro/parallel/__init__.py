"""Sharded parallel campaign execution with a deterministic merge.

The 270-day × 144-node campaign is this reproduction's hot path; this
package splits it into independent day-range shards, runs them across
``multiprocessing`` workers, and merges the outputs — counter series,
job accounting, telemetry rollups, trace spans — into one
:class:`~repro.core.study.StudyDataset`.

The design invariant everything else leans on: **the merged result is a
pure function of the shard plan**, never of the worker count or
scheduling order.  See docs/PARALLEL.md for the shard model, the RNG
spawning scheme, and the boundary semantics.
"""

from repro.parallel.checkpoint import (
    CHECKPOINT_VERSION,
    config_fingerprint,
    load_shard_result,
    save_shard_result,
    sha256_fingerprint,
)
from repro.parallel.merge import (
    JOB_ID_STRIDE,
    SPAN_ID_STRIDE,
    MergedSampleSeries,
    merge_shard_results,
)
from repro.parallel.plan import DEFAULT_SHARD_DAYS, Shard, plan_shards
from repro.parallel.runner import (
    ShardExecutionError,
    execute_shards,
    run_parallel_study,
)
from repro.parallel.worker import (
    ShardResult,
    SimulatedWorkerCrash,
    run_shard,
    shard_trace,
)

__all__ = [
    "CHECKPOINT_VERSION",
    "DEFAULT_SHARD_DAYS",
    "JOB_ID_STRIDE",
    "SPAN_ID_STRIDE",
    "MergedSampleSeries",
    "Shard",
    "ShardExecutionError",
    "ShardResult",
    "SimulatedWorkerCrash",
    "config_fingerprint",
    "execute_shards",
    "load_shard_result",
    "merge_shard_results",
    "plan_shards",
    "run_parallel_study",
    "run_shard",
    "save_shard_result",
    "sha256_fingerprint",
    "shard_trace",
]
