"""Per-shard campaign execution (the unit of parallel work).

``run_shard`` is a pure function of ``(config, shard, n_shards)``: it
builds the shard's submission trace from shard-spawned RNG streams,
runs a private simulator/machine/PBS/collector stack over the shard's
day range on a local clock, and reduces the result to a picklable
:class:`ShardResult` — everything the merge layer needs and nothing it
doesn't (no buses, no live services, no closures).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.study import StudyConfig, WorkloadStudy
from repro.hpm.collector import SystemSample
from repro.parallel.plan import Shard
from repro.pbs.job import JobRecord
from repro.telemetry.bus import SimTruncated
from repro.workload.traces import (
    CampaignTrace,
    Submission,
    generate_shard_trace,
    generate_trace,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tracing.span import Span


@dataclass
class ShardResult:
    """One shard's measured output, on the shard-local clock.

    All times (sample times, job times, probe times, span times) are
    seconds from *shard* start; :mod:`repro.parallel.merge` offsets them
    onto the campaign clock and namespaces the ids.
    """

    shard: Shard
    samples: list[SystemSample]
    records: list[JobRecord]
    utilization_probes: list[tuple[float, int]]
    submissions: list[Submission]
    demand_levels: np.ndarray
    events_processed: int
    #: Spans recorded by the shard's tracer (empty when tracing is off).
    spans: "list[Span]" = field(default_factory=list)
    #: ``sim.truncated`` notices (normally empty).
    truncations: list[SimTruncated] = field(default_factory=list)


def shard_trace(config: StudyConfig, shard: Shard, n_shards: int) -> CampaignTrace:
    """The shard's submission trace (shard-local times).

    A single-shard plan reproduces the serial campaign trace exactly —
    same streams, same draws — so ``run_parallel_study`` degenerates to
    the byte-identical serial path.  Multi-shard plans draw each shard's
    submissions from its own spawned stream (see
    :func:`repro.workload.traces.generate_shard_trace`).
    """
    if n_shards == 1:
        return generate_trace(
            config.seed,
            n_days=config.n_days,
            n_nodes=config.n_nodes,
            n_users=config.n_users,
            demand_mean=config.demand_mean,
        )
    return generate_shard_trace(
        config.seed,
        shard_id=shard.index,
        day_start=shard.day_start,
        day_end=shard.day_end,
        n_days=config.n_days,
        n_nodes=config.n_nodes,
        n_users=config.n_users,
        demand_mean=config.demand_mean,
    )


def run_shard(
    config: StudyConfig, shard: Shard, n_shards: int, *, tracing: bool = False
) -> ShardResult:
    """Execute one shard and reduce it to its picklable result."""
    trace = shard_trace(config, shard, n_shards)
    shard_config = replace(config, n_days=shard.n_days)
    tracer = None
    if tracing:
        from repro.tracing.tracer import Tracer

        tracer = Tracer()
    study = WorkloadStudy(shard_config, tracer=tracer)
    study.sim.label = f"shard{shard.index}[{shard.day_start}:{shard.day_end}]"
    dataset = study.run(trace)
    return ShardResult(
        shard=shard,
        samples=dataset.collector.samples,
        records=dataset.accounting.records,
        utilization_probes=dataset.utilization_probes,
        submissions=trace.submissions,
        demand_levels=trace.demand_levels,
        events_processed=dataset.events_processed,
        spans=list(tracer.spans) if tracer is not None else [],
        truncations=(
            list(dataset.telemetry.truncations) if dataset.telemetry is not None else []
        ),
    )


def _run_shard_task(payload: tuple) -> ShardResult:
    """Top-level pool entry point (must be picklable by name)."""
    config, shard, n_shards, tracing = payload
    return run_shard(config, shard, n_shards, tracing=tracing)
