"""Per-shard campaign execution (the unit of parallel work).

``run_shard`` is a pure function of ``(config, shard, n_shards)``: it
builds the shard's submission trace from shard-spawned RNG streams,
runs a private simulator/machine/PBS/collector stack over the shard's
day range on a local clock, and reduces the result to a picklable
:class:`ShardResult` — everything the merge layer needs and nothing it
doesn't (no buses, no live services, no closures).
"""

from __future__ import annotations

import multiprocessing
import os
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

import numpy as np

from repro.core.study import StudyConfig, WorkloadStudy
from repro.faults.events import FaultLog
from repro.hpm.collector import SystemSample
from repro.parallel.plan import Shard
from repro.pbs.job import JobRecord
from repro.telemetry.bus import SimTruncated
from repro.util.rng import RngStreams, spawn_stream
from repro.workload.traces import (
    CampaignTrace,
    Submission,
    generate_shard_trace,
    generate_trace,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tracing.span import Span

#: Set to a shard index to make that shard's worker die before it runs —
#: the test/CI hook for exercising crashed-worker detection and resume.
CRASH_ENV_VAR = "REPRO_CRASH_SHARD"


class SimulatedWorkerCrash(RuntimeError):
    """Raised (in-process) or simulated via ``os._exit`` (in a worker
    subprocess) when :data:`CRASH_ENV_VAR` targets the current shard."""


@dataclass
class ShardResult:
    """One shard's measured output, on the shard-local clock.

    All times (sample times, job times, probe times, span times) are
    seconds from *shard* start; :mod:`repro.parallel.merge` offsets them
    onto the campaign clock and namespaces the ids.
    """

    shard: Shard
    samples: list[SystemSample]
    records: list[JobRecord]
    utilization_probes: list[tuple[float, int]]
    submissions: list[Submission]
    demand_levels: np.ndarray
    events_processed: int
    #: Spans recorded by the shard's tracer (empty when tracing is off).
    spans: "list[Span]" = field(default_factory=list)
    #: ``sim.truncated`` notices (normally empty).
    truncations: list[SimTruncated] = field(default_factory=list)
    #: The shard's finalized fault log (None on healthy campaigns).
    faults: FaultLog | None = None


def shard_trace(config: StudyConfig, shard: Shard, n_shards: int) -> CampaignTrace:
    """The shard's submission trace (shard-local times).

    A single-shard plan reproduces the serial campaign trace exactly —
    same streams, same draws — so ``run_parallel_study`` degenerates to
    the byte-identical serial path.  Multi-shard plans draw each shard's
    submissions from its own spawned stream (see
    :func:`repro.workload.traces.generate_shard_trace`).
    """
    if n_shards == 1:
        return generate_trace(
            config.seed,
            n_days=config.n_days,
            n_nodes=config.n_nodes,
            n_users=config.n_users,
            demand_mean=config.demand_mean,
            machine_config=config.machine_config,
        )
    return generate_shard_trace(
        config.seed,
        shard_id=shard.index,
        day_start=shard.day_start,
        day_end=shard.day_end,
        n_days=config.n_days,
        n_nodes=config.n_nodes,
        n_users=config.n_users,
        demand_mean=config.demand_mean,
        machine_config=config.machine_config,
    )


def run_shard(
    config: StudyConfig,
    shard: Shard,
    n_shards: int,
    *,
    tracing: bool = False,
    trace: CampaignTrace | None = None,
    fault_namespace: tuple[int, ...] = (),
) -> ShardResult:
    """Execute one shard and reduce it to its picklable result.

    ``trace`` injects a pre-built shard-local submission stream instead
    of drawing one from the shard's RNG tree — the fleet runner routes a
    shared fleet demand to member machines and hands each member's slice
    in here.  ``fault_namespace`` prefixes the fault-schedule RNG spawn
    key (:func:`repro.util.rng.member_key`) so each fleet member's fault
    realization is independent yet ordering-invariant; the empty default
    keeps single-machine campaigns byte-identical to earlier releases.
    """
    if trace is None:
        trace = shard_trace(config, shard, n_shards)
    shard_config = replace(config, n_days=shard.n_days)
    tracer = None
    if tracing:
        from repro.tracing.tracer import Tracer

        tracer = Tracer()
    # A multi-shard campaign draws each shard's fault schedule from the
    # shard's spawned tree — same identity as its submission trace — so
    # fault realizations never depend on worker count or run order.  The
    # single-shard plan uses the campaign-root tree of its namespace
    # (``()`` = the serial path's tree, byte-identical to it).
    fault_streams = None
    if config.fault_profile is not None and not config.fault_profile.is_null:
        if n_shards > 1:
            fault_streams = spawn_stream(
                config.seed, shard.index, namespace=fault_namespace
            )
        elif fault_namespace:
            fault_streams = RngStreams(config.seed, spawn_key=fault_namespace)
    study = WorkloadStudy(shard_config, tracer=tracer, fault_streams=fault_streams)
    study.sim.label = f"shard{shard.index}[{shard.day_start}:{shard.day_end}]"
    dataset = study.run(trace)
    return ShardResult(
        shard=shard,
        samples=dataset.collector.samples,
        records=dataset.accounting.records,
        utilization_probes=dataset.utilization_probes,
        submissions=trace.submissions,
        demand_levels=trace.demand_levels,
        events_processed=dataset.events_processed,
        spans=list(tracer.spans) if tracer is not None else [],
        truncations=(
            list(dataset.telemetry.truncations) if dataset.telemetry is not None else []
        ),
        faults=dataset.faults,
    )


def _maybe_simulated_crash(shard_index: int, checkpoint_dir: str | None) -> None:
    """Die if :data:`CRASH_ENV_VAR` targets this shard (once per marker).

    With a checkpoint directory, a ``.crashed-<index>`` marker records
    that the crash already happened so the retry succeeds — modelling a
    transient node loss.  Without one, the crash repeats every attempt
    (a hard-down worker).  In a subprocess the death is ``os._exit``,
    which the executor surfaces as a broken pool — exactly what a
    SIGKILLed worker looks like; in-process it raises instead.
    """
    target = os.environ.get(CRASH_ENV_VAR)
    if target is None or int(target) != shard_index:
        return
    if checkpoint_dir is not None:
        marker = os.path.join(checkpoint_dir, f".crashed-{shard_index}")
        if os.path.exists(marker):
            return
        os.makedirs(checkpoint_dir, exist_ok=True)
        with open(marker, "w") as fh:
            fh.write("simulated worker crash\n")
    if multiprocessing.parent_process() is not None:
        os._exit(3)
    raise SimulatedWorkerCrash(f"simulated crash of shard {shard_index} worker")


def _run_shard_task(payload: tuple) -> ShardResult:
    """Top-level pool entry point (must be picklable by name).

    Writes the shard's checkpoint *in the worker* the moment the shard
    finishes, so completed work survives even if the parent (or a
    sibling worker) dies before collecting the result.
    """
    config, shard, n_shards, tracing, checkpoint_dir, fingerprint, trace, ns = payload
    _maybe_simulated_crash(shard.index, checkpoint_dir)
    result = run_shard(
        config, shard, n_shards, tracing=tracing, trace=trace, fault_namespace=ns
    )
    if checkpoint_dir is not None:
        from repro.parallel.checkpoint import save_shard_result

        save_shard_result(checkpoint_dir, fingerprint, result)
    return result
