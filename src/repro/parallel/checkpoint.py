"""Per-shard checkpoint files for crash-tolerant campaigns.

Each worker writes its finished :class:`~repro.parallel.worker.ShardResult`
to ``<dir>/shard-<index>.pkl`` the moment the shard completes, so a
campaign interrupted by a worker crash (or a whole-process kill) resumes
from the completed shards instead of recomputing them.  Because a shard
result is a pure function of ``(config, shard, n_shards)``, a resumed
campaign merges to output *byte-identical* to an uninterrupted run — the
property the resilience tests and the CI fault smoke assert.

Checkpoints are guarded by a fingerprint of the campaign definition
(config repr + shard count + format version): a stale file from a
different seed, day count, fault profile, or shard plan is ignored, not
trusted.  Writes are atomic (temp file + ``os.replace``) so a worker
killed mid-write can never leave a torn checkpoint behind.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from typing import TYPE_CHECKING

from repro.core.study import StudyConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.parallel.worker import ShardResult

#: Bump when the ShardResult layout changes incompatibly: old files are
#: then fingerprint-mismatched and recomputed instead of mis-read.
CHECKPOINT_VERSION = 1


def sha256_fingerprint(payload: str) -> str:
    """The repo-wide fingerprint scheme: sha256 over a canonical string.

    Shard checkpoints and sweep cells both key their caches with this —
    one hashing convention, so "same fingerprint" always means "same
    resolved experiment definition".
    """
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def config_fingerprint(config: StudyConfig, n_shards: int) -> str:
    """Identity of a campaign's shard decomposition.

    ``StudyConfig`` is a frozen dataclass of plain values, so its repr is
    a stable, complete description of the experiment (seed, days, nodes,
    fault profile, ...); ``n_shards`` pins the shard plan the results
    belong to.
    """
    return sha256_fingerprint(f"v{CHECKPOINT_VERSION}|shards={n_shards}|{config!r}")


def shard_path(checkpoint_dir: str, index: int) -> str:
    return os.path.join(checkpoint_dir, f"shard-{index:04d}.pkl")


def save_shard_result(
    checkpoint_dir: str, fingerprint: str, result: "ShardResult"
) -> str:
    """Atomically persist one finished shard; returns the file path."""
    os.makedirs(checkpoint_dir, exist_ok=True)
    path = shard_path(checkpoint_dir, result.shard.index)
    envelope = {
        "version": CHECKPOINT_VERSION,
        "fingerprint": fingerprint,
        "shard_index": result.shard.index,
        "result": result,
    }
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "wb") as fh:
        pickle.dump(envelope, fh, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(tmp, path)
    return path


def load_shard_result(
    checkpoint_dir: str, fingerprint: str, index: int
) -> "ShardResult | None":
    """The checkpointed result for one shard, or None when absent/stale.

    Any defect — missing file, truncated pickle, version or fingerprint
    mismatch, wrong shard index — returns None: the caller recomputes the
    shard, which is always safe.
    """
    path = shard_path(checkpoint_dir, index)
    try:
        with open(path, "rb") as fh:
            envelope = pickle.load(fh)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError):
        return None
    if not isinstance(envelope, dict):
        return None
    if envelope.get("version") != CHECKPOINT_VERSION:
        return None
    if envelope.get("fingerprint") != fingerprint:
        return None
    if envelope.get("shard_index") != index:
        return None
    return envelope.get("result")
