"""Shard planning: how a campaign splits into day ranges.

A shard plan is a pure function of ``(n_days, shard_days)`` — it never
depends on worker count, so the same campaign configuration produces the
same shards (and therefore the same merged results, see
:mod:`repro.parallel.merge`) whether it runs on one worker or sixteen.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Default day-range width.  A fixed constant (never derived from the
#: worker count) so the shard layout — which is part of the experiment's
#: statistical definition — is stable across machines.  15 divides the
#: paper's 270-day campaign into 18 shards, enough to keep 16 workers
#: busy.
DEFAULT_SHARD_DAYS = 15


@dataclass(frozen=True)
class Shard:
    """One contiguous day range of a campaign.

    ``index`` doubles as the shard's RNG identity
    (:func:`repro.util.rng.spawn_stream`) and its merge namespace (job
    and span id offsets).
    """

    index: int
    day_start: int
    day_end: int  # exclusive

    @property
    def n_days(self) -> int:
        return self.day_end - self.day_start

    @property
    def start_seconds(self) -> float:
        from repro.workload.traces import SECONDS_PER_DAY

        return self.day_start * SECONDS_PER_DAY


def plan_shards(n_days: int, shard_days: int | None = None) -> list[Shard]:
    """Split ``n_days`` into contiguous shards of ``shard_days`` each
    (last shard may be shorter).

    ``shard_days=None`` uses :data:`DEFAULT_SHARD_DAYS`; a value at or
    above ``n_days`` yields a single shard, which the runner executes via
    the exact serial path (same trace, same streams) — the degenerate
    plan is byte-identical to :func:`repro.core.study.run_study`.
    """
    if n_days <= 0:
        raise ValueError("need at least one day")
    width = DEFAULT_SHARD_DAYS if shard_days is None else int(shard_days)
    if width <= 0:
        raise ValueError(f"shard_days must be positive, got {width}")
    return [
        Shard(index=i, day_start=start, day_end=min(start + width, n_days))
        for i, start in enumerate(range(0, n_days, width))
    ]
