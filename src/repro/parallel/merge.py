"""Deterministic merge of shard outputs into one campaign dataset.

The merge is pure bookkeeping — no randomness, no dependence on which
worker produced which shard, no dependence on arrival order (shards are
processed in index order):

* **Counter samples** are *rebased*: each node's cumulative counter
  vector from the previous shards is added to the shard's local
  snapshots, so the concatenated series is monotone per node and
  differencing it yields exactly the concatenation of the shards'
  interval series.  Each shard's ``t=0`` baseline snapshot (all zeros by
  construction — nothing has run at shard-local time zero) duplicates
  the previous shard's horizon sample and is dropped, keeping one sample
  per cadence point, exactly like a serial run.
* **Job records** move onto the campaign clock and into per-shard id
  ranges (``job_id + index × JOB_ID_STRIDE``).
* **Spans** likewise (``s<n>`` → ``s<n + index × SPAN_ID_STRIDE>``), via
  :meth:`repro.tracing.span.Span.rebase`.
* **Telemetry** is rebuilt by :meth:`TelemetryService.replay` over the
  merged sample/record streams — deterministic by construction, and
  identical no matter how many workers executed the shards.
"""

from __future__ import annotations

import numpy as np

from repro.core.study import StudyConfig, StudyDataset
from repro.faults.events import FaultLog
from repro.hpm.collector import SampleSeries, SystemSample
from repro.parallel.worker import ShardResult
from repro.pbs.accounting import AccountingLog
from repro.pbs.job import JobRecord
from repro.workload.traces import SECONDS_PER_DAY, CampaignTrace

#: Shard *k*'s jobs are numbered ``k×STRIDE + local_id``.  Wide enough
#: that no shard can overflow into the next range (a shard day submits
#: hundreds of jobs, not hundreds of thousands).
JOB_ID_STRIDE = 1_000_000

#: Shard *k*'s spans are ``s(k×STRIDE + local_n)``.  Spans are far more
#: numerous than jobs (every simulator event dispatch is one), so the
#: stride is correspondingly wider.
SPAN_ID_STRIDE = 1_000_000_000


class MergedSampleSeries(SampleSeries):
    """The campaign-wide sample run assembled from shard samples."""


def merge_samples(results: list[ShardResult]) -> list[SystemSample]:
    """Concatenate shard samples onto the campaign clock, rebased so the
    per-node cumulative counters stay monotone across shard boundaries."""
    merged: list[SystemSample] = []
    base: dict[int, np.ndarray] = {}
    for k, res in enumerate(results):
        offset = res.shard.start_seconds
        last: dict[int, np.ndarray] = {}
        base_rows: dict[tuple[int, ...], np.ndarray] = {}
        for i, sample in enumerate(res.samples):
            if not base or not sample.node_ids:
                rebased = sample.matrix
            else:
                rows = base_rows.get(sample.node_ids)
                if rows is None:
                    zero = np.zeros(sample.matrix.shape[1], dtype=np.int64)
                    rows = np.stack([base.get(nid, zero) for nid in sample.node_ids])
                    base_rows[sample.node_ids] = rows
                rebased = sample.matrix + rows
            for row, nid in zip(rebased, sample.node_ids):
                last[nid] = row
            if k > 0 and i == 0:
                # The shard's t=0 baseline duplicates the previous
                # shard's horizon sample (local counters are all zero at
                # shard start); keep the cadence at one sample per point.
                continue
            merged.append(
                SystemSample(
                    time=offset + sample.time,
                    node_ids=sample.node_ids,
                    matrix=rebased,
                    missing=sample.missing,
                )
            )
        base.update(last)
    return merged


def merge_records(results: list[ShardResult]) -> list[JobRecord]:
    """Shard job records on the campaign clock with namespaced ids."""
    merged: list[JobRecord] = []
    for res in results:
        offset = res.shard.start_seconds
        id_offset = res.shard.index * JOB_ID_STRIDE
        for r in res.records:
            merged.append(
                JobRecord(
                    job_id=r.job_id + id_offset,
                    user=r.user,
                    app_name=r.app_name,
                    nodes_requested=r.nodes_requested,
                    node_ids=r.node_ids,
                    submit_time=r.submit_time + offset,
                    start_time=r.start_time + offset,
                    end_time=r.end_time + offset,
                    counter_deltas=r.counter_deltas,
                )
            )
    return merged


def merge_probes(results: list[ShardResult]) -> list[tuple[float, int]]:
    """Utilization probes on the campaign clock (each later shard's
    ``t=0`` probe duplicates the previous shard's horizon probe and is
    dropped, mirroring the sample merge)."""
    merged: list[tuple[float, int]] = []
    for k, res in enumerate(results):
        offset = res.shard.start_seconds
        for t, busy in res.utilization_probes:
            if k > 0 and t == 0.0:
                continue
            merged.append((t + offset, busy))
    return merged


def merge_spans(results: list[ShardResult]) -> list:
    """Shard spans on the campaign clock in disjoint id ranges.

    Multi-shard merges tag each shard's campaign-root span with its
    shard index and day range, so a merged trace still reads as one
    timeline per shard in the viewers.
    """
    n_shards = len(results)
    merged = []
    for res in results:
        offset = res.shard.start_seconds
        id_offset = res.shard.index * SPAN_ID_STRIDE
        if n_shards == 1:
            merged.extend(res.spans)
            continue
        for span in res.spans:
            out = span.rebase(time_offset=offset, id_offset=id_offset)
            if span.category == "campaign":
                out.args["shard"] = res.shard.index
                out.args["day_start"] = res.shard.day_start
            merged.append(out)
    return merged


def merge_faults(results: list[ShardResult]) -> FaultLog | None:
    """Shard fault logs on the campaign clock, summed.

    Each shard's log was already finalized (integrals clipped at the
    shard horizon), so the merge is pure addition; None when no shard
    ran with fault injection.
    """
    logs = [
        res.faults.rebase(res.shard.start_seconds)
        for res in results
        if res.faults is not None
    ]
    return FaultLog.merged(logs) if logs else None


def merge_trace(config: StudyConfig, results: list[ShardResult]) -> CampaignTrace:
    """The campaign-wide submission trace the shards realized."""
    submissions = []
    for res in results:
        offset = res.shard.start_seconds
        if offset == 0.0:
            submissions.extend(res.submissions)
        else:
            from dataclasses import replace

            submissions.extend(replace(s, time=s.time + offset) for s in res.submissions)
    levels = (
        np.concatenate([res.demand_levels for res in results])
        if results
        else np.empty(0)
    )
    return CampaignTrace(
        seed=config.seed,
        n_days=config.n_days,
        n_nodes=config.n_nodes,
        submissions=submissions,
        demand_levels=levels,
    )


def merge_shard_results(
    config: StudyConfig,
    results: list[ShardResult],
    *,
    telemetry: bool = True,
    tracing: bool = False,
) -> StudyDataset:
    """Assemble the campaign dataset from shard results (index order)."""
    results = sorted(results, key=lambda r: r.shard.index)
    expected_days = sum(r.shard.n_days for r in results)
    if expected_days != config.n_days:
        raise ValueError(
            f"shard results cover {expected_days} days, campaign has {config.n_days}"
        )

    samples = merge_samples(results)
    records = merge_records(results)
    collector = MergedSampleSeries(samples, cadence=config.sample_interval)
    accounting = AccountingLog()
    for r in records:
        accounting.append(r)

    spans = merge_spans(results) if tracing else []
    truncations = [n for res in results for n in res.truncations]
    faults = merge_faults(results)

    service = None
    if telemetry:
        from repro.telemetry.service import TelemetryService

        service = TelemetryService.replay(
            samples,
            records,
            spans=spans,
            truncations=truncations,
            faults=faults.events if faults is not None else (),
        )
        if faults is not None:
            # Replay sees fault *events* but not the live side effects
            # (kill notices, dropped passes); carry the counters over so
            # the merged summary matches the live view.
            service.jobs_killed_seen = faults.jobs_killed
            service.collector_gaps_seen = faults.passes_dropped

    tracer = None
    if tracing:
        from repro.tracing.tracer import Tracer

        tracer = Tracer()
        tracer.spans = spans

    return StudyDataset(
        config=config,
        trace=merge_trace(config, results),
        collector=collector,  # type: ignore[arg-type] — same sample/interval surface
        accounting=accounting,
        utilization_probes=merge_probes(results),
        telemetry=service,
        events_processed=sum(r.events_processed for r in results),
        tracer=tracer,
        faults=faults,
    )
