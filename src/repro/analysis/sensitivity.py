"""Sensitivity analysis: how the headline numbers move with the knobs.

The calibration in DESIGN.md rests on a handful of free parameters
(demand level, node memory, paging-disk limit).  This harness sweeps
one knob across values, runs a short campaign per value, and reports
how the study's headline metrics respond — both a robustness check on
the reproduction ("the conclusions don't hinge on one magic number")
and the counterfactual §7 invites ("what would the SP2 have delivered
with more memory per node?").
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.study import StudyConfig, WorkloadStudy
from repro.power2.config import MachineConfig


@dataclass(frozen=True)
class SweepPoint:
    """One campaign's headline metrics at one knob value."""

    value: float
    daily_gflops_mean: float
    utilization_mean: float
    tw_job_mflops: float
    wide_job_mflops: float

    def row(self) -> tuple[float, float, float, float, float]:
        return (
            self.value,
            self.daily_gflops_mean,
            self.utilization_mean,
            self.tw_job_mflops,
            self.wide_job_mflops,
        )


#: Knobs the sweep understands and how each is applied.
KNOBS = ("demand_mean", "memory_bytes", "paging_fault_limit")


def _config_for(knob: str, value: float, base: StudyConfig) -> StudyConfig:
    if knob == "demand_mean":
        return dataclasses.replace(base, demand_mean=float(value))
    if knob == "memory_bytes":
        mc = dataclasses.replace(
            base.machine_config or MachineConfig(), memory_bytes=int(value)
        )
        return dataclasses.replace(base, machine_config=mc)
    if knob == "paging_fault_limit":
        mc = dataclasses.replace(
            base.machine_config or MachineConfig(), paging_fault_limit=float(value)
        )
        return dataclasses.replace(base, machine_config=mc)
    raise ValueError(f"unknown knob {knob!r}; known: {KNOBS}")


def _measure(config: StudyConfig, knob_value: float) -> SweepPoint:
    dataset = WorkloadStudy(config).run()
    daily = dataset.daily_gflops()
    util = dataset.daily_utilization()
    wide = [
        r.mflops_per_node
        for r in dataset.accounting.filtered()
        if r.nodes_requested > 64
    ]
    return SweepPoint(
        value=knob_value,
        daily_gflops_mean=float(daily.mean()) if daily.size else 0.0,
        utilization_mean=float(util.mean()) if util.size else 0.0,
        tw_job_mflops=dataset.accounting.time_weighted_mflops_per_node(),
        wide_job_mflops=float(np.mean(wide)) if wide else float("nan"),
    )


def sweep(
    knob: str,
    values: Sequence[float],
    *,
    seed: int = 0,
    n_days: int = 12,
    n_nodes: int = 144,
    n_users: int = 40,
) -> list[SweepPoint]:
    """Run one short campaign per knob value."""
    if not values:
        raise ValueError("sweep needs at least one value")
    base = StudyConfig(seed=seed, n_days=n_days, n_nodes=n_nodes, n_users=n_users)
    return [_measure(_config_for(knob, v, base), v) for v in values]


def render_sweep(knob: str, points: list[SweepPoint]) -> str:
    lines = [
        f"Sensitivity sweep: {knob}",
        f"{'value':>12s} {'Gflops':>8s} {'util':>6s} {'tw job':>8s} {'wide jobs':>10s}",
    ]
    for p in points:
        wide = f"{p.wide_job_mflops:10.2f}" if np.isfinite(p.wide_job_mflops) else "       (—)"
        lines.append(
            f"{p.value:12.3g} {p.daily_gflops_mean:8.2f} {p.utilization_mean:6.2f} "
            f"{p.tw_job_mflops:8.1f} {wide}"
        )
    return "\n".join(lines)
