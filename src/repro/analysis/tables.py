"""Tables 1–4.

Each generator returns a :class:`repro.util.tables.Table` whose rows
match the paper's layout; the benchmark harness prints them next to the
paper's values (recorded in EXPERIMENTS.md).
"""

from __future__ import annotations

import numpy as np

from repro.core.study import StudyDataset
from repro.hpm.derived import DerivedRates
from repro.hpm.events import table1_rows
from repro.power2.config import POWER2_590
from repro.power2.pipeline import CycleModel
from repro.util.stats import summary
from repro.util.tables import Table
from repro.workload.kernels import kernel

#: §5's filter for Tables 2/3: days whose system rate exceeds 2 Gflops.
BUSY_DAY_GFLOPS = 2.0

#: The paper reports one representative day labelled "Day 45.0".
REPRESENTATIVE_DAY = 45


def table1() -> Table:
    """Table 1: the NAS counter selection."""
    t = Table(
        title="Table 1: NAS SP2 RS2HPM Counters",
        columns=("Counter", "Label", "Description"),
    )
    for label, slot, desc in table1_rows():
        t.add_row(label, slot, desc)
    return t


def busy_days(dataset: StudyDataset) -> tuple[list[int], list[DerivedRates]]:
    """Indices and rates of the days above the 2 Gflops filter."""
    rates = dataset.daily_rates()
    idx = [i for i, r in enumerate(rates) if r.gflops_system() > BUSY_DAY_GFLOPS]
    return idx, [rates[i] for i in idx]


def _representative(
    dataset: StudyDataset, idx: list[int], rates: list[DerivedRates]
) -> DerivedRates:
    """The "Day 45" column: campaign day 45 if it passed the filter,
    otherwise the filtered day closest to the filtered-mean Mflops."""
    if REPRESENTATIVE_DAY in idx:
        return rates[idx.index(REPRESENTATIVE_DAY)]
    mean = float(np.mean([r.mflops_total for r in rates]))
    return min(rates, key=lambda r: abs(r.mflops_total - mean))


#: Table 2's row layout — shared with :mod:`repro.stats.metrics`, which
#: re-derives every cell per seed to put error bars on it.
TABLE2_ROWS: tuple = (
    ("Mips", lambda r: r.mips_total),
    ("Mops", lambda r: r.mops_total),
    ("Mflops", lambda r: r.mflops_total),
)

#: Table 3's section/row layout (same sharing contract as TABLE2_ROWS).
TABLE3_SECTIONS: tuple = (
    (
        "OPS",
        (
            ("Mflops-All", lambda r: r.mflops_total),
            ("Mflops-add", lambda r: r.mflops_add),
            ("Mflops-div", lambda r: r.mflops_div),
            ("Mflops-mult", lambda r: r.mflops_mul),
            ("Mflops-fma", lambda r: r.mflops_fma),
        ),
    ),
    (
        "INST",
        (
            ("Mips-Floating Point (Total)", lambda r: r.mips_fp_total),
            ("Mips-Floating Point (Unit 0)", lambda r: r.mips_fp_unit0),
            ("Mips-Floating Point (Unit 1)", lambda r: r.mips_fp_unit1),
            ("Mips-Fixed Point Unit (Total)", lambda r: r.mips_fxu_total),
            ("Mips-Fixed Point (Unit 1)", lambda r: r.mips_fxu_unit1),
            ("Mips-Fixed Point (Unit 0)", lambda r: r.mips_fxu_unit0),
            ("Mips-Inst Cache Unit", lambda r: r.mips_icu),
        ),
    ),
    (
        "CACHE",
        (
            ("Data Cache Misses-Million/S", lambda r: r.dcache_miss_rate),
            ("TLB-Million/S", lambda r: r.tlb_miss_rate),
            ("Instruction Cache Misses-Million/S", lambda r: r.icache_miss_rate),
        ),
    ),
    (
        "I/O",
        (
            ("DMA reads-MTransfer/S", lambda r: r.dma_read_rate),
            ("DMA writes-MTransfer/S", lambda r: r.dma_write_rate),
        ),
    ),
)


def table2(dataset: StudyDataset) -> Table:
    """Table 2: Mips / Mops / Mflops over the >2 Gflops days."""
    idx, rates = busy_days(dataset)
    if not rates:
        raise ValueError("no day exceeded the 2 Gflops filter; run a longer campaign")
    day = _representative(dataset, idx, rates)
    t = Table(
        title=f"Table 2: Measured Major Rates for NAS Workload "
        f"({len(rates)} of {len(dataset.daily_rates())} days > {BUSY_DAY_GFLOPS} Gflops)",
        columns=("Rates", "Day 45.0", "Avg Rate", "Std"),
    )
    for label, get in TABLE2_ROWS:
        s = summary([get(r) for r in rates])
        t.add_row(label, get(day), s.mean, s.std)
    return t


def table3(dataset: StudyDataset) -> Table:
    """Table 3: the full per-unit breakdown over the >2 Gflops days."""
    idx, rates = busy_days(dataset)
    if not rates:
        raise ValueError("no day exceeded the 2 Gflops filter; run a longer campaign")
    day = _representative(dataset, idx, rates)
    t = Table(
        title="Table 3: Measured Major Rates for NAS Workload (breakdown)",
        columns=("Rates", "Day 45.0", "Avg", "Std"),
    )
    for section, entries in TABLE3_SECTIONS:
        t.add_section(section)
        for label, get in entries:
            s = summary([get(r) for r in rates])
            t.add_row(label, get(day), s.mean, s.std)
    return t


def table4(dataset: StudyDataset) -> Table:
    """Table 4: hierarchical memory performance.

    Three columns, as in the paper:

    * the NAS workload (filtered-day counter ratios);
    * the analytic no-reuse sequential access bound;
    * NPB BT on 49 CPUs (the ``npb_bt`` kernel through the cycle model).
    """
    cells = table4_values(dataset)
    wl_cache, wl_tlb, wl_mflops = (
        cells["workload.cache_miss_ratio"],
        cells["workload.tlb_miss_ratio"],
        cells["workload.mflops"],
    )
    seq_cache, seq_tlb = cells["sequential.cache_miss_ratio"], cells["sequential.tlb_miss_ratio"]
    bt_cache, bt_tlb = cells["npb_bt.cache_miss_ratio"], cells["npb_bt.tlb_miss_ratio"]

    t = Table(
        title="Table 4: Hierarchical Memory Performance",
        columns=("Rate", "NAS Workload", "Sequential Access", "NPB BT on 49 CPUs"),
    )
    t.add_row(
        "Cache Miss Ratio",
        f"{wl_cache:.1%}",
        f"{seq_cache:.1%}",
        f"{bt_cache:.1%}",
    )
    t.add_row("TLB Miss Ratio", f"{wl_tlb:.2%}", f"{seq_tlb:.2%}", f"{bt_tlb:.2%}")
    t.add_row("Mflops/CPU", wl_mflops, "", cells["npb_bt.mflops"])
    return t


def table4_values(dataset: StudyDataset) -> dict[str, float]:
    """Table 4's cells as a flat dict (the repeat layer samples these).

    The ``sequential.*`` and ``npb_bt.*`` entries are analytic —
    constant across seeds — while the ``workload.*`` entries vary with
    the campaign realization.
    """
    _, rates = busy_days(dataset)
    if not rates:
        raise ValueError("no day exceeded the 2 Gflops filter; run a longer campaign")
    cfg = POWER2_590
    seq = kernel("sequential_access")
    bt = kernel("npb_bt")
    bt_result = CycleModel(cfg).execute(
        bt.mix_for_flops(1e8), bt.memory_behaviour(cfg), bt.deps
    )
    return {
        "workload.cache_miss_ratio": float(np.mean([r.dcache_miss_ratio for r in rates])),
        "workload.tlb_miss_ratio": float(np.mean([r.tlb_miss_ratio for r in rates])),
        "workload.mflops": float(np.mean([r.mflops_total for r in rates])),
        "sequential.cache_miss_ratio": float(seq.access.dcache_miss_ratio(cfg)),
        "sequential.tlb_miss_ratio": float(seq.access.tlb_miss_ratio(cfg)),
        "npb_bt.cache_miss_ratio": float(bt.access.dcache_miss_ratio(cfg)),
        "npb_bt.tlb_miss_ratio": float(bt.access.tlb_miss_ratio(cfg)),
        "npb_bt.mflops": float(bt_result.mflops),
    }
