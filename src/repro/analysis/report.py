"""Headline numbers and the paper-vs-measured comparison."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import busy_days
from repro.core.study import StudyDataset
from repro.power2.config import POWER2_590


@dataclass(frozen=True)
class Headline:
    """One claim from the paper, with our measured counterpart."""

    claim: str
    paper_value: float
    measured_value: float
    unit: str

    @property
    def ratio(self) -> float:
        if self.paper_value == 0:
            return float("inf") if self.measured_value else 1.0
        return self.measured_value / self.paper_value

    def line(self) -> str:
        return (
            f"{self.claim:<48s} paper {self.paper_value:>8.3g} {self.unit:<10s}"
            f" measured {self.measured_value:>8.3g}  (x{self.ratio:.2f})"
        )


#: Every §5–§7 claim with its paper-side value and unit — the static
#: half of the headline table.  The repeat layer (:mod:`repro.stats`)
#: uses this to annotate across-seed estimates without re-running the
#: analysis, so keep it in sync with :func:`headline_report` (a test
#: pins the two against each other).
PAPER_CLAIMS: dict[str, tuple[float, str]] = {
    "average daily system performance": (1.3, "Gflops"),
    "system efficiency (of aggregate peak)": (0.03, "fraction"),
    "machine average utilization": (0.64, "fraction"),
    "maximum daily utilization": (0.95, "fraction"),
    "maximum 24-hour rate": (3.4, "Gflops"),
    "maximum 15-minute rate": (5.7, "Gflops"),
    "time-weighted batch-job rate": (19.0, "Mflops/node"),
    "batch-job flops per memory instruction": (1.0, "ratio"),
    "fma fraction of the best-decile jobs": (0.80, "fraction"),
    "max 15-minute DMA traffic per node": (5.4, "MB/s"),
    "busy-day (>2 Gflops) mean performance": (2.5, "Gflops"),
    "busy-day DMA traffic per node": (1.3, "MB/s"),
    "fma fraction of workload flops": (0.54, "fraction"),
    "FPU0:FPU1 instruction ratio": (1.7, "ratio"),
    "flops per memory instruction": (0.53, "ratio"),
    "cache miss ratio (lower bound)": (0.010, "fraction"),
    "TLB miss ratio (lower bound)": (0.001, "fraction"),
    "branch fraction of instructions": (0.11, "fraction"),
    "delay per memory instruction": (0.12, "cycles"),
    "cycles per flop (busy days)": (4.0, "cycles"),
    "most popular node count": (16, "nodes"),
}


def headline_report(dataset: StudyDataset) -> list[Headline]:
    """Every §5–§7 headline number, paper vs measured."""
    daily = dataset.daily_gflops()
    util = dataset.daily_utilization()[: len(daily)]
    _, rates = busy_days(dataset)
    _, interval = dataset.interval_gflops()
    acct = dataset.accounting

    peak_gflops = dataset.config.n_nodes * POWER2_590.peak_mflops / 1e3
    mean_gflops = float(daily.mean()) if daily.size else 0.0

    _, dma = dataset.interval_dma_bytes_per_node()

    out = [
        Headline("average daily system performance", 1.3, mean_gflops, "Gflops"),
        Headline(
            "system efficiency (of aggregate peak)",
            0.03,
            mean_gflops / peak_gflops if peak_gflops else 0.0,
            "fraction",
        ),
        Headline("machine average utilization", 0.64, float(util.mean()) if util.size else 0.0, "fraction"),
        Headline("maximum daily utilization", 0.95, float(util.max()) if util.size else 0.0, "fraction"),
        Headline("maximum 24-hour rate", 3.4, float(daily.max()) if daily.size else 0.0, "Gflops"),
        Headline(
            "maximum 15-minute rate", 5.7, float(interval.max()) if interval.size else 0.0, "Gflops"
        ),
        Headline(
            "time-weighted batch-job rate", 19.0, acct.time_weighted_mflops_per_node(), "Mflops/node"
        ),
        Headline(
            "batch-job flops per memory instruction",
            1.0,
            acct.mean_flops_per_memref(),
            "ratio",
        ),
        Headline(
            "fma fraction of the best-decile jobs",
            0.80,
            acct.top_decile_fma_fraction(),
            "fraction",
        ),
        # §5 cannot separate message, disk and paging DMA, and neither
        # can we: both numbers are all-causes DMA traffic per node.
        Headline(
            "max 15-minute DMA traffic per node",
            5.4,
            float(dma.max()) / 1e6 if dma.size else 0.0,
            "MB/s",
        ),
    ]
    if rates:
        out += [
            Headline(
                "busy-day (>2 Gflops) mean performance",
                2.5,
                float(np.mean([r.gflops_system() for r in rates])),
                "Gflops",
            ),
            Headline(
                "busy-day DMA traffic per node",
                1.3,
                float(np.mean([r.dma_bytes_per_s for r in rates])) / 1e6,
                "MB/s",
            ),
            Headline(
                "fma fraction of workload flops",
                0.54,
                float(np.mean([r.fma_flop_fraction for r in rates])),
                "fraction",
            ),
            Headline(
                "FPU0:FPU1 instruction ratio",
                1.7,
                float(np.mean([r.fpu_ratio for r in rates])),
                "ratio",
            ),
            Headline(
                "flops per memory instruction",
                0.53,
                float(np.mean([r.flops_per_memory_inst for r in rates])),
                "ratio",
            ),
            Headline(
                "cache miss ratio (lower bound)",
                0.010,
                float(np.mean([r.dcache_miss_ratio for r in rates])),
                "fraction",
            ),
            Headline(
                "TLB miss ratio (lower bound)",
                0.001,
                float(np.mean([r.tlb_miss_ratio for r in rates])),
                "fraction",
            ),
            Headline(
                "branch fraction of instructions",
                0.11,
                float(np.mean([r.branch_fraction for r in rates])),
                "fraction",
            ),
            Headline(
                "delay per memory instruction",
                0.12,
                float(np.mean([r.delay_per_memory_inst() for r in rates])),
                "cycles",
            ),
            # §5: "This performance rate corresponds to about 1 FLOP
            # every 4 cycles" on the busy days.
            Headline(
                "cycles per flop (busy days)",
                4.0,
                float(
                    POWER2_590.clock_hz
                    / np.mean([r.mflops_total for r in rates])
                    / 1e6
                ),
                "cycles",
            ),
        ]
    try:
        out.append(
            Headline(
                "most popular node count",
                16,
                float(acct.most_popular_nodes()),
                "nodes",
            )
        )
    except ValueError:
        pass
    return out


def paper_comparison(dataset: StudyDataset) -> str:
    """Human-readable headline block (printed by the bench harness)."""
    lines = ["Paper vs measured (this campaign):", ""]
    lines += [h.line() for h in headline_report(dataset)]
    return "\n".join(lines)
