"""Figures 1–5 as data series with ASCII renders.

Each generator returns a :class:`FigureSeries` holding the numeric data
(the thing a plotting tool would consume, and what the tests assert on)
plus a ``render()`` that draws the shape in a terminal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.study import StudyDataset
from repro.util.asciiplot import ascii_histogram, ascii_scatter, ascii_series
from repro.util.stats import moving_average

#: Window used for the paper's moving-average curves.
MOVING_AVERAGE_WINDOW = 14


@dataclass
class FigureSeries:
    """One figure's data: named 1-D arrays plus how to draw them."""

    name: str
    title: str
    series: dict[str, np.ndarray] = field(default_factory=dict)
    kind: str = "line"  # line | histogram | scatter
    xlabel: str = ""
    ylabel: str = ""

    def render(self, width: int = 72) -> str:
        if self.kind == "histogram":
            return ascii_histogram(
                self.series["x"].tolist(), self.series["y"], title=self.title, width=width
            )
        if self.kind == "scatter":
            return ascii_scatter(
                self.series["x"], self.series["y"], title=self.title, width=width
            )
        # Line: plot the primary series; callers can render others too.
        primary = next(iter(self.series.values()))
        return ascii_series(primary, title=self.title, width=width)

    def csv(self) -> str:
        """Comma-separated dump, one column per series."""
        keys = list(self.series)
        rows = [",".join(keys)]
        n = max(len(v) for v in self.series.values())
        for i in range(n):
            rows.append(
                ",".join(
                    f"{self.series[k][i]:.6g}" if i < len(self.series[k]) else ""
                    for k in keys
                )
            )
        return "\n".join(rows) + "\n"


def figure1(dataset: StudyDataset) -> FigureSeries:
    """Figure 1: daily Gflops, its moving average, and the utilization
    moving average over the campaign."""
    daily = dataset.daily_gflops()
    util = dataset.daily_utilization()[: len(daily)]
    return FigureSeries(
        name="figure1",
        title="NAS SP2 System Performance History",
        kind="line",
        xlabel="Number of Days",
        ylabel="System Performance (GFLOPS)",
        series={
            "daily_gflops": daily,
            "daily_gflops_moving_avg": moving_average(daily, MOVING_AVERAGE_WINDOW),
            "utilization_moving_avg": moving_average(util, MOVING_AVERAGE_WINDOW),
        },
    )


def figure2(dataset: StudyDataset) -> FigureSeries:
    """Figure 2: batch-job walltime vs nodes requested (>600 s jobs)."""
    bins = dataset.accounting.walltime_by_nodes()
    return FigureSeries(
        name="figure2",
        title="Batch Job Walltime as a Function of Nodes Requested",
        kind="histogram",
        xlabel="Number of Nodes",
        ylabel="Walltime (Seconds)",
        series={
            "x": np.array([b.nodes for b in bins]),
            "y": np.array([b.total_walltime_seconds for b in bins]),
        },
    )


def figure3(dataset: StudyDataset) -> FigureSeries:
    """Figure 3: per-node job performance vs nodes requested."""
    recs = dataset.accounting.filtered()
    return FigureSeries(
        name="figure3",
        title="Batch Job Performance vs Nodes Requested",
        kind="scatter",
        xlabel="Number of Nodes",
        ylabel="Performance (Mflops per Node)",
        series={
            "x": np.array([r.nodes_requested for r in recs], dtype=float),
            "y": np.array([r.mflops_per_node for r in recs]),
        },
    )


def figure4(dataset: StudyDataset, nodes: int = 16) -> FigureSeries:
    """Figure 4: whole-job Mflops history for one node count (16 is the
    paper's most popular choice) plus its moving average."""
    recs = dataset.accounting.history_for_nodes(nodes)
    rates = np.array([r.total_mflops for r in recs])
    return FigureSeries(
        name="figure4",
        title=f"NAS SP2 {nodes}-node Performance Histories",
        kind="line",
        xlabel="Batch Job Number",
        ylabel="Job Performance Rate (Mflops)",
        series={
            "job_mflops": rates,
            "job_mflops_moving_avg": moving_average(rates, 25)
            if rates.size
            else rates,
            "job_ids": np.array([r.job_id for r in recs], dtype=float),
        },
    )


def figure4_all_node_counts(
    dataset: StudyDataset, *, min_jobs: int = 10
) -> dict[int, FigureSeries]:
    """Figure 4 for every node count with enough history.

    §6: "Similar trends occur for other processor counts" — this is the
    check: each popular node count's history should be flat (no
    improvement over time), not just the 16-node one.
    """
    counts = sorted(
        {r.nodes_requested for r in dataset.accounting.filtered()}
    )
    out: dict[int, FigureSeries] = {}
    for nodes in counts:
        fig = figure4(dataset, nodes=nodes)
        if len(fig.series["job_mflops"]) >= min_jobs:
            out[nodes] = fig
    return out


def figure5(dataset: StudyDataset) -> FigureSeries:
    """Figure 5: per-day node performance vs system/user FXU ratio —
    the paging diagnosis (§6)."""
    rates = dataset.daily_rates()
    x = np.array([r.system_user_fxu_ratio for r in rates])
    y = np.array([r.mflops_total for r in rates])
    finite = np.isfinite(x)
    return FigureSeries(
        name="figure5",
        title="Node Performance vs System Intervention",
        kind="scatter",
        xlabel="Ratio of (System FXU)/(User FXU)",
        ylabel="Performance (MFLOPS per Node)",
        series={"x": x[finite], "y": y[finite]},
    )
