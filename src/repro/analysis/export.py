"""Machine-readable export of the study's artefacts.

The paper's figures were hand-plotted from collected files; downstream
users of this reproduction want the same data as CSV/JSON.  This module
serializes tables (CSV), figures (CSV via ``FigureSeries.csv``) and a
whole-campaign JSON summary suitable for dashboards or regression
tracking.
"""

from __future__ import annotations

import json
from typing import Any

from repro.analysis.figures import figure1, figure2, figure3, figure4, figure5
from repro.analysis.report import headline_report
from repro.analysis.tables import busy_days
from repro.core.study import StudyDataset
from repro.util.tables import Table, _is_section


def table_to_csv(table: Table) -> str:
    """A Table as CSV; section rows become comment lines."""

    def cell(c: object) -> str:
        text = f"{c:.6g}" if isinstance(c, float) else str(c)
        if "," in text or '"' in text:
            text = '"' + text.replace('"', '""') + '"'
        return text

    lines = [",".join(cell(c) for c in table.columns)]
    for row in table.rows:
        if _is_section(row):
            lines.append(f"# {str(row[0]).strip('- ')}")
        else:
            lines.append(",".join(cell(c) for c in row))
    return "\n".join(lines) + "\n"


def dataset_summary(dataset: StudyDataset) -> dict[str, Any]:
    """A JSON-ready summary of one campaign."""
    daily = dataset.daily_gflops()
    util = dataset.daily_utilization()[: len(daily)]
    _, interval = dataset.interval_gflops()
    acct = dataset.accounting

    headlines = [
        {
            "claim": h.claim,
            "paper": h.paper_value,
            "measured": h.measured_value,
            "unit": h.unit,
            "ratio": h.ratio,
        }
        for h in headline_report(dataset)
    ]
    idx, _ = busy_days(dataset)

    telemetry = (
        dataset.telemetry.summary() if dataset.telemetry is not None else None
    )

    out = {
        "config": {
            "seed": dataset.config.seed,
            "n_days": dataset.config.n_days,
            "n_nodes": dataset.config.n_nodes,
            "n_users": dataset.config.n_users,
        },
        "campaign": {
            "seed": dataset.config.seed,
            "events_processed": dataset.events_processed,
            "jobs_accounted": len(acct),
            "daily_gflops_mean": float(daily.mean()) if daily.size else 0.0,
            "daily_gflops_max": float(daily.max()) if daily.size else 0.0,
            "utilization_mean": float(util.mean()) if util.size else 0.0,
            "utilization_max": float(util.max()) if util.size else 0.0,
            "interval_gflops_max": float(interval.max()) if interval.size else 0.0,
            "busy_days": len(idx),
            "time_weighted_mflops_per_node": acct.time_weighted_mflops_per_node(),
        },
        "telemetry": telemetry,
        "headlines": headlines,
    }
    if dataset.faults is not None:
        # Key only present on faulted campaigns: healthy summaries stay
        # byte-identical to pre-fault releases (golden files pin them).
        from repro.faults.report import fault_summary

        out["faults"] = fault_summary(dataset.faults)
    return out


def dataset_to_json(dataset: StudyDataset, *, indent: int = 2) -> str:
    return json.dumps(dataset_summary(dataset), indent=indent) + "\n"


def export_all_figures(dataset: StudyDataset) -> dict[str, str]:
    """All five figures as ``{name: csv_text}``."""
    return {
        fig.name: fig.csv()
        for fig in (
            figure1(dataset),
            figure2(dataset),
            figure3(dataset),
            figure4(dataset),
            figure5(dataset),
        )
    }
