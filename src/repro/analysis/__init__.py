"""The paper's analysis: every table and figure, regenerated.

Table and figure generators take a :class:`~repro.core.study.StudyDataset`
(plus, for Table 4's single-kernel columns, the kernel models directly)
and return structured data — :class:`~repro.util.tables.Table` objects
for tables, series/scatter dataclasses for figures — with ASCII renders
for terminal inspection.  The benchmark harness under ``benchmarks/``
prints exactly these.
"""

from repro.analysis.tables import table1, table2, table3, table4
from repro.analysis.figures import (
    FigureSeries,
    figure1,
    figure2,
    figure3,
    figure4,
    figure4_all_node_counts,
    figure5,
)
from repro.analysis.report import headline_report, paper_comparison
from repro.analysis.export import (
    dataset_summary,
    dataset_to_json,
    export_all_figures,
    table_to_csv,
)
from repro.analysis.opsreport import campaign_ops_digest, day_ops, render_day_report
from repro.analysis.sensitivity import sweep as sensitivity_sweep
from repro.analysis.trends import trend_report, user_histories

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "FigureSeries",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure4_all_node_counts",
    "figure5",
    "headline_report",
    "dataset_summary",
    "dataset_to_json",
    "export_all_figures",
    "table_to_csv",
    "campaign_ops_digest",
    "day_ops",
    "render_day_report",
    "sensitivity_sweep",
    "trend_report",
    "user_histories",
    "paper_comparison",
]
