"""Daily operations report — the "system personnel" view (§3).

The prologue/epilogue files were "for later processing and viewing by
both users and system personnel"; this module is the system-personnel
side: one plain-text report per campaign day with the day's rates, the
jobs that finished, the paging suspects, and the current machine state —
the report an operator would read each morning to spot the §6 pathology
before users complained.

The job-facing facts now come from the streaming telemetry rollups
(finalized at epilogue time, :mod:`repro.telemetry.rollup`) rather than
being recomputed from the raw accounting log; datasets without a
telemetry service (hand-assembled ones) fall back to the legacy scan,
which produces byte-identical reports.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.study import StudyDataset
from repro.hpm.derived import DerivedRates
from repro.pbs.job import JobRecord
from repro.workload.traces import SECONDS_PER_DAY


@dataclass(frozen=True)
class DayOps:
    """One day's operational facts."""

    day: int
    gflops: float
    utilization: float
    jobs_finished: int
    node_seconds: float
    paging_suspects: tuple[JobRecord, ...]
    top_jobs: tuple[JobRecord, ...]
    rates: DerivedRates

    @property
    def healthy(self) -> bool:
        return not self.paging_suspects and self.rates.system_user_fxu_ratio < 0.2


def _finished_records(dataset: StudyDataset, start: float, end: float) -> list[JobRecord]:
    """Jobs that ended in ``[start, end)``, epilogue order.

    The telemetry rollup table already holds exactly this (finalized at
    epilogue time); scanning the accounting log is the fallback for
    datasets that were assembled without a telemetry service.
    """
    if dataset.telemetry is not None:
        return [r.record for r in dataset.telemetry.rollups.finished_between(start, end)]
    return [r for r in dataset.accounting.records if start <= r.end_time < end]


def day_ops(dataset: StudyDataset, day: int, *, top_n: int = 3) -> DayOps:
    """Assemble one day's operations report data."""
    daily = dataset.daily_rates()
    if not 0 <= day < len(daily):
        raise IndexError(f"day {day} outside the campaign ({len(daily)} days)")
    rates = daily[day]
    util = dataset.daily_utilization()
    start, end = day * SECONDS_PER_DAY, (day + 1) * SECONDS_PER_DAY

    finished = _finished_records(dataset, start, end)
    finished.sort(key=lambda r: r.total_mflops, reverse=True)
    suspects = tuple(
        r
        for r in finished
        if np.isfinite(r.system_user_fxu_ratio) and r.system_user_fxu_ratio > 0.5
    )
    return DayOps(
        day=day,
        gflops=rates.gflops_system(),
        utilization=float(util[day]) if day < len(util) else 0.0,
        jobs_finished=len(finished),
        node_seconds=float(sum(r.node_seconds for r in finished)),
        paging_suspects=suspects,
        top_jobs=tuple(finished[:top_n]),
        rates=rates,
    )


def render_day_report(ops: DayOps) -> str:
    """The morning report text."""
    r = ops.rates
    lines = [
        f"=== NAS SP2 operations report, day {ops.day} ===",
        f"performance : {ops.gflops:.2f} Gflops system "
        f"({r.mflops_total:.1f} Mflops/node), utilization {ops.utilization:.0%}",
        f"workload    : {ops.jobs_finished} jobs finished, "
        f"{ops.node_seconds / 3600:.0f} node-hours",
        f"memory      : dcache {r.dcache_miss_rate:.2f} M/s, "
        f"tlb {r.tlb_miss_rate:.3f} M/s, "
        f"sys/user FXU {r.system_user_fxu_ratio:.2f}",
        f"i/o         : dma {r.dma_read_rate + r.dma_write_rate:.3f} MT/s "
        f"({r.dma_bytes_per_s / 1e6:.2f} MB/s per node)",
    ]
    if ops.top_jobs:
        lines.append("top jobs    :")
        for rec in ops.top_jobs:
            lines.append(
                f"  #{rec.job_id:<6d} {rec.app_name:<20s} {rec.nodes_requested:>3d} nodes  "
                f"{rec.total_mflops:7.1f} Mflops  ({rec.mflops_per_node:.1f}/node)"
            )
    if ops.paging_suspects:
        lines.append("PAGING SUSPECTS (system FXU rivals user FXU, see §6):")
        for rec in ops.paging_suspects:
            lines.append(
                f"  #{rec.job_id:<6d} {rec.app_name:<20s} {rec.nodes_requested:>3d} nodes  "
                f"sys/user {rec.system_user_fxu_ratio:5.2f}  "
                f"{rec.mflops_per_node:.2f} Mflops/node"
            )
    else:
        lines.append("paging      : no suspects")
    return "\n".join(lines)


def campaign_ops_digest(dataset: StudyDataset) -> str:
    """One line per day — the wall chart."""
    out = []
    for day in range(len(dataset.daily_rates())):
        ops = day_ops(dataset, day)
        flag = " " if ops.healthy else "!"
        out.append(
            f"{flag} day {day:3d}  {ops.gflops:5.2f} Gflops  util {ops.utilization:4.0%}  "
            f"{ops.jobs_finished:3d} jobs  suspects {len(ops.paging_suspects)}"
        )
    return "\n".join(out)
