"""Trend analysis — §5's "no obvious trends" finding, quantified.

The paper looked for single-variable predictors of daily performance and
found none: "workloads executing a greater fraction of floating-point
operations in the fma unit should display a higher performance rate, but
NAS workload measurements have yet to display such a trend.  The lack of
obvious trends such as reductions in performance rates with increasing
cache and/or TLB miss rates is difficult to analyze since the NAS
22-counter selection excluded performance reducing factors such as
message-passing delays and I/O wait times."

This module runs that search over a campaign's daily data: correlations
of per-node Mflops against each candidate predictor the counters offer.
The reproduction's expectation (and finding, see
``benchmarks/bench_trends.py``): the §5 CPU-side predictors (fma
fraction, miss *ratios*) are weak, because wall-time effects the
counters cannot see (waits, load, paging) dominate — while the
system-intervention ratio, the §6 discovery, is the one strong signal.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.study import StudyDataset


@dataclass(frozen=True)
class TrendLine:
    """One candidate predictor of daily per-node Mflops."""

    predictor: str
    correlation: float
    #: What §5's reasoning expected the sign to be.
    expected_sign: int

    @property
    def is_obvious_trend(self) -> bool:
        """The paper's bar: a trend you could see in a scatter plot."""
        return abs(self.correlation) >= 0.5

    def line(self) -> str:
        expect = {1: "+", -1: "-", 0: "·"}[self.expected_sign]
        verdict = "TREND" if self.is_obvious_trend else "no obvious trend"
        return (
            f"{self.predictor:<34s} expected {expect}   "
            f"r = {self.correlation:+.2f}   {verdict}"
        )


def _corr(x: np.ndarray, y: np.ndarray) -> float:
    if x.size < 3 or x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def trend_report(dataset: StudyDataset, *, min_mflops: float = 1.0) -> list[TrendLine]:
    """Correlate daily per-node Mflops with each counter-side predictor.

    Days with almost no floating-point work are dropped (their ratios
    are noise), as the paper's busy-day filtering did.
    """
    rates = dataset.daily_rates()
    keep = [r for r in rates if r.mflops_total >= min_mflops]
    if len(keep) < 5:
        raise ValueError("need at least five active days for trend analysis")
    mflops = np.array([r.mflops_total for r in keep])

    candidates: list[tuple[str, np.ndarray, int]] = [
        (
            "fma flop fraction",
            np.array([r.fma_flop_fraction for r in keep]),
            +1,
        ),
        (
            "cache miss ratio",
            np.array([r.dcache_miss_ratio for r in keep]),
            -1,
        ),
        (
            "TLB miss ratio",
            np.array([r.tlb_miss_ratio for r in keep]),
            -1,
        ),
        (
            "flops per memory instruction",
            np.array([r.flops_per_memory_inst for r in keep]),
            +1,
        ),
        (
            "FPU0:FPU1 ratio",
            np.array(
                [r.fpu_ratio if np.isfinite(r.fpu_ratio) else 0.0 for r in keep]
            ),
            -1,
        ),
        (
            "system/user FXU ratio",
            np.array([r.system_user_fxu_ratio for r in keep]),
            -1,
        ),
        (
            "user cycle fraction",
            np.array([r.user_cycle_fraction for r in keep]),
            +1,
        ),
    ]
    return [
        TrendLine(predictor=name, correlation=_corr(x, mflops), expected_sign=sign)
        for name, x, sign in candidates
    ]


@dataclass(frozen=True)
class UserHistory:
    """One user's job-rate history over the campaign."""

    user: int
    n_jobs: int
    mean_mflops_per_node: float
    #: Slope of a least-squares fit of Mflops/node against job sequence,
    #: normalized by the mean — fractional improvement per job.
    improvement_per_job: float


def user_histories(dataset: StudyDataset, *, min_jobs: int = 8) -> list[UserHistory]:
    """Per-user performance histories — §6 at user granularity.

    The machine was configured for code development, so "users would
    presumably improve performance over time"; Figure 4 shows they did
    not, in aggregate.  This checks the stronger per-user version: does
    *any* user's job history trend upward?
    """
    by_user: dict[int, list[float]] = {}
    for rec in dataset.accounting.filtered():
        by_user.setdefault(rec.user, []).append(rec.mflops_per_node)
    out = []
    for user, rates in sorted(by_user.items()):
        if len(rates) < min_jobs:
            continue
        y = np.asarray(rates)
        x = np.arange(y.size, dtype=float)
        slope = float(np.polyfit(x, y, 1)[0])
        mean = float(y.mean())
        out.append(
            UserHistory(
                user=user,
                n_jobs=y.size,
                mean_mflops_per_node=mean,
                improvement_per_job=slope / mean if mean > 0 else 0.0,
            )
        )
    return out


def render_trend_report(trends: list[TrendLine]) -> str:
    lines = [
        "Daily per-node Mflops vs counter-side predictors (§5's trend search):",
        "",
    ]
    lines += ["  " + t.line() for t in trends]
    weak = [t for t in trends if not t.is_obvious_trend]
    lines += [
        "",
        f"{len(weak)}/{len(trends)} predictors show no obvious trend — §5's "
        "conclusion: the 22-counter selection excluded the factors "
        "(waits, load, paging) that actually move daily performance.",
    ]
    return "\n".join(lines)
