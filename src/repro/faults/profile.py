"""Fault profiles: the campaign's failure environment as data.

Bergeron's worst days were *pathology* days — paging storms, unreachable
nodes, collector gaps (§6) — and production workload studies treat those
as first-class behaviour, not noise.  A :class:`FaultProfile` describes
the failure environment of one campaign: per-node crash/repair processes
(MTBF/MTTR), switch-degradation episodes, paging-storm episodes, and
collector-sample dropouts.  The profile is pure data — frozen, picklable
and hashable — so it can ride inside :class:`repro.core.study.StudyConfig`
and cross process boundaries to shard workers unchanged.

The actual event times are drawn by :mod:`repro.faults.schedule` from a
named RNG stream tree, so a campaign's fault history is a pure function
of ``(seed, profile)`` — and, in sharded execution, of
``(seed, shard_id, profile)`` (see docs/FAULTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass(frozen=True)
class FaultProfile:
    """The failure environment for one campaign.

    Every process is disabled by setting its rate parameter to ``0``
    (the default), so ``FaultProfile()`` is the all-healthy null profile
    and a default campaign remains byte-identical to one with no fault
    machinery at all.
    """

    name: str = "custom"
    #: Mean time between crashes *per node*, in days (0 = no crashes).
    node_mtbf_days: float = 0.0
    #: Mean repair time per crash, in hours.
    node_mttr_hours: float = 4.0
    #: Mean time between switch-degradation episodes, in days (0 = off).
    switch_mtbf_days: float = 0.0
    #: Mean episode duration, in hours.
    switch_mttr_hours: float = 2.0
    #: During an episode, latency is multiplied and bandwidth divided by
    #: this factor (must be >= 1).
    switch_degradation: float = 4.0
    #: Mean time between paging-storm episodes, in days (0 = off).
    storm_mtbf_days: float = 0.0
    #: Mean storm duration, in hours.
    storm_duration_hours: float = 3.0
    #: During a storm, every newly started job's per-node memory demand
    #: is multiplied by this factor (>= 1) — the §6 oversubscription
    #: pathology, injected rather than waiting for an unlucky mix.
    storm_memory_pressure: float = 1.35
    #: Probability that any given 15-minute collector pass is lost.
    collector_dropout_rate: float = 0.0
    #: How many times a job killed by a node crash is requeued before
    #: PBS gives up on it.
    max_job_retries: int = 3

    def __post_init__(self) -> None:
        for f in (
            "node_mtbf_days",
            "node_mttr_hours",
            "switch_mtbf_days",
            "switch_mttr_hours",
            "storm_mtbf_days",
            "storm_duration_hours",
        ):
            if getattr(self, f) < 0:
                raise ValueError(f"{f} cannot be negative")
        if self.switch_degradation < 1.0:
            raise ValueError("switch_degradation must be >= 1")
        if self.storm_memory_pressure < 1.0:
            raise ValueError("storm_memory_pressure must be >= 1")
        if not 0.0 <= self.collector_dropout_rate < 1.0:
            raise ValueError("collector_dropout_rate must be in [0, 1)")
        if self.max_job_retries < 0:
            raise ValueError("max_job_retries cannot be negative")

    @property
    def is_null(self) -> bool:
        """True when no fault process is enabled."""
        return (
            self.node_mtbf_days == 0.0
            and self.switch_mtbf_days == 0.0
            and self.storm_mtbf_days == 0.0
            and self.collector_dropout_rate == 0.0
        )

    @classmethod
    def named(cls, name: str) -> "FaultProfile":
        """Look up a preset profile by name."""
        try:
            return PROFILES[name]
        except KeyError:
            raise ValueError(
                f"unknown fault profile {name!r}; available: "
                f"{', '.join(sorted(PROFILES))}"
            ) from None

    def describe(self) -> str:
        """One line per enabled process (operator-facing)."""
        lines = [f"fault profile {self.name!r}:"]
        if self.node_mtbf_days:
            lines.append(
                f"  node crashes : MTBF {self.node_mtbf_days:g} days/node, "
                f"MTTR {self.node_mttr_hours:g} h"
            )
        if self.switch_mtbf_days:
            lines.append(
                f"  switch       : MTBF {self.switch_mtbf_days:g} days, "
                f"episodes {self.switch_mttr_hours:g} h at {self.switch_degradation:g}x"
            )
        if self.storm_mtbf_days:
            lines.append(
                f"  paging storms: MTBF {self.storm_mtbf_days:g} days, "
                f"{self.storm_duration_hours:g} h at {self.storm_memory_pressure:g}x memory"
            )
        if self.collector_dropout_rate:
            lines.append(
                f"  collector    : {self.collector_dropout_rate:.2%} of passes dropped"
            )
        if self.is_null:
            lines.append("  (all processes disabled)")
        lines.append(f"  job retries  : up to {self.max_job_retries} per killed job")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}


#: Named presets.  ``none`` is the explicit null; ``mild`` is an
#: ordinary production month; ``pathological`` reproduces the paper's
#: bad-week texture — frequent crashes, storms and collector gaps.
PROFILES: dict[str, FaultProfile] = {
    "none": FaultProfile(name="none"),
    "mild": FaultProfile(
        name="mild",
        node_mtbf_days=180.0,
        node_mttr_hours=2.0,
        switch_mtbf_days=120.0,
        switch_mttr_hours=1.0,
        switch_degradation=2.0,
        storm_mtbf_days=60.0,
        storm_duration_hours=2.0,
        storm_memory_pressure=1.25,
        collector_dropout_rate=0.002,
    ),
    "pathological": FaultProfile(
        name="pathological",
        node_mtbf_days=30.0,
        node_mttr_hours=6.0,
        switch_mtbf_days=20.0,
        switch_mttr_hours=4.0,
        switch_degradation=6.0,
        storm_mtbf_days=10.0,
        storm_duration_hours=6.0,
        storm_memory_pressure=1.6,
        collector_dropout_rate=0.01,
    ),
}
