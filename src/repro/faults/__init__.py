"""Deterministic fault injection for the measurement campaign.

See docs/FAULTS.md for the model, determinism contract and the
checkpoint/resume story.
"""

from repro.faults.events import FaultEvent, FaultLog
from repro.faults.injector import FaultInjector
from repro.faults.profile import PROFILES, FaultProfile
from repro.faults.report import availability_table, fault_summary, render_fault_report
from repro.faults.schedule import generate_fault_schedule

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultLog",
    "FaultProfile",
    "PROFILES",
    "availability_table",
    "fault_summary",
    "generate_fault_schedule",
    "render_fault_report",
]
