"""Draw a campaign's fault timeline ahead of time, deterministically.

Every fault process draws from its own named RNG stream, so the
schedule is a pure function of ``(stream tree, profile, horizon)`` —
independent of anything the simulation does, of worker count, and of
every other component's draws (the same isolation contract as
:mod:`repro.util.rng`).  Stream names:

* ``faults.node#<id>`` — that node's crash/repair alternation;
* ``faults.switch`` — switch-degradation episodes;
* ``faults.storm`` — paging-storm episodes;
* ``faults.collector`` — per-pass sample-dropout coin flips.

Crash/repair (and episode start/end) processes are alternating
exponential renewal processes: up-time ~ Exp(MTBF), down-time ~
Exp(MTTR).  Collector dropouts are Bernoulli per cron pass, scheduled
one second *before* the pass they suppress so the injector's flag is
set when the cron fires.
"""

from __future__ import annotations

from repro.faults.events import (
    COLLECTOR_DROPOUT,
    NODE_CRASH,
    NODE_REPAIR,
    STORM_END,
    STORM_START,
    SWITCH_DEGRADE,
    SWITCH_RESTORE,
    FaultEvent,
)
from repro.faults.profile import FaultProfile
from repro.util.rng import RngStreams

SECONDS_PER_DAY = 86400.0
SECONDS_PER_HOUR = 3600.0


def _alternating_episodes(
    rng,
    *,
    mtbf_seconds: float,
    mttr_seconds: float,
    horizon: float,
    start_kind: str,
    end_kind: str,
    target: int | None,
    value: float,
) -> list[FaultEvent]:
    """One up/down renewal process, truncated at the horizon.

    The closing event of an episode still open at the horizon is simply
    not emitted; :meth:`FaultLog.finalize` clips its duration.
    """
    events: list[FaultEvent] = []
    t = float(rng.exponential(mtbf_seconds))
    while t < horizon:
        events.append(FaultEvent(time=t, kind=start_kind, target=target, value=value))
        down = float(rng.exponential(mttr_seconds))
        repair_t = t + down
        if repair_t >= horizon:
            break
        events.append(FaultEvent(time=repair_t, kind=end_kind, target=target, value=0.0))
        t = repair_t + float(rng.exponential(mtbf_seconds))
    return events


def generate_fault_schedule(
    profile: FaultProfile,
    streams: RngStreams,
    *,
    horizon_seconds: float,
    n_nodes: int,
    sample_interval: float,
) -> list[FaultEvent]:
    """The full fault timeline for one simulation run, time-sorted.

    All events fall strictly inside ``[0, horizon_seconds)``; dropout
    events sit at ``k * sample_interval - 1`` so they precede the cron
    pass they suppress (the t=0 baseline sample is never dropped — a
    campaign always has its starting snapshot).
    """
    if horizon_seconds <= 0:
        raise ValueError("horizon must be positive")
    events: list[FaultEvent] = []

    if profile.node_mtbf_days > 0:
        mtbf_s = profile.node_mtbf_days * SECONDS_PER_DAY
        mttr_s = profile.node_mttr_hours * SECONDS_PER_HOUR
        for nid in range(n_nodes):
            events.extend(
                _alternating_episodes(
                    streams.spawn("faults.node", nid),
                    mtbf_seconds=mtbf_s,
                    mttr_seconds=mttr_s,
                    horizon=horizon_seconds,
                    start_kind=NODE_CRASH,
                    end_kind=NODE_REPAIR,
                    target=nid,
                    value=0.0,
                )
            )

    if profile.switch_mtbf_days > 0:
        events.extend(
            _alternating_episodes(
                streams.get("faults.switch"),
                mtbf_seconds=profile.switch_mtbf_days * SECONDS_PER_DAY,
                mttr_seconds=profile.switch_mttr_hours * SECONDS_PER_HOUR,
                horizon=horizon_seconds,
                start_kind=SWITCH_DEGRADE,
                end_kind=SWITCH_RESTORE,
                target=None,
                value=profile.switch_degradation,
            )
        )

    if profile.storm_mtbf_days > 0:
        events.extend(
            _alternating_episodes(
                streams.get("faults.storm"),
                mtbf_seconds=profile.storm_mtbf_days * SECONDS_PER_DAY,
                mttr_seconds=profile.storm_duration_hours * SECONDS_PER_HOUR,
                horizon=horizon_seconds,
                start_kind=STORM_START,
                end_kind=STORM_END,
                target=None,
                value=profile.storm_memory_pressure,
            )
        )

    if profile.collector_dropout_rate > 0:
        rng = streams.get("faults.collector")
        # One draw per scheduled cron pass after the baseline; the draw
        # count is fixed by (horizon, interval) so the stream stays
        # aligned no matter which passes happen to drop.
        k = 1
        while k * sample_interval <= horizon_seconds:
            if float(rng.random()) < profile.collector_dropout_rate:
                events.append(
                    FaultEvent(
                        time=k * sample_interval - 1.0,
                        kind=COLLECTOR_DROPOUT,
                        target=None,
                        value=0.0,
                    )
                )
            k += 1

    events.sort(key=lambda e: (e.time, e.kind, -1 if e.target is None else e.target))
    return events
