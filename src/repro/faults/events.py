"""Fault events and the campaign fault log.

A :class:`FaultEvent` is one point on the campaign's failure timeline
(drawn ahead of time by :mod:`repro.faults.schedule`); the
:class:`FaultLog` is the dataset-side record — the event list plus the
consequence counters (jobs killed/requeued, collector passes dropped)
and the time integrals (node downtime, degraded switch time, storm
time) that the availability report derives MTBF/MTTR from.

The time integrals are *finalized per simulation* — clipped at that
run's horizon — before logs are merged across shards, so a crash left
unrepaired at a shard boundary accounts its downtime to the shard where
it happened (each shard's machine starts healthy; see docs/FAULTS.md).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

# Event kinds.
NODE_CRASH = "node.crash"
NODE_REPAIR = "node.repair"
SWITCH_DEGRADE = "switch.degrade"
SWITCH_RESTORE = "switch.restore"
STORM_START = "storm.start"
STORM_END = "storm.end"
COLLECTOR_DROPOUT = "collector.dropout"

KINDS = (
    NODE_CRASH,
    NODE_REPAIR,
    SWITCH_DEGRADE,
    SWITCH_RESTORE,
    STORM_START,
    STORM_END,
    COLLECTOR_DROPOUT,
)

#: Alert severity per kind ("down" transitions alarm, recoveries note).
SEVERITY_BY_KIND = {
    NODE_CRASH: "critical",
    NODE_REPAIR: "info",
    SWITCH_DEGRADE: "warning",
    SWITCH_RESTORE: "info",
    STORM_START: "warning",
    STORM_END: "info",
    COLLECTOR_DROPOUT: "info",
}


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault transition on the campaign clock."""

    time: float
    kind: str
    #: Node id for node events; None for machine-wide events.
    target: int | None = None
    #: Kind-specific magnitude: switch degradation factor, storm memory
    #: pressure; 0 when not meaningful.
    value: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.time < 0:
            raise ValueError("fault events cannot precede campaign start")

    @property
    def key(self) -> str:
        """Dedup/display key (mirrors the alert-key convention)."""
        return f"node-{self.target}" if self.target is not None else "system"

    def describe(self) -> str:
        if self.kind == NODE_CRASH:
            return f"node {self.target} crashed (daemon unreachable, jobs killed)"
        if self.kind == NODE_REPAIR:
            return f"node {self.target} repaired and returned to service"
        if self.kind == SWITCH_DEGRADE:
            return f"switch degraded {self.value:g}x (latency up, bandwidth down)"
        if self.kind == SWITCH_RESTORE:
            return "switch restored to nominal performance"
        if self.kind == STORM_START:
            return f"paging storm: memory pressure {self.value:g}x on new jobs"
        if self.kind == STORM_END:
            return "paging storm subsided"
        return "collector pass lost (gap in the counter series)"


@dataclass
class FaultLog:
    """Everything a campaign's fault machinery did, merged-friendly."""

    events: list[FaultEvent] = field(default_factory=list)
    #: Simulated horizon the integrals below were clipped at (summed
    #: across shards by the merge).
    horizon_seconds: float = 0.0
    n_nodes: int = 0
    # Consequence counters (filled at finalize time from PBS/collector).
    jobs_killed: int = 0
    jobs_requeued: int = 0
    retries_exhausted: int = 0
    passes_dropped: int = 0
    # Time integrals, clipped at the horizon.
    node_down_seconds: float = 0.0
    switch_degraded_seconds: float = 0.0
    storm_seconds: float = 0.0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def finalize(self, horizon_seconds: float, n_nodes: int) -> None:
        """Compute the clipped time integrals for one simulation run.

        Must run on shard-local (unmerged) logs: open episodes — a crash
        with no repair before the horizon — are clipped at *this* run's
        horizon.
        """
        self.horizon_seconds = horizon_seconds
        self.n_nodes = n_nodes
        self.node_down_seconds = self._paired_seconds(
            NODE_CRASH, NODE_REPAIR, horizon_seconds, per_target=True
        )
        self.switch_degraded_seconds = self._paired_seconds(
            SWITCH_DEGRADE, SWITCH_RESTORE, horizon_seconds
        )
        self.storm_seconds = self._paired_seconds(STORM_START, STORM_END, horizon_seconds)

    def _paired_seconds(
        self,
        start_kind: str,
        end_kind: str,
        horizon: float,
        *,
        per_target: bool = False,
    ) -> float:
        open_at: dict[object, float] = {}
        total = 0.0
        for ev in sorted(self.events, key=lambda e: e.time):
            key = ev.target if per_target else None
            if ev.kind == start_kind and key not in open_at:
                open_at[key] = ev.time
            elif ev.kind == end_kind and key in open_at:
                total += ev.time - open_at.pop(key)
        for t0 in open_at.values():
            total += max(0.0, horizon - t0)
        return total

    # ------------------------------------------------------------------
    # Merge support
    # ------------------------------------------------------------------
    def rebase(self, time_offset: float) -> "FaultLog":
        """A copy with every event moved onto the campaign clock."""
        return FaultLog(
            events=[replace(ev, time=ev.time + time_offset) for ev in self.events],
            horizon_seconds=self.horizon_seconds,
            n_nodes=self.n_nodes,
            jobs_killed=self.jobs_killed,
            jobs_requeued=self.jobs_requeued,
            retries_exhausted=self.retries_exhausted,
            passes_dropped=self.passes_dropped,
            node_down_seconds=self.node_down_seconds,
            switch_degraded_seconds=self.switch_degraded_seconds,
            storm_seconds=self.storm_seconds,
        )

    @classmethod
    def merged(cls, logs: "list[FaultLog]") -> "FaultLog":
        """Sum of already-finalized (and rebased) shard logs."""
        out = cls()
        for log in logs:
            out.events.extend(log.events)
            out.horizon_seconds += log.horizon_seconds
            out.n_nodes = max(out.n_nodes, log.n_nodes)
            out.jobs_killed += log.jobs_killed
            out.jobs_requeued += log.jobs_requeued
            out.retries_exhausted += log.retries_exhausted
            out.passes_dropped += log.passes_dropped
            out.node_down_seconds += log.node_down_seconds
            out.switch_degraded_seconds += log.switch_degraded_seconds
            out.storm_seconds += log.storm_seconds
        out.events.sort(key=lambda e: (e.time, e.kind, -1 if e.target is None else e.target))
        return out

    # ------------------------------------------------------------------
    # Derived reporting facts
    # ------------------------------------------------------------------
    def counts_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    @property
    def node_crashes(self) -> int:
        return self.counts_by_kind().get(NODE_CRASH, 0)

    def availability(self) -> float:
        """Fraction of node-time the nodes were up (1.0 when healthy)."""
        capacity = self.n_nodes * self.horizon_seconds
        if capacity <= 0:
            return 1.0
        return 1.0 - self.node_down_seconds / capacity

    def observed_mtbf_node_days(self) -> float:
        """Node-days of exposure per crash (inf with no crashes)."""
        crashes = self.node_crashes
        if crashes == 0:
            return float("inf")
        exposure_days = self.n_nodes * self.horizon_seconds / 86400.0
        return exposure_days / crashes

    def observed_mttr_hours(self) -> float:
        """Mean downtime per crash, hours (0 with no crashes)."""
        crashes = self.node_crashes
        if crashes == 0:
            return 0.0
        return self.node_down_seconds / 3600.0 / crashes
