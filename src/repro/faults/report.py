"""Availability / MTBF reporting over a campaign's fault log.

The Blue Waters-style operator questions: what fraction of node-time
was the machine actually up, how often did nodes fail, how long did
repairs take, and what did the faults cost the workload (kills,
requeues, lost collector passes)?
"""

from __future__ import annotations

import math

from repro.faults.events import FaultLog
from repro.util.tables import Table


def _fmt_or_dash(value: float, fmt: str) -> str:
    if not math.isfinite(value):
        return "-"
    return fmt.format(value)


def availability_table(log: FaultLog) -> Table:
    """The campaign availability / MTBF / MTTR summary table."""
    t = Table(
        title="Campaign availability (fault-injection summary)",
        columns=("quantity", "value", "unit"),
    )
    t.add_section("availability")
    t.add_row("node availability", f"{log.availability():.4%}", "of node-time")
    t.add_row("node downtime", f"{log.node_down_seconds / 3600:.1f}", "node-hours")
    t.add_row(
        "switch degraded", f"{log.switch_degraded_seconds / 3600:.1f}", "hours"
    )
    t.add_row("paging storms", f"{log.storm_seconds / 3600:.1f}", "hours")
    t.add_section("failure processes")
    t.add_row("node crashes", log.node_crashes, "events")
    t.add_row(
        "observed MTBF",
        _fmt_or_dash(log.observed_mtbf_node_days(), "{:.1f}"),
        "node-days/crash",
    )
    t.add_row(
        "observed MTTR", _fmt_or_dash(log.observed_mttr_hours(), "{:.2f}"), "hours"
    )
    t.add_section("workload impact")
    t.add_row("jobs killed", log.jobs_killed, "jobs")
    t.add_row("jobs requeued", log.jobs_requeued, "jobs")
    t.add_row("retries exhausted", log.retries_exhausted, "jobs")
    t.add_row("collector passes dropped", log.passes_dropped, "passes")
    return t


def fault_summary(log: FaultLog) -> dict:
    """JSON-ready fault block for the campaign summary export."""
    mtbf = log.observed_mtbf_node_days()
    return {
        "events_total": len(log.events),
        "events_by_kind": log.counts_by_kind(),
        "availability": log.availability(),
        "node_down_hours": log.node_down_seconds / 3600.0,
        "switch_degraded_hours": log.switch_degraded_seconds / 3600.0,
        "storm_hours": log.storm_seconds / 3600.0,
        "observed_mtbf_node_days": mtbf if math.isfinite(mtbf) else None,
        "observed_mttr_hours": log.observed_mttr_hours(),
        "jobs_killed": log.jobs_killed,
        "jobs_requeued": log.jobs_requeued,
        "retries_exhausted": log.retries_exhausted,
        "passes_dropped": log.passes_dropped,
    }


def render_fault_report(log: FaultLog) -> str:
    """The availability table as operator-facing text."""
    return availability_table(log).render()
