"""Arm a simulation with its pre-drawn fault schedule.

The :class:`FaultInjector` is the bridge between the pure schedule
(:mod:`repro.faults.schedule`) and the live machinery: it registers one
simulator event per fault and, when each fires, drives the affected
layer through its failure transition:

* **node crash** — the node leaves the allocatable pool
  (:meth:`SP2Machine.crash_node`), PBS kills and requeues the jobs
  running on it, the node's counter clock halts (counters *persist* —
  monotone across repair, exactly what the collector's delta algebra
  requires), and its RS2HPM daemon stops answering;
* **node repair** — the reverse, plus a scheduler pass so queued work
  can take the returned node;
* **switch degrade/restore** — the fabric-wide degradation factor that
  PBS folds into newly started jobs' rates and walltimes;
* **storm start/end** — the scheduler's memory-pressure multiplier (the
  §6 oversubscription pathology, injected);
* **collector dropout** — the next cron pass is suppressed, leaving a
  gap in the sample series.

Every injected event is appended to the run's :class:`FaultLog` and
published on the telemetry bus, so the streaming side alerts on faults
the moment they happen.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.events import (
    COLLECTOR_DROPOUT,
    NODE_CRASH,
    NODE_REPAIR,
    STORM_END,
    STORM_START,
    SWITCH_DEGRADE,
    SWITCH_RESTORE,
    FaultEvent,
    FaultLog,
)
from repro.faults.profile import FaultProfile
from repro.faults.schedule import generate_fault_schedule
from repro.util.rng import RngStreams

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.study import WorkloadStudy


class FaultInjector:
    """Drives one simulation run through its fault schedule."""

    def __init__(self, profile: FaultProfile, streams: RngStreams) -> None:
        self.profile = profile
        self.streams = streams
        self.log = FaultLog()
        self.schedule: list[FaultEvent] = []
        self._study: "WorkloadStudy | None" = None

    # ------------------------------------------------------------------
    # Arming
    # ------------------------------------------------------------------
    def arm(self, study: "WorkloadStudy", horizon_seconds: float) -> None:
        """Draw the schedule and register every fault on the simulator."""
        self._study = study
        self.schedule = generate_fault_schedule(
            self.profile,
            self.streams,
            horizon_seconds=horizon_seconds,
            n_nodes=study.config.n_nodes,
            sample_interval=study.config.sample_interval,
        )
        study.pbs.max_retries = self.profile.max_job_retries
        for ev in self.schedule:
            study.sim.schedule_at(
                ev.time,
                lambda sim, e=ev: self._dispatch(e),
                name=f"fault-{ev.kind}",
            )

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def _dispatch(self, ev: FaultEvent) -> None:
        study = self._study
        assert study is not None, "injector fired before arm()"
        now = study.sim.now
        if ev.kind == NODE_CRASH:
            nid = ev.target
            # Withhold the node from allocation *first*, so the kill
            # path's release() cannot hand the dead node back to the
            # free pool before the repair.
            study.machine.crash_node(nid)
            study.pbs.kill_jobs_on_node(nid)
            study.machine.node(nid).halt(now)
            study.daemons[nid].mark_down()
        elif ev.kind == NODE_REPAIR:
            nid = ev.target
            study.machine.node(nid).resume(now)
            study.daemons[nid].mark_up()
            study.machine.repair_node(nid)
            study.pbs.schedule_pass()
        elif ev.kind == SWITCH_DEGRADE:
            study.machine.switch.degrade(ev.value)
        elif ev.kind == SWITCH_RESTORE:
            study.machine.switch.restore()
        elif ev.kind == STORM_START:
            study.pbs.memory_pressure = ev.value
        elif ev.kind == STORM_END:
            study.pbs.memory_pressure = 1.0
        elif ev.kind == COLLECTOR_DROPOUT:
            study.collector.drop_next_pass()
        self.log.events.append(ev)
        if study.bus is not None:
            from repro.telemetry.bus import TOPIC_FAULT, FaultInjected

            study.bus.publish(TOPIC_FAULT, FaultInjected(time=now, event=ev))

    # ------------------------------------------------------------------
    # Finalization
    # ------------------------------------------------------------------
    def finalize(self, horizon_seconds: float) -> FaultLog:
        """Collect the consequence counters and clip the time integrals."""
        study = self._study
        assert study is not None, "finalize before arm()"
        self.log.jobs_killed = study.pbs.jobs_killed
        self.log.jobs_requeued = study.pbs.jobs_requeued
        self.log.retries_exhausted = study.pbs.retries_exhausted
        self.log.passes_dropped = study.collector.passes_dropped
        self.log.finalize(horizon_seconds, study.config.n_nodes)
        return self.log
