"""repro — a simulation-based reproduction of Bergeron (SC'98),
"Measurement of a Scientific Workload using the IBM Hardware Performance
Monitor".

The package rebuilds the entire measurement stack of the paper in
Python: a behavioural POWER2 processor and 22-counter hardware monitor,
the SP2 cluster substrate (High Performance Switch, NFS home
filesystems), the PBS batch system, the RS2HPM monitoring tools, a
generative model of the NAS CFD workload, and the analysis that produces
every table and figure in the paper.

Quickstart::

    from repro import run_study, paper_comparison

    dataset = run_study(seed=0, n_days=30)      # a one-month campaign
    print(paper_comparison(dataset))            # paper vs measured

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every experiment.
"""

from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy, run_study
from repro.analysis import (
    figure1,
    figure2,
    figure3,
    figure4,
    figure5,
    headline_report,
    paper_comparison,
    table1,
    table2,
    table3,
    table4,
)

__version__ = "1.0.0"

__all__ = [
    "StudyConfig",
    "StudyDataset",
    "WorkloadStudy",
    "run_study",
    "table1",
    "table2",
    "table3",
    "table4",
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "headline_report",
    "paper_comparison",
    "__version__",
]
