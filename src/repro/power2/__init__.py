"""Behavioural model of the IBM POWER2 (RS6000/590) processor.

This subpackage replaces the paper's silicon.  It provides:

* :mod:`repro.power2.config` — machine constants (66.7 MHz clock, 267
  Mflops peak, cache/TLB geometry, miss penalties) exactly as §2 of the
  paper describes them;
* :mod:`repro.power2.isa` — the instruction-category algebra used
  everywhere (what is an fma, what counts as a flop, quad load/stores);
* :mod:`repro.power2.dcache` / :mod:`repro.power2.tlb` — reference
  set-associative cache and TLB simulators, used to *derive* the analytic
  miss ratios the fast campaign model uses and to reproduce Table 4's
  "sequential access" column from first principles;
* :mod:`repro.power2.dispatch` — the dual-FXU / dual-FPU dispatch
  asymmetries (§5's FPU0:FPU1 = 1.7 discussion);
* :mod:`repro.power2.pipeline` — cycle accounting: instruction mix +
  memory behaviour → cycles;
* :mod:`repro.power2.counters` — the 22-counter hardware performance
  monitor of Table 1, including the broken divide counter;
* :mod:`repro.power2.node` — an RS6000/590 node: CPU + 128 MB memory +
  AIX-style paging + DMA engine.
"""

from repro.power2.config import MachineConfig, POWER2_590
from repro.power2.isa import InstructionMix, FlopBreakdown
from repro.power2.dcache import SetAssociativeCache, CacheStats
from repro.power2.tlb import TLB
from repro.power2.dispatch import DispatchModel, DispatchResult
from repro.power2.pipeline import CycleModel, ExecutionResult
from repro.power2.counters import (
    CounterBank,
    HardwareMonitor,
    Mode,
    COUNTER_LAYOUT,
)
from repro.power2.node import Node, PhaseResult, WorkPhase, compute_paging_state
from repro.power2.vm import FaultKind, VirtualMemory
from repro.power2.streams import measure_stream

__all__ = [
    "MachineConfig",
    "POWER2_590",
    "InstructionMix",
    "FlopBreakdown",
    "SetAssociativeCache",
    "CacheStats",
    "TLB",
    "DispatchModel",
    "DispatchResult",
    "CycleModel",
    "ExecutionResult",
    "CounterBank",
    "HardwareMonitor",
    "Mode",
    "COUNTER_LAYOUT",
    "Node",
    "WorkPhase",
    "PhaseResult",
    "compute_paging_state",
    "FaultKind",
    "VirtualMemory",
    "measure_stream",
]
