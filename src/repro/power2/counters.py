"""The POWER2 hardware performance monitor — Table 1's 22 counters.

The physical monitor is 22 32-bit counters on the SCU chip, organized as
five counters each for the FXU, FPU0, FPU1 and SCU groups and two for the
ICU.  This module reproduces:

* the exact NAS counter selection of Table 1 (:data:`COUNTER_LAYOUT`);
* the user/system mode split (RS2HPM reports both; §6's paging finding
  rests on comparing system-mode and user-mode FXU counts);
* 32-bit wraparound — counters are narrow, and the collection scripts
  must difference snapshots modulo 2³²;
* the **broken divide counter**: "An implementation error in the
  hardware monitor prevented the proper reporting of the division
  operations" (§3).  Divides execute and cost cycles, but both FPU
  divide counters always read zero, exactly as in the paper
  (Table 3's Mflops-div row).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Mapping

import numpy as np

from repro.power2.pipeline import ExecutionResult

#: 2³² — the counters are 32 bits wide.
COUNTER_MODULUS = 1 << 32


class Mode(enum.Enum):
    """Processor privilege mode a count accrued in."""

    USER = "user"
    SYSTEM = "system"


@dataclass(frozen=True)
class CounterSpec:
    """One row of Table 1."""

    name: str
    group: str
    slot: int
    description: str


#: The NAS SP2 RS2HPM counter selection, in Table 1's order.
COUNTER_LAYOUT: tuple[CounterSpec, ...] = (
    CounterSpec("fxu0", "FXU", 0, "number of instructions executed by Execution unit 0"),
    CounterSpec("fxu1", "FXU", 1, "number of instructions executed by Execution unit 1"),
    CounterSpec("dcache_mis", "FXU", 2, "FPU and FXU requests for data not in the D-cache"),
    CounterSpec("tlb_mis", "FXU", 3, "FPU and FXU requests for data not on a TLB-mapped page"),
    CounterSpec("cycles", "FXU", 4, "cycles in this mode"),
    CounterSpec("fpu0", "FPU0", 0, "arithmetic instructions executed by Math 0"),
    CounterSpec("fpu0_fp_add", "FPU0", 1, "floating point adds executed by Math 0"),
    CounterSpec("fpu0_fp_mul", "FPU0", 2, "floating point multiplies executed by Math 0"),
    CounterSpec("fpu0_fp_div", "FPU0", 3, "floating point divides executed by Math 0 (broken: reads 0)"),
    CounterSpec("fpu0_fp_muladd", "FPU0", 4, "floating point multiply-adds executed by Math 0"),
    CounterSpec("fpu1", "FPU1", 0, "arithmetic instructions executed by Math 1"),
    CounterSpec("fpu1_fp_add", "FPU1", 1, "floating point adds executed by Math 1"),
    CounterSpec("fpu1_fp_mul", "FPU1", 2, "floating point multiplies executed by Math 1"),
    CounterSpec("fpu1_fp_div", "FPU1", 3, "floating point divides executed by Math 1 (broken: reads 0)"),
    CounterSpec("fpu1_fp_muladd", "FPU1", 4, "floating point multiply-adds executed by Math 1"),
    CounterSpec("icu0", "ICU", 0, "number of type I instructions executed"),
    CounterSpec("icu1", "ICU", 1, "number of type II instructions executed"),
    CounterSpec("icache_reload", "SCU", 0, "data transfers from memory to the I-cache"),
    CounterSpec("dcache_reload", "SCU", 1, "data transfers from memory to the D-cache"),
    CounterSpec("dcache_store", "SCU", 2, "transfers of modified D-cache data back to memory"),
    CounterSpec("dma_read", "SCU", 3, "data transfers from memory to an I/O device"),
    CounterSpec("dma_write", "SCU", 4, "data transfers to memory from an I/O device"),
)

COUNTER_NAMES: tuple[str, ...] = tuple(spec.name for spec in COUNTER_LAYOUT)
_INDEX: dict[str, int] = {name: i for i, name in enumerate(COUNTER_NAMES)}

#: Counters the hardware bug zeroes out (§3).
BROKEN_COUNTERS: frozenset[str] = frozenset({"fpu0_fp_div", "fpu1_fp_div"})
#: Bank positions of the broken counters (shared with the batched store).
BROKEN_INDICES: tuple[int, ...] = tuple(_INDEX[name] for name in sorted(BROKEN_COUNTERS))
_BROKEN_INDICES = list(BROKEN_INDICES)

#: Flat labels in :meth:`HardwareMonitor.snapshot_vector` order.
FLAT_NAMES: tuple[str, ...] = tuple(
    f"{mode}.{name}" for mode in ("user", "system") for name in COUNTER_NAMES
)


#: Number of counters in a bank (22 for the NAS selection).
BANK_SIZE = len(COUNTER_LAYOUT)


def counter_index(name: str) -> int:
    """Position of a counter in a snapshot vector."""
    try:
        return _INDEX[name]
    except KeyError:
        raise KeyError(f"unknown counter {name!r}; see COUNTER_NAMES") from None


def rates_vector(amounts: Mapping[str, float]) -> np.ndarray:
    """Pack per-counter amounts into a bank-ordered float vector.

    The campaign fast path accrues counters as ``bank += vector * dt``;
    this is the constructor for those vectors.
    """
    vec = np.zeros(BANK_SIZE, dtype=np.float64)
    for name, amount in amounts.items():
        if amount < 0:
            raise ValueError(f"negative rate for {name}: {amount}")
        vec[counter_index(name)] = amount
    return vec


class CounterBank:
    """One mode's bank of 22 wrapping 32-bit counters.

    Values accumulate internally in float (event counts from the analytic
    model are fractional); reads quantize to integers and wrap modulo
    2³², which is what the collection daemon actually sees.
    """

    def __init__(self) -> None:
        self._values = np.zeros(len(COUNTER_LAYOUT), dtype=np.float64)

    def add(self, name: str, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"cannot decrement counter {name} by {amount}")
        self._values[counter_index(name)] += amount

    def add_many(self, amounts: Mapping[str, float]) -> None:
        for name, amount in amounts.items():
            self.add(name, amount)

    def add_vector(self, vec: np.ndarray) -> None:
        """Accrue a bank-ordered event vector (campaign fast path)."""
        if vec.shape != self._values.shape:
            raise ValueError(f"expected shape {self._values.shape}, got {vec.shape}")
        self._values += vec

    def raw(self, name: str) -> float:
        """Unwrapped accumulated total (simulation-side ground truth)."""
        return float(self._values[counter_index(name)])

    def raw_vector(self) -> np.ndarray:
        """Copy of the unwrapped accumulator vector."""
        return self._values.copy()

    def hardware_read(self, name: str) -> int:
        """What the physical 32-bit register reads: wrapped, and zero for
        the broken divide counters.

        The cycles counter wraps every ≈64 s at 66.7 MHz, which is why
        RS2HPM's kernel extension sampled the registers continuously and
        accumulated into wide software counters (see :meth:`read`).
        """
        if name in BROKEN_COUNTERS:
            return 0
        return int(self._values[counter_index(name)]) % COUNTER_MODULUS

    def read(self, name: str) -> int:
        """The RS2HPM software counter: 64-bit accumulated value.

        Still zero for the broken divide counters — the accumulation
        can't recover events the hardware never reported.
        """
        if name in BROKEN_COUNTERS:
            return 0
        return int(self._values[counter_index(name)])

    def snapshot(self) -> dict[str, int]:
        """Read every software counter, as the RS2HPM daemon serves them.

        One vectorized cast instead of 22 scalar reads; ``astype`` and
        ``int()`` both truncate toward zero, so the dict is identical to
        the read-by-read construction.
        """
        vals = self._values.astype(np.int64)
        vals[_BROKEN_INDICES] = 0
        return dict(zip(COUNTER_NAMES, vals.tolist()))

    def snapshot_vector(self) -> np.ndarray:
        """Vectorized :meth:`snapshot`: bank-ordered int64, broken
        counters zeroed.  The campaign-scale collector uses this."""
        out = self._values.astype(np.int64)
        out[_BROKEN_INDICES] = 0
        return out

    def reset(self) -> None:
        self._values.fill(0.0)


def wrapped_delta(before: int, after: int) -> int:
    """Difference of two raw 32-bit hardware reads, tolerating one wrap.

    This is what the kernel extension computes on every fast sample
    before accumulating into the wide software counters.
    """
    for v in (before, after):
        if not 0 <= v < COUNTER_MODULUS:
            raise ValueError(f"counter read {v} out of 32-bit range")
    return (after - before) % COUNTER_MODULUS


def snapshot_delta(before: Mapping[str, int], after: Mapping[str, int]) -> dict[str, int]:
    """Per-counter difference of two software-counter snapshots."""
    missing = set(before) ^ set(after)
    if missing:
        raise ValueError(f"snapshots disagree on counters: {sorted(missing)}")
    out: dict[str, int] = {}
    for name in before:
        d = after[name] - before[name]
        if d < 0:
            raise ValueError(
                f"software counter {name} went backwards ({before[name]} -> {after[name]})"
            )
        out[name] = d
    return out


def execution_event_counts(result: ExecutionResult) -> dict[str, float]:
    """Map an executed block to the counter events it generates.

    Pure function shared by the phase-level monitor path and the
    campaign rate-vector builder, so both accrue identical events.
    """
    d = result.dispatch
    return {
        "fxu0": d.fxu0,
        "fxu1": d.fxu1,
        "dcache_mis": result.dcache_misses,
        "tlb_mis": result.tlb_misses,
        "cycles": result.cycles,
        "fpu0": d.fpu0,
        "fpu0_fp_add": d.fpu0_add,
        "fpu0_fp_mul": d.fpu0_mul,
        "fpu0_fp_div": d.fpu0_div,
        "fpu0_fp_muladd": d.fpu0_fma,
        "fpu1": d.fpu1,
        "fpu1_fp_add": d.fpu1_add,
        "fpu1_fp_mul": d.fpu1_mul,
        "fpu1_fp_div": d.fpu1_div,
        "fpu1_fp_muladd": d.fpu1_fma,
        "icu0": d.icu_type1,
        "icu1": d.icu_type2,
        "icache_reload": result.icache_reloads,
        "dcache_reload": result.dcache_reloads,
        "dcache_store": result.dcache_writebacks,
    }


class HardwareMonitor:
    """The per-CPU monitor: a user bank plus a system bank.

    Work executed on the node is accrued via :meth:`accrue` (CPU events
    from an :class:`~repro.power2.pipeline.ExecutionResult`) and
    :meth:`accrue_dma` (SCU DMA transfer events, which are not tied to a
    privilege mode in Table 1's selection — we bank them as user reads
    the way RS2HPM's system-wide reports did).
    """

    def __init__(self) -> None:
        self.banks: dict[Mode, CounterBank] = {
            Mode.USER: CounterBank(),
            Mode.SYSTEM: CounterBank(),
        }

    def accrue(self, result: ExecutionResult, mode: Mode = Mode.USER) -> None:
        """Account one executed block's events in ``mode``'s bank."""
        self.banks[mode].add_many(execution_event_counts(result))

    def accrue_raw(self, amounts: Mapping[str, float], mode: Mode) -> None:
        """Directly accrue counter events (paging, idle cycles, ...)."""
        self.banks[mode].add_many(amounts)

    def accrue_dma(self, *, reads: float = 0.0, writes: float = 0.0) -> None:
        """DMA transfer events from the I/O subsystem (message passing
        and disk traffic, §5)."""
        bank = self.banks[Mode.USER]
        if reads:
            bank.add("dma_read", reads)
        if writes:
            bank.add("dma_write", writes)

    def snapshot(self) -> dict[str, dict[str, int]]:
        """Both banks, keyed ``user.*`` / ``system.*`` like RS2HPM output."""
        return {mode.value: bank.snapshot() for mode, bank in self.banks.items()}

    def flat_snapshot(self) -> dict[str, int]:
        """RS2HPM's flat label form, e.g. ``user.fxu0``/``system.cycles``.

        The PBS prologue/epilogue takes one of these per node per job;
        profiling showed the per-name ``read()`` loop was a campaign
        hotspot, so both banks are quantized with one cast each (same
        truncation semantics, same insertion order).
        """
        vals = np.empty(2 * BANK_SIZE, dtype=np.int64)
        vals[:BANK_SIZE] = self.banks[Mode.USER]._values
        vals[BANK_SIZE:] = self.banks[Mode.SYSTEM]._values
        for idx in _BROKEN_INDICES:
            vals[idx] = 0
            vals[BANK_SIZE + idx] = 0
        return dict(zip(FLAT_NAMES, vals.tolist()))

    def snapshot_vector(self, out: np.ndarray | None = None) -> np.ndarray:
        """Both banks as one int64 vector ordered like :data:`FLAT_NAMES`
        (user bank then system bank) — the collector's fast path.

        Pass ``out`` (shape ``(2·BANK_SIZE,)``, int64) to write in place
        and skip the allocations; profiling showed the per-sample
        collector loop dominated by exactly these temporaries.
        """
        if out is None:
            out = np.empty(2 * BANK_SIZE, dtype=np.int64)
        elif out.shape != (2 * BANK_SIZE,):
            raise ValueError(f"out must have shape ({2 * BANK_SIZE},)")
        out[:BANK_SIZE] = self.banks[Mode.USER]._values  # casts to int64
        out[BANK_SIZE:] = self.banks[Mode.SYSTEM]._values
        for idx in _BROKEN_INDICES:
            out[idx] = 0
            out[BANK_SIZE + idx] = 0
        return out

    def reset(self) -> None:
        for bank in self.banks.values():
            bank.reset()


def table1() -> Iterable[tuple[str, str, str]]:
    """Rows for regenerating Table 1: (label, group[slot], description)."""
    for spec in COUNTER_LAYOUT:
        label = ("fpop." if spec.name.startswith(("fpu0_fp_", "fpu1_fp_")) else "user.") + (
            spec.name.split("_", 1)[1] if spec.name.startswith(("fpu0_fp_", "fpu1_fp_")) else spec.name
        )
        yield label, f"{spec.group}[{spec.slot}]", spec.description
