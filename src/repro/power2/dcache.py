"""Set-associative cache simulator.

This is the *reference* model of the POWER2 data cache: 256 kB, 4-way,
256-byte lines, write-back with write-allocate, true LRU.  It is used to

* derive the analytic per-kernel miss ratios the fast campaign model
  consumes (see :mod:`repro.workload.kernels`);
* regenerate Table 4's "Sequential Access" column from first principles
  (a cache miss every 32 real*8 elements for a 256-byte line);
* model the write-back traffic behind the ``dcache_store`` counter
  ("occurs when the D-cache destination for incoming data currently
  contains data which has been modified", Table 1).

Access streams are NumPy arrays of byte addresses; the walk itself is a
Python loop over the stream (the streams used for derivation are small —
profiling per the hpc-parallel guide showed this is nowhere near the
campaign's critical path, which is fully analytic).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power2.config import CacheGeometry


@dataclass
class CacheStats:
    """Counters accumulated by a cache walk."""

    accesses: int = 0
    hits: int = 0
    misses: int = 0
    #: Lines fetched from memory (== misses for this blocking cache);
    #: feeds the ``dcache_reload`` counter.
    reloads: int = 0
    #: Dirty lines written back to memory on eviction; feeds the
    #: ``dcache_store`` counter.
    writebacks: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    def check(self) -> None:
        """Internal consistency: hits + misses == accesses, etc."""
        if self.hits + self.misses != self.accesses:
            raise AssertionError("hits + misses != accesses")
        if self.reloads != self.misses:
            raise AssertionError("blocking cache must reload once per miss")
        if self.writebacks > self.misses:
            raise AssertionError("cannot write back more lines than were evicted")


class SetAssociativeCache:
    """True-LRU, write-back, write-allocate set-associative cache."""

    def __init__(self, geometry: CacheGeometry | None = None) -> None:
        self.geometry = geometry or CacheGeometry()
        g = self.geometry
        self._n_sets = g.n_sets
        self._assoc = g.associativity
        self._line_shift = int(g.line_bytes).bit_length() - 1
        if (1 << self._line_shift) != g.line_bytes:
            raise ValueError("line size must be a power of two")
        # tags[set, way] = line tag (-1 empty); lru[set, way] = age rank
        # (0 = most recent); dirty[set, way] marks modified lines.
        self._tags = np.full((self._n_sets, self._assoc), -1, dtype=np.int64)
        self._lru = np.tile(np.arange(self._assoc), (self._n_sets, 1))
        self._dirty = np.zeros((self._n_sets, self._assoc), dtype=bool)
        self.stats = CacheStats()

    def reset_stats(self) -> None:
        self.stats = CacheStats()

    def flush(self) -> int:
        """Invalidate everything; returns the number of dirty lines flushed."""
        dirty = int(self._dirty.sum())
        self._tags.fill(-1)
        self._dirty.fill(False)
        self._lru = np.tile(np.arange(self._assoc), (self._n_sets, 1))
        return dirty

    def _touch(self, set_idx: int, way: int) -> None:
        """Promote ``way`` to most-recently-used within its set."""
        age = self._lru[set_idx, way]
        older = self._lru[set_idx] < age
        self._lru[set_idx, older] += 1
        self._lru[set_idx, way] = 0

    def access(self, address: int, *, write: bool = False) -> bool:
        """One byte-address access; returns ``True`` on a hit."""
        line = int(address) >> self._line_shift
        set_idx = line % self._n_sets
        tag = line // self._n_sets
        ways = self._tags[set_idx]
        self.stats.accesses += 1
        hit_ways = np.nonzero(ways == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self.stats.hits += 1
            self._touch(set_idx, way)
            if write:
                self._dirty[set_idx, way] = True
            return True
        # Miss: evict the LRU way (or fill an empty one — empty ways were
        # initialized with distinct ages so argmax picks them first only
        # if they are oldest; prefer empties explicitly).
        self.stats.misses += 1
        self.stats.reloads += 1
        empty = np.nonzero(ways == -1)[0]
        if empty.size:
            way = int(empty[0])
        else:
            way = int(np.argmax(self._lru[set_idx]))
            if self._dirty[set_idx, way]:
                self.stats.writebacks += 1
        self._tags[set_idx, way] = tag
        self._dirty[set_idx, way] = bool(write)
        self._touch(set_idx, way)
        return False

    def run(self, addresses: np.ndarray, writes: np.ndarray | None = None) -> CacheStats:
        """Walk an address stream; returns the stats accumulated so far."""
        addrs = np.asarray(addresses, dtype=np.int64)
        if writes is None:
            w = np.zeros(addrs.shape, dtype=bool)
        else:
            w = np.asarray(writes, dtype=bool)
            if w.shape != addrs.shape:
                raise ValueError("writes mask must match the address stream")
        for a, is_w in zip(addrs.tolist(), w.tolist()):
            self.access(a, write=is_w)
        return self.stats

    # ------------------------------------------------------------------
    # Analytic helpers
    # ------------------------------------------------------------------
    def contains(self, address: int) -> bool:
        line = int(address) >> self._line_shift
        set_idx = line % self._n_sets
        tag = line // self._n_sets
        return bool((self._tags[set_idx] == tag).any())

    @staticmethod
    def sequential_miss_ratio(geometry: CacheGeometry, element_bytes: int = 8) -> float:
        """Miss ratio of a no-reuse sequential walk.

        §5: "For real*8 data, we would experience a cache-miss every 32
        elements" for the 256-byte line — i.e. ``element_bytes /
        line_bytes``.
        """
        return element_bytes / geometry.line_bytes

    @staticmethod
    def strided_miss_ratio(
        geometry: CacheGeometry, stride_bytes: int, element_bytes: int = 8
    ) -> float:
        """Miss ratio of a no-reuse strided walk: one miss per line touched."""
        if stride_bytes <= 0:
            raise ValueError("stride must be positive")
        return min(1.0, max(stride_bytes, element_bytes) / geometry.line_bytes)
