"""TLB simulator: 512 entries over 4 kB pages.

Same role as :mod:`repro.power2.dcache` but for address translation; it
derives the analytic TLB miss ratios (Table 4: 0.1% workload, 0.2%
sequential, 0.06% NPB BT) and supports the §5 observation that "we might
expect high TLB miss rates from programs accessing data with large
memory strides".
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power2.config import TLBGeometry


@dataclass
class TLBStats:
    accesses: int = 0
    hits: int = 0
    misses: int = 0

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0


class TLB:
    """Set-associative, LRU translation lookaside buffer."""

    def __init__(self, geometry: TLBGeometry | None = None) -> None:
        self.geometry = geometry or TLBGeometry()
        g = self.geometry
        self._page_shift = int(g.page_bytes).bit_length() - 1
        if (1 << self._page_shift) != g.page_bytes:
            raise ValueError("page size must be a power of two")
        self._n_sets = g.n_sets
        self._assoc = g.associativity
        self._tags = np.full((self._n_sets, self._assoc), -1, dtype=np.int64)
        self._lru = np.tile(np.arange(self._assoc), (self._n_sets, 1))
        self.stats = TLBStats()

    def reset_stats(self) -> None:
        self.stats = TLBStats()

    def flush(self) -> None:
        """Invalidate all translations (context switch)."""
        self._tags.fill(-1)
        self._lru = np.tile(np.arange(self._assoc), (self._n_sets, 1))

    def access(self, address: int) -> bool:
        """Translate one byte address; returns ``True`` on a TLB hit."""
        page = int(address) >> self._page_shift
        set_idx = page % self._n_sets
        tag = page // self._n_sets
        self.stats.accesses += 1
        ways = self._tags[set_idx]
        hit_ways = np.nonzero(ways == tag)[0]
        if hit_ways.size:
            way = int(hit_ways[0])
            self.stats.hits += 1
        else:
            self.stats.misses += 1
            empty = np.nonzero(ways == -1)[0]
            way = int(empty[0]) if empty.size else int(np.argmax(self._lru[set_idx]))
            self._tags[set_idx, way] = tag
        age = self._lru[set_idx, way]
        self._lru[set_idx, self._lru[set_idx] < age] += 1
        self._lru[set_idx, way] = 0
        return bool(hit_ways.size)

    def run(self, addresses: np.ndarray) -> TLBStats:
        for a in np.asarray(addresses, dtype=np.int64).tolist():
            self.access(a)
        return self.stats

    @staticmethod
    def sequential_miss_ratio(geometry: TLBGeometry, element_bytes: int = 8) -> float:
        """No-reuse sequential walk: one miss per page (§5: every 512
        real*8 elements for the 4 kB page)."""
        return element_bytes / geometry.page_bytes

    @staticmethod
    def strided_miss_ratio(
        geometry: TLBGeometry, stride_bytes: int, element_bytes: int = 8
    ) -> float:
        if stride_bytes <= 0:
            raise ValueError("stride must be positive")
        return min(1.0, max(stride_bytes, element_bytes) / geometry.page_bytes)
