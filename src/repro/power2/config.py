"""Machine constants for the NAS SP2's RS6000/590 nodes.

All values are taken from §2 and §5 of the paper:

* 66.7 MHz clock; peak 267 Mflops (two FPUs × one fma × 2 flops / cycle);
* 256 kB 4-way set-associative data cache, 1024 lines × 256 bytes;
* 4096-byte pages, 512-entry TLB;
* 8-cycle data-cache miss stall, 36–54-cycle TLB miss stall;
* 10-cycle divide, 15-cycle square root;
* 128 MB of node memory, 2 GB of local disk;
* switch latency 45 µs, node-to-node bandwidth 34 MB/s.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of a cache; defaults are the POWER2 D-cache."""

    total_bytes: int = 256 * 1024
    line_bytes: int = 256
    associativity: int = 4

    @property
    def n_lines(self) -> int:
        return self.total_bytes // self.line_bytes

    @property
    def n_sets(self) -> int:
        return self.n_lines // self.associativity

    def __post_init__(self) -> None:
        if self.total_bytes % self.line_bytes:
            raise ValueError("cache size must be a multiple of the line size")
        if self.n_lines % self.associativity:
            raise ValueError("line count must be a multiple of associativity")


@dataclass(frozen=True)
class TLBGeometry:
    """POWER2 TLB: 512 entries over 4 kB pages (2-way set-associative)."""

    entries: int = 512
    page_bytes: int = 4096
    associativity: int = 2

    @property
    def n_sets(self) -> int:
        return self.entries // self.associativity

    def __post_init__(self) -> None:
        if self.entries % self.associativity:
            raise ValueError("TLB entries must be a multiple of associativity")


@dataclass(frozen=True)
class MachineConfig:
    """Every per-node constant the simulation needs, in one place."""

    clock_hz: float = 66.7e6
    #: Peak flops/cycle: both FPUs retiring an fma (2 flops) each cycle.
    peak_flops_per_cycle: float = 4.0

    dcache: CacheGeometry = field(default_factory=CacheGeometry)
    icache: CacheGeometry = field(
        default_factory=lambda: CacheGeometry(
            total_bytes=32 * 1024, line_bytes=128, associativity=2
        )
    )
    tlb: TLBGeometry = field(default_factory=TLBGeometry)

    #: Stall cycles on a data-cache miss (§5: "execution may halt for 8
    #: cycles while the reference is satisfied").
    dcache_miss_cycles: float = 8.0
    #: TLB miss costs 36–54 cycles; we account the midpoint.
    tlb_miss_cycles: float = 45.0
    icache_miss_cycles: float = 8.0
    #: Multicycle FPU operations (§5).
    fp_div_cycles: float = 10.0
    fp_sqrt_cycles: float = 15.0

    #: Issue widths (§2): ICU dispatches 4/cycle; each FXU and FPU pair
    #: retires up to 2 instructions per cycle.
    fxu_issue_per_cycle: float = 2.0
    fpu_issue_per_cycle: float = 2.0
    icu_issue_per_cycle: float = 1.0

    memory_bytes: int = 128 * 1024 * 1024
    disk_bytes: int = 2 * 1024 * 1024 * 1024

    #: AIX page-fault service model: CPU cycles of system-mode work per
    #: fault; a hard fault additionally waits on the paging disk.  (The
    #: system-mode instruction *rates* during thrashing live in
    #: :mod:`repro.power2.node` — they scale with stolen time, not per
    #: fault.)
    page_fault_service_cycles: float = 3000.0
    page_fault_disk_seconds: float = 0.009
    #: Paging-disk hard-fault service limit (faults/s) and the
    #: oversubscription fraction at which the fault rate saturates.
    paging_fault_limit: float = 110.0
    paging_onset: float = 0.25

    @property
    def peak_mflops(self) -> float:
        """267 Mflops for the 66.7 MHz POWER2."""
        return self.clock_hz * self.peak_flops_per_cycle / 1e6

    @property
    def cycle_seconds(self) -> float:
        return 1.0 / self.clock_hz


#: The NAS SP2 node configuration used throughout the study.
POWER2_590 = MachineConfig()


@dataclass(frozen=True)
class SwitchConfig:
    """SP2 High Performance Switch characteristics (§2)."""

    latency_seconds: float = 45e-6
    bandwidth_bytes_per_s: float = 34e6
    #: §2: "available communication bandwidth ... scales linearly with the
    #: number of processors" — bisection per node is constant.
    per_node_scaling: bool = True


SP2_SWITCH = SwitchConfig()
