"""Instruction-category algebra.

Every layer of the reproduction communicates work as an
:class:`InstructionMix` — counts of instructions per architectural
category for some block of execution.  The categories follow the POWER2
unit structure the paper describes, and the flop-counting rules follow
§5 exactly:

* an ``fma`` instruction produces **2** flops — its multiply is reported
  in the fma operation count, its add in the add operation count;
* divides produce flops in reality but the hardware monitor's divide
  counter was broken, so the *monitor* reports zero for them (handled in
  :mod:`repro.power2.counters`, not here);
* quad loads/stores move two doublewords but count as **one** FXU
  instruction (§5's caveat on the flops-per-memory-instruction ratio).
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace


@dataclass(frozen=True)
class InstructionMix:
    """Instruction counts for one block of work.

    All fields are *counts* (not rates).  Fractional values are permitted:
    mixes describe statistically generated work, and a phase may execute
    e.g. ``0.5`` of an iteration's instructions before a sampling boundary.
    """

    # Floating point arithmetic (per FPU assignment happens at dispatch).
    fp_add: float = 0.0
    fp_mul: float = 0.0
    fp_div: float = 0.0
    fp_sqrt: float = 0.0
    fp_fma: float = 0.0
    #: Non-arithmetic FPU instructions: fp loads-to-FPR completions,
    #: moves, compares, conversions.  Issued by the FPUs but produce no
    #: flops — the gap between the paper's Mips-FP (14.8) and the sum of
    #: its arithmetic rows.
    fp_misc: float = 0.0

    # Fixed point / memory instructions.
    loads: float = 0.0
    stores: float = 0.0
    quad_loads: float = 0.0
    quad_stores: float = 0.0
    #: Integer arithmetic and addressing ops (FXU1 owns multiply/divide
    #: address arithmetic per §5).
    int_ops: float = 0.0

    # Instruction-cache unit work.
    branches: float = 0.0
    #: Condition-register and other ICU-executed ("type II") instructions.
    cr_ops: float = 0.0

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    @property
    def flops(self) -> float:
        """Total floating-point operations; fma counts twice (§5)."""
        return self.fp_add + self.fp_mul + self.fp_div + self.fp_sqrt + 2.0 * self.fp_fma

    @property
    def fp_arith_insts(self) -> float:
        """Arithmetic instructions routed to the FPU pair."""
        return self.fp_add + self.fp_mul + self.fp_div + self.fp_sqrt + self.fp_fma

    @property
    def fpu_insts(self) -> float:
        """Everything the FPUs issue, arithmetic or not."""
        return self.fp_arith_insts + self.fp_misc

    @property
    def memory_insts(self) -> float:
        """FXU load/store instructions (a quad access counts once)."""
        return self.loads + self.stores + self.quad_loads + self.quad_stores

    @property
    def memory_words(self) -> float:
        """Doublewords actually moved (quad accesses move two)."""
        return (
            self.loads
            + self.stores
            + 2.0 * self.quad_loads
            + 2.0 * self.quad_stores
        )

    @property
    def fxu_insts(self) -> float:
        return self.memory_insts + self.int_ops

    @property
    def icu_insts(self) -> float:
        return self.branches + self.cr_ops

    @property
    def total_insts(self) -> float:
        """Instructions across all units — the paper's "Mips" numerator."""
        return self.fpu_insts + self.fxu_insts + self.icu_insts

    @property
    def total_ops(self) -> float:
        """Operation count — the paper's "Mops" numerator.

        Same as instructions except each fma contributes two operations
        and each quad access moves two words.
        """
        return (
            self.total_insts
            + self.fp_fma
            + self.quad_loads
            + self.quad_stores
        )

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def scaled(self, factor: float) -> "InstructionMix":
        """Uniformly scale every category (e.g. to fit a time slice)."""
        if factor < 0:
            raise ValueError(f"scale factor must be non-negative, got {factor}")
        return InstructionMix(
            **{f.name: getattr(self, f.name) * factor for f in fields(self)}
        )

    def __add__(self, other: "InstructionMix") -> "InstructionMix":
        return InstructionMix(
            **{
                f.name: getattr(self, f.name) + getattr(other, f.name)
                for f in fields(self)
            }
        )

    def replace(self, **kwargs: float) -> "InstructionMix":
        return replace(self, **kwargs)

    def validate(self) -> None:
        """Raise if any category count is negative or non-finite."""
        import math

        for f in fields(self):
            v = getattr(self, f.name)
            if not math.isfinite(v) or v < 0.0:
                raise ValueError(f"invalid count {f.name}={v!r}")

    @staticmethod
    def zero() -> "InstructionMix":
        return InstructionMix()


@dataclass(frozen=True)
class FlopBreakdown:
    """Flop counts grouped the way Table 3 reports them.

    ``add`` includes the adds performed inside fma instructions and
    ``fma`` counts the fma multiplies, per §5: "The fma multiply appears
    in the fma operation count and the fma add appears in the add
    operation count."
    """

    add: float
    mul: float
    div: float
    fma: float

    @property
    def total(self) -> float:
        return self.add + self.mul + self.div + self.fma

    @staticmethod
    def from_mix(mix: InstructionMix) -> "FlopBreakdown":
        return FlopBreakdown(
            add=mix.fp_add + mix.fp_fma,
            mul=mix.fp_mul,
            div=mix.fp_div + mix.fp_sqrt,
            fma=mix.fp_fma,
        )

    @property
    def fma_fraction(self) -> float:
        """Fraction of all flops produced by fma instructions (§5: ~54%)."""
        if self.total == 0.0:
            return 0.0
        return 2.0 * self.fma / self.total
