"""AIX-style virtual memory: page tables, reclaim, fault service.

§6's diagnosis rests on paging behaviour the analytic campaign model
summarizes as a fault rate and a stolen-time fraction
(:func:`repro.power2.node.compute_paging_state`).  This module is the
*detailed* model underneath: per-process page tables over the node's
frame pool, an LRU-with-reference-bit reclaim daemon (AIX's ``lrud``),
fault classification (first-touch zero-fill vs free-list reclaim vs hard
faults against the paging disk), and fault-service cost accounting.

It serves three purposes:

* unit/property tests of paging invariants (frames conserved, no
  double mapping, reclaim ordering);
* validation that the analytic stolen-fraction model agrees with a
  trace-driven simulation of an oversubscribed working set
  (``tests/power2/test_vm.py::TestAnalyticAgreement``);
* micro-level examples (a job touching more memory than the node has).
"""

from __future__ import annotations

import enum
from collections import OrderedDict
from dataclasses import dataclass

from repro.power2.config import MachineConfig, POWER2_590


class FaultKind(enum.Enum):
    """Why a reference missed in the page table."""

    #: First touch of a never-mapped page: zero-fill, no disk.
    ZERO_FILL = "zero-fill"
    #: Page was unmapped by the reclaim daemon but still in a frame.
    RECLAIM = "reclaim"
    #: Page's frame was repurposed; must be read from paging space.
    HARD = "hard"


@dataclass
class VMStats:
    """Fault and reclaim accounting."""

    references: int = 0
    hits: int = 0
    zero_fill_faults: int = 0
    reclaim_faults: int = 0
    hard_faults: int = 0
    pageouts: int = 0
    #: Seconds of fault service (CPU + paging disk).
    service_seconds: float = 0.0

    @property
    def faults(self) -> int:
        return self.zero_fill_faults + self.reclaim_faults + self.hard_faults

    @property
    def hard_fault_ratio(self) -> float:
        return self.hard_faults / self.references if self.references else 0.0

    def check(self) -> None:
        if self.hits + self.faults != self.references:
            raise AssertionError("hits + faults != references")


@dataclass
class _Frame:
    """One physical frame."""

    pid: int
    page: int
    referenced: bool = True
    dirty: bool = False


class VirtualMemory:
    """One node's frame pool plus per-process page tables.

    Parameters
    ----------
    config:
        Machine constants (frame count = memory / page size).
    pinned_fraction:
        Fraction of frames the kernel pins (AIX kernel + buffers);
        user pages compete for the rest.
    """

    #: CPU cost of servicing each fault kind, in cycles.
    SERVICE_CYCLES = {
        FaultKind.ZERO_FILL: 1200.0,
        FaultKind.RECLAIM: 800.0,
        FaultKind.HARD: 3000.0,
    }

    def __init__(
        self,
        config: MachineConfig | None = None,
        *,
        pinned_fraction: float = 0.08,
        paging_disk_seconds: float | None = None,
    ) -> None:
        self.config = config or POWER2_590
        if not 0.0 <= pinned_fraction < 1.0:
            raise ValueError("pinned_fraction must be in [0, 1)")
        total_frames = self.config.memory_bytes // self.config.tlb.page_bytes
        self.n_frames = int(total_frames * (1.0 - pinned_fraction))
        self.paging_disk_seconds = (
            self.config.page_fault_disk_seconds
            if paging_disk_seconds is None
            else paging_disk_seconds
        )
        #: Frame pool in LRU order: key = (pid, page) → _Frame.
        self._frames: OrderedDict[tuple[int, int], _Frame] = OrderedDict()
        #: Pages evicted to paging space, per process.
        self._paged_out: set[tuple[int, int]] = set()
        #: Pages each process has ever touched (for zero-fill vs hard).
        self._known: set[tuple[int, int]] = set()
        self.stats = VMStats()

    # ------------------------------------------------------------------
    @property
    def frames_used(self) -> int:
        return len(self._frames)

    @property
    def frames_free(self) -> int:
        return self.n_frames - len(self._frames)

    def resident_pages(self, pid: int) -> int:
        return sum(1 for key in self._frames if key[0] == pid)

    # ------------------------------------------------------------------
    def touch(self, pid: int, address: int, *, write: bool = False) -> FaultKind | None:
        """One memory reference; returns the fault kind (None on hit)."""
        page = int(address) // self.config.tlb.page_bytes
        key = (pid, page)
        self.stats.references += 1

        frame = self._frames.get(key)
        if frame is not None:
            self.stats.hits += 1
            frame.referenced = True
            frame.dirty = frame.dirty or write
            self._frames.move_to_end(key)
            return None

        # Fault: classify.
        if key in self._paged_out:
            kind = FaultKind.HARD
            self.stats.hard_faults += 1
            self._paged_out.discard(key)
        elif key in self._known:
            # Unmapped but never written out — we model reclaim as the
            # middle case (its frame was stolen but found on the free
            # list before reuse only if memory pressure was mild).
            kind = FaultKind.RECLAIM
            self.stats.reclaim_faults += 1
        else:
            kind = FaultKind.ZERO_FILL
            self.stats.zero_fill_faults += 1
            self._known.add(key)

        self._allocate_frame(key, write)
        self.stats.service_seconds += self.fault_service_seconds(kind)
        return kind

    def _allocate_frame(self, key: tuple[int, int], write: bool) -> None:
        if len(self._frames) >= self.n_frames:
            self._evict_one()
        self._frames[key] = _Frame(pid=key[0], page=key[1], dirty=write)
        self._frames.move_to_end(key)

    def _evict_one(self) -> None:
        """lrud: second-chance over the LRU order."""
        while True:
            key, frame = next(iter(self._frames.items()))
            if frame.referenced:
                frame.referenced = False
                self._frames.move_to_end(key)
                continue
            del self._frames[key]
            if frame.dirty:
                self.stats.pageouts += 1
                self.stats.service_seconds += self.paging_disk_seconds
                self._paged_out.add(key)
            else:
                # Clean page: drop it; a re-touch is a hard fault only
                # if it had ever been paged out, else a reclaim.
                if key in self._paged_out:
                    pass  # already backed by paging space
            return

    def fault_service_seconds(self, kind: FaultKind) -> float:
        """Wall cost of one fault of the given kind."""
        cpu = self.SERVICE_CYCLES[kind] * self.config.cycle_seconds
        if kind is FaultKind.HARD:
            return cpu + self.paging_disk_seconds
        return cpu

    # ------------------------------------------------------------------
    def terminate(self, pid: int) -> int:
        """Release a process's frames and paging space; returns frames
        freed."""
        keys = [k for k in self._frames if k[0] == pid]
        for k in keys:
            del self._frames[k]
        self._paged_out = {k for k in self._paged_out if k[0] != pid}
        self._known = {k for k in self._known if k[0] != pid}
        return len(keys)
