"""Batched counter accrual: the campaign's vectorized hot path.

A 270-day campaign integrates 44 counters on 144 nodes across ~26k
collector passes plus every job start/stop.  The scalar path does that
node-by-node (:meth:`repro.power2.node.Node.sync`); profiling shows the
per-node ``sync`` + ``snapshot_vector`` loop dominating campaign wall
time.  This module keeps every node's accumulators in one flat store so
a collector pass becomes a single ``values += rates * dt`` sweep.

Two interchangeable store implementations are provided:

* :class:`NumpyCounterStore` — ``(n, 44)`` float64 matrices, one fused
  array operation per pass;
* :class:`PythonCounterStore` — :mod:`array` module buffers with plain
  Python loops, for interpreters without numpy.

**The equivalence guarantee.** Both stores produce *bitwise identical*
results to the scalar per-node path, not merely close ones, so goldens
and the parallel runner's byte-for-byte merge invariants hold under any
backend.  That is not luck; it follows from three IEEE-754 facts the
implementation is built around (and the differential suite in
``tests/power2/test_batch_equivalence.py`` enforces):

1. numpy elementwise double arithmetic, Python float arithmetic and
   ``array('d')`` arithmetic are the same IEEE-754 binary64 operations —
   batching rows never reassociates the per-element ``value += rate*dt``;
2. ``x + rate*0.0`` is a bitwise no-op for the non-negative accumulators
   used here, so a batched pass may apply a zero ``dt`` unconditionally
   where the scalar path early-returns;
3. ``int(float)`` and an int64 cast truncate toward zero identically,
   so dict snapshots and vector snapshots quantize the same way.

The one *semantic* hazard is unreachable nodes: the scalar collector
never syncs a node whose daemon is down (``rate*dt1 + rate*dt2`` is not
bitwise ``rate*(dt1+dt2)``), so the batched pass must mask down nodes
out of the sweep entirely — their clocks must not advance.  See
:meth:`CounterStore.sync_slots` and the regression tests in
``tests/hpm/``.
"""

from __future__ import annotations

import array
from typing import Mapping, Sequence

from repro.power2.counters import (
    BANK_SIZE,
    BROKEN_COUNTERS,
    BROKEN_INDICES,
    COUNTER_NAMES,
    COUNTER_MODULUS,
    FLAT_NAMES,
    Mode,
    counter_index,
    execution_event_counts,
)

try:  # numpy ships with the toolchain, but the pure path must not need it
    import numpy as _np
except ImportError:  # pragma: no cover - exercised only without numpy
    _np = None

HAVE_NUMPY = _np is not None

#: Width of one node's flat counter row (user bank then system bank).
ROW_SIZE = 2 * BANK_SIZE

#: Flat row positions the hardware bug zeroes (both banks).
_BROKEN_FLAT = tuple(BROKEN_INDICES) + tuple(i + BANK_SIZE for i in BROKEN_INDICES)

#: User-facing backend names accepted by ``--accrual-backend``.
BACKEND_CHOICES = ("auto", "scalar", "vectorized", "numpy", "python")

#: Sentinel rate vector for a halted node (counters frozen).
_ZERO_BANK = (0.0,) * BANK_SIZE


def resolve_backend(name: str | None) -> str:
    """Resolve a requested backend name to a concrete one.

    Returns one of ``"scalar"``, ``"numpy"`` or ``"python"``:

    * ``auto`` / ``vectorized`` — the fastest batched store available
      (numpy when importable, else the pure-python store);
    * ``numpy`` — the numpy store (raises without numpy);
    * ``python`` — the pure-python store, regardless of numpy;
    * ``scalar`` / ``None`` — the legacy per-node path.
    """
    if name is None:
        name = "auto"
    if name not in BACKEND_CHOICES:
        raise ValueError(
            f"unknown accrual backend {name!r}; choose from {BACKEND_CHOICES}"
        )
    if name == "scalar":
        return "scalar"
    if name == "numpy":
        if not HAVE_NUMPY:
            raise RuntimeError("accrual backend 'numpy' requested but numpy is absent")
        return "numpy"
    if name == "python":
        return "python"
    # auto / vectorized
    return "numpy" if HAVE_NUMPY else "python"


def make_store(n_slots: int, backend: str) -> "CounterStore":
    """Build the counter store for a resolved (non-scalar) backend."""
    if backend == "numpy":
        return NumpyCounterStore(n_slots)
    if backend == "python":
        return PythonCounterStore(n_slots)
    raise ValueError(f"no store for backend {backend!r}")


class CounterStore:
    """Shared surface of the batched accumulator stores.

    One *slot* holds everything the scalar :class:`~repro.power2.node.Node`
    keeps per node for the campaign fast path: a 44-wide accumulator row
    (user bank then system bank, :data:`FLAT_NAMES` order), a 44-wide
    rate row, the last-sync timestamp, wall/busy second totals and the
    busy flag.  Subclasses provide the storage; the slot algebra here is
    backend-independent.
    """

    def __init__(self, n_slots: int) -> None:
        if n_slots <= 0:
            raise ValueError("store needs at least one slot")
        self.n_slots = n_slots

    # -- slot lifecycle -------------------------------------------------
    def configure_slot(self, slot: int, background: Sequence[float]) -> None:
        """Reset a slot and install its idle background system rates."""
        raise NotImplementedError

    def install(
        self,
        slot: int,
        user: Sequence[float] | None,
        system: Sequence[float] | None,
        *,
        busy: bool,
        flops_per_s: float,
    ) -> None:
        """Replace a slot's rate rows (``None`` user = zeros, ``None``
        system = the slot's background).  Callers sync first, exactly
        like :meth:`Node.install_rates`."""
        raise NotImplementedError

    def halt(self, slot: int) -> None:
        """Freeze a slot's counters (crash): all rates to zero."""
        self.install(slot, _ZERO_BANK, _ZERO_BANK, busy=False, flops_per_s=0.0)

    # -- time integration ----------------------------------------------
    def sync_one(self, slot: int, now: float) -> None:
        raise NotImplementedError

    def sync_slots(self, slots: Sequence[int], now: float) -> None:
        """Integrate a *subset* of slots up to ``now`` in one sweep.

        Slots not listed are untouched — neither their accumulators nor
        their clocks move.  That is load-bearing for unreachable nodes:
        advancing a down node's clock in two steps instead of one would
        change its accumulators bitwise relative to the scalar path.
        """
        raise NotImplementedError

    # -- direct accrual (phase-execution path) --------------------------
    def add(self, slot: int, mode: Mode, name: str, amount: float) -> None:
        if amount < 0:
            raise ValueError(f"cannot decrement counter {name} by {amount}")
        self._add_at(slot, self._flat_index(mode, name), amount)

    def add_many(self, slot: int, mode: Mode, amounts: Mapping[str, float]) -> None:
        for name, amount in amounts.items():
            self.add(slot, mode, name, amount)

    def add_vector(self, slot: int, mode: Mode, vec) -> None:
        raise NotImplementedError

    def _add_at(self, slot: int, flat_index: int, amount: float) -> None:
        raise NotImplementedError

    @staticmethod
    def _flat_index(mode: Mode, name: str) -> int:
        off = 0 if mode is Mode.USER else BANK_SIZE
        return off + counter_index(name)

    # -- reads ----------------------------------------------------------
    def value_at(self, slot: int, flat_index: int) -> float:
        raise NotImplementedError

    def raw(self, slot: int, mode: Mode, name: str) -> float:
        return self.value_at(slot, self._flat_index(mode, name))

    def read(self, slot: int, mode: Mode, name: str) -> int:
        if name in BROKEN_COUNTERS:
            return 0
        return int(self.value_at(slot, self._flat_index(mode, name)))

    def hardware_read(self, slot: int, mode: Mode, name: str) -> int:
        if name in BROKEN_COUNTERS:
            return 0
        return int(self.value_at(slot, self._flat_index(mode, name))) % COUNTER_MODULUS

    def bank_snapshot(self, slot: int, mode: Mode) -> dict[str, int]:
        return {name: self.read(slot, mode, name) for name in COUNTER_NAMES}

    def flat_snapshot(self, slot: int) -> dict[str, int]:
        raise NotImplementedError

    def snapshot_vector(self, slot: int, out=None):
        """One slot's int64 snapshot row (broken counters zeroed)."""
        raise NotImplementedError

    def snapshot_matrix(self, slots: Sequence[int]):
        """Int64 snapshot rows for many slots — the collector's pass."""
        raise NotImplementedError

    # -- per-slot scalars -----------------------------------------------
    def wall(self, slot: int) -> float:
        raise NotImplementedError

    def set_wall(self, slot: int, value: float) -> None:
        raise NotImplementedError

    def busy(self, slot: int) -> float:
        raise NotImplementedError

    def set_busy(self, slot: int, value: float) -> None:
        raise NotImplementedError

    def last_sync(self, slot: int) -> float:
        raise NotImplementedError

    def reset_bank(self, slot: int, mode: Mode) -> None:
        raise NotImplementedError


class NumpyCounterStore(CounterStore):
    """All slots as ``(n, 44)`` float64 matrices; one array op per pass."""

    def __init__(self, n_slots: int) -> None:
        if not HAVE_NUMPY:  # pragma: no cover - guarded by resolve_backend
            raise RuntimeError("NumpyCounterStore requires numpy")
        super().__init__(n_slots)
        self._values = _np.zeros((n_slots, ROW_SIZE), dtype=_np.float64)
        self._rates = _np.zeros((n_slots, ROW_SIZE), dtype=_np.float64)
        self._background = _np.zeros((n_slots, BANK_SIZE), dtype=_np.float64)
        self._last_sync = _np.zeros(n_slots, dtype=_np.float64)
        self._wall = _np.zeros(n_slots, dtype=_np.float64)
        self._busy = _np.zeros(n_slots, dtype=_np.float64)
        self._busy_flag = _np.zeros(n_slots, dtype=_np.float64)
        self._flops = _np.zeros(n_slots, dtype=_np.float64)

    def configure_slot(self, slot, background):
        self._values[slot] = 0.0
        self._rates[slot, :BANK_SIZE] = 0.0
        self._background[slot] = background
        self._rates[slot, BANK_SIZE:] = self._background[slot]
        self._last_sync[slot] = 0.0
        self._wall[slot] = 0.0
        self._busy[slot] = 0.0
        self._busy_flag[slot] = 0.0
        self._flops[slot] = 0.0

    def install(self, slot, user, system, *, busy, flops_per_s):
        row = self._rates[slot]
        if user is None:
            row[:BANK_SIZE] = 0.0
        else:
            row[:BANK_SIZE] = user
        if system is None:
            row[BANK_SIZE:] = self._background[slot]
        else:
            row[BANK_SIZE:] = system
        self._busy_flag[slot] = 1.0 if busy else 0.0
        self._flops[slot] = flops_per_s

    def sync_one(self, slot, now):
        last = float(self._last_sync[slot])
        if now < last - 1e-9:
            raise ValueError(f"sync cannot run backwards ({now} < {last})")
        dt = max(0.0, now - last)
        self._last_sync[slot] = now
        if dt == 0.0:
            return
        self._values[slot] += self._rates[slot] * dt
        self._wall[slot] += dt
        if self._busy_flag[slot]:
            self._busy[slot] += dt

    def sync_slots(self, slots, now):
        if not len(slots):
            return
        if len(slots) == self.n_slots:
            # Full sweep: no index gather, one fused pass.
            last = self._last_sync
            if now < last.max() - 1e-9:
                raise ValueError(f"sync cannot run backwards (now={now})")
            dt = _np.maximum(0.0, now - last)
            last[:] = now
            self._values += self._rates * dt[:, None]
            self._wall += dt
            self._busy += dt * self._busy_flag
            return
        idx = _np.asarray(slots, dtype=_np.intp)
        last = self._last_sync[idx]
        if now < last.max() - 1e-9:
            raise ValueError(f"sync cannot run backwards (now={now})")
        dt = _np.maximum(0.0, now - last)
        self._last_sync[idx] = now
        self._values[idx] += self._rates[idx] * dt[:, None]
        self._wall[idx] += dt
        self._busy[idx] += dt * self._busy_flag[idx]

    def add_vector(self, slot, mode, vec):
        vec = _np.asarray(vec)
        if vec.shape != (BANK_SIZE,):
            raise ValueError(f"expected shape ({BANK_SIZE},), got {vec.shape}")
        off = 0 if mode is Mode.USER else BANK_SIZE
        self._values[slot, off : off + BANK_SIZE] += vec

    def _add_at(self, slot, flat_index, amount):
        self._values[slot, flat_index] += amount

    def value_at(self, slot, flat_index):
        return float(self._values[slot, flat_index])

    def raw_vector(self, slot, mode):
        off = 0 if mode is Mode.USER else BANK_SIZE
        return self._values[slot, off : off + BANK_SIZE].copy()

    def flat_snapshot(self, slot):
        vals = self._values[slot].astype(_np.int64)
        vals[list(_BROKEN_FLAT)] = 0
        return dict(zip(FLAT_NAMES, vals.tolist()))

    def snapshot_vector(self, slot, out=None):
        if out is None:
            out = _np.empty(ROW_SIZE, dtype=_np.int64)
        elif out.shape != (ROW_SIZE,):
            raise ValueError(f"out must have shape ({ROW_SIZE},)")
        out[:] = self._values[slot]  # casts to int64 (truncation toward zero)
        for i in _BROKEN_FLAT:
            out[i] = 0
        return out

    def snapshot_matrix(self, slots):
        if not len(slots):
            return _np.zeros((0, ROW_SIZE), dtype=_np.int64)
        idx = _np.asarray(slots, dtype=_np.intp)
        out = self._values[idx].astype(_np.int64)
        out[:, list(_BROKEN_FLAT)] = 0
        return out

    def wall(self, slot):
        return float(self._wall[slot])

    def set_wall(self, slot, value):
        self._wall[slot] = value

    def busy(self, slot):
        return float(self._busy[slot])

    def set_busy(self, slot, value):
        self._busy[slot] = value

    def last_sync(self, slot):
        return float(self._last_sync[slot])

    def reset_bank(self, slot, mode):
        off = 0 if mode is Mode.USER else BANK_SIZE
        self._values[slot, off : off + BANK_SIZE] = 0.0


class PythonCounterStore(CounterStore):
    """Flat ``array('d')`` buffers with plain loops — no numpy needed.

    Each arithmetic step is the same IEEE-754 binary64 operation the
    scalar and numpy paths perform (Python floats *are* C doubles), so
    the store is bitwise-equivalent, just slower.  It exists for
    numpy-free interpreters and as the differential suite's third
    witness.
    """

    def __init__(self, n_slots: int) -> None:
        super().__init__(n_slots)
        self._values = array.array("d", bytes(8 * n_slots * ROW_SIZE))
        self._rates = array.array("d", bytes(8 * n_slots * ROW_SIZE))
        self._background = [[0.0] * BANK_SIZE for _ in range(n_slots)]
        self._last_sync = [0.0] * n_slots
        self._wall = [0.0] * n_slots
        self._busy = [0.0] * n_slots
        self._busy_flag = [False] * n_slots
        self._flops = [0.0] * n_slots

    def configure_slot(self, slot, background):
        base = slot * ROW_SIZE
        for i in range(base, base + ROW_SIZE):
            self._values[i] = 0.0
        bg = [float(v) for v in background]
        if len(bg) != BANK_SIZE:
            raise ValueError(f"background must have {BANK_SIZE} entries")
        self._background[slot] = bg
        for i in range(BANK_SIZE):
            self._rates[base + i] = 0.0
            self._rates[base + BANK_SIZE + i] = bg[i]
        self._last_sync[slot] = 0.0
        self._wall[slot] = 0.0
        self._busy[slot] = 0.0
        self._busy_flag[slot] = False
        self._flops[slot] = 0.0

    def install(self, slot, user, system, *, busy, flops_per_s):
        base = slot * ROW_SIZE
        if user is None:
            for i in range(base, base + BANK_SIZE):
                self._rates[i] = 0.0
        else:
            for i, v in enumerate(user):
                self._rates[base + i] = v
        sysbase = base + BANK_SIZE
        if system is None:
            for i, v in enumerate(self._background[slot]):
                self._rates[sysbase + i] = v
        else:
            for i, v in enumerate(system):
                self._rates[sysbase + i] = v
        self._busy_flag[slot] = bool(busy)
        self._flops[slot] = flops_per_s

    def sync_one(self, slot, now):
        last = self._last_sync[slot]
        if now < last - 1e-9:
            raise ValueError(f"sync cannot run backwards ({now} < {last})")
        dt = max(0.0, now - last)
        self._last_sync[slot] = now
        if dt == 0.0:
            return
        values, rates = self._values, self._rates
        base = slot * ROW_SIZE
        for i in range(base, base + ROW_SIZE):
            values[i] += rates[i] * dt
        self._wall[slot] += dt
        if self._busy_flag[slot]:
            self._busy[slot] += dt

    def sync_slots(self, slots, now):
        for slot in slots:
            self.sync_one(slot, now)

    def add_vector(self, slot, mode, vec):
        if len(vec) != BANK_SIZE:
            raise ValueError(f"expected {BANK_SIZE} entries, got {len(vec)}")
        base = slot * ROW_SIZE + (0 if mode is Mode.USER else BANK_SIZE)
        values = self._values
        for i, v in enumerate(vec):
            values[base + i] += v

    def _add_at(self, slot, flat_index, amount):
        self._values[slot * ROW_SIZE + flat_index] += amount

    def value_at(self, slot, flat_index):
        return self._values[slot * ROW_SIZE + flat_index]

    def raw_vector(self, slot, mode):
        base = slot * ROW_SIZE + (0 if mode is Mode.USER else BANK_SIZE)
        row = self._values[base : base + BANK_SIZE]
        return _np.array(row, dtype=_np.float64) if HAVE_NUMPY else list(row)

    def _snapshot_row(self, slot):
        base = slot * ROW_SIZE
        row = [int(v) for v in self._values[base : base + ROW_SIZE]]
        for i in _BROKEN_FLAT:
            row[i] = 0
        return row

    def flat_snapshot(self, slot):
        return dict(zip(FLAT_NAMES, self._snapshot_row(slot)))

    def snapshot_vector(self, slot, out=None):
        row = self._snapshot_row(slot)
        if out is not None:
            out[:] = row
            return out
        return _np.array(row, dtype=_np.int64) if HAVE_NUMPY else row

    def snapshot_matrix(self, slots):
        rows = [self._snapshot_row(s) for s in slots]
        if HAVE_NUMPY:
            if not rows:
                return _np.zeros((0, ROW_SIZE), dtype=_np.int64)
            return _np.array(rows, dtype=_np.int64)
        return rows  # pragma: no cover - numpy-free analysis path

    def wall(self, slot):
        return self._wall[slot]

    def set_wall(self, slot, value):
        self._wall[slot] = value

    def busy(self, slot):
        return self._busy[slot]

    def set_busy(self, slot, value):
        self._busy[slot] = value

    def last_sync(self, slot):
        return self._last_sync[slot]

    def reset_bank(self, slot, mode):
        base = slot * ROW_SIZE + (0 if mode is Mode.USER else BANK_SIZE)
        for i in range(base, base + BANK_SIZE):
            self._values[i] = 0.0


class StoreBankView:
    """:class:`~repro.power2.counters.CounterBank`-shaped view of one
    store slot's bank, so phase execution, prologue/epilogue snapshots
    and unit tests address an attached node exactly like a detached one."""

    __slots__ = ("_store", "_slot", "_mode")

    def __init__(self, store: CounterStore, slot: int, mode: Mode) -> None:
        self._store = store
        self._slot = slot
        self._mode = mode

    def add(self, name: str, amount: float) -> None:
        self._store.add(self._slot, self._mode, name, amount)

    def add_many(self, amounts: Mapping[str, float]) -> None:
        self._store.add_many(self._slot, self._mode, amounts)

    def add_vector(self, vec) -> None:
        self._store.add_vector(self._slot, self._mode, vec)

    def raw(self, name: str) -> float:
        return self._store.raw(self._slot, self._mode, name)

    def raw_vector(self):
        return self._store.raw_vector(self._slot, self._mode)

    def hardware_read(self, name: str) -> int:
        return self._store.hardware_read(self._slot, self._mode, name)

    def read(self, name: str) -> int:
        return self._store.read(self._slot, self._mode, name)

    def snapshot(self) -> dict[str, int]:
        return self._store.bank_snapshot(self._slot, self._mode)

    def snapshot_vector(self):
        vec = self._store.snapshot_vector(self._slot)
        off = 0 if self._mode is Mode.USER else BANK_SIZE
        return vec[off : off + BANK_SIZE]

    def reset(self) -> None:
        self._store.reset_bank(self._slot, self._mode)


class StoreMonitor:
    """:class:`~repro.power2.counters.HardwareMonitor`-shaped facade over
    one store slot (both banks).  Attached nodes swap their monitor for
    one of these; every monitor consumer — daemons, samplers, the PBS
    prologue/epilogue, phase execution — works unchanged."""

    __slots__ = ("_store", "_slot", "banks")

    def __init__(self, store: CounterStore, slot: int) -> None:
        self._store = store
        self._slot = slot
        self.banks = {
            Mode.USER: StoreBankView(store, slot, Mode.USER),
            Mode.SYSTEM: StoreBankView(store, slot, Mode.SYSTEM),
        }

    def accrue(self, result, mode: Mode = Mode.USER) -> None:
        self._store.add_many(self._slot, mode, execution_event_counts(result))

    def accrue_raw(self, amounts: Mapping[str, float], mode: Mode) -> None:
        self._store.add_many(self._slot, mode, amounts)

    def accrue_dma(self, *, reads: float = 0.0, writes: float = 0.0) -> None:
        if reads:
            self._store.add(self._slot, Mode.USER, "dma_read", reads)
        if writes:
            self._store.add(self._slot, Mode.USER, "dma_write", writes)

    def snapshot(self) -> dict[str, dict[str, int]]:
        return {
            mode.value: self._store.bank_snapshot(self._slot, mode)
            for mode in (Mode.USER, Mode.SYSTEM)
        }

    def flat_snapshot(self) -> dict[str, int]:
        return self._store.flat_snapshot(self._slot)

    def snapshot_vector(self, out=None):
        return self._store.snapshot_vector(self._slot, out)

    def reset(self) -> None:
        self._store.reset_bank(self._slot, Mode.USER)
        self._store.reset_bank(self._slot, Mode.SYSTEM)
