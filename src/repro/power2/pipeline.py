"""Cycle accounting for a block of work.

Converts an :class:`~repro.power2.isa.InstructionMix` plus memory-system
behaviour into cycles.  The model is deliberately *behavioural*: it keeps
the unit-level overlap structure of the POWER2 (the ICU, FXU pair and
FPU pair run concurrently; stalls add on top) without simulating
individual pipeline stages.

Three stall sources, all grounded in the paper's §5 discussion:

1. **Issue limits** — each dual unit retires at most two instructions
   per cycle, the ICU one branch per cycle; divides take 10 cycles and
   square roots 15.
2. **Dependency stalls** — "the dependencies among the various
   instructions limit the amount of instruction-level parallelism
   available for exploitation".  Two knobs per kernel: ``ilp`` (how often
   FP instructions can pair/dual-issue, which also sets the FPU0/FPU1
   split) and ``load_use_fraction`` (how often an FP op waits on the
   load feeding it).  These are *kernel properties*, derived from the
   code structure, not per-result fudge factors.
3. **Memory stalls** — 8 cycles per D-cache miss, 36–54 (we use 45) per
   TLB miss, with miss ratios derived from the reference cache/TLB
   simulators for each kernel's access pattern.

With the paper's own CFD instruction mix this yields ≈25–30 Mflops at
full tilt and a blocked matrix multiply yields ≈230–240 Mflops — the two
anchors §5 quotes — from the same constants.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power2.config import MachineConfig, POWER2_590
from repro.power2.dispatch import DispatchModel, DispatchResult
from repro.power2.isa import InstructionMix


@dataclass(frozen=True)
class MemoryBehaviour:
    """Per-memory-instruction miss ratios for one access pattern."""

    dcache_miss_ratio: float = 0.0
    tlb_miss_ratio: float = 0.0
    #: Instruction-cache misses per *instruction fetched* — tiny for loop
    #: code (§5: ≈0.4% of fetches).
    icache_miss_ratio: float = 0.0
    #: Fraction of d-cache line fills that evict a dirty line (drives the
    #: dcache_store write-back counter).
    writeback_fraction: float = 0.35

    def validate(self) -> None:
        for name in (
            "dcache_miss_ratio",
            "tlb_miss_ratio",
            "icache_miss_ratio",
            "writeback_fraction",
        ):
            v = getattr(self, name)
            if not 0.0 <= v <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {v}")


@dataclass(frozen=True)
class DependencyProfile:
    """How much parallelism a kernel's dependency graph exposes.

    ``ilp``
        In ``[0, 1]``; 1 means fully independent FP instructions (perfect
        dual issue, 50/50 FPU split), 0 means one long chain.  The paper's
        measured FPU0:FPU1 ratio of 1.7 corresponds to ``ilp ≈ 0.74``.
    ``load_use_fraction``
        Fraction of loads whose consumer issues immediately behind them
        and eats the load-use bubble.
    """

    ilp: float = 0.74
    load_use_fraction: float = 0.25

    def validate(self) -> None:
        if not 0.0 <= self.ilp <= 1.0:
            raise ValueError(f"ilp must be in [0, 1], got {self.ilp}")
        if not 0.0 <= self.load_use_fraction <= 1.0:
            raise ValueError(
                f"load_use_fraction must be in [0, 1], got {self.load_use_fraction}"
            )


#: The workload-average dependency profile (FPU ratio 1.7 → ilp 0.74).
WORKLOAD_DEPS = DependencyProfile()


@dataclass(frozen=True)
class ExecutionResult:
    """Everything the counters and the scheduler need about one block."""

    mix: InstructionMix
    dispatch: DispatchResult
    cycles: float
    seconds: float
    dcache_misses: float
    tlb_misses: float
    icache_misses: float
    dcache_reloads: float
    dcache_writebacks: float
    icache_reloads: float
    #: Cycle breakdown for diagnostics/ablations.
    issue_cycles: float
    dependency_stall_cycles: float
    memory_stall_cycles: float

    @property
    def mflops(self) -> float:
        return self.mix.flops / self.seconds / 1e6 if self.seconds > 0 else 0.0

    @property
    def cpi(self) -> float:
        total = self.mix.total_insts
        return self.cycles / total if total > 0 else 0.0

    @property
    def flops_per_cycle(self) -> float:
        return self.mix.flops / self.cycles if self.cycles > 0 else 0.0


class CycleModel:
    """Unit-overlap + stall cycle model for the POWER2."""

    #: Bubble cycles charged to an FP instruction that cannot pair —
    #: the dependent-issue latency of the POWER2 FP pipeline.
    FP_DEP_STALL_CYCLES = 3.0
    #: Bubble cycles for a load-use dependency.
    LOAD_USE_STALL_CYCLES = 2.0

    def __init__(self, config: MachineConfig | None = None) -> None:
        self.config = config or POWER2_590

    def execute(
        self,
        mix: InstructionMix,
        memory: MemoryBehaviour,
        deps: DependencyProfile = WORKLOAD_DEPS,
        *,
        dispatch: DispatchModel | None = None,
    ) -> ExecutionResult:
        """Account one block of work; see the module docstring."""
        cfg = self.config
        memory.validate()
        deps.validate()
        mix.validate()
        dm = dispatch or DispatchModel(ilp=deps.ilp)

        mem_insts = mix.memory_insts
        dcache_misses = mem_insts * memory.dcache_miss_ratio
        tlb_misses = mem_insts * memory.tlb_miss_ratio
        icache_misses = mix.total_insts * memory.icache_miss_ratio

        disp = dm.split(mix, dcache_miss_handling=dcache_misses)

        # --- issue-limited time per unit group -------------------------
        fpu_width = cfg.fpu_issue_per_cycle * (0.5 + 0.5 * deps.ilp)
        pipelined_fp = mix.fp_add + mix.fp_mul + mix.fp_fma + mix.fp_misc
        fpu_cycles = (
            pipelined_fp / fpu_width
            + mix.fp_div * cfg.fp_div_cycles
            + mix.fp_sqrt * cfg.fp_sqrt_cycles
        )
        fxu_width = cfg.fxu_issue_per_cycle * (0.75 + 0.25 * deps.ilp)
        fxu_cycles = disp.fxu_total / fxu_width
        icu_cycles = mix.icu_insts / cfg.icu_issue_per_cycle
        issue_cycles = max(fpu_cycles, fxu_cycles, icu_cycles)

        # --- dependency stalls -----------------------------------------
        unpaired_fp = mix.fp_arith_insts * (1.0 - deps.ilp)
        load_like = mix.loads + mix.quad_loads
        dependency_stalls = (
            unpaired_fp * self.FP_DEP_STALL_CYCLES
            + load_like * deps.load_use_fraction * self.LOAD_USE_STALL_CYCLES
        )

        # --- memory stalls ---------------------------------------------
        memory_stalls = (
            dcache_misses * cfg.dcache_miss_cycles
            + tlb_misses * cfg.tlb_miss_cycles
            + icache_misses * cfg.icache_miss_cycles
        )

        cycles = issue_cycles + dependency_stalls + memory_stalls
        seconds = cycles * cfg.cycle_seconds

        return ExecutionResult(
            mix=mix,
            dispatch=disp,
            cycles=cycles,
            seconds=seconds,
            dcache_misses=dcache_misses,
            tlb_misses=tlb_misses,
            icache_misses=icache_misses,
            dcache_reloads=dcache_misses,
            dcache_writebacks=dcache_misses * memory.writeback_fraction,
            icache_reloads=icache_misses,
            issue_cycles=issue_cycles,
            dependency_stall_cycles=dependency_stalls,
            memory_stall_cycles=memory_stalls,
        )

    def delay_per_memory_instruction(self, result: ExecutionResult) -> float:
        """§5's 'delay per memory reference' metric (≈0.12 cycles)."""
        mem = result.mix.memory_insts
        if mem == 0:
            return 0.0
        cfg = self.config
        delay = (
            result.dcache_misses * cfg.dcache_miss_cycles
            + result.tlb_misses * cfg.tlb_miss_cycles
        )
        return delay / mem
