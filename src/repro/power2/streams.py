"""Synthetic memory address streams and access-pattern validation.

The campaign's fast path uses *analytic* miss ratios per kernel
(:class:`repro.workload.kernels.AccessPattern`).  This module closes the
loop: it generates the address streams those patterns describe —
sequential walks, strided walks, blocked (tiled) sweeps, multi-block
solver visits, uniform random — runs them through the reference
:class:`~repro.power2.dcache.SetAssociativeCache` and
:class:`~repro.power2.tlb.TLB` simulators, and reports how well the
analytic ratios predict the simulated ones.

Used by ``tests/power2/test_streams.py`` and the
``examples/cache_exploration.py`` walkthrough of §5's memory-hierarchy
arithmetic.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.power2.config import MachineConfig, POWER2_590
from repro.power2.dcache import CacheStats, SetAssociativeCache
from repro.power2.tlb import TLB


def sequential_stream(
    n: int, *, element_bytes: int = 8, base: int = 0
) -> np.ndarray:
    """A no-reuse sequential walk (Table 4's bound)."""
    if n <= 0:
        raise ValueError("stream length must be positive")
    return base + np.arange(n, dtype=np.int64) * element_bytes


def strided_stream(
    n: int, stride_bytes: int, *, base: int = 0
) -> np.ndarray:
    """A constant-stride walk — §5's 'large memory strides' case."""
    if stride_bytes <= 0:
        raise ValueError("stride must be positive")
    return base + np.arange(n, dtype=np.int64) * stride_bytes


def blocked_stream(
    n_blocks: int,
    block_bytes: int,
    passes_per_block: int,
    *,
    element_bytes: int = 8,
    base: int = 0,
) -> np.ndarray:
    """A tiled sweep: each block is walked ``passes_per_block`` times
    before moving on — how the §5 matmul achieves its reuse."""
    if min(n_blocks, block_bytes, passes_per_block) <= 0:
        raise ValueError("blocked stream parameters must be positive")
    per_block = block_bytes // element_bytes
    one_block = np.arange(per_block, dtype=np.int64) * element_bytes
    walks = [
        base + b * block_bytes + one_block
        for b in range(n_blocks)
        for _ in range(passes_per_block)
    ]
    return np.concatenate(walks)

def multiblock_stream(
    rng: np.random.Generator,
    n_blocks: int,
    block_bytes: int,
    touches: int,
    *,
    element_bytes: int = 8,
    run_length: int = 64,
) -> np.ndarray:
    """A multiblock solver's visit pattern: short sequential runs inside
    randomly chosen blocks — cache-friendly inside a run, TLB-hostile
    across blocks (the §7 'relatively high TLB miss rates' shape)."""
    if min(n_blocks, block_bytes, touches, run_length) <= 0:
        raise ValueError("multiblock stream parameters must be positive")
    per_block = block_bytes // element_bytes
    runs = []
    for _ in range(touches):
        block = int(rng.integers(n_blocks))
        start = int(rng.integers(max(1, per_block - run_length)))
        idx = np.arange(start, min(per_block, start + run_length), dtype=np.int64)
        runs.append(block * block_bytes + idx * element_bytes)
    return np.concatenate(runs)


def random_stream(
    rng: np.random.Generator, n: int, span_bytes: int, *, element_bytes: int = 8
) -> np.ndarray:
    """Uniform random touches over a span — the worst case."""
    if n <= 0 or span_bytes <= 0:
        raise ValueError("random stream parameters must be positive")
    return rng.integers(0, span_bytes // element_bytes, size=n).astype(np.int64) * element_bytes


@dataclass(frozen=True)
class StreamMeasurement:
    """Simulated miss behaviour of one stream."""

    accesses: int
    dcache_miss_ratio: float
    tlb_miss_ratio: float
    dcache_stats: CacheStats

    def matches(
        self,
        predicted_dcache: float,
        predicted_tlb: float,
        *,
        rel: float = 0.25,
        absolute: float = 0.002,
    ) -> bool:
        """Whether analytic predictions agree with the simulation."""

        def close(a: float, b: float) -> bool:
            return abs(a - b) <= max(absolute, rel * max(a, b))

        return close(self.dcache_miss_ratio, predicted_dcache) and close(
            self.tlb_miss_ratio, predicted_tlb
        )


def measure_stream(
    addresses: np.ndarray,
    *,
    config: MachineConfig | None = None,
    write_fraction: float = 0.0,
    seed: int = 0,
) -> StreamMeasurement:
    """Run a stream through the reference D-cache and TLB simulators."""
    cfg = config or POWER2_590
    addrs = np.asarray(addresses, dtype=np.int64)
    cache = SetAssociativeCache(cfg.dcache)
    tlb = TLB(cfg.tlb)
    if write_fraction > 0.0:
        rng = np.random.default_rng(seed)
        writes = rng.random(addrs.size) < write_fraction
    else:
        writes = None
    cache.run(addrs, writes)
    tlb.run(addrs)
    return StreamMeasurement(
        accesses=int(addrs.size),
        dcache_miss_ratio=cache.stats.miss_ratio,
        tlb_miss_ratio=tlb.stats.miss_ratio,
        dcache_stats=cache.stats,
    )
