"""Dual-unit dispatch asymmetries.

§5 of the paper devotes two paragraphs to *why* the per-unit instruction
counts are lopsided; this module encodes those mechanisms so the
asymmetries in Table 3 emerge from the model rather than being pasted in:

* **FPU0 vs FPU1** — the ICU feeds a common queue and sends floating
  point instructions to FPU0 *until it encounters a dependency or a
  multicycle operation*, then spills to FPU1.  High instruction-level
  parallelism therefore drives the split toward 50/50; dependency-bound
  CFD code leaves FPU0 doing most of the work (the paper measures
  FPU0:FPU1 ≈ 1.7).
* **FXU0 vs FXU1** — the units differ by design: FXU0 additionally
  handles data-cache misses, FXU1 solely executes the multiply/divide
  address arithmetic.  The paper's Table 3 shows FXU1 executing more
  instructions than FXU0 for the NAS workload.
* **ICU type I vs type II** — branches (type I) dominate over
  condition-register operations (type II) in loop-heavy FP code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.power2.isa import InstructionMix


@dataclass(frozen=True)
class DispatchResult:
    """Per-physical-unit instruction counts for one mix."""

    fpu0: float
    fpu1: float
    fxu0: float
    fxu1: float
    icu_type1: float
    icu_type2: float
    # Per-unit flop-producing breakdowns (the monitor has one counter
    # group per FPU — Table 1 rows FPU0[0..4] and FPU1[0..4]).
    fpu0_add: float
    fpu0_mul: float
    fpu0_div: float
    fpu0_fma: float
    fpu1_add: float
    fpu1_mul: float
    fpu1_div: float
    fpu1_fma: float

    @property
    def fpu_ratio(self) -> float:
        """FPU0:FPU1 instruction ratio (paper: ≈1.7 for the workload)."""
        return self.fpu0 / self.fpu1 if self.fpu1 > 0 else float("inf")

    @property
    def fxu_total(self) -> float:
        return self.fxu0 + self.fxu1


class DispatchModel:
    """Splits an :class:`InstructionMix` across the physical units.

    Parameters
    ----------
    ilp:
        Instruction-level parallelism available to the FP dispatch logic,
        in ``[0, 1]``.  ``1.0`` means back-to-back independent FP
        instructions (the spill path to FPU1 is always open → 50/50
        split); ``0.0`` means a single dependency chain (everything lands
        on FPU0).  The fraction of FP arithmetic sent to FPU1 is
        ``0.5 * ilp``.
    fxu1_address_share:
        Fraction of *integer/addressing* operations handled by FXU1 (it
        alone performs address multiply/divide, §5).
    """

    def __init__(self, *, ilp: float = 0.74, fxu1_address_share: float = 0.85) -> None:
        if not 0.0 <= ilp <= 1.0:
            raise ValueError(f"ilp must be in [0, 1], got {ilp}")
        if not 0.0 <= fxu1_address_share <= 1.0:
            raise ValueError("fxu1_address_share must be in [0, 1]")
        self.ilp = ilp
        self.fxu1_address_share = fxu1_address_share

    def fpu1_share(self) -> float:
        """Fraction of FP arithmetic instructions spilled to FPU1."""
        return 0.5 * self.ilp

    def split(
        self, mix: InstructionMix, *, dcache_miss_handling: float = 0.0
    ) -> DispatchResult:
        """Dispatch ``mix``; ``dcache_miss_handling`` adds FXU0-side
        instructions for cache-miss bookkeeping (directory searches are
        FXU work, §2)."""
        s1 = self.fpu1_share()
        s0 = 1.0 - s1

        # Multicycle ops (div/sqrt) are exactly what forces the spill to
        # FPU1, so route them there preferentially; sqrt is folded into
        # the div category for unit accounting (both are FPU multicycle).
        div_like = mix.fp_div + mix.fp_sqrt
        fpu1_div = min(div_like, div_like * (0.5 + 0.5 * self.ilp))
        fpu0_div = div_like - fpu1_div

        fpu0_add = mix.fp_add * s0
        fpu1_add = mix.fp_add * s1
        fpu0_mul = mix.fp_mul * s0
        fpu1_mul = mix.fp_mul * s1
        fpu0_fma = mix.fp_fma * s0
        fpu1_fma = mix.fp_fma * s1

        fpu0 = fpu0_add + fpu0_mul + fpu0_div + fpu0_fma + mix.fp_misc * s0
        fpu1 = fpu1_add + fpu1_mul + fpu1_div + fpu1_fma + mix.fp_misc * s1

        # Memory instructions interleave across the FXU pair; addressing
        # arithmetic is FXU1's, miss handling is FXU0's.
        mem_each = mix.memory_insts / 2.0
        fxu0 = mem_each + mix.int_ops * (1.0 - self.fxu1_address_share)
        fxu0 += dcache_miss_handling
        fxu1 = mem_each + mix.int_ops * self.fxu1_address_share

        return DispatchResult(
            fpu0=fpu0,
            fpu1=fpu1,
            fxu0=fxu0,
            fxu1=fxu1,
            icu_type1=mix.branches,
            icu_type2=mix.cr_ops,
            fpu0_add=fpu0_add,
            fpu0_mul=fpu0_mul,
            fpu0_div=fpu0_div,
            fpu0_fma=fpu0_fma,
            fpu1_add=fpu1_add,
            fpu1_mul=fpu1_mul,
            fpu1_div=fpu1_div,
            fpu1_fma=fpu1_fma,
        )

    @staticmethod
    def ilp_for_fpu_ratio(ratio: float) -> float:
        """Invert the split: the ``ilp`` that yields a given FPU0:FPU1
        ratio.  ``ratio=1.7`` (the paper's workload) → ilp ≈ 0.74."""
        if ratio < 1.0:
            raise ValueError("FPU0 never receives less than FPU1 in this model")
        return 1.0 / (0.5 * (ratio + 1.0))
