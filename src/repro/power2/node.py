"""An RS6000/590 node: CPU + monitor + 128 MB memory + paging + DMA.

The node is where the paper's two headline pathologies live:

* **Paging (§6)** — jobs whose resident demand oversubscribes the 128 MB
  node memory page against the local disk.  Page-fault handling runs in
  *system* mode, so the FXU/ICU instruction counters inflate in the
  system bank while user-mode progress collapses — the signature the
  paper used to diagnose the >64-node performance cliff (Figure 5).
* **Invisible waits (§5)** — message-passing and disk waits consume wall
  time without ticking the user counters, which is why the counter data
  alone could not explain the 3%-of-peak efficiency.

Work arrives as *phases*: a compute block (an
:class:`~repro.power2.pipeline.ExecutionResult` from the cycle model), a
communication wait, an I/O transfer, or idle time.  Every phase also
accrues a baseline of system-mode OS activity (daemons, interrupts),
which keeps the system/user FXU ratio finite and realistic on healthy
nodes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from repro.power2.config import MachineConfig, POWER2_590
from repro.power2.counters import BANK_SIZE, HardwareMonitor, Mode, rates_vector
from repro.power2.pipeline import ExecutionResult


#: Bytes moved per DMA transfer: the paper's §5 arithmetic (0.042e6
#: transfers/s ≈ 1.3 MB/s) implies ≈31 bytes, i.e. 4-word transfers.
DMA_TRANSFER_BYTES = 32.0

#: Baseline system-mode activity on every node, busy or idle: AIX
#: daemons, clock ticks, network interrupts.  Instructions per second.
OS_BASE_FXU_RATE = 2.5e5
OS_BASE_ICU_RATE = 0.6e5
OS_BASE_CYCLE_FRACTION = 0.01

#: System-mode activity while the VMM is stealing time on a paging node:
#: page-replacement scanning (lrud), fault service and I/O setup run
#: load/store-heavy kernel loops at a large fraction of machine speed.
#: Rates are per second of *stolen* time (§6's thrashing signature —
#: system-mode FXU/ICU counts exceeding user mode).
PAGING_SYSTEM_FXU_RATE = 24e6
PAGING_SYSTEM_ICU_RATE = 5e6
#: During stolen time the CPU is busy roughly half the time (the rest is
#: paging-disk wait), so system cycles accrue at this fraction of clock.
PAGING_CPU_BUSY_FRACTION = 0.5


class PhaseKind(enum.Enum):
    COMPUTE = "compute"
    COMM_WAIT = "comm_wait"
    IO_WAIT = "io_wait"
    IDLE = "idle"


@dataclass(frozen=True)
class WorkPhase:
    """One slice of a job's life on a node."""

    kind: PhaseKind
    #: Compute phases carry the cycle model's result.
    execution: ExecutionResult | None = None
    #: Wait/idle phases carry wall seconds directly.
    seconds: float = 0.0
    #: I/O phases move bytes through the DMA engine.
    dma_read_bytes: float = 0.0
    dma_write_bytes: float = 0.0


@dataclass
class PhaseResult:
    """Wall-clock accounting for one executed phase."""

    kind: PhaseKind
    wall_seconds: float
    user_flops: float = 0.0
    page_faults: float = 0.0
    paging_wall_seconds: float = 0.0


@dataclass(frozen=True)
class PagingState:
    """Derived paging behaviour for the node's current memory demand."""

    oversubscription: float
    fault_rate_per_s: float
    #: Fraction of wall time stolen by fault service + disk waits.
    stolen_fraction: float

    @property
    def thrashing(self) -> bool:
        return self.stolen_fraction > 0.5


def compute_paging_state(
    demand_bytes: float,
    capacity_bytes: float,
    config: MachineConfig,
    *,
    fault_limit: float | None = None,
    onset: float | None = None,
) -> PagingState:
    """Fault rate and stolen wall-time fraction for a memory demand.

    Shared by :class:`Node` (phase-level path) and the job-profile
    builder (campaign fast path) so both agree on the §6 paging physics:
    the fault rate ramps with oversubscription and saturates at the
    paging disk's service limit; each fault costs system-mode service
    cycles plus a disk wait.
    """
    if capacity_bytes <= 0:
        raise ValueError("capacity must be positive")
    if fault_limit is None:
        fault_limit = config.paging_fault_limit
    if onset is None:
        onset = config.paging_onset
    over = max(0.0, demand_bytes / capacity_bytes - 1.0)
    if over <= 0.0:
        return PagingState(0.0, 0.0, 0.0)
    severity = min(1.0, over / onset)
    fault_rate = fault_limit * severity
    per_fault_seconds = (
        config.page_fault_service_cycles * config.cycle_seconds
        + config.page_fault_disk_seconds
    )
    stolen = min(0.98, fault_rate * per_fault_seconds)
    return PagingState(over, fault_rate, stolen)


class Node:
    """One SP2 node.

    Parameters
    ----------
    node_id:
        Position in the cluster (0..143 for the NAS machine).
    config:
        Machine constants; defaults to the POWER2/590.
    paging_disk_fault_limit:
        Maximum hard-fault service rate of the paging disk (faults/s).
    paging_onset:
        Oversubscription at which the paging-disk fault rate saturates;
        e.g. ``0.25`` means 25% over memory pins the paging disk.
    """

    def __init__(
        self,
        node_id: int,
        config: MachineConfig | None = None,
        *,
        paging_disk_fault_limit: float | None = None,
        paging_onset: float | None = None,
    ) -> None:
        self.node_id = int(node_id)
        self.config = config or POWER2_590
        self.monitor = HardwareMonitor()
        self.paging_disk_fault_limit = (
            self.config.paging_fault_limit
            if paging_disk_fault_limit is None
            else paging_disk_fault_limit
        )
        self.paging_onset = (
            self.config.paging_onset if paging_onset is None else paging_onset
        )
        self._memory_used = 0.0
        #: Optional span tracer (phase-execution path): each executed
        #: phase is recorded on the node's own wall-time axis.
        self.tracer = None
        #: Total simulated wall seconds this node has accounted.
        self._wall_seconds = 0.0
        self._busy_seconds = 0.0
        # Campaign fast-path state (see install_rates/sync).
        self._last_sync = 0.0
        self._user_rates: np.ndarray | None = None
        self._system_rates: np.ndarray = self._background_rates()
        self._rates_busy = False
        self._flops_per_s = 0.0
        # Batched-accrual attachment (see attach_store): when set, all
        # fast-path state above lives in the shared store's slot instead.
        self._store = None
        self._slot = -1

    # ------------------------------------------------------------------
    # Batched accrual attachment
    # ------------------------------------------------------------------
    def attach_store(self, store, slot: int) -> None:
        """Move this node's accumulators into a shared
        :class:`~repro.power2.batch.CounterStore` slot.

        Must happen on a pristine node (machine construction time): the
        slot starts from zero, so migrating accrued state is neither
        needed nor supported.  After attachment ``self.monitor`` is a
        store-backed facade and ``sync``/``install_rates``/``halt``/
        ``resume`` delegate to the store — same arithmetic, executed as
        flat array rows so the collector can sweep all nodes at once.
        """
        from repro.power2.batch import StoreMonitor

        if self._wall_seconds or self._busy_seconds or self._last_sync:
            raise RuntimeError("cannot attach a store to a node with history")
        self._store = store
        self._slot = slot
        store.configure_slot(slot, self._background_rates())
        self.monitor = StoreMonitor(store, slot)

    @property
    def wall_seconds(self) -> float:
        if self._store is not None:
            return self._store.wall(self._slot)
        return self._wall_seconds

    @wall_seconds.setter
    def wall_seconds(self, value: float) -> None:
        if self._store is not None:
            self._store.set_wall(self._slot, value)
        else:
            self._wall_seconds = value

    @property
    def busy_seconds(self) -> float:
        if self._store is not None:
            return self._store.busy(self._slot)
        return self._busy_seconds

    @busy_seconds.setter
    def busy_seconds(self, value: float) -> None:
        if self._store is not None:
            self._store.set_busy(self._slot, value)
        else:
            self._busy_seconds = value

    # ------------------------------------------------------------------
    # Memory management
    # ------------------------------------------------------------------
    @property
    def memory_bytes(self) -> int:
        return self.config.memory_bytes

    @property
    def memory_used(self) -> float:
        return self._memory_used

    def assign_memory(self, nbytes: float) -> None:
        """Pin a job's resident demand.  Demand *may* exceed physical
        memory — that is exactly the §6 failure mode — it just pages."""
        if nbytes < 0:
            raise ValueError("memory demand cannot be negative")
        self._memory_used += nbytes

    def release_memory(self, nbytes: float) -> None:
        if nbytes > self._memory_used + 1e-6:
            raise ValueError(
                f"releasing {nbytes} B but only {self._memory_used} B assigned"
            )
        self._memory_used = max(0.0, self._memory_used - nbytes)

    def paging_state(self) -> PagingState:
        """Fault rate and stolen time for the current memory demand."""
        return compute_paging_state(
            self._memory_used,
            self.memory_bytes,
            self.config,
            fault_limit=self.paging_disk_fault_limit,
            onset=self.paging_onset,
        )

    # ------------------------------------------------------------------
    # Phase execution
    # ------------------------------------------------------------------
    def run_phase(self, phase: WorkPhase) -> PhaseResult:
        start = self.wall_seconds
        result = self._dispatch_phase(phase)
        if self.tracer is not None and self.tracer.enabled:
            from repro.tracing.span import CAT_NODE_PHASE

            self.tracer.record(
                phase.kind.value,
                CAT_NODE_PHASE,
                start=start,
                duration=result.wall_seconds,
                node=self.node_id,
                flops=result.user_flops,
                faults=result.page_faults,
            )
        return result

    def _dispatch_phase(self, phase: WorkPhase) -> PhaseResult:
        if phase.kind is PhaseKind.COMPUTE:
            if phase.execution is None:
                raise ValueError("compute phase requires an ExecutionResult")
            return self._run_compute(phase.execution)
        if phase.seconds < 0:
            raise ValueError("phase seconds cannot be negative")
        if phase.kind in (PhaseKind.COMM_WAIT, PhaseKind.IO_WAIT):
            return self._run_wait(phase)
        return self._run_idle(phase.seconds)

    def _run_compute(self, execution: ExecutionResult) -> PhaseResult:
        """User-mode work, stretched by paging if memory is oversubscribed."""
        paging = self.paging_state()
        # The compute block needs `execution.seconds` of CPU; paging
        # steals a fraction of wall time, so wall = cpu / (1 - stolen).
        wall = execution.seconds / (1.0 - paging.stolen_fraction)
        faults = paging.fault_rate_per_s * wall
        stolen_seconds = wall * paging.stolen_fraction
        self.monitor.accrue(execution, Mode.USER)
        cfg = self.config
        if stolen_seconds > 0:
            self.monitor.accrue_raw(
                {
                    "fxu0": stolen_seconds * PAGING_SYSTEM_FXU_RATE * 0.5,
                    "fxu1": stolen_seconds * PAGING_SYSTEM_FXU_RATE * 0.5,
                    "icu0": stolen_seconds * PAGING_SYSTEM_ICU_RATE,
                    "cycles": stolen_seconds * cfg.clock_hz * PAGING_CPU_BUSY_FRACTION,
                },
                Mode.SYSTEM,
            )
        # Paging moves pages over the SIO bus: each 4 kB fault is
        # page-in DMA writes to memory (and eventually page-out reads).
        page_transfers = faults * cfg.tlb.page_bytes / DMA_TRANSFER_BYTES
        self.monitor.accrue_dma(reads=page_transfers * 0.4, writes=page_transfers * 0.6)
        self._accrue_background(wall)
        self.wall_seconds += wall
        self.busy_seconds += wall
        return PhaseResult(
            kind=PhaseKind.COMPUTE,
            wall_seconds=wall,
            user_flops=execution.mix.flops,
            page_faults=faults,
            paging_wall_seconds=wall - execution.seconds,
        )

    def _run_wait(self, phase: WorkPhase) -> PhaseResult:
        """Communication or I/O wait: DMA ticks, user counters do not."""
        reads = phase.dma_read_bytes / DMA_TRANSFER_BYTES
        writes = phase.dma_write_bytes / DMA_TRANSFER_BYTES
        self.monitor.accrue_dma(reads=reads, writes=writes)
        self._accrue_background(phase.seconds)
        self.wall_seconds += phase.seconds
        self.busy_seconds += phase.seconds
        return PhaseResult(kind=phase.kind, wall_seconds=phase.seconds)

    def _run_idle(self, seconds: float) -> PhaseResult:
        self._accrue_background(seconds)
        self.wall_seconds += seconds
        return PhaseResult(kind=PhaseKind.IDLE, wall_seconds=seconds)

    def _accrue_background(self, seconds: float) -> None:
        """Baseline AIX system-mode activity for any wall time."""
        if seconds <= 0:
            return
        self.monitor.accrue_raw(
            {
                "fxu0": OS_BASE_FXU_RATE * 0.5 * seconds,
                "fxu1": OS_BASE_FXU_RATE * 0.5 * seconds,
                "icu0": OS_BASE_ICU_RATE * seconds,
                "cycles": OS_BASE_CYCLE_FRACTION * self.config.clock_hz * seconds,
            },
            Mode.SYSTEM,
        )

    # ------------------------------------------------------------------
    # Campaign fast path: steady counter rates + lazy accrual
    # ------------------------------------------------------------------
    # A running job presents as constant per-second counter rates on its
    # nodes (see repro.workload.profile).  `set_rates` installs them and
    # `sync` integrates counters up to a timestamp; the RS2HPM sampler
    # calls `sync` before reading so snapshots are exact.

    def install_rates(
        self,
        now: float,
        user_rates: np.ndarray | None = None,
        system_rates: np.ndarray | None = None,
        *,
        busy: bool = False,
        flops_per_s: float = 0.0,
    ) -> None:
        """Install steady per-second counter rate vectors from ``now`` on.

        ``None`` rates mean "idle": only the background OS vector ticks.
        """
        if self._store is not None:
            self._store.sync_one(self._slot, now)
            self._store.install(
                self._slot, user_rates, system_rates, busy=busy, flops_per_s=flops_per_s
            )
            return
        self.sync(now)
        self._user_rates = (
            np.zeros(BANK_SIZE) if user_rates is None else np.asarray(user_rates, dtype=float)
        )
        self._system_rates = (
            self._background_rates()
            if system_rates is None
            else np.asarray(system_rates, dtype=float)
        )
        self._rates_busy = busy
        self._flops_per_s = flops_per_s

    def sync(self, now: float) -> None:
        """Integrate installed rates up to simulated time ``now``."""
        if self._store is not None:
            self._store.sync_one(self._slot, now)
            return
        last = self._last_sync
        if now < last - 1e-9:
            raise ValueError(f"sync cannot run backwards ({now} < {last})")
        dt = max(0.0, now - last)
        self._last_sync = now
        if dt == 0.0:
            return
        if self._user_rates is None:
            # Never had rates installed: idle background only.
            self.monitor.banks[Mode.SYSTEM].add_vector(self._background_rates() * dt)
        else:
            self.monitor.banks[Mode.USER].add_vector(self._user_rates * dt)
            self.monitor.banks[Mode.SYSTEM].add_vector(self._system_rates * dt)
        if self._rates_busy:
            self.busy_seconds += dt
        self.wall_seconds += dt

    def halt(self, now: float) -> None:
        """Power the node down at ``now`` (crash).

        Counters are synced to the instant of the crash and then
        *freeze* — they persist across the outage and keep their values
        at repair, so the collector's per-node series stays monotone
        (the delta algebra asserts counters never run backwards).
        """
        if self._store is not None:
            self._store.sync_one(self._slot, now)
            self._store.halt(self._slot)
            return
        self.sync(now)
        zero = np.zeros(BANK_SIZE)
        self._user_rates = zero
        self._system_rates = zero.copy()
        self._rates_busy = False
        self._flops_per_s = 0.0

    def resume(self, now: float) -> None:
        """Return the node to service at ``now`` (repair).

        The outage integrates as zero-rate time, then the idle
        background OS vector is reinstalled.
        """
        self.sync(now)
        self.install_rates(now)

    def _background_rates(self) -> np.ndarray:
        """Idle-node background OS activity as a bank-ordered vector."""
        return rates_vector(
            {
                "fxu0": OS_BASE_FXU_RATE * 0.5,
                "fxu1": OS_BASE_FXU_RATE * 0.5,
                "icu0": OS_BASE_ICU_RATE,
                "cycles": OS_BASE_CYCLE_FRACTION * self.config.clock_hz,
            }
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def utilization(self) -> float:
        """Fraction of accounted wall time spent in job phases."""
        return self.busy_seconds / self.wall_seconds if self.wall_seconds else 0.0

    def snapshot(self) -> dict[str, int]:
        """RS2HPM-style flat counter snapshot for this node."""
        return self.monitor.flat_snapshot()
