"""The long-running operations service (PR 7).

Promotes the one-shot ``sp2-ops`` analyses to a service: a
:class:`~repro.ops.hub.CampaignHub` holds many concurrent campaigns'
online telemetry (bounded memory, snapshot-isolated reads, fleet
federation), :class:`~repro.ops.server.OpsServer` serves it over a
newline-delimited JSON TCP protocol, and :mod:`repro.ops.report`
renders MPCDF-style per-job performance pages from the streamed state.
"""

from repro.ops.client import OpsClient, OpsServiceError
from repro.ops.federate import (
    FLEET_PREFIX,
    SUM_METRICS,
    federate_series,
    federated_names,
    member_metric,
    parse_fleet_metric,
    rollup_metric,
)
from repro.ops.hub import (
    CampaignHandle,
    CampaignHub,
    HubError,
    HubFull,
    UnknownCampaign,
    UnknownJob,
    UnknownMetric,
)
from repro.ops.ingest import (
    BusTap,
    ingest_fleet,
    ingest_study,
    replay_fleet_into_hub,
    replay_into_hub,
)
from repro.ops.protocol import PROTOCOL_VERSION, ProtocolError
from repro.ops.report import render_performance_report
from repro.ops.server import OpsServer

__all__ = [
    "BusTap",
    "CampaignHandle",
    "CampaignHub",
    "FLEET_PREFIX",
    "HubError",
    "HubFull",
    "OpsClient",
    "OpsServer",
    "OpsServiceError",
    "PROTOCOL_VERSION",
    "ProtocolError",
    "SUM_METRICS",
    "UnknownCampaign",
    "UnknownJob",
    "UnknownMetric",
    "federate_series",
    "federated_names",
    "ingest_fleet",
    "ingest_study",
    "member_metric",
    "parse_fleet_metric",
    "render_performance_report",
    "replay_fleet_into_hub",
    "replay_into_hub",
    "rollup_metric",
]
