"""Fleet telemetry federation: one metric namespace across members.

PR 6 left federation as an open item: each fleet member ran its own
telemetry service and there was no merged operator view.  This module
defines the merged namespace the ops service serves:

* ``fleet.<member>.<metric>`` — one member's series, verbatim;
* ``fleet.<metric>`` — the fleet-level rollup, merged across members.

Rollups align member series on their timestamps (members sample on the
same 15-minute cadence, so points line up except across collector-gap
faults): *capacity* metrics (system Gflops, reporting nodes, active
jobs) add across centers, while *per-node* rates (Mflops/node, miss
rates, ratios) take the node-count-weighted mean — the same convention
XDMoD uses when it rolls per-center utilization into an NSF-wide
number.  At a timestamp only some members reported, the rollup uses the
members that did.

Everything here is a pure function of immutable series snapshots, so
federated reads inherit the store's snapshot-isolation guarantee.
"""

from __future__ import annotations

import numpy as np

from repro.telemetry.store import DEFAULT_EWMA_ALPHA, SeriesSnapshot

#: Prefix of every federated metric name.
FLEET_PREFIX = "fleet."

#: Metrics that add across centers; everything else federates as the
#: node-count-weighted mean (per-node rates and ratios).
SUM_METRICS = frozenset({"gflops.system", "nodes.reporting", "jobs.active"})

#: Quantiles reported by federated rollups (mirrors the store sketches).
ROLLUP_QUANTILES = (0.5, 0.9, 0.99)


def member_metric(member: str, metric: str) -> str:
    """The federated name of one member's series."""
    return f"{FLEET_PREFIX}{member}.{metric}"


def rollup_metric(metric: str) -> str:
    """The federated name of the fleet-level rollup."""
    return f"{FLEET_PREFIX}{metric}"


def parse_fleet_metric(name: str, members: tuple[str, ...]) -> tuple[str | None, str] | None:
    """Split a federated name into ``(member, metric)``.

    ``fleet.<member>.<metric>`` yields ``(member, metric)`` when the
    member exists; ``fleet.<metric>`` yields ``(None, metric)`` (a
    rollup).  Anything else — including a bare single-campaign metric
    name — yields ``None``.
    """
    if not name.startswith(FLEET_PREFIX):
        return None
    rest = name[len(FLEET_PREFIX):]
    head, sep, tail = rest.partition(".")
    if sep and head in members:
        return head, tail
    return None, rest


def federated_names(members: tuple[str, ...], metrics: list[str]) -> list[str]:
    """Every name the federated namespace serves, sorted."""
    names = [rollup_metric(m) for m in metrics]
    names += [member_metric(mem, m) for mem in members for m in metrics]
    return sorted(names)


def federate_series(
    metric: str,
    member_series: dict[str, SeriesSnapshot],
    node_weights: dict[str, int],
) -> SeriesSnapshot:
    """Merge member snapshots of one metric into the fleet rollup.

    The result is a synthetic :class:`SeriesSnapshot` named
    ``fleet.<metric>``: raw points are the aligned merge, and because
    the merged window is fully materialized its summary statistics are
    exact (``np.percentile``) rather than P² estimates — the member
    sketches cannot be combined, so recomputing from the merge is both
    simpler and more accurate.  ``dropped`` sums the member rings'
    evictions: a federated window is only as complete as its inputs.
    """
    series = {m: s for m, s in member_series.items() if s is not None and s.size}
    if not series:
        return SeriesSnapshot(
            name=rollup_metric(metric),
            count=0,
            dropped=sum(s.dropped for s in member_series.values() if s is not None),
            ewma=0.0,
            min=0.0,
            max=0.0,
            quantiles={q: 0.0 for q in ROLLUP_QUANTILES},
            times=np.empty(0),
            values=np.empty(0),
        )
    times = np.unique(np.concatenate([s.times for s in series.values()]))
    acc = np.zeros(len(times))
    weight = np.zeros(len(times))
    additive = metric in SUM_METRICS
    for member in sorted(series):
        snap = series[member]
        idx = np.searchsorted(times, snap.times)
        w = 1.0 if additive else float(max(node_weights.get(member, 1), 1))
        acc[idx] += snap.values if additive else snap.values * w
        weight[idx] += w
    values = acc if additive else acc / np.maximum(weight, 1e-300)

    ewma = 0.0
    for i, v in enumerate(values):
        v = float(v)
        ewma = v if i == 0 else DEFAULT_EWMA_ALPHA * v + (1 - DEFAULT_EWMA_ALPHA) * ewma
    return SeriesSnapshot(
        name=rollup_metric(metric),
        count=len(values),
        dropped=sum(s.dropped for s in member_series.values() if s is not None),
        ewma=ewma,
        min=float(values.min()),
        max=float(values.max()),
        quantiles={
            q: float(np.percentile(values, q * 100.0)) for q in ROLLUP_QUANTILES
        },
        times=times,
        values=values,
    )
