"""A small asyncio client for the ops service.

Used by ``sp2-ops ask``, the load-test harness, and the service tests.
A background reader task routes incoming frames: ``push``-keyed frames
(alert subscriptions) land on a push queue, everything else answers the
oldest outstanding request — the server answers in request order per
connection, so a FIFO of response futures is the whole demultiplexer.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Any

from repro.ops.protocol import ProtocolError, encode_message, read_message


class OpsServiceError(Exception):
    """An ``ok: false`` response, surfaced with its protocol code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code


class OpsClient:
    """One connection; use ``async with await OpsClient.connect(...)``."""

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._pending: deque[asyncio.Future] = deque()
        self.pushes: asyncio.Queue = asyncio.Queue()
        self._reader_task = asyncio.ensure_future(self._read_loop())

    @classmethod
    async def connect(cls, host: str, port: int) -> "OpsClient":
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def __aenter__(self) -> "OpsClient":
        return self

    async def __aexit__(self, *exc: Any) -> None:
        await self.close()

    async def _read_loop(self) -> None:
        try:
            while True:
                frame = await read_message(self._reader)
                if frame is None:
                    break
                if "push" in frame:
                    self.pushes.put_nowait(frame)
                elif self._pending:
                    self._pending.popleft().set_result(frame)
                # An unsolicited non-push frame is dropped: nothing to
                # pair it with, and dying here would mask the real bug.
        except (ProtocolError, ConnectionResetError) as exc:
            self._fail_pending(exc)
            return
        self._fail_pending(ConnectionError("server closed the connection"))

    def _fail_pending(self, exc: Exception) -> None:
        while self._pending:
            fut = self._pending.popleft()
            if not fut.done():
                fut.set_exception(exc)

    async def request(self, op: str, **operands: Any) -> dict[str, Any]:
        """Send one request and await its response; raises
        :class:`OpsServiceError` on an ``ok: false`` reply."""
        fut: asyncio.Future = asyncio.get_running_loop().create_future()
        self._pending.append(fut)
        self._writer.write(encode_message({"op": op, **operands}))
        await self._writer.drain()
        response = await fut
        if not response.get("ok", False):
            raise OpsServiceError(
                response.get("error", "server-error"),
                response.get("message", "(no message)"),
            )
        return response

    async def next_push(self, timeout: float | None = None) -> dict[str, Any]:
        """The next server-push frame (an alert), FIFO."""
        if timeout is None:
            return await self.pushes.get()
        return await asyncio.wait_for(self.pushes.get(), timeout)

    async def close(self) -> None:
        self._reader_task.cancel()
        try:
            await self._reader_task
        except (asyncio.CancelledError, Exception):
            pass
        self._writer.close()
        try:
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError):
            pass
