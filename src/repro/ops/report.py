"""MPCDF-style per-job performance pages.

The RS2HPM epilogue file (:mod:`repro.hpm.jobreport`) is a raw counter
dump "for later processing"; the MPCDF HPC monitoring system turned the
same node-level samples into a *rendered* page per job — utilization
against peak, memory behaviour, where the wall time went.  This module
is that page for the reproduction: one finished job's frozen rollup,
placed against the campaign's distribution, with critical-path
attribution when the campaign ran traced.

Everything is derived from data the streaming layer already holds (the
rollup table and, optionally, recorded job spans), so the ops service
can serve report pulls without touching the raw dataset.
"""

from __future__ import annotations

from repro.hpm.derived import DerivedRates, workload_rates
from repro.power2.config import POWER2_590
from repro.telemetry.rollup import JobRollup, RollupTable
from repro.tracing.critical_path import JobCriticalPath, analyze_jobs
from repro.tracing.span import PHASE_KINDS
from repro.workload.traces import SECONDS_PER_DAY

#: The §6 paging signature threshold on the system/user FXU ratio.
PAGING_RATIO_THRESHOLD = 0.5


def _fmt_time(t: float) -> str:
    day, rem = divmod(t, SECONDS_PER_DAY)
    hh, mm = divmod(int(rem) // 60, 60)
    return f"d{int(day):03d} {hh:02d}:{mm:02d}"


def job_critical_path(spans, job_id: int) -> JobCriticalPath | None:
    """The recorded attribution for one job, if its spans were kept."""
    for path in analyze_jobs(spans):
        if path.job_id == job_id:
            return path
    return None


def _rank_line(rollup: JobRollup, table: RollupTable) -> str:
    """Where this job sits in the campaign's finished-job distribution."""
    totals = sorted((r.total_mflops for r in table.finished), reverse=True)
    rank = 1 + sum(1 for v in totals if v > rollup.total_mflops)
    n = len(totals)
    pct = 100.0 * (n - rank) / n if n > 1 else 100.0
    return f"#{rank} of {n} finished jobs by total Mflops (p{pct:.0f})"


def render_performance_report(
    rollup: JobRollup,
    table: RollupTable,
    *,
    campaign: str = "",
    member: str | None = None,
    path: JobCriticalPath | None = None,
    peak_mflops: float = POWER2_590.peak_mflops,
) -> str:
    """One job's performance page as operator text."""
    rec = rollup.record
    n_nodes = max(len(rec.node_ids), 1)
    wall = rec.walltime_seconds
    rates: DerivedRates | None = None
    if wall > 0 and rec.node_ids:
        rates = workload_rates(rec.summed_deltas(), wall, n_nodes)

    where = f"{campaign} (member {member})" if member else campaign
    lines = [
        f"=== job {rec.job_id} performance report "
        f"{'— ' + where if where else ''}".rstrip() + " ===",
        f"app        : {rec.app_name}   user {rec.user}",
        f"placement  : {rec.nodes_requested} nodes requested, "
        f"{len(rec.node_ids)} allocated",
        f"timeline   : submitted {_fmt_time(rec.submit_time)}, "
        f"queued {rec.queue_wait_seconds:.0f}s, "
        f"ran {_fmt_time(rec.start_time)} -> {_fmt_time(rec.end_time)} "
        f"({wall:.0f}s wall, {rollup.node_seconds:.0f} node-seconds)",
        f"throughput : {rollup.total_mflops:.1f} Mflops total · "
        f"{rollup.mflops_per_node:.2f} Mflops/node · "
        f"{100.0 * rollup.mflops_per_node / peak_mflops:.1f}% of node peak "
        f"({peak_mflops:.0f})",
        f"rank       : {_rank_line(rollup, table)}",
    ]
    if rates is not None:
        lines.append(
            f"memory     : flops/mem-inst {rates.flops_per_memory_inst:.3f} · "
            f"fma flop fraction {rates.fma_flop_fraction:.1%} · "
            f"tlb {rates.tlb_miss_rate:.3f} M/s · "
            f"dcache {rates.dcache_miss_rate:.3f} M/s"
        )
        lines.append(
            f"traffic    : dma {rates.dma_bytes_per_s / 1e6:.2f} MB/s per node · "
            f"fpu balance {rates.fpu_ratio:.2f}"
        )
    ratio = rollup.system_user_fxu_ratio
    suspect = ratio > PAGING_RATIO_THRESHOLD
    lines.append(
        f"kernel time: sys/usr FXU ratio {ratio:.3f} "
        + (
            f"-> PAGING SUSPECT (>{PAGING_RATIO_THRESHOLD} is the §6 signature)"
            if suspect
            else "(healthy)"
        )
    )
    if path is not None and path.wall_seconds > 0:
        parts = " · ".join(
            f"{kind} {path.fraction(kind):.1%}"
            for kind in PHASE_KINDS
            if path.breakdown.get(kind, 0.0) > 0
        )
        lines.append(f"attribution: {parts}")
        chain = " -> ".join(f"{name} ({sec:.0f}s)" for name, sec in path.chain)
        lines.append(f"critical   : {chain}")
        lines.append(f"dominant   : {path.dominant}")
    else:
        lines.append(
            "attribution: (untraced campaign — serve/report with --trace "
            "records per-phase spans)"
        )
    return "\n".join(lines)
