"""Streaming campaigns into the hub — live taps and offline replay.

Two paths feed a :class:`~repro.ops.hub.CampaignHub`:

* **live** — the campaign runs in a worker thread (the simulator is
  synchronous, CPU-bound Python) with a :class:`BusTap` subscribed to
  its event bus; every tapped event is marshalled onto the event loop
  with ``call_soon_threadsafe`` and applied by :func:`drain_into_hub`.
  Taps only *add* subscribers, and the bus delivers in subscription
  order, so a tapped campaign's own output is byte-identical to an
  untapped one (the integration tests diff the JSON exports);
* **replay** — an already-run dataset streams through the canonical
  :func:`repro.telemetry.service.replay_events` ordering, so hub state
  after replay equals :meth:`TelemetryService.replay` state by
  construction.

Fleet campaigns use the serial member path live (one tap per member via
``run_fleet(member_hook=...)``); sharded fleets fall back to replaying
the merged member datasets — same end state, no mid-run visibility.
"""

from __future__ import annotations

import asyncio
from typing import Any, Callable

from repro.core.study import StudyConfig, StudyDataset, WorkloadStudy
from repro.fleet.runner import FleetDataset, run_fleet
from repro.fleet.spec import FleetSpec
from repro.ops.hub import CampaignHub
from repro.telemetry.bus import (
    TOPIC_COLLECTOR_GAP,
    TOPIC_FAULT,
    TOPIC_JOB_END,
    TOPIC_JOB_KILLED,
    TOPIC_JOB_START,
    TOPIC_SAMPLE,
    TOPIC_SIM_TRUNCATED,
    TOPIC_SPAN,
    EventBus,
)
from repro.telemetry.service import replay_events
from repro.tracing.tracer import Tracer

#: Topics forwarded into the hub (everything its services consume).
TAPPED_TOPICS = (
    TOPIC_SAMPLE,
    TOPIC_JOB_START,
    TOPIC_JOB_END,
    TOPIC_JOB_KILLED,
    TOPIC_SPAN,
    TOPIC_FAULT,
    TOPIC_COLLECTOR_GAP,
    TOPIC_SIM_TRUNCATED,
)

#: End-of-stream marker on the ingest queue.
_DONE = object()


class BusTap:
    """Forwards a campaign bus's events to an ``emit(topic, event)``.

    Subscribing is all it does — no filtering, no mutation — so the
    tapped campaign cannot observe it.
    """

    def __init__(self, emit: Callable[[str, Any], None]) -> None:
        self.emit = emit
        self.forwarded = 0

    def attach(self, bus: EventBus) -> None:
        for topic in TAPPED_TOPICS:
            bus.subscribe(topic, self._handler(topic))

    def _handler(self, topic: str):
        def forward(event: Any) -> None:
            self.forwarded += 1
            self.emit(topic, event)

        return forward


def replay_into_hub(
    hub: CampaignHub,
    name: str,
    dataset: StudyDataset,
    *,
    member: str | None = None,
) -> None:
    """Feed one recorded dataset through the canonical replay ordering."""
    spans = dataset.tracer.spans if dataset.tracer is not None else ()
    truncations = (
        dataset.telemetry.truncations if dataset.telemetry is not None else ()
    )
    faults = dataset.faults.events if dataset.faults is not None else ()
    for topic, event in replay_events(
        dataset.collector.samples,
        dataset.accounting.records,
        spans=spans,
        truncations=truncations,
        faults=faults,
    ):
        hub.feed(name, topic, event, member=member)


def replay_fleet_into_hub(
    hub: CampaignHub, name: str, fleet: FleetDataset
) -> None:
    """Replay every member dataset under its federated namespace."""
    for result in fleet.members:
        replay_into_hub(hub, name, result.dataset, member=result.spec.name)


async def drain_into_hub(
    hub: CampaignHub, name: str, queue: asyncio.Queue
) -> None:
    """Apply queued ``(member, topic, event)`` items until ``_DONE``."""
    while True:
        item = await queue.get()
        if item is _DONE:
            return
        member, topic, event = item
        hub.feed(name, topic, event, member=member)


def _loop_emitter(
    loop: asyncio.AbstractEventLoop, queue: asyncio.Queue, member: str | None
) -> Callable[[str, Any], None]:
    def emit(topic: str, event: Any) -> None:
        loop.call_soon_threadsafe(queue.put_nowait, (member, topic, event))

    return emit


async def ingest_study(
    hub: CampaignHub,
    name: str,
    config: StudyConfig,
    *,
    trace: bool = False,
) -> StudyDataset:
    """Run one single-machine campaign live into the hub.

    Returns the campaign's own dataset — whose output is byte-identical
    to a run without the hub attached (the tap is read-only).
    """
    hub.register(
        name,
        kind="single",
        meta={
            "seed": config.seed,
            "n_days": config.n_days,
            "n_nodes": config.n_nodes,
            "traced": trace,
        },
    )
    loop = asyncio.get_running_loop()
    queue: asyncio.Queue = asyncio.Queue()

    def build_and_run() -> StudyDataset:
        tracer = Tracer() if trace else None
        study = WorkloadStudy(config, tracer=tracer)
        BusTap(_loop_emitter(loop, queue, None)).attach(study.bus)
        return study.run()

    runner = asyncio.ensure_future(asyncio.to_thread(build_and_run))
    runner.add_done_callback(lambda _: queue.put_nowait(_DONE))
    await drain_into_hub(hub, name, queue)
    try:
        dataset = await runner
    except BaseException:
        # A failed ingest must not pin a "running" campaign forever
        # (running campaigns are exempt from hub eviction).
        hub.complete(name, {"error": True})
        raise
    hub.complete(name, {"jobs": len(dataset.accounting)})
    return dataset


async def ingest_fleet(
    hub: CampaignHub,
    name: str,
    spec: FleetSpec,
    *,
    workers: int | None = None,
    shard_days: int | None = None,
) -> FleetDataset:
    """Run a fleet campaign into the hub under federated namespaces.

    Serial fleets stream live (member by member, as they run); sharded
    fleets run first and replay after the merge — the sharded runner
    rebuilds member telemetry at merge time, so there is no live bus to
    tap mid-flight.
    """
    members = tuple(m.name for m in spec.members)
    hub.register(
        name,
        kind="fleet",
        members=members,
        node_weights={m.name: m.n_nodes for m in spec.members},
        meta={"seed": spec.seed, "n_days": spec.n_days, "routing": spec.routing},
    )
    sharded = workers is not None or shard_days is not None
    if sharded:
        try:
            fleet = await asyncio.to_thread(
                run_fleet, spec, workers=workers, shard_days=shard_days
            )
        except BaseException:
            hub.complete(name, {"error": True})
            raise
        replay_fleet_into_hub(hub, name, fleet)
    else:
        loop = asyncio.get_running_loop()
        queue: asyncio.Queue = asyncio.Queue()

        def hook(member_spec, study) -> None:
            BusTap(_loop_emitter(loop, queue, member_spec.name)).attach(study.bus)

        runner = asyncio.ensure_future(
            asyncio.to_thread(run_fleet, spec, member_hook=hook)
        )
        runner.add_done_callback(lambda _: queue.put_nowait(_DONE))
        await drain_into_hub(hub, name, queue)
        try:
            fleet = await runner
        except BaseException:
            hub.complete(name, {"error": True})
            raise
    hub.complete(
        name,
        {"jobs": sum(len(m.dataset.accounting) for m in fleet.members)},
    )
    return fleet
