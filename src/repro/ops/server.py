"""The asyncio query server in front of a :class:`CampaignHub`.

One ``OpsServer`` serves many concurrent clients over the line protocol
of :mod:`repro.ops.protocol`.  Two invariants keep it simple and
correct under the load test's thousand-client fan-in:

* **single-writer connections** — each connection owns a writer task
  draining a per-connection queue; request responses and alert pushes
  both go through the queue, so a server-push can never interleave
  mid-frame with a response;
* **no awaits inside hub reads** — handlers take their snapshot
  synchronously (the hub hands out immutable views), so a slow client
  on one connection cannot make another connection observe a torn
  state.

Shutdown is an op (``{"op": "shutdown"}``): the CI smoke uses it to
prove the service exits cleanly with all connections drained.
"""

from __future__ import annotations

import asyncio
from typing import Any

from repro.ops.hub import (
    CampaignHub,
    HubFull,
    UnknownCampaign,
    UnknownJob,
    UnknownMetric,
)
from repro.ops.protocol import (
    ERR_BAD_REQUEST,
    ERR_SERVER,
    ERR_UNKNOWN_CAMPAIGN,
    ERR_UNKNOWN_JOB,
    ERR_UNKNOWN_METRIC,
    ERR_UNKNOWN_OP,
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    ProtocolError,
    alert_push,
    alert_to_json,
    encode_message,
    error_response,
    ok_response,
    read_message,
    series_to_json,
)
from repro.telemetry.rollup import JobRollup

#: Listen backlog — the load test opens ~1000 connections in a burst.
DEFAULT_BACKLOG = 2048

#: Per-connection outbound queue bound; a client that stops reading has
#: its pushes dropped (and counted) rather than growing without bound.
MAX_QUEUED_FRAMES = 4096

_CLOSE = None  # writer-queue sentinel


class _Connection:
    """One client: its streams, outbound queue, and subscriptions."""

    __slots__ = ("reader", "writer", "queue", "subscriptions", "pushes_dropped")

    def __init__(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.reader = reader
        self.writer = writer
        self.queue: asyncio.Queue = asyncio.Queue(maxsize=MAX_QUEUED_FRAMES)
        #: Campaign names this client gets alert pushes for ("*" = all).
        self.subscriptions: set[str] = set()
        self.pushes_dropped = 0

    def send(self, frame: dict[str, Any]) -> None:
        """Queue one frame; drops pushes (never responses) when full."""
        try:
            self.queue.put_nowait(encode_message(frame))
        except asyncio.QueueFull:
            self.pushes_dropped += 1


class OpsServer:
    """The service: a hub, a TCP listener, and per-connection tasks."""

    def __init__(self, hub: CampaignHub) -> None:
        self.hub = hub
        self._server: asyncio.Server | None = None
        self._connections: set[_Connection] = set()
        self._handler_tasks: set[asyncio.Task] = set()
        self.shutdown_requested = asyncio.Event()
        self.requests_served = 0
        self.errors_returned = 0
        self.pushes_sent = 0
        self.connections_total = 0
        hub.add_alert_listener(self._on_alert)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @classmethod
    async def start(
        cls,
        hub: CampaignHub,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        backlog: int = DEFAULT_BACKLOG,
    ) -> "OpsServer":
        self = cls(hub)
        self._server = await asyncio.start_server(
            self._handle_connection,
            host,
            port,
            backlog=backlog,
            limit=MAX_LINE_BYTES,
        )
        return self

    @property
    def port(self) -> int:
        assert self._server is not None
        return self._server.sockets[0].getsockname()[1]

    async def serve_until_shutdown(self) -> None:
        """Accept clients until a ``shutdown`` op arrives, then drain."""
        assert self._server is not None
        await self.shutdown_requested.wait()
        await self.close()

    async def close(self) -> None:
        self.shutdown_requested.set()
        # Wake readers blocked mid-read so their handlers can exit;
        # writer tasks drain their queues first, so queued responses
        # (the shutdown ack included) still reach their clients.
        for conn in list(self._connections):
            conn.reader.feed_eof()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        # Drain handler tasks ourselves: on 3.11 ``wait_closed`` does not
        # wait for them, and letting loop teardown cancel a handler makes
        # asyncio's done-callback log a spurious CancelledError per
        # connection — a thousand-line goodbye under the load test.
        pending = [t for t in self._handler_tasks if not t.done()]
        if pending:
            _, stuck = await asyncio.wait(pending, timeout=5.0)
            for task in stuck:  # unresponsive peer: cancel as a last resort
                task.cancel()
            if stuck:
                await asyncio.wait(stuck, timeout=1.0)
        self.hub.remove_alert_listener(self._on_alert)

    # ------------------------------------------------------------------
    # Alert fan-out
    # ------------------------------------------------------------------
    def _on_alert(self, campaign: str, member: str | None, alert) -> None:
        frame = None
        for conn in self._connections:
            if "*" in conn.subscriptions or campaign in conn.subscriptions:
                if frame is None:
                    frame = alert_push(campaign, member, alert)
                conn.send(frame)
                self.pushes_sent += 1

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------
    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._handler_tasks.add(task)
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self.connections_total += 1
        writer_task = asyncio.ensure_future(self._write_loop(conn))
        try:
            await self._read_loop(conn)
        finally:
            self._connections.discard(conn)
            conn.queue.put_nowait(_CLOSE)
            try:
                await writer_task
            except (ConnectionResetError, BrokenPipeError):
                pass
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError):
                pass
            if task is not None:
                self._handler_tasks.discard(task)

    async def _write_loop(self, conn: _Connection) -> None:
        while True:
            frame = await conn.queue.get()
            if frame is _CLOSE:
                return
            conn.writer.write(frame)
            await conn.writer.drain()

    async def _read_loop(self, conn: _Connection) -> None:
        while not self.shutdown_requested.is_set():
            try:
                request = await read_message(conn.reader)
            except ProtocolError as exc:
                self.errors_returned += 1
                conn.send(error_response("?", ERR_BAD_REQUEST, str(exc)))
                return
            if request is None:
                return
            self.requests_served += 1
            response = self._dispatch(conn, request)
            if not response.get("ok", False):
                self.errors_returned += 1
            conn.send(response)

    # ------------------------------------------------------------------
    # Request dispatch — synchronous on purpose (see module docstring)
    # ------------------------------------------------------------------
    def _dispatch(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        op = request.get("op")
        if not isinstance(op, str):
            return error_response("?", ERR_BAD_REQUEST, "request needs an 'op' string")
        handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
        if handler is None:
            return error_response(
                op, ERR_UNKNOWN_OP, f"unknown op {op!r}; see protocol.REQUEST_OPS"
            )
        try:
            return handler(conn, request)
        except UnknownCampaign as exc:
            return error_response(op, ERR_UNKNOWN_CAMPAIGN, str(exc))
        except UnknownMetric as exc:
            return error_response(op, ERR_UNKNOWN_METRIC, str(exc))
        except UnknownJob as exc:
            return error_response(op, ERR_UNKNOWN_JOB, str(exc))
        except (TypeError, ValueError, KeyError, HubFull) as exc:
            return error_response(op, ERR_BAD_REQUEST, str(exc))
        except Exception as exc:  # the server must not die on one request
            return error_response(op, ERR_SERVER, f"{type(exc).__name__}: {exc}")

    @staticmethod
    def _campaign_arg(request: dict[str, Any]) -> str:
        campaign = request.get("campaign")
        if not isinstance(campaign, str):
            raise ValueError("request needs a 'campaign' string")
        return campaign

    def _op_ping(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        return ok_response(
            "ping", version=PROTOCOL_VERSION, campaigns=len(self.hub.names())
        )

    def _op_catalog(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        return ok_response("catalog", **self.hub.catalog())

    def _op_metrics(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        campaign = self._campaign_arg(request)
        return ok_response("metrics", campaign=campaign,
                           metrics=self.hub.metric_names(campaign))

    def _op_query(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        campaign = self._campaign_arg(request)
        metric = request.get("metric")
        if not isinstance(metric, str):
            raise ValueError("query needs a 'metric' string")
        snap = self.hub.series_snapshot(campaign, metric)
        t0 = request.get("t0")
        t1 = request.get("t1")
        last = request.get("last")
        payload = series_to_json(
            snap,
            t0=float(t0) if t0 is not None else None,
            t1=float(t1) if t1 is not None else None,
            points=bool(request.get("points", False)),
            last=int(last) if last is not None else None,
        )
        return ok_response("query", campaign=campaign, **payload)

    def _op_jobs(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        campaign = self._campaign_arg(request)
        member = request.get("member")
        limit = int(request.get("limit", 50))
        rollups = self.hub.job_rollups(campaign, member=member)
        total = len(rollups)
        if limit > 0:
            rollups = rollups[-limit:]
        return ok_response(
            "jobs",
            campaign=campaign,
            finished=total,
            jobs=[self._rollup_to_json(m, r) for m, r in rollups],
        )

    @staticmethod
    def _rollup_to_json(member: str | None, rollup: JobRollup) -> dict[str, Any]:
        return {
            "job_id": rollup.job_id,
            "member": member,
            "app": rollup.app_name,
            "user": rollup.user,
            "nodes": len(rollup.record.node_ids),
            "walltime_s": rollup.record.walltime_seconds,
            "total_mflops": rollup.total_mflops,
            "mflops_per_node": rollup.mflops_per_node,
            "sys_usr_fxu_ratio": rollup.system_user_fxu_ratio,
        }

    def _op_report(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        campaign = self._campaign_arg(request)
        job = request.get("job")
        if not isinstance(job, int):
            raise ValueError("report needs an integer 'job' id")
        member = request.get("member")
        text = self.hub.job_report(campaign, job, member=member)
        return ok_response("report", campaign=campaign, job=job, report=text)

    def _op_alerts(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        campaign = self._campaign_arg(request)
        cursor = int(request.get("since", 0))
        entries, next_cursor = self.hub.alerts_since(campaign, cursor)
        return ok_response(
            "alerts",
            campaign=campaign,
            cursor=next_cursor,
            alerts=[
                {"member": member, **alert_to_json(alert)}
                for member, alert in entries
            ],
        )

    def _op_subscribe(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        campaign = request.get("campaign", "*")
        if not isinstance(campaign, str):
            raise ValueError("'campaign' must be a string (or omitted for all)")
        if campaign != "*":
            self.hub.handle(campaign)  # validate now, not at push time
        conn.subscriptions.add(campaign)
        return ok_response(
            "subscribe", campaign=campaign, subscriptions=sorted(conn.subscriptions)
        )

    def _op_unsubscribe(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        campaign = request.get("campaign", "*")
        conn.subscriptions.discard(campaign)
        return ok_response(
            "unsubscribe", campaign=campaign, subscriptions=sorted(conn.subscriptions)
        )

    def _op_stats(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        return ok_response(
            "stats",
            connections_open=len(self._connections),
            connections_total=self.connections_total,
            requests_served=self.requests_served,
            errors_returned=self.errors_returned,
            pushes_sent=self.pushes_sent,
            pushes_dropped=sum(c.pushes_dropped for c in self._connections),
            campaigns=len(self.hub.names()),
            campaigns_evicted=self.hub.campaigns_evicted,
        )

    def _op_shutdown(self, conn: _Connection, request: dict[str, Any]) -> dict[str, Any]:
        # Dispatch is synchronous, so the ack is queued before the
        # event wakes serve_until_shutdown; writers drain on close.
        self.shutdown_requested.set()
        return ok_response("shutdown", stopping=True)
