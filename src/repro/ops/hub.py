"""The shared online metric store behind the ops service.

A :class:`CampaignHub` holds the live state of *many* campaigns at once
— serial studies, sharded replays, and fleets — each as one or more
:class:`~repro.telemetry.service.TelemetryService` instances fed from
recorded or live bus events.  Everything the query API serves comes out
of the hub:

* **bounded memory** — hub stores use the ring capacity and the
  ``max_series`` cap (:mod:`repro.telemetry.store`), and the hub itself
  holds at most ``max_campaigns`` campaigns, evicting the oldest
  *finished* one when a new registration would overflow (a running
  campaign is never evicted; registration fails instead);
* **snapshot isolation** — every read path hands out immutable
  :class:`~repro.telemetry.store.SeriesSnapshot` views, so a query
  handler that awaits mid-computation still reports one consistent
  instant;
* **federation** — fleet campaigns expose the merged namespace of
  :mod:`repro.ops.federate`: ``fleet.<member>.<metric>`` per member
  plus ``fleet.<metric>`` rollups.

The hub is deliberately synchronous and single-threaded: all mutation
happens on the event loop thread (the ingest layer marshals events from
campaign worker threads), which is what makes the isolation story
simple and the ``hub state == replay()`` determinism testable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.ops.federate import (
    FLEET_PREFIX,
    federate_series,
    federated_names,
    parse_fleet_metric,
)
from repro.ops.report import job_critical_path, render_performance_report
from repro.telemetry.bus import TOPIC_SPAN
from repro.telemetry.rules import Alert
from repro.telemetry.service import TelemetryService
from repro.telemetry.store import MetricStore, SeriesSnapshot, StoreSnapshot
from repro.tracing.span import CAT_JOB, CAT_JOB_PHASE, CAT_JOB_STATE

#: Span categories retained for per-job report attribution; everything
#: else (collector passes, sim events, switch/fs detail) is dropped at
#: the door so hub memory scales with jobs, not with simulator events.
JOB_SPAN_CATEGORIES = frozenset({CAT_JOB, CAT_JOB_STATE, CAT_JOB_PHASE})

#: Default cap on concurrently held campaigns.
DEFAULT_MAX_CAMPAIGNS = 8


class HubError(Exception):
    """Base class; the server maps subclasses onto protocol errors."""


class UnknownCampaign(HubError):
    pass


class UnknownMetric(HubError):
    pass


class UnknownJob(HubError):
    pass


class HubFull(HubError):
    pass


#: Listener signature: ``(campaign, member, alert)``; member is None for
#: single-machine campaigns.
AlertListener = Callable[[str, "str | None", Alert], None]


@dataclass
class CampaignHandle:
    """One campaign's live state inside the hub."""

    name: str
    kind: str  # "single" | "fleet"
    #: Fleet member names; empty for single-machine campaigns.
    members: tuple[str, ...]
    #: Telemetry per member (key None = the single-machine service).
    services: dict[str | None, TelemetryService]
    #: Per-member node counts (federation weights for per-node rates).
    node_weights: dict[str, int] = field(default_factory=dict)
    #: Job-category spans per member, for report attribution.
    spans: dict[str | None, list] = field(default_factory=dict)
    #: Feed-order alert log as ``(member, alert)`` pairs.
    alert_log: list[tuple[str | None, Alert]] = field(default_factory=list)
    status: str = "running"
    #: Registration order (the hub's eviction clock).
    seq: int = 0
    events_fed: int = 0
    meta: dict[str, Any] = field(default_factory=dict)

    def member_keys(self) -> tuple[str | None, ...]:
        return tuple(self.members) if self.members else (None,)

    def service(self, member: str | None) -> TelemetryService:
        try:
            return self.services[member]
        except KeyError:
            raise UnknownCampaign(
                f"campaign {self.name!r} has no member {member!r}; "
                f"members: {', '.join(self.members) or '(single)'}"
            ) from None

    def intervals_seen(self) -> int:
        return sum(s.intervals_seen for s in self.services.values())

    def jobs_finished(self) -> int:
        return sum(len(s.rollups) for s in self.services.values())


class CampaignHub:
    """Named campaigns, their telemetry, and the reads the API serves."""

    def __init__(
        self,
        *,
        max_campaigns: int = DEFAULT_MAX_CAMPAIGNS,
        store_capacity: int | None = None,
        max_series: int | None = None,
    ) -> None:
        if max_campaigns <= 0:
            raise ValueError(f"max_campaigns must be positive, got {max_campaigns}")
        self.max_campaigns = max_campaigns
        self.store_capacity = store_capacity
        self.max_series = max_series
        self._campaigns: dict[str, CampaignHandle] = {}
        self._seq = 0
        #: Campaigns evicted to make room (count; catalog reports it).
        self.campaigns_evicted = 0
        self._listeners: list[AlertListener] = []

    # ------------------------------------------------------------------
    # Registration and lifecycle
    # ------------------------------------------------------------------
    def _new_service(self) -> TelemetryService:
        store = MetricStore(
            **(
                {"capacity": self.store_capacity}
                if self.store_capacity is not None
                else {}
            ),
            max_series=self.max_series,
        )
        return TelemetryService(store=store)

    def register(
        self,
        name: str,
        *,
        kind: str = "single",
        members: tuple[str, ...] = (),
        node_weights: dict[str, int] | None = None,
        meta: dict[str, Any] | None = None,
    ) -> CampaignHandle:
        """Create a campaign slot (evicting the oldest finished one if
        the hub is at capacity; raises :class:`HubFull` when every held
        campaign is still running)."""
        if kind not in ("single", "fleet"):
            raise ValueError(f"unknown campaign kind {kind!r}")
        if kind == "fleet" and not members:
            raise ValueError("fleet campaigns need member names")
        if name in self._campaigns:
            raise ValueError(f"campaign {name!r} already registered")
        if len(self._campaigns) >= self.max_campaigns:
            finished = [
                h for h in self._campaigns.values() if h.status == "complete"
            ]
            if not finished:
                raise HubFull(
                    f"hub holds {len(self._campaigns)} running campaigns "
                    f"(max_campaigns={self.max_campaigns})"
                )
            oldest = min(finished, key=lambda h: h.seq)
            del self._campaigns[oldest.name]
            self.campaigns_evicted += 1
        self._seq += 1
        keys: tuple[str | None, ...] = tuple(members) if members else (None,)
        handle = CampaignHandle(
            name=name,
            kind=kind,
            members=tuple(members),
            services={k: self._new_service() for k in keys},
            node_weights=dict(node_weights or {}),
            spans={k: [] for k in keys},
            seq=self._seq,
            meta=dict(meta or {}),
        )
        self._campaigns[name] = handle
        return handle

    def complete(self, name: str, meta: dict[str, Any] | None = None) -> None:
        handle = self.handle(name)
        handle.status = "complete"
        if meta:
            handle.meta.update(meta)

    def handle(self, name: str) -> CampaignHandle:
        try:
            return self._campaigns[name]
        except KeyError:
            raise UnknownCampaign(
                f"unknown campaign {name!r}; have: "
                f"{', '.join(sorted(self._campaigns)) or '(none)'}"
            ) from None

    def names(self) -> list[str]:
        return sorted(self._campaigns, key=lambda n: self._campaigns[n].seq)

    def __contains__(self, name: str) -> bool:
        return name in self._campaigns

    # ------------------------------------------------------------------
    # Ingest side
    # ------------------------------------------------------------------
    def feed(
        self, name: str, topic: str, event: Any, *, member: str | None = None
    ) -> None:
        """Apply one recorded/live bus event to a campaign's telemetry.

        New alerts produced by the event are appended to the campaign's
        feed-order alert log and pushed to every registered listener —
        the server's subscription fan-out.
        """
        handle = self.handle(name)
        service = handle.service(member)
        before = len(service.engine.alerts)
        service.bus.publish(topic, event)
        handle.events_fed += 1
        if topic == TOPIC_SPAN:
            span = event.span
            if getattr(span, "category", None) in JOB_SPAN_CATEGORIES:
                handle.spans[member].append(span)
        new = service.engine.alerts[before:]
        for alert in new:
            handle.alert_log.append((member, alert))
            for listener in list(self._listeners):
                listener(name, member, alert)

    def add_alert_listener(self, listener: AlertListener) -> None:
        self._listeners.append(listener)

    def remove_alert_listener(self, listener: AlertListener) -> None:
        if listener in self._listeners:
            self._listeners.remove(listener)

    # ------------------------------------------------------------------
    # Query side (everything returns immutable data)
    # ------------------------------------------------------------------
    def catalog(self) -> dict[str, Any]:
        """JSON-ready overview of everything the hub holds."""
        campaigns = []
        for cname in self.names():
            h = self._campaigns[cname]
            campaigns.append(
                {
                    "name": h.name,
                    "kind": h.kind,
                    "status": h.status,
                    "members": list(h.members),
                    "events_fed": h.events_fed,
                    "intervals_seen": h.intervals_seen(),
                    "jobs_finished": h.jobs_finished(),
                    "alerts_total": len(h.alert_log),
                    "metrics": len(self.metric_names(cname)),
                    "points_dropped": sum(
                        s.store.points_dropped for s in h.services.values()
                    ),
                    "series_evicted": sum(
                        s.store.series_evicted for s in h.services.values()
                    ),
                    "meta": dict(h.meta),
                }
            )
        return {
            "campaigns": campaigns,
            "campaigns_evicted": self.campaigns_evicted,
            "max_campaigns": self.max_campaigns,
        }

    def metric_names(self, name: str) -> list[str]:
        """Every metric name a campaign serves (federated for fleets)."""
        handle = self.handle(name)
        if handle.kind == "single":
            return handle.service(None).store.names()
        metrics = sorted(
            {m for s in handle.services.values() for m in s.store.names()}
        )
        return federated_names(handle.members, metrics)

    def series_snapshot(self, name: str, metric: str) -> SeriesSnapshot:
        """One metric's immutable view, resolving federated names."""
        handle = self.handle(name)
        if handle.kind == "single":
            store = handle.service(None).store
            if metric not in store:
                raise UnknownMetric(
                    f"campaign {name!r} has no metric {metric!r}"
                )
            return store.series(metric).snapshot()
        parsed = parse_fleet_metric(metric, handle.members)
        if parsed is None:
            raise UnknownMetric(
                f"fleet campaign {name!r} serves '{FLEET_PREFIX}…' names, "
                f"not {metric!r} (see the metrics op)"
            )
        member, base = parsed
        if member is not None:
            store = handle.service(member).store
            if base not in store:
                raise UnknownMetric(
                    f"member {member!r} of {name!r} has no metric {base!r}"
                )
            snap = store.series(base).snapshot()
            # Re-label under the federated name so responses are
            # self-describing.
            return SeriesSnapshot(
                name=metric,
                count=snap.count,
                dropped=snap.dropped,
                ewma=snap.ewma,
                min=snap.min,
                max=snap.max,
                quantiles=snap.quantiles,
                times=snap.times,
                values=snap.values,
            )
        per_member = {
            m: (
                handle.service(m).store.series(base).snapshot()
                if base in handle.service(m).store
                else None
            )
            for m in handle.members
        }
        if all(s is None for s in per_member.values()):
            raise UnknownMetric(
                f"no member of {name!r} has a metric {base!r}"
            )
        return federate_series(base, per_member, handle.node_weights)

    def store_snapshot(
        self, name: str, *, member: str | None = None
    ) -> StoreSnapshot:
        return self.handle(name).service(member).store.snapshot()

    def alerts_since(
        self, name: str, cursor: int = 0
    ) -> tuple[list[tuple[str | None, Alert]], int]:
        """Alert log entries from ``cursor`` on, plus the next cursor."""
        log = self.handle(name).alert_log
        start = max(0, int(cursor))
        return list(log[start:]), len(log)

    def job_rollups(self, name: str, *, member: str | None = None) -> list:
        handle = self.handle(name)
        if member is None and handle.kind == "fleet":
            out = []
            for m in handle.members:
                out.extend(
                    (m, r) for r in handle.service(m).rollups.finished
                )
            return out
        return [(member, r) for r in handle.service(member).rollups.finished]

    def job_report(
        self, name: str, job_id: int, *, member: str | None = None
    ) -> str:
        """The rendered performance page for one finished job.

        For fleet campaigns without an explicit member, every member is
        searched (job ids are fleet-unique: members share the routed
        submission stream).
        """
        handle = self.handle(name)
        candidates = (
            [member] if member is not None or handle.kind == "single"
            else list(handle.members)
        )
        for key in candidates:
            service = handle.service(key)
            rollup = service.rollups.get(job_id)
            if rollup is None:
                continue
            path = job_critical_path(handle.spans[key], job_id)
            return render_performance_report(
                rollup,
                service.rollups,
                campaign=name,
                member=key,
                path=path,
            )
        raise UnknownJob(
            f"campaign {name!r} has no finished job {job_id} "
            f"({handle.jobs_finished()} finished)"
        )
