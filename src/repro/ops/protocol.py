"""The ops query protocol: newline-delimited JSON over a stream.

One request per line, one response per line, plus server-push frames
for alert subscriptions.  Chosen for debuggability — ``sp2-ops ask``
and ``nc`` both speak it — and because a line framing keeps the server
loop allocation-free on the happy path.

Frames:

* request  — ``{"op": <name>, ...operands}``
* response — ``{"ok": true, "op": <name>, ...}`` or
  ``{"ok": false, "op": <name>, "error": <code>, "message": <text>}``
* push     — ``{"push": "alert", "campaign": ..., "member": ...,
  "alert": {...}}`` (only after a ``subscribe``)

Error codes are stable strings (``bad-request``, ``unknown-op``,
``unknown-campaign``, ``unknown-metric``, ``unknown-job``,
``server-error``); exit-code mapping for the CLI lives with the CLI.
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
from typing import Any

from repro.telemetry.rules import Alert
from repro.telemetry.store import SeriesSnapshot

PROTOCOL_VERSION = 1

#: Longest accepted request line (a query never needs more).
MAX_LINE_BYTES = 1 << 20

#: Ops the server understands (the ask CLI validates against this).
REQUEST_OPS = (
    "ping",
    "catalog",
    "metrics",
    "query",
    "jobs",
    "report",
    "alerts",
    "subscribe",
    "unsubscribe",
    "stats",
    "shutdown",
)

ERR_BAD_REQUEST = "bad-request"
ERR_UNKNOWN_OP = "unknown-op"
ERR_UNKNOWN_CAMPAIGN = "unknown-campaign"
ERR_UNKNOWN_METRIC = "unknown-metric"
ERR_UNKNOWN_JOB = "unknown-job"
ERR_SERVER = "server-error"


class ProtocolError(Exception):
    """A malformed frame (not valid JSON, not an object, or oversized)."""


def encode_message(obj: dict[str, Any]) -> bytes:
    """One frame: compact JSON + newline."""
    return json.dumps(obj, separators=(",", ":"), sort_keys=True).encode() + b"\n"


def decode_message(line: bytes) -> dict[str, Any]:
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"frame is not valid JSON: {exc}") from None
    if not isinstance(obj, dict):
        raise ProtocolError(f"frame must be a JSON object, got {type(obj).__name__}")
    return obj


async def read_message(reader: asyncio.StreamReader) -> dict[str, Any] | None:
    """Read one frame; ``None`` on a clean EOF."""
    try:
        line = await reader.readline()
    except (ConnectionResetError, asyncio.LimitOverrunError) as exc:
        raise ProtocolError(str(exc)) from None
    if not line:
        return None
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    return decode_message(line)


def ok_response(op: str, **fields: Any) -> dict[str, Any]:
    return {"ok": True, "op": op, **fields}


def error_response(op: str, code: str, message: str) -> dict[str, Any]:
    return {"ok": False, "op": op, "error": code, "message": message}


# ----------------------------------------------------------------------
# Payload shaping
# ----------------------------------------------------------------------

def alert_to_json(alert: Alert) -> dict[str, Any]:
    out = dataclasses.asdict(alert)
    if out.get("span_id") is None:
        out.pop("span_id", None)
    return out


def alert_push(campaign: str, member: str | None, alert: Alert) -> dict[str, Any]:
    return {
        "push": "alert",
        "campaign": campaign,
        "member": member,
        "alert": alert_to_json(alert),
    }


def series_to_json(
    snap: SeriesSnapshot,
    *,
    t0: float | None = None,
    t1: float | None = None,
    points: bool = False,
    last: int | None = None,
) -> dict[str, Any]:
    """One series snapshot as a response payload.

    Summary statistics are always included; the raw window rides along
    only when ``points`` is requested (a thousand subscribed dashboards
    asking for summaries must not each ship the whole ring).  ``dropped``
    is always present — a served window silently missing evicted points
    is exactly the trust gap the drop counters exist to close.
    """
    times, values = snap.window(t0, t1)
    in_window = len(times)
    if last is not None and last > 0:
        times, values = times[-last:], values[-last:]
    out: dict[str, Any] = {
        "metric": snap.name,
        "count": snap.count,
        "dropped": snap.dropped,
        "in_window": in_window,
        "ewma": snap.ewma,
        "min": snap.min,
        "max": snap.max,
        "quantiles": {f"p{int(q * 100)}": v for q, v in sorted(snap.quantiles.items())},
    }
    latest = snap.latest()
    if latest is not None:
        out["last_time"], out["last"] = latest
    if points:
        out["times"] = [float(t) for t in times]
        out["values"] = [float(v) for v in values]
    return out
