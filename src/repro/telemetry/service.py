"""The streaming telemetry service: bus consumers wired together.

One :class:`TelemetryService` subscribes to the campaign's event bus and
maintains, *while the simulation runs*:

* the metric store (:mod:`repro.telemetry.store`) — one point per
  15-minute interval for every metric in :data:`METRIC_CATALOG`;
* the anomaly engine (:mod:`repro.telemetry.rules`) — evaluated on each
  interval as it closes;
* the per-job rollup table (:mod:`repro.telemetry.rollup`) — finalized
  at epilogue time.

The per-sample path is incremental: the service differences each new
:class:`~repro.hpm.collector.SystemSample` against the previous one
(same common-node algebra the batch ``intervals()`` uses) and derives
the interval's rates once, so the online layer costs O(nodes) per
sample regardless of campaign length.

``replay`` rebuilds a service from recorded samples and job records —
the offline path ``sp2-ops`` uses on an already-run dataset, and the
determinism check (online == replay) in the integration tests.
"""

from __future__ import annotations

from typing import Iterable

from repro.hpm.collector import SystemSample, sample_delta
from repro.hpm.derived import DerivedRates, workload_rates
from repro.pbs.job import JobRecord
from repro.telemetry.bus import (
    TOPIC_COLLECTOR_GAP,
    TOPIC_FAULT,
    TOPIC_JOB_END,
    TOPIC_JOB_KILLED,
    TOPIC_JOB_START,
    TOPIC_SAMPLE,
    TOPIC_SIM_TRUNCATED,
    TOPIC_SPAN,
    CollectorGap,
    EventBus,
    FaultInjected,
    JobEnded,
    JobKilled,
    JobStarted,
    SampleTaken,
    SimTruncated,
    SpanFinished,
)
from repro.telemetry.rollup import RollupTable
from repro.telemetry.rules import Alert, AnomalyEngine, Observation
from repro.telemetry.store import MetricStore

#: The live metric catalog (name → what the value is, per interval).
METRIC_CATALOG: dict[str, str] = {
    "gflops.system": "whole-machine Gflops over the interval",
    "mflops.node": "per-node Mflops over the interval",
    "fxu.sys_user_ratio": "system-mode / user-mode FXU instruction ratio (§6)",
    "fxu.user_mips": "user-mode FXU Mips per node (activity floor input)",
    "fpu.ratio": "FPU0:FPU1 instruction ratio (§5 healthy ≈1.7)",
    "tlb.miss_rate": "TLB misses, millions/s per node",
    "dcache.miss_rate": "D-cache misses, millions/s per node",
    "dma.mb_per_node": "DMA traffic, MB/s per node (§5 message passing)",
    "cycles.user_fraction": "fraction of cycles spent in user mode",
    "nodes.reporting": "nodes that answered both samples of the interval",
    "jobs.active": "jobs between prologue and epilogue at sample time",
}


class TelemetryService:
    """Online observability for one campaign."""

    def __init__(
        self,
        *,
        bus: EventBus | None = None,
        store: MetricStore | None = None,
        engine: AnomalyEngine | None = None,
        rollups: RollupTable | None = None,
        tracer=None,
    ) -> None:
        self.bus = bus if bus is not None else EventBus()
        self.store = store if store is not None else MetricStore()
        self.engine = engine if engine is not None else AnomalyEngine()
        self.rollups = rollups if rollups is not None else RollupTable()
        # When a campaign traces, alerts carry the id of the collector
        # span they fired inside (the drill-down handle, see
        # docs/TRACING.md); the engine reads the tracer's current span.
        if tracer is not None and self.engine.tracer is None:
            self.engine.tracer = tracer
        self._prev_sample: SystemSample | None = None
        self.samples_seen = 0
        self.intervals_seen = 0
        #: Tracing spans republished on the bus, counted by category.
        self.spans_seen = 0
        #: Job id → root span id for finished traced jobs.
        self.job_span_ids: dict[int, str] = {}
        #: ``sim.truncated`` notices (a non-empty list means the
        #: campaign stopped on an event budget, not the horizon).
        self.truncations: list[SimTruncated] = []
        #: Fault-injection events seen (0 on a healthy campaign).
        self.faults_seen = 0
        #: Jobs killed by node failures (includes requeued attempts).
        self.jobs_killed_seen = 0
        #: Collector cron passes lost to dropouts.
        self.collector_gaps_seen = 0
        self.bus.subscribe(TOPIC_SAMPLE, self._on_sample)
        self.bus.subscribe(TOPIC_JOB_START, self.rollups.on_start)
        self.bus.subscribe(TOPIC_JOB_END, self._on_job_end)
        self.bus.subscribe(TOPIC_SPAN, self._on_span)
        self.bus.subscribe(TOPIC_SIM_TRUNCATED, self.truncations.append)
        self.bus.subscribe(TOPIC_FAULT, self._on_fault)
        self.bus.subscribe(TOPIC_JOB_KILLED, self._on_job_killed)
        self.bus.subscribe(TOPIC_COLLECTOR_GAP, self._on_collector_gap)

    # ------------------------------------------------------------------
    # Bus handlers
    # ------------------------------------------------------------------
    def _on_sample(self, ev: SampleTaken) -> None:
        sample = ev.sample
        self.samples_seen += 1
        prev, self._prev_sample = self._prev_sample, sample
        if prev is None:
            return
        iv = sample_delta(prev, sample)
        if iv.seconds <= 0 or iv.n_nodes <= 0:
            return
        rates = workload_rates(iv.totals, iv.seconds, iv.n_nodes)
        self._record_interval(sample.time, rates, iv.n_nodes, sample.missing)

    def _on_job_end(self, ev: JobEnded) -> None:
        self.rollups.on_end(ev)

    def _on_fault(self, ev: FaultInjected) -> None:
        """Every injected fault becomes an operator alert directly (no
        rule evaluation: the injector *knows* something broke, unlike
        the inferred pathologies the rules hunt for)."""
        from repro.faults.events import SEVERITY_BY_KIND

        self.faults_seen += 1
        fe = ev.event
        self.engine.alerts.append(
            Alert(
                time=ev.time,
                rule="fault",
                severity=SEVERITY_BY_KIND.get(fe.kind, "info"),
                key=fe.key,
                message=fe.describe(),
                value=float(fe.value) if fe.value is not None else 0.0,
            )
        )

    def _on_job_killed(self, ev: JobKilled) -> None:
        self.jobs_killed_seen += 1
        self.rollups.on_killed(ev)

    def _on_collector_gap(self, ev: CollectorGap) -> None:
        self.collector_gaps_seen += 1

    def _on_span(self, ev: SpanFinished) -> None:
        self.spans_seen += 1
        span = ev.span
        if span.category == "pbs.job":
            self.job_span_ids[int(span.args.get("job_id", 0))] = span.span_id

    def _record_interval(
        self,
        time: float,
        rates: DerivedRates,
        nodes_reporting: int,
        missing: tuple[int, ...],
    ) -> None:
        self.intervals_seen += 1
        s = self.store
        s.append("gflops.system", time, rates.gflops_system())
        s.append("mflops.node", time, rates.mflops_total)
        s.append("fxu.sys_user_ratio", time, rates.system_user_fxu_ratio)
        s.append("fxu.user_mips", time, rates.mips_fxu_total)
        if rates.mips_fp_unit1 > 0:
            s.append("fpu.ratio", time, rates.fpu_ratio)
        s.append("tlb.miss_rate", time, rates.tlb_miss_rate)
        s.append("dcache.miss_rate", time, rates.dcache_miss_rate)
        s.append("dma.mb_per_node", time, rates.dma_bytes_per_s / 1e6)
        s.append("cycles.user_fraction", time, rates.user_cycle_fraction)
        s.append("nodes.reporting", time, float(nodes_reporting))
        s.append("jobs.active", time, float(len(self.rollups.active)))
        self.engine.observe(
            Observation(
                time=time,
                rates=rates,
                nodes_reporting=nodes_reporting,
                missing=missing,
            )
        )

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    @property
    def alerts(self) -> list[Alert]:
        return self.engine.alerts

    def alert_counts(self) -> dict[str, int]:
        return self.engine.counts_by_rule()

    def summary(self) -> dict:
        """JSON-ready rollup of the telemetry side of a campaign.

        Fault keys appear only when fault injection actually fired, so
        healthy-campaign summaries stay byte-identical to earlier
        releases (the golden files pin them).
        """
        out = {
            "samples_seen": self.samples_seen,
            "intervals_seen": self.intervals_seen,
            "jobs_finished": len(self.rollups),
            "jobs_active": len(self.rollups.active),
            "alerts_total": len(self.engine.alerts),
            "alerts_by_rule": self.alert_counts(),
            "alerts_suppressed": self.engine.suppressed,
            "spans_seen": self.spans_seen,
            "truncated": len(self.truncations) > 0,
            # Ring evictions across every metric series.  0 is a
            # statement ("every served window is complete"), not noise —
            # silent drops undermine trust in the telemetry feed.
            "points_dropped": self.store.points_dropped,
        }
        if self.faults_seen:
            out["faults_seen"] = self.faults_seen
            out["jobs_killed_seen"] = self.jobs_killed_seen
            out["collector_gaps_seen"] = self.collector_gaps_seen
        return out

    # ------------------------------------------------------------------
    # Offline replay
    # ------------------------------------------------------------------
    @classmethod
    def replay(
        cls,
        samples: Iterable[SystemSample],
        records: Iterable[JobRecord] = (),
        *,
        spans: Iterable = (),  # repro.tracing.span.Span (kept untyped: no cycle)
        truncations: Iterable[SimTruncated] = (),
        faults: Iterable = (),  # repro.faults.events.FaultEvent (kept untyped)
    ) -> "TelemetryService":
        """Rebuild the live view from recorded samples and job records.

        Job starts are synthesized from the records' start times (only
        finished jobs leave records, so ``jobs.active`` can undercount
        near the horizon relative to the live view); everything the rules
        and metric derivations consume is fed in time order exactly as
        the live bus would have delivered it, so replayed alerts match
        online alerts — the determinism property the integration tests
        assert.

        ``spans`` (recorded :class:`~repro.tracing.span.Span` objects)
        and ``truncations`` let callers that *do* hold the tracing side
        of a finished campaign — the sharded runner's merge — carry it
        into the replayed view; they are republished after the sample
        stream (offline replay cannot interleave them exactly as the
        live bus did, but the counters and job→span index match).

        ``faults`` (recorded ``FaultEvent`` objects, e.g. a merged
        ``FaultLog``'s events) are interleaved with the sample stream by
        time, so the replayed alert list carries the same fault alerts
        the live service produced.
        """
        service = cls()
        for topic, event in replay_events(
            samples,
            records,
            spans=spans,
            truncations=truncations,
            faults=faults,
        ):
            service.bus.publish(topic, event)
        return service


def replay_events(
    samples: Iterable[SystemSample],
    records: Iterable[JobRecord] = (),
    *,
    spans: Iterable = (),
    truncations: Iterable[SimTruncated] = (),
    faults: Iterable = (),
) -> Iterable[tuple[str, object]]:
    """The canonical replay ordering, as ``(topic, event)`` pairs.

    This is the single definition of how a recorded campaign becomes an
    event stream again: faults, job ends and job starts are interleaved
    with the sample stream by time, then trailing records, spans and
    truncation notices follow.  :meth:`TelemetryService.replay` publishes
    these pairs on a fresh bus; the ops hub (:mod:`repro.ops.ingest`)
    feeds the identical stream into its own per-campaign services, which
    is what makes ``hub state == replay()`` a theorem rather than a
    hope (the federation determinism tests assert it).
    """
    span_list = list(spans)
    truncation_list = list(truncations)
    fault_list = sorted(faults, key=lambda f: f.time)
    recs = list(records)
    starts = sorted(recs, key=lambda r: (r.start_time, r.job_id))
    ends = sorted(recs, key=lambda r: (r.end_time, r.job_id))
    si = ei = fi = 0
    for sample in samples:
        while fi < len(fault_list) and fault_list[fi].time <= sample.time:
            fe = fault_list[fi]
            yield TOPIC_FAULT, FaultInjected(time=fe.time, event=fe)
            fi += 1
        while ei < len(ends) and ends[ei].end_time <= sample.time:
            rec = ends[ei]
            yield TOPIC_JOB_END, JobEnded(time=rec.end_time, record=rec)
            ei += 1
        while si < len(starts) and starts[si].start_time <= sample.time:
            rec = starts[si]
            yield (
                TOPIC_JOB_START,
                JobStarted(
                    time=rec.start_time,
                    job_id=rec.job_id,
                    user=rec.user,
                    app_name=rec.app_name,
                    nodes_requested=rec.nodes_requested,
                    node_ids=rec.node_ids,
                ),
            )
            si += 1
        yield TOPIC_SAMPLE, SampleTaken(time=sample.time, sample=sample)
    for fe in fault_list[fi:]:
        yield TOPIC_FAULT, FaultInjected(time=fe.time, event=fe)
    for rec in ends[ei:]:
        yield TOPIC_JOB_END, JobEnded(time=rec.end_time, record=rec)
    for span in span_list:
        yield TOPIC_SPAN, SpanFinished(time=span.end or span.start, span=span)
    for notice in truncation_list:
        yield TOPIC_SIM_TRUNCATED, notice
