"""Compact in-memory time-series store for the live telemetry feed.

Design constraints, in order:

* **O(1) append** — the store sits on the 15-minute sample path of a
  campaign that may be scaled far past the paper's 144 nodes;
* **bounded memory** — raw points live in a fixed-capacity ring per
  metric (columnar ``float64`` time/value arrays), so a nine-month
  campaign cannot grow the operator view without bound;
* **whole-campaign aggregates survive eviction** — EWMA, running
  min/max, and P² quantile sketches (:mod:`repro.telemetry.sketch`) are
  updated on append and never forget, so ``sp2-ops query`` reports
  campaign-wide statistics even after the ring has wrapped.

Windowed queries return chronological ``(times, values)`` arrays over
whatever raw points the ring still holds.

The long-running service layer (:mod:`repro.ops`) adds two demands the
one-shot CLI never had, both served here:

* **snapshot isolation** — a query handler that awaits between reads
  must see one consistent view of a series even while the ingest side
  keeps appending.  :meth:`MetricSeries.snapshot` freezes the ring and
  every aggregate into an immutable :class:`SeriesSnapshot`;
  :meth:`MetricStore.snapshot` does it store-wide.
* **bounded series count** — fleet federation multiplies the namespace
  (``fleet.<member>.<metric>``), so a hub store accepts an optional
  ``max_series`` cap and evicts the least-recently-appended series,
  counting what it dropped (``series_evicted``) so served catalogs can
  say so instead of silently forgetting.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.telemetry.sketch import QuantileSet

#: Default raw-point retention per metric (≈43 days of 15-minute samples).
DEFAULT_CAPACITY = 4096

#: Default EWMA smoothing factor (≈ a 2.5-hour memory at 15-minute cadence).
DEFAULT_EWMA_ALPHA = 0.1


@dataclass(frozen=True)
class MetricSummary:
    """Campaign-wide aggregate view of one metric."""

    name: str
    count: int
    dropped: int
    last: float
    ewma: float
    min: float
    max: float
    quantiles: dict[float, float]


@dataclass(frozen=True)
class SeriesSnapshot:
    """An immutable point-in-time view of one :class:`MetricSeries`.

    Holds chronological copies of the retained ring plus every streaming
    aggregate, so a reader can mix raw-window math and campaign-wide
    statistics without ever observing a concurrent append in between —
    the isolation contract the asyncio query handlers rely on.
    """

    name: str
    count: int
    dropped: int
    ewma: float
    min: float
    max: float
    quantiles: dict[float, float]
    times: np.ndarray = field(repr=False)
    values: np.ndarray = field(repr=False)

    @property
    def size(self) -> int:
        return len(self.times)

    def latest(self) -> tuple[float, float] | None:
        if not len(self.times):
            return None
        return float(self.times[-1]), float(self.values[-1])

    def window(
        self, t0: float | None = None, t1: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chronological ``(times, values)`` with ``t0 <= t < t1``."""
        times, values = self.times, self.values
        if t0 is not None or t1 is not None:
            mask = np.ones(len(times), dtype=bool)
            if t0 is not None:
                mask &= times >= t0
            if t1 is not None:
                mask &= times < t1
            times, values = times[mask], values[mask]
        return times, values

    def summary(self) -> MetricSummary:
        last = self.latest()
        return MetricSummary(
            name=self.name,
            count=self.count,
            dropped=self.dropped,
            last=last[1] if last else 0.0,
            ewma=self.ewma,
            min=self.min if self.count else 0.0,
            max=self.max if self.count else 0.0,
            quantiles=dict(self.quantiles),
        )


@dataclass(frozen=True)
class StoreSnapshot:
    """Immutable view of a whole store (or a named subset of it)."""

    series: dict[str, SeriesSnapshot]
    #: Series the store evicted over its lifetime (count, not names).
    series_evicted: int = 0

    def names(self) -> list[str]:
        return sorted(self.series)

    def __contains__(self, name: str) -> bool:
        return name in self.series

    def __getitem__(self, name: str) -> SeriesSnapshot:
        return self.series[name]

    @property
    def points_dropped(self) -> int:
        """Raw points evicted by the rings, summed over retained series."""
        return sum(s.dropped for s in self.series.values())


class MetricSeries:
    """One metric's ring of raw points plus its streaming aggregators."""

    def __init__(
        self,
        name: str,
        *,
        capacity: int = DEFAULT_CAPACITY,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        quantiles: tuple[float, ...] = (0.5, 0.9, 0.99),
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if not 0.0 < ewma_alpha <= 1.0:
            raise ValueError(f"ewma_alpha must be in (0, 1], got {ewma_alpha}")
        self.name = name
        self.capacity = capacity
        self._times = np.empty(capacity, dtype=np.float64)
        self._values = np.empty(capacity, dtype=np.float64)
        self._head = 0  # next write slot
        self.count = 0  # total points ever appended
        self._alpha = ewma_alpha
        self.ewma = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self.sketch = QuantileSet(quantiles)
        self._last_time = float("-inf")

    # ------------------------------------------------------------------
    # Append path
    # ------------------------------------------------------------------
    def append(self, time: float, value: float) -> None:
        """O(1): write one point and fold it into the aggregates."""
        if time < self._last_time:
            raise ValueError(
                f"{self.name}: appends must be time-ordered "
                f"({time} < {self._last_time})"
            )
        self._last_time = time
        self._times[self._head] = time
        self._values[self._head] = value
        self._head = (self._head + 1) % self.capacity
        v = float(value)
        self.ewma = v if self.count == 0 else self._alpha * v + (1 - self._alpha) * self.ewma
        if v < self.min:
            self.min = v
        if v > self.max:
            self.max = v
        self.sketch.add(v)
        self.count += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Raw points currently retained."""
        return min(self.count, self.capacity)

    @property
    def dropped(self) -> int:
        """Raw points evicted by the ring."""
        return self.count - self.size

    def _ordered(self) -> tuple[np.ndarray, np.ndarray]:
        n = self.size
        if n < self.capacity:
            return self._times[:n], self._values[:n]
        idx = np.concatenate([np.arange(self._head, self.capacity), np.arange(self._head)])
        return self._times[idx], self._values[idx]

    def window(
        self, t0: float | None = None, t1: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Chronological ``(times, values)`` with ``t0 <= t < t1``."""
        times, values = self._ordered()
        if t0 is not None or t1 is not None:
            mask = np.ones(len(times), dtype=bool)
            if t0 is not None:
                mask &= times >= t0
            if t1 is not None:
                mask &= times < t1
            times, values = times[mask], values[mask]
        return times.copy(), values.copy()

    def latest(self) -> tuple[float, float] | None:
        if self.count == 0:
            return None
        i = (self._head - 1) % self.capacity
        return float(self._times[i]), float(self._values[i])

    def summary(self) -> MetricSummary:
        last = self.latest()
        return MetricSummary(
            name=self.name,
            count=self.count,
            dropped=self.dropped,
            last=last[1] if last else 0.0,
            ewma=self.ewma,
            min=self.min if self.count else 0.0,
            max=self.max if self.count else 0.0,
            quantiles=self.sketch.values(),
        )

    def snapshot(self) -> SeriesSnapshot:
        """Freeze the ring and every aggregate into an immutable view."""
        times, values = self._ordered()
        return SeriesSnapshot(
            name=self.name,
            count=self.count,
            dropped=self.dropped,
            ewma=self.ewma,
            min=self.min if self.count else 0.0,
            max=self.max if self.count else 0.0,
            quantiles=self.sketch.values(),
            times=times.copy(),
            values=values.copy(),
        )


class MetricStore:
    """Named metric series, created lazily on first append.

    ``max_series`` bounds how many series the store retains; creating
    one past the cap evicts the least-recently-appended series (and
    counts it in :attr:`series_evicted`).  The default (``None``) keeps
    every series forever — the single-campaign behaviour the golden
    files pin.
    """

    def __init__(
        self,
        *,
        capacity: int = DEFAULT_CAPACITY,
        ewma_alpha: float = DEFAULT_EWMA_ALPHA,
        max_series: int | None = None,
    ) -> None:
        if max_series is not None and max_series <= 0:
            raise ValueError(f"max_series must be positive, got {max_series}")
        self.capacity = capacity
        self.ewma_alpha = ewma_alpha
        self.max_series = max_series
        self._series: dict[str, MetricSeries] = {}
        #: Monotone append clock driving least-recently-appended eviction.
        self._clock = 0
        self._touched: dict[str, int] = {}
        #: Series evicted by the ``max_series`` cap over the lifetime.
        self.series_evicted = 0

    def series(self, name: str) -> MetricSeries:
        s = self._series.get(name)
        if s is None:
            if self.max_series is not None and len(self._series) >= self.max_series:
                coldest = min(self._touched, key=self._touched.__getitem__)
                del self._series[coldest]
                del self._touched[coldest]
                self.series_evicted += 1
            s = MetricSeries(name, capacity=self.capacity, ewma_alpha=self.ewma_alpha)
            self._series[name] = s
            self._touched[name] = self._clock
        return s

    def append(self, name: str, time: float, value: float) -> None:
        self.series(name).append(time, value)
        self._clock += 1
        self._touched[name] = self._clock

    def names(self) -> list[str]:
        return sorted(self._series)

    def snapshot(self, names: list[str] | None = None) -> StoreSnapshot:
        """Immutable view of every series (or just ``names``, skipping
        unknown ones) — one consistent read for handlers that await."""
        picked = self._series if names is None else {
            n: self._series[n] for n in names if n in self._series
        }
        return StoreSnapshot(
            series={n: s.snapshot() for n, s in picked.items()},
            series_evicted=self.series_evicted,
        )

    @property
    def points_dropped(self) -> int:
        """Raw points evicted by the rings, summed over retained series."""
        return sum(s.dropped for s in self._series.values())

    def __contains__(self, name: str) -> bool:
        return name in self._series

    def window(
        self, name: str, t0: float | None = None, t1: float | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        if name not in self._series:
            return np.empty(0), np.empty(0)
        return self._series[name].window(t0, t1)

    def latest(self, name: str) -> tuple[float, float] | None:
        s = self._series.get(name)
        return s.latest() if s else None

    def summary(self, name: str) -> MetricSummary:
        if name not in self._series:
            raise KeyError(f"unknown metric {name!r}; have {self.names()}")
        return self._series[name].summary()
