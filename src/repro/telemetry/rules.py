"""Rule-based online anomaly detection.

The paper's central operational lesson (§6) is that a severe pathology —
paging so heavy that *system-mode* FXU counts exceeded user-mode — sat
in nine months of logs before anyone looked.  This engine evaluates that
class of rule on every 15-minute interval as it is measured, so the
operator view (`sp2-ops`) surfaces the pathology the day it starts:

* **paging** — system/user FXU ratio above threshold while the machine
  is actually doing user work (an activity floor keeps idle intervals,
  where a tiny user count inflates the ratio, from false-firing);
* **fpu-imbalance** — FPU0:FPU1 instruction ratio outside the healthy
  band around the §5 measurement of ≈1.7;
* **tlb-spike** — TLB miss rate far above its own EWMA baseline;
* **node-gap** — a node daemon stopped answering the collector (and the
  matching recovery notice).

Every fired alert is deduplicated per ``(rule, key)`` with a cooldown so
a multi-hour paging episode produces a handful of alerts, not hundreds.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable, Iterator

from repro.hpm.derived import DerivedRates

#: Alert severities, mildest first.
SEVERITIES = ("info", "warning", "critical")


@dataclass(frozen=True)
class Observation:
    """One 15-minute interval as seen by the rules."""

    time: float
    rates: DerivedRates
    nodes_reporting: int
    #: Node ids unreachable at the sample closing this interval.
    missing: tuple[int, ...] = ()


@dataclass(frozen=True)
class Alert:
    """One fired anomaly.

    ``span_id`` references the tracing span the alert fired inside (the
    15-minute collector pass, when the campaign ran with a tracer) —
    the drill-down handle into the recorded trace.  Excluded from
    equality so online-vs-replay comparisons hold whether or not a
    tracer was attached.
    """

    time: float
    rule: str
    severity: str
    key: str
    message: str
    value: float
    span_id: str | None = field(default=None, compare=False)


class Rule:
    """Base class: subclasses yield ``(key, message, value)`` findings."""

    name: str = "rule"
    severity: str = "warning"
    #: Seconds during which a repeat finding for the same key is deduped.
    cooldown: float = 0.0

    def evaluate(self, obs: Observation) -> Iterator[tuple[str, str, float]]:
        raise NotImplementedError


class PagingRule(Rule):
    """§6's signature: system-mode FXU work rivals user-mode.

    ``min_user_fxu_mips`` is the activity floor — on an idle interval the
    user denominator is tiny and the ratio meaningless, which is exactly
    the trap a naive reading of the paper's ratio would fall into.
    """

    name = "paging"
    severity = "critical"

    def __init__(
        self,
        *,
        ratio_threshold: float = 0.5,
        min_user_fxu_mips: float = 1.0,
        cooldown: float = 2 * 3600.0,
    ) -> None:
        self.ratio_threshold = ratio_threshold
        self.min_user_fxu_mips = min_user_fxu_mips
        self.cooldown = cooldown

    def evaluate(self, obs: Observation) -> Iterator[tuple[str, str, float]]:
        r = obs.rates
        if (
            r.mips_fxu_total >= self.min_user_fxu_mips
            and r.system_user_fxu_ratio > self.ratio_threshold
        ):
            yield (
                "system",
                f"system/user FXU ratio {r.system_user_fxu_ratio:.2f} "
                f"(user FXU {r.mips_fxu_total:.1f} Mips/node) — likely paging",
                r.system_user_fxu_ratio,
            )


class FpuImbalanceRule(Rule):
    """FPU0:FPU1 dispatch ratio outside the healthy band (§5: ≈1.7)."""

    name = "fpu-imbalance"
    severity = "warning"

    def __init__(
        self,
        *,
        low: float = 1.0,
        high: float = 4.0,
        min_fp_mips: float = 0.5,
        cooldown: float = 4 * 3600.0,
    ) -> None:
        self.low = low
        self.high = high
        self.min_fp_mips = min_fp_mips
        self.cooldown = cooldown

    def evaluate(self, obs: Observation) -> Iterator[tuple[str, str, float]]:
        r = obs.rates
        if r.mips_fp_total < self.min_fp_mips or r.mips_fp_unit1 <= 0:
            return
        ratio = r.fpu_ratio
        if not self.low <= ratio <= self.high:
            yield (
                "system",
                f"FPU0:FPU1 ratio {ratio:.2f} outside [{self.low:.1f}, "
                f"{self.high:.1f}] (healthy ≈1.7)",
                ratio,
            )


class TlbSpikeRule(Rule):
    """TLB miss rate far above its own streaming baseline.

    Keeps a private EWMA so the rule is self-contained: the baseline is
    what *this rule* has seen, updated after each evaluation, with a
    warm-up count before it may fire.  Idle intervals (user FXU below
    the activity floor) neither update nor fire — otherwise an overnight
    lull drags the baseline to zero and the morning ramp-up reads as a
    spike.
    """

    name = "tlb-spike"
    severity = "warning"

    def __init__(
        self,
        *,
        factor: float = 3.0,
        floor: float = 0.01,
        min_user_fxu_mips: float = 1.0,
        alpha: float = 0.1,
        warmup: int = 16,
        cooldown: float = 2 * 3600.0,
    ) -> None:
        self.factor = factor
        self.floor = floor
        self.min_user_fxu_mips = min_user_fxu_mips
        self.alpha = alpha
        self.warmup = warmup
        self.cooldown = cooldown
        self._ewma = 0.0
        self._seen = 0

    def evaluate(self, obs: Observation) -> Iterator[tuple[str, str, float]]:
        if obs.rates.mips_fxu_total < self.min_user_fxu_mips:
            return
        rate = obs.rates.tlb_miss_rate
        if (
            self._seen >= self.warmup
            and rate > self.floor
            and rate > self.factor * self._ewma
        ):
            yield (
                "system",
                f"TLB miss rate {rate:.3f} M/s is {rate / max(self._ewma, 1e-12):.1f}× "
                f"the EWMA baseline {self._ewma:.3f}",
                rate,
            )
        self._ewma = rate if self._seen == 0 else (
            self.alpha * rate + (1 - self.alpha) * self._ewma
        )
        self._seen += 1


class NodeGapRule(Rule):
    """Daemon-unreachable gaps: alert on down transitions, note recoveries.

    Transition-based (keeps the previously-missing set), so a week-long
    outage is one alert, not one per sample.
    """

    name = "node-gap"
    severity = "warning"

    def __init__(self, *, cooldown: float = 0.0) -> None:
        self.cooldown = cooldown
        self._down: set[int] = set()

    def evaluate(self, obs: Observation) -> Iterator[tuple[str, str, float]]:
        now_missing = set(obs.missing)
        for node in sorted(now_missing - self._down):
            yield (f"node-{node}", f"node {node} daemon unreachable", float(node))
        for node in sorted(self._down - now_missing):
            yield (f"node-{node}-up", f"node {node} daemon reachable again", float(node))
        self._down = now_missing


def default_rules() -> list[Rule]:
    """The stock rule set — one per paper pathology."""
    return [PagingRule(), FpuImbalanceRule(), TlbSpikeRule(), NodeGapRule()]


@dataclass
class AnomalyEngine:
    """Evaluates rules per observation with (rule, key) dedup/cooldown."""

    rules: list[Rule] = field(default_factory=default_rules)
    alerts: list[Alert] = field(default_factory=list)
    #: Findings swallowed by the cooldown window.
    suppressed: int = 0
    #: Optional span tracer; fired alerts reference its current span.
    tracer: Any = None
    _last_fire: dict[tuple[str, str], float] = field(default_factory=dict)

    def observe(self, obs: Observation) -> list[Alert]:
        """Run every rule; returns (and records) the alerts that fired."""
        span_id = None
        if self.tracer is not None and self.tracer.current is not None:
            span_id = self.tracer.current.span_id
        fired: list[Alert] = []
        for rule in self.rules:
            for key, message, value in rule.evaluate(obs):
                dedup = (rule.name, key)
                last = self._last_fire.get(dedup)
                if last is not None and obs.time - last < rule.cooldown:
                    self.suppressed += 1
                    continue
                self._last_fire[dedup] = obs.time
                alert = Alert(
                    time=obs.time,
                    rule=rule.name,
                    severity=rule.severity,
                    key=key,
                    message=message,
                    value=value,
                    span_id=span_id,
                )
                self.alerts.append(alert)
                fired.append(alert)
        return fired

    def counts_by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for a in self.alerts:
            out[a.rule] = out.get(a.rule, 0) + 1
        return out

    def alerts_for(self, rule: str) -> list[Alert]:
        return [a for a in self.alerts if a.rule == rule]


def render_alert(alert: Alert, *, seconds_per_day: float = 86400.0) -> str:
    """One fixed-width operator line for an alert."""
    day, rem = divmod(alert.time, seconds_per_day)
    hh, mm = divmod(int(rem) // 60, 60)
    span = f"  [span {alert.span_id}]" if alert.span_id else ""
    return (
        f"d{int(day):03d} {hh:02d}:{mm:02d}  {alert.severity:<8s} "
        f"{alert.rule:<14s} {alert.key:<12s} {alert.message}{span}"
    )


def render_alerts(alerts: Iterable[Alert]) -> str:
    lines = [render_alert(a) for a in alerts]
    return "\n".join(lines) if lines else "(no alerts)"
