"""Per-job rollups, finalized at epilogue time.

§3's prologue/epilogue scripts produced per-job counter files "for later
processing"; the streaming layer turns the epilogue into the *moment of
finalization*: when PBS publishes a :class:`~repro.telemetry.bus.JobEnded`
event the rollup table freezes that job's derived figures, so the
operator view can rank and filter finished jobs without re-deriving
anything from the raw dataset.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.pbs.job import JobRecord
from repro.telemetry.bus import JobEnded, JobKilled, JobStarted


@dataclass(frozen=True)
class ActiveJob:
    """A job between prologue and epilogue."""

    job_id: int
    user: int
    app_name: str
    nodes_requested: int
    node_ids: tuple[int, ...]
    start_time: float


@dataclass(frozen=True)
class JobRollup:
    """One finished job's frozen operator-facing figures.

    The derived numbers are computed once at finalization (the record
    properties walk every node's delta dict) and cached here; ``record``
    keeps the full accounting row for drill-down.
    """

    record: JobRecord
    finalized_at: float
    total_mflops: float
    mflops_per_node: float
    system_user_fxu_ratio: float
    node_seconds: float

    @property
    def job_id(self) -> int:
        return self.record.job_id

    @property
    def user(self) -> int:
        return self.record.user

    @property
    def app_name(self) -> str:
        return self.record.app_name

    @classmethod
    def from_record(cls, record: JobRecord, *, finalized_at: float) -> "JobRollup":
        return cls(
            record=record,
            finalized_at=finalized_at,
            total_mflops=record.total_mflops,
            mflops_per_node=record.mflops_per_node,
            system_user_fxu_ratio=record.system_user_fxu_ratio,
            node_seconds=record.node_seconds,
        )


@dataclass
class RollupTable:
    """Jobs keyed by id: active between prologue and epilogue, then
    appended (in finalization order) to the finished list."""

    active: dict[int, ActiveJob] = field(default_factory=dict)
    finished: list[JobRollup] = field(default_factory=list)
    _by_id: dict[int, JobRollup] = field(default_factory=dict)

    # ------------------------------------------------------------------
    # Bus handlers
    # ------------------------------------------------------------------
    def on_start(self, ev: JobStarted) -> None:
        self.active[ev.job_id] = ActiveJob(
            job_id=ev.job_id,
            user=ev.user,
            app_name=ev.app_name,
            nodes_requested=ev.nodes_requested,
            node_ids=ev.node_ids,
            start_time=ev.time,
        )

    def on_killed(self, ev: JobKilled) -> None:
        """A node failure killed the job: it never reaches epilogue on
        this attempt, so it just leaves the active table (a requeued
        retry re-enters via a fresh prologue)."""
        self.active.pop(ev.job_id, None)

    def on_end(self, ev: JobEnded) -> JobRollup:
        self.active.pop(ev.record.job_id, None)
        rollup = JobRollup.from_record(ev.record, finalized_at=ev.time)
        self.finished.append(rollup)
        self._by_id[rollup.job_id] = rollup
        return rollup

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def get(self, job_id: int) -> JobRollup | None:
        return self._by_id.get(job_id)

    def finished_between(self, t0: float, t1: float) -> list[JobRollup]:
        """Rollups whose jobs ended in ``[t0, t1)``, finalization order."""
        return [r for r in self.finished if t0 <= r.record.end_time < t1]

    def top_by_mflops(self, n: int, *, t0: float = 0.0, t1: float = float("inf")) -> list[JobRollup]:
        pool = self.finished_between(t0, t1)
        pool.sort(key=lambda r: r.total_mflops, reverse=True)
        return pool[:n]

    def for_user(self, user: int) -> list[JobRollup]:
        return [r for r in self.finished if r.user == user]

    def paging_suspects(self, *, ratio_threshold: float = 0.5) -> list[JobRollup]:
        """Finished jobs bearing the §6 signature."""
        import math

        return [
            r
            for r in self.finished
            if math.isfinite(r.system_user_fxu_ratio)
            and r.system_user_fxu_ratio > ratio_threshold
        ]

    def __len__(self) -> int:
        return len(self.finished)
