"""Streaming telemetry: online metrics, anomaly detection, job rollups.

The batch pipeline (:mod:`repro.analysis`) answers questions *after* a
campaign; this package answers them *during* one.  See
``docs/TELEMETRY.md`` for the architecture and the ``sp2-ops`` CLI
(:mod:`repro.ops_cli`) for the operator view.
"""

from repro.telemetry.bus import (
    TOPIC_JOB_END,
    TOPIC_JOB_START,
    TOPIC_NODE_DOWN,
    TOPIC_NODE_UP,
    TOPIC_SAMPLE,
    EventBus,
    JobEnded,
    JobStarted,
    NodeStateChanged,
    SampleTaken,
)
from repro.telemetry.rollup import JobRollup, RollupTable
from repro.telemetry.rules import (
    Alert,
    AnomalyEngine,
    FpuImbalanceRule,
    NodeGapRule,
    Observation,
    PagingRule,
    Rule,
    TlbSpikeRule,
    default_rules,
    render_alert,
    render_alerts,
)
from repro.telemetry.service import METRIC_CATALOG, TelemetryService
from repro.telemetry.sketch import P2Quantile, QuantileSet
from repro.telemetry.store import (
    MetricSeries,
    MetricStore,
    MetricSummary,
    SeriesSnapshot,
    StoreSnapshot,
)

__all__ = [
    "Alert",
    "AnomalyEngine",
    "EventBus",
    "FpuImbalanceRule",
    "JobEnded",
    "JobRollup",
    "JobStarted",
    "METRIC_CATALOG",
    "MetricSeries",
    "MetricStore",
    "MetricSummary",
    "NodeGapRule",
    "NodeStateChanged",
    "Observation",
    "P2Quantile",
    "PagingRule",
    "QuantileSet",
    "RollupTable",
    "Rule",
    "SampleTaken",
    "SeriesSnapshot",
    "StoreSnapshot",
    "TelemetryService",
    "TlbSpikeRule",
    "TOPIC_JOB_END",
    "TOPIC_JOB_START",
    "TOPIC_NODE_DOWN",
    "TOPIC_NODE_UP",
    "TOPIC_SAMPLE",
    "default_rules",
    "render_alert",
    "render_alerts",
]
