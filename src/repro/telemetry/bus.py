"""The telemetry event bus.

The original RS2HPM pipeline wrote files for *later* analysis (§3); the
streaming layer replaces the filesystem hand-off with an in-process
publish/subscribe bus.  Producers are the measurement side — the
15-minute collector cron, the PBS server's prologue/epilogue, and the
collector's node-reachability bookkeeping — and the consumers are the
online side: the metric store, the anomaly engine, and the per-job
rollup table (see :mod:`repro.telemetry.service`).

Delivery is synchronous and in subscription order on the simulation
clock, so a campaign replay produces a deterministic event stream — the
property the alert-reproducibility tests rely on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.pbs.job import JobRecord

# ----------------------------------------------------------------------
# Topics
# ----------------------------------------------------------------------

#: One 15-minute collector pass (payload: :class:`SampleTaken`).
TOPIC_SAMPLE = "hpm.sample"
#: A job entered execution — prologue time (payload: :class:`JobStarted`).
TOPIC_JOB_START = "pbs.job_start"
#: A job finished — epilogue time (payload: :class:`JobEnded`).
TOPIC_JOB_END = "pbs.job_end"
#: A node daemon stopped answering (payload: :class:`NodeStateChanged`).
TOPIC_NODE_DOWN = "node.down"
#: A node daemon answered again (payload: :class:`NodeStateChanged`).
TOPIC_NODE_UP = "node.up"
#: A tracing span finished (payload: :class:`SpanFinished`).
TOPIC_SPAN = "trace.span"
#: ``Simulator.run(max_events=...)`` stopped with events still queued
#: (payload: :class:`SimTruncated`).
TOPIC_SIM_TRUNCATED = "sim.truncated"
#: A fault-injection event fired (payload: :class:`FaultInjected`).
TOPIC_FAULT = "fault.injected"
#: A running job was killed by a node failure (payload: :class:`JobKilled`).
TOPIC_JOB_KILLED = "pbs.job_killed"
#: A collector cron pass was lost (payload: :class:`CollectorGap`).
TOPIC_COLLECTOR_GAP = "hpm.gap"

TOPICS = (
    TOPIC_SAMPLE,
    TOPIC_JOB_START,
    TOPIC_JOB_END,
    TOPIC_NODE_DOWN,
    TOPIC_NODE_UP,
    TOPIC_SPAN,
    TOPIC_SIM_TRUNCATED,
    TOPIC_FAULT,
    TOPIC_JOB_KILLED,
    TOPIC_COLLECTOR_GAP,
)


# ----------------------------------------------------------------------
# Event payloads
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class SampleTaken:
    """One collector pass; ``sample`` is the stored ``SystemSample``."""

    time: float
    sample: Any  # repro.hpm.collector.SystemSample (kept untyped: no cycle)


@dataclass(frozen=True)
class JobStarted:
    """Prologue-time job facts."""

    time: float
    job_id: int
    user: int
    app_name: str
    nodes_requested: int
    node_ids: tuple[int, ...]


@dataclass(frozen=True)
class JobEnded:
    """Epilogue-time job facts; ``record`` is the accounting row."""

    time: float
    record: JobRecord


@dataclass(frozen=True)
class NodeStateChanged:
    """A node's daemon became unreachable (or reachable again)."""

    time: float
    node_id: int
    up: bool


@dataclass(frozen=True)
class SpanFinished:
    """A tracing span closed; ``span`` is the ``repro.tracing`` Span
    (kept untyped: tracing must stay importable without telemetry)."""

    time: float
    span: Any


@dataclass(frozen=True)
class SimTruncated:
    """An event-budgeted run stopped short of draining its queue."""

    time: float
    events_processed: int
    #: Time of the next still-queued event (the work left behind).
    next_event_time: float | None


@dataclass(frozen=True)
class FaultInjected:
    """A scheduled fault fired; ``event`` is the
    ``repro.faults.events.FaultEvent`` (kept untyped: no cycle)."""

    time: float
    event: Any


@dataclass(frozen=True)
class JobKilled:
    """A node failure took down a running job."""

    time: float
    job_id: int
    user: int
    app_name: str
    #: The failed node that triggered the kill.
    node_id: int
    #: True when the job went back to the queue (retries left).
    requeued: bool


@dataclass(frozen=True)
class CollectorGap:
    """A collector cron pass was dropped (no sample stored)."""

    time: float
    #: Cumulative dropped passes as of this gap.
    passes_dropped: int = 0


# ----------------------------------------------------------------------
# The bus
# ----------------------------------------------------------------------

@dataclass
class Subscription:
    """Handle returned by :meth:`EventBus.subscribe`."""

    topic: str
    handler: Callable[[Any], None]
    active: bool = True

    def cancel(self) -> None:
        self.active = False


@dataclass
class EventBus:
    """Synchronous topic-keyed publish/subscribe."""

    _subs: dict[str, list[Subscription]] = field(default_factory=dict)
    #: Events published per topic (monitoring the monitor).
    published: dict[str, int] = field(default_factory=dict)

    def subscribe(self, topic: str, handler: Callable[[Any], None]) -> Subscription:
        sub = Subscription(topic=topic, handler=handler)
        self._subs.setdefault(topic, []).append(sub)
        return sub

    def publish(self, topic: str, event: Any) -> int:
        """Deliver ``event`` to every live subscriber; returns how many."""
        self.published[topic] = self.published.get(topic, 0) + 1
        delivered = 0
        for sub in self._subs.get(topic, ()):
            if sub.active:
                sub.handler(event)
                delivered += 1
        return delivered

    def subscriber_count(self, topic: str) -> int:
        return sum(1 for s in self._subs.get(topic, ()) if s.active)
