"""Streaming quantile estimation — the P² algorithm.

A 270-day campaign takes ~26k samples per metric; the telemetry store
deliberately keeps only a bounded ring of raw points, so order
statistics ("what is the p99 TLB miss rate?") must be maintained
*online*.  The P² (piecewise-parabolic) algorithm of Jain & Chlamtac
(CACM 1985) tracks one quantile with five markers — O(1) memory and
O(1) update — and is accurate to a few percent on smooth distributions,
which is all an operations dashboard needs.
"""

from __future__ import annotations

import numpy as np


class P2Quantile:
    """One streaming quantile estimate (Jain & Chlamtac's P²).

    Five markers track (min, p/2, p, (1+p)/2, max); marker heights are
    adjusted with a piecewise-parabolic fit as observations arrive.
    Until five observations exist the estimate is the exact empirical
    quantile of what has been seen.
    """

    def __init__(self, p: float) -> None:
        if not 0.0 < p < 1.0:
            raise ValueError(f"quantile must be in (0, 1), got {p}")
        self.p = p
        self.count = 0
        self._q: list[float] = []  # marker heights
        self._n: list[float] = []  # marker positions (1-based)
        self._np: list[float] = []  # desired positions
        self._dn = (0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0)

    def add(self, x: float) -> None:
        """Fold one observation into the estimate."""
        self.count += 1
        if self.count <= 5:
            self._q.append(float(x))
            self._q.sort()
            if self.count == 5:
                p = self.p
                self._n = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._np = [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0]
            return

        q, n = self._q, self._n
        # Locate the cell containing x, extending the extremes in place.
        if x < q[0]:
            q[0] = float(x)
            k = 0
        elif x >= q[4]:
            q[4] = float(x)
            k = 3
        else:
            k = 0
            while k < 3 and not (q[k] <= x < q[k + 1]):
                k += 1
        for i in range(k + 1, 5):
            n[i] += 1.0
        for i in range(5):
            self._np[i] += self._dn[i]

        # Adjust the three interior markers toward their desired spots.
        for i in (1, 2, 3):
            d = self._np[i] - n[i]
            if (d >= 1.0 and n[i + 1] - n[i] > 1.0) or (
                d <= -1.0 and n[i - 1] - n[i] < -1.0
            ):
                step = 1.0 if d >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if q[i - 1] < candidate < q[i + 1]:
                    q[i] = candidate
                else:
                    q[i] = self._linear(i, step)
                n[i] += step

    def _parabolic(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        return q[i] + d / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1])
        )

    def _linear(self, i: int, d: float) -> float:
        q, n = self._q, self._n
        j = i + int(d)
        return q[i] + d * (q[j] - q[i]) / (n[j] - n[i])

    def value(self) -> float:
        """The current quantile estimate (0.0 before any observation)."""
        if self.count == 0:
            return 0.0
        if self.count <= 5:
            return float(np.percentile(self._q, self.p * 100.0))
        return self._q[2]


class QuantileSet:
    """Several independent P² trackers fed by one stream."""

    def __init__(self, quantiles: tuple[float, ...] = (0.5, 0.9, 0.99)) -> None:
        self._trackers = {p: P2Quantile(p) for p in quantiles}

    def add(self, x: float) -> None:
        for t in self._trackers.values():
            t.add(x)

    def values(self) -> dict[float, float]:
        return {p: t.value() for p, t in self._trackers.items()}

    def __getitem__(self, p: float) -> float:
        return self._trackers[p].value()
