"""Expand a :class:`~repro.sweep.spec.SweepSpec` into an ordered cell plan.

One **cell** = one fully-resolved campaign configuration: the spec's
base settings plus one value per axis.  The planner

* expands the axis cross-product in declaration order (first axis
  varies slowest, like nested loops);
* fingerprints each cell — sha256 over the resolved
  :class:`~repro.core.study.StudyConfig` repr plus the shard plan and
  repeat definition, the same hashing scheme the shard checkpoints use
  (:mod:`repro.parallel.checkpoint`) — so a cell's identity is its
  *resolved* experiment, not its spelling;
* refuses duplicate fingerprints with a one-line error (two spellings
  that normalize to the same config, e.g. ``fault_profile: [none, null]``,
  would silently halve the sweep);
* orders the baseline cell first — every contender's reference exists
  before the contender runs, so differential reports can stream.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Mapping

from repro.core.study import StudyConfig
from repro.parallel.checkpoint import sha256_fingerprint
from repro.sweep.spec import AXES, SweepSpec, resolve_config

#: Bump when the cell document layout changes incompatibly; stale cache
#: entries are then recomputed instead of mis-read.
CELL_VERSION = 1


def format_value(value: Any) -> str:
    """Canonical short rendering of an axis value (cell names, CLIs)."""
    if value is None:
        return "none"
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        return f"{value:g}"
    return str(value)


def cell_name(overrides: Mapping[str, Any]) -> str:
    """``axis=value,axis=value`` in axis order; ``base`` when no axes."""
    if not overrides:
        return "base"
    return ",".join(f"{k}={format_value(v)}" for k, v in overrides.items())


def cell_fingerprint(config: StudyConfig, spec: SweepSpec) -> str:
    """Identity of one cell's resolved experiment.

    Worker counts are deliberately absent: merged output is invariant to
    them (docs/PARALLEL.md), so a cache entry computed on 4 workers
    serves a 1-worker re-run.  Shard width and the repeat definition
    *do* shape the output, so they are part of the identity.
    """
    repeat_token = spec.repeat.token() if spec.repeat is not None else "none"
    payload = (
        f"sweep-cell-v{CELL_VERSION}|{config!r}"
        f"|shard_days={spec.shard_days}|repeat={repeat_token}"
    )
    return sha256_fingerprint(payload)


@dataclass(frozen=True)
class Cell:
    """One point of the sweep's cross-product."""

    index: int
    name: str
    #: This cell's axis assignment (axis order preserved).
    overrides: dict[str, Any]
    #: Base settings + overrides, flat.
    settings: dict[str, Any]
    #: The resolved frozen campaign configuration.
    config: StudyConfig
    fingerprint: str
    is_baseline: bool


@dataclass(frozen=True)
class SweepPlan:
    """The ordered, deduplicated, fingerprinted cell list."""

    spec: SweepSpec
    cells: tuple[Cell, ...]

    @property
    def n_cells(self) -> int:
        return len(self.cells)

    @property
    def baseline(self) -> Cell | None:
        for cell in self.cells:
            if cell.is_baseline:
                return cell
        return None

    def cell(self, name: str) -> Cell:
        for c in self.cells:
            if c.name == name:
                return c
        raise KeyError(
            f"no cell named {name!r}; cells: "
            f"{', '.join(c.name for c in self.cells)}"
        )


def _only_matches(value: Any, allowed: Any) -> bool:
    """One ``--only`` constraint: a scalar compares, a list is a
    membership test (an empty list came from conflicting constraints
    and matches nothing)."""
    if isinstance(allowed, (list, tuple)):
        return value in allowed
    return value == allowed


def plan_sweep(spec: SweepSpec, *, only: Mapping[str, Any] | None = None) -> SweepPlan:
    """Expand, fingerprint, dedupe-check and order the sweep's cells.

    ``only`` filters the grid to cells matching every given
    ``axis: value`` constraint (the CLI's ``--only``); a value may also
    be a list of allowed values (membership test), and an *empty* list
    matches nothing.  Filtering is applied *after* baseline
    identification, so a filtered plan may legitimately contain zero
    cells — the CLI maps that to exit 1, not a crash.
    """
    if only:
        for axis in only:
            if axis not in spec.axes:
                raise ValueError(
                    f"--only names {axis!r}, which is not a swept axis "
                    f"(axes: {', '.join(spec.axes) or 'none'})"
                )

    baseline_overrides = spec.baseline_overrides()
    axis_names = list(spec.axes)
    combos = itertools.product(*(spec.axes[a] for a in axis_names))

    cells: list[Cell] = []
    by_fingerprint: dict[str, str] = {}
    for combo in combos:
        overrides = dict(zip(axis_names, combo))
        settings = {**spec.base, **overrides}
        config = resolve_config(settings)
        fp = cell_fingerprint(config, spec)
        name = cell_name(overrides)
        if fp in by_fingerprint:
            raise ValueError(
                f"cells {by_fingerprint[fp]!r} and {name!r} resolve to the "
                "same configuration — distinct axis values must stay "
                "distinct after normalization"
            )
        by_fingerprint[fp] = name
        cells.append(
            Cell(
                index=0,  # assigned after ordering
                name=name,
                overrides=overrides,
                settings=settings,
                config=config,
                fingerprint=fp,
                is_baseline=overrides == baseline_overrides,
            )
        )

    # Baseline-before-contender: the reference cell leads, grid order
    # is preserved for the rest.
    cells.sort(key=lambda c: (not c.is_baseline,))
    if only:
        cells = [
            c
            for c in cells
            if all(_only_matches(c.overrides.get(a), v) for a, v in only.items())
        ]
    cells = [
        Cell(
            index=i,
            name=c.name,
            overrides=c.overrides,
            settings=c.settings,
            config=c.config,
            fingerprint=c.fingerprint,
            is_baseline=c.is_baseline,
        )
        for i, c in enumerate(cells)
    ]
    return SweepPlan(spec=spec, cells=tuple(cells))


def parse_selector(spec: SweepSpec, text: str) -> dict[str, Any]:
    """``axis=value[,axis=value...]`` → an axis assignment.

    Values are matched against each axis's *declared* values by their
    canonical rendering (:func:`format_value`), so ``tlb_entries=1024``
    and ``fault_profile=none`` mean exactly the spec's objects — no
    ad-hoc type coercion.
    """
    out: dict[str, Any] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ValueError(
                f"bad selector {part!r}: expected axis=value"
            )
        axis, _, raw = part.partition("=")
        axis = axis.strip()
        raw = raw.strip()
        if axis not in spec.axes:
            raise ValueError(
                f"selector names {axis!r}, which is not a swept axis "
                f"(axes: {', '.join(spec.axes) or 'none'})"
            )
        for value in spec.axes[axis]:
            if format_value(value) == raw:
                out[axis] = value
                break
        else:
            raise ValueError(
                f"selector {axis}={raw!r} matches none of that axis's "
                f"values: {', '.join(format_value(v) for v in spec.axes[axis])}"
            )
    if not out:
        raise ValueError(f"empty selector {text!r}")
    return out


def select_cell(plan: SweepPlan, text: str) -> Cell:
    """Resolve a cell reference for ``compare``/``report``.

    ``baseline`` names the baseline cell; a full cell name matches
    directly; a (partial) ``axis=value`` selector fills unassigned axes
    from the baseline assignment.
    """
    if text == "baseline":
        cell = plan.baseline
        if cell is None:
            raise ValueError("this plan has no baseline cell (filtered out?)")
        return cell
    for c in plan.cells:
        if c.name == text:
            return c
    selector = parse_selector(plan.spec, text)
    overrides = {**plan.spec.baseline_overrides(), **selector}
    name = cell_name(overrides)
    try:
        return plan.cell(name)
    except KeyError:
        raise ValueError(
            f"selector {text!r} resolves to cell {name!r}, which is not in "
            "the plan"
        ) from None


def axis_help() -> str:
    """One line per known axis (the CLI's ``--list-axes``)."""
    lines = []
    for name, axis in AXES.items():
        choice = (
            f" ({'/'.join(str(c) for c in axis.choices)})" if axis.choices else ""
        )
        lines.append(f"  {name:<26s} {axis.kind:<6s} {axis.doc}{choice}")
    return "\n".join(lines)
