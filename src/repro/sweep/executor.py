"""Run a :class:`~repro.sweep.planner.SweepPlan`'s cells.

Each cell runs through the machinery the rest of the repo already
trusts: the serial study, the sharded runner (when the spec asks for a
shard plan or the caller supplies workers), or — when the spec carries a
``repeat`` block — the :mod:`repro.stats` Repeater, so every cell's
metrics arrive as ``mean ± hw [n, rule]`` estimates instead of single
realizations.

A cell with **no axes applied** produces *exactly* the dataset summary
``sp2-study --json`` writes at the same settings — the degeneracy
contract the acceptance tests pin byte-for-byte.

Results are cached per cell (:mod:`repro.sweep.cache`) keyed by the
resolved-config fingerprint, so re-running an edited spec executes only
the changed cells.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.analysis.export import dataset_summary
from repro.stats.campaign import ConfigRepeatSpec, make_config_batch_runner
from repro.stats.metrics import collect_metrics
from repro.stats.repeater import Repeater
from repro.stats.stopping import RSERule
from repro.sweep.cache import load_cell, save_cell
from repro.sweep.planner import CELL_VERSION, Cell, SweepPlan
from repro.sweep.spec import SweepSpec


@dataclass
class CellResult:
    """One executed (or cache-served) cell."""

    cell: Cell
    #: The JSON-safe cell document (what the cache stores).
    document: dict[str, Any]
    #: True when the document came from the cell cache, not a campaign.
    cached: bool

    @property
    def summary(self) -> dict[str, Any] | None:
        """The single-run dataset summary (None for repeat cells)."""
        return self.document.get("summary")

    @property
    def metrics(self) -> dict[str, float]:
        """Flat point values (across-seed means for repeat cells)."""
        return self.document.get("metrics") or {}

    @property
    def estimates(self) -> dict[str, dict] | None:
        """Per-metric ``{mean, ci_low, ci_high, n, rule}`` (repeat only)."""
        return self.document.get("estimates")

    @property
    def jobs(self) -> float:
        """Jobs measured across the cell's campaign(s) — zero means the
        cell measured nothing, the CLI's exit-1 condition."""
        if self.document.get("samples"):
            values = self.document["samples"].get("campaign.jobs_accounted", {})
            return float(sum(values.get("values", [])))
        summary = self.summary or {}
        return float(summary.get("campaign", {}).get("jobs_accounted", 0))


@dataclass
class SweepResult:
    """Everything one sweep run produced."""

    plan: SweepPlan
    results: list[CellResult]

    @property
    def executed(self) -> int:
        return sum(1 for r in self.results if not r.cached)

    @property
    def reused(self) -> int:
        return sum(1 for r in self.results if r.cached)

    @property
    def reuse_fraction(self) -> float:
        return self.reused / len(self.results) if self.results else 0.0

    def result(self, name: str) -> CellResult:
        for r in self.results:
            if r.cell.name == name:
                return r
        raise KeyError(f"no cell named {name!r}")

    def zero_job_cells(self) -> list[str]:
        return [r.cell.name for r in self.results if r.jobs == 0]

    def document(self) -> dict[str, Any]:
        """The saveable whole-sweep JSON document (``run --out``)."""
        return {
            "spec": self.plan.spec.to_dict(),
            "sweep": {
                "name": self.plan.spec.name,
                "cells": [r.document for r in self.results],
                "executed": self.executed,
                "reused": self.reused,
            },
        }


# ----------------------------------------------------------------------
# Cell execution
# ----------------------------------------------------------------------
def _run_single(cell: Cell, spec: SweepSpec, workers: int) -> dict[str, Any]:
    if workers > 1 or spec.shard_days is not None:
        from repro.parallel.runner import run_parallel_study

        dataset = run_parallel_study(
            cell.config, workers=max(workers, 1), shard_days=spec.shard_days
        )
    else:
        from repro.core.study import WorkloadStudy

        dataset = WorkloadStudy(cell.config).run()
    return {
        "summary": dataset_summary(dataset),
        "metrics": collect_metrics(dataset),
        "repeat": None,
        "estimates": None,
        "samples": None,
    }


def _run_repeat(cell: Cell, spec: SweepSpec, workers: int) -> dict[str, Any]:
    repeat = spec.repeat
    assert repeat is not None
    unit = ConfigRepeatSpec(config=cell.config, shard_days=spec.shard_days)
    rules = [RSERule(repeat.target_rse)] if repeat.target_rse is not None else []
    repeater = Repeater(
        run_one=unit.run_one,
        rules=rules,
        max_repeats=repeat.max_repeats,
        batch_size=repeat.batch,
        target_metric=repeat.metric,
        confidence=repeat.confidence,
        batch_runner=make_config_batch_runner(unit, workers=workers),
    )
    result = repeater.run(seed0=cell.config.seed, seeds=repeat.seeds)
    estimates: dict[str, dict] = {}
    metrics: dict[str, float] = {}
    for metric in result.metrics():
        est = result.estimate(metric)
        payload = est.as_dict()
        payload["rule"] = result.stopped.rule
        estimates[metric] = payload
        metrics[metric] = est.mean
    return {
        "summary": None,
        "metrics": metrics,
        "repeat": {
            "n": result.n,
            "rule": result.stopped.rule,
            "detail": result.stopped.detail,
            "seeds": result.seeds,
            "target_metric": result.target_metric,
            "confidence": result.confidence,
        },
        "estimates": estimates,
        "samples": {
            metric: {
                "seeds": result.metric_seeds[metric],
                "values": result.samples[metric],
            }
            for metric in result.metrics()
        },
    }


def execute_cell(cell: Cell, spec: SweepSpec, *, workers: int = 1) -> dict[str, Any]:
    """Run one cell's campaign(s) and build its cache document."""
    body = (
        _run_repeat(cell, spec, workers)
        if spec.repeat is not None
        else _run_single(cell, spec, workers)
    )
    return {
        "version": CELL_VERSION,
        "fingerprint": cell.fingerprint,
        "name": cell.name,
        "overrides": dict(cell.overrides),
        "settings": dict(cell.settings),
        **body,
    }


#: Progress hook: (cell, cached) after each cell resolves.
ProgressFn = Callable[[Cell, bool], None]


def run_sweep(
    plan: SweepPlan,
    *,
    cache_dir: str | None = None,
    workers: int = 1,
    force: bool = False,
    progress: ProgressFn | None = None,
) -> SweepResult:
    """Execute every planned cell, serving unchanged ones from cache.

    ``force`` recomputes (and re-caches) every cell; ``workers`` spreads
    each cell's shards or repeat seeds across processes — never changing
    output, only wall time.
    """
    results: list[CellResult] = []
    for cell in plan.cells:
        document = None
        cached = False
        if cache_dir is not None and not force:
            document = load_cell(cache_dir, cell.fingerprint)
            cached = document is not None
        if document is None:
            document = execute_cell(cell, plan.spec, workers=workers)
            if cache_dir is not None:
                save_cell(cache_dir, document)
        if progress is not None:
            progress(cell, cached)
        results.append(CellResult(cell=cell, document=document, cached=cached))
    return SweepResult(plan=plan, results=results)
