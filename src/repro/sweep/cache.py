"""Per-cell result cache keyed by configuration fingerprint.

The executor persists every finished cell as
``<dir>/cell-<fingerprint>.json``; re-running a sweep then re-executes
only cells whose fingerprints changed — edit one axis value and the
other cells are served from disk.  An *unchanged* spec re-runs with
100% cache reuse and zero campaigns executed (the CI ``sweep-smoke``
job asserts exactly this).

The trust model mirrors :mod:`repro.parallel.checkpoint`: any defect —
missing file, truncated JSON, version or fingerprint mismatch — reads
as a cache miss and the cell is recomputed, which is always safe.
Writes are atomic (temp file + ``os.replace``) so an interrupted sweep
can never leave a torn cell behind.
"""

from __future__ import annotations

import json
import os
from typing import Any

from repro.sweep.planner import CELL_VERSION


def cell_path(cache_dir: str, fingerprint: str) -> str:
    return os.path.join(cache_dir, f"cell-{fingerprint}.json")


def save_cell(cache_dir: str, document: dict[str, Any]) -> str:
    """Atomically persist one finished cell; returns the file path."""
    os.makedirs(cache_dir, exist_ok=True)
    path = cell_path(cache_dir, document["fingerprint"])
    tmp = f"{path}.tmp.{os.getpid()}"
    with open(tmp, "w") as fh:
        json.dump(document, fh, indent=2)
        fh.write("\n")
    os.replace(tmp, path)
    return path


def load_cell(cache_dir: str, fingerprint: str) -> dict[str, Any] | None:
    """The cached document for one cell, or ``None`` when absent/stale."""
    path = cell_path(cache_dir, fingerprint)
    try:
        with open(path) as fh:
            document = json.load(fh)
    except (OSError, json.JSONDecodeError):
        return None
    if not isinstance(document, dict):
        return None
    if document.get("version") != CELL_VERSION:
        return None
    if document.get("fingerprint") != fingerprint:
        return None
    return document
