"""Declarative scenario-sweep specification.

The paper's §6 findings are one-off measurements on one configuration;
a :class:`SweepSpec` turns them into *what-if studies*: a base campaign
plus named **axes** (TLB entries, memory size, fault profile, scheduler
policy, switch latency, ...) whose cross-product the planner expands
into cells — "would a 1024-entry TLB have fixed §6's miss rates?" is a
two-line spec, not a shell loop.

Specs are plain data.  They load from Python dicts, JSON files, or a
small YAML subset (:func:`parse_simple_yaml` — mappings, lists, scalars
and comments; no anchors, no multi-line strings, no new dependencies),
and every mistake fails at load time with a one-line ``ValueError``
naming the offending key or value — never a traceback from inside the
simulator days later.

Every axis maps onto a knob :class:`~repro.core.study.StudyConfig`
already exposes programmatically; :func:`resolve_config` is the single
place a flat settings mapping becomes the frozen config object the
runner, checkpoint fingerprints and cell cache all key on.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import Any, Mapping

from repro.core.study import SCHEDULER_POLICIES, StudyConfig
from repro.faults.profile import PROFILES, FaultProfile
from repro.power2.batch import resolve_backend
from repro.power2.config import POWER2_590, SwitchConfig
from repro.stats.metrics import DEFAULT_TARGET_METRIC

MB = 1024 * 1024
KB = 1024

#: Accrual backends the CLI exposes (resolve_backend accepts these).
ACCRUAL_BACKENDS = ("auto", "scalar", "vectorized", "numpy", "python")


# ----------------------------------------------------------------------
# Axis registry
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class AxisDef:
    """One sweepable knob: its value type and optional choice set."""

    name: str
    kind: str  # "int" | "float" | "str"
    doc: str
    choices: tuple | None = None
    allow_none: bool = False
    #: Numeric axes demand positive values; the seed axis relaxes this
    #: to non-negative (seed 0 is the paper's default campaign).
    positive: bool = True

    def check(self, value: Any, *, where: str) -> None:
        """Raise a one-line ``ValueError`` unless ``value`` fits."""
        if value is None:
            if self.allow_none:
                return
            raise ValueError(f"{where} {self.name!r} must not be null")
        # bool is an int subclass; a bare `true` for n_nodes is a typo,
        # not a node count.
        if self.kind == "int" and (isinstance(value, bool) or not isinstance(value, int)):
            raise ValueError(
                f"{where} {self.name!r} value {value!r} is not an integer"
            )
        if self.kind == "float" and (
            isinstance(value, bool) or not isinstance(value, (int, float))
        ):
            raise ValueError(
                f"{where} {self.name!r} value {value!r} is not a number"
            )
        if self.kind == "str" and not isinstance(value, str):
            raise ValueError(
                f"{where} {self.name!r} value {value!r} is not a string"
            )
        if self.choices is not None and value not in self.choices:
            raise ValueError(
                f"{where} {self.name!r} value {value!r} is not one of: "
                f"{', '.join(str(c) for c in self.choices)}"
            )
        if self.kind in ("int", "float") and not isinstance(value, bool):
            if self.positive and value <= 0:
                raise ValueError(
                    f"{where} {self.name!r} value {value!r} must be positive"
                )
            if not self.positive and value < 0:
                raise ValueError(
                    f"{where} {self.name!r} value {value!r} must not be negative"
                )


#: Every knob a sweep may fix (``base``) or vary (``axes``).  Each one
#: maps to a :class:`StudyConfig` field in :func:`resolve_config`.
AXES: dict[str, AxisDef] = {
    a.name: a
    for a in (
        AxisDef("seed", "int", "campaign seed", positive=False),
        AxisDef("n_days", "int", "campaign length in days"),
        AxisDef("n_nodes", "int", "cluster size"),
        AxisDef("n_users", "int", "user population size"),
        AxisDef("demand_mean", "float", "demand model's mean target load (workload mix)"),
        AxisDef(
            "fault_profile",
            "str",
            "named fault-injection profile",
            choices=tuple(sorted(PROFILES)),
            allow_none=True,
        ),
        AxisDef(
            "accrual_backend",
            "str",
            "counter-accrual backend",
            choices=ACCRUAL_BACKENDS,
        ),
        AxisDef(
            "scheduler_policy",
            "str",
            "PBS queue policy",
            choices=tuple(SCHEDULER_POLICIES),
        ),
        AxisDef("scheduler_wide_threshold", "int", "drain threshold in nodes"),
        AxisDef("tlb_entries", "int", "TLB entries per node"),
        AxisDef("page_kb", "int", "page size in kB"),
        AxisDef("memory_mb", "int", "per-node memory in MB"),
        AxisDef("switch_latency_us", "float", "switch latency in microseconds"),
        AxisDef("switch_bandwidth_mb_s", "float", "switch bandwidth in MB/s"),
    )
}

#: Seed is special-cased: the repeat layer varies it, so a spec with a
#: ``repeat`` block may not also sweep or fix it to conflicting ends —
#: see :class:`SweepSpec` validation.
_SEED_AXIS = "seed"


def _unknown_key_error(kind: str, name: str) -> ValueError:
    return ValueError(
        f"unknown {kind} {name!r}; known axes: {', '.join(sorted(AXES))}"
    )


# ----------------------------------------------------------------------
# Repeat block
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class RepeatSpec:
    """Per-cell statistical repetition (docs/STATS.md semantics).

    Either a fixed ``seeds`` list (every cell runs exactly these seeds;
    deterministic, the CI fixture mode) or adaptive stopping from each
    cell's base seed with a ``target_rse`` rule and ``max_repeats``
    cutoff.  Every cell then carries ``mean ± hw [n, rule]`` estimates
    for every metric, and ``compare`` can flag non-overlapping CIs.
    """

    seeds: tuple[int, ...] | None = None
    target_rse: float | None = None
    batch: int = 4
    max_repeats: int = 32
    metric: str = DEFAULT_TARGET_METRIC
    confidence: float = 0.95

    def __post_init__(self) -> None:
        if self.seeds is not None:
            if isinstance(self.seeds, list):
                object.__setattr__(self, "seeds", tuple(self.seeds))
            if not self.seeds:
                raise ValueError("repeat.seeds must not be empty")
            for s in self.seeds:
                if isinstance(s, bool) or not isinstance(s, int):
                    raise ValueError(f"repeat.seeds entry {s!r} is not an integer")
            if len(set(self.seeds)) != len(self.seeds):
                raise ValueError(f"repeat.seeds lists duplicate seeds: {list(self.seeds)}")
        if self.target_rse is not None and not 0 < self.target_rse < 1:
            raise ValueError(
                f"repeat.target_rse must be in (0, 1), got {self.target_rse}"
            )
        if self.seeds is None and self.target_rse is None:
            raise ValueError("repeat needs either a seeds list or a target_rse rule")
        if self.seeds is not None and self.target_rse is not None:
            raise ValueError(
                "repeat cannot set both a seeds list and a target_rse rule — pick one"
            )
        if self.batch < 1 or self.max_repeats < 1:
            raise ValueError("repeat.batch and repeat.max_repeats must be positive")
        if not 0 < self.confidence < 1:
            raise ValueError(
                f"repeat.confidence must be in (0, 1), got {self.confidence}"
            )

    def as_dict(self) -> dict:
        out: dict = {}
        if self.seeds is not None:
            out["seeds"] = list(self.seeds)
        if self.target_rse is not None:
            out["target_rse"] = self.target_rse
        out.update(
            batch=self.batch,
            max_repeats=self.max_repeats,
            metric=self.metric,
            confidence=self.confidence,
        )
        return out

    def token(self) -> str:
        """Canonical string for cell fingerprints."""
        return json.dumps(self.as_dict(), sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping) -> "RepeatSpec":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown repeat keys: {', '.join(sorted(unknown))}")
        payload = dict(data)
        if "seeds" in payload and payload["seeds"] is not None:
            if not isinstance(payload["seeds"], (list, tuple)):
                raise ValueError(
                    f"repeat.seeds must be a list, got {payload['seeds']!r}"
                )
            payload["seeds"] = tuple(payload["seeds"])
        return cls(**payload)


# ----------------------------------------------------------------------
# The sweep spec
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepSpec:
    """A base campaign plus axes whose cross-product defines the sweep."""

    name: str = "sweep"
    #: Fixed settings every cell shares (keys from :data:`AXES`).
    base: dict[str, Any] = field(default_factory=dict)
    #: ``{axis: [values...]}`` — cells are the cross-product, in the
    #: declaration order of the axes (first axis varies slowest).
    axes: dict[str, list] = field(default_factory=dict)
    #: Which cell is the baseline: a (partial) assignment of axis
    #: values; unassigned axes default to their first listed value.
    baseline: dict[str, Any] = field(default_factory=dict)
    #: Optional per-cell statistical repetition.
    repeat: RepeatSpec | None = None
    #: Day-range shard width for within-cell sharded execution; part of
    #: the experiment definition (shard plans shape fault schedules), so
    #: it participates in cell fingerprints — worker counts do not.
    shard_days: int | None = None

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("sweep name cannot be empty")
        for key, value in self.base.items():
            if key not in AXES:
                raise _unknown_key_error("base setting", key)
            AXES[key].check(value, where="base setting")
        for axis, values in self.axes.items():
            if axis not in AXES:
                raise _unknown_key_error("axis", axis)
            if axis in self.base:
                raise ValueError(
                    f"axis {axis!r} also appears as a fixed base setting — "
                    "a swept knob cannot be pinned; remove one"
                )
            if not isinstance(values, (list, tuple)):
                raise ValueError(
                    f"axis {axis!r} must list its values, got {values!r}"
                )
            if len(values) == 0:
                raise ValueError(
                    f"axis {axis!r} has no values — the cross-product is empty"
                )
            seen: list = []
            for value in values:
                AXES[axis].check(value, where="axis")
                if value in seen:
                    raise ValueError(f"axis {axis!r} lists duplicate value {value!r}")
                seen.append(value)
        if self.repeat is not None and _SEED_AXIS in self.axes:
            raise ValueError(
                "axis 'seed' cannot be combined with a repeat block — "
                "the repeat layer already varies the seed"
            )
        for axis, value in self.baseline.items():
            if axis not in self.axes:
                raise ValueError(
                    f"baseline names {axis!r}, which is not a swept axis "
                    f"(axes: {', '.join(self.axes) or 'none'})"
                )
            if value not in self.axes[axis]:
                raise ValueError(
                    f"baseline {axis!r} value {value!r} is not among that "
                    f"axis's values {list(self.axes[axis])}"
                )
        if self.shard_days is not None and self.shard_days <= 0:
            raise ValueError(f"shard_days must be positive, got {self.shard_days}")
        # Settings that only fail at StudyConfig construction (e.g. an
        # accrual backend the registry rejects) fail here instead, with
        # the cell left unnamed because no cells exist yet.
        if "accrual_backend" in self.base:
            resolve_backend(self.base["accrual_backend"])

    # ------------------------------------------------------------------
    @property
    def n_cells(self) -> int:
        n = 1
        for values in self.axes.values():
            n *= len(values)
        return n

    def baseline_overrides(self) -> dict[str, Any]:
        """The baseline cell's full axis assignment."""
        return {
            axis: self.baseline.get(axis, values[0])
            for axis, values in self.axes.items()
        }

    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.base:
            out["base"] = dict(self.base)
        if self.axes:
            out["axes"] = {k: list(v) for k, v in self.axes.items()}
        if self.baseline:
            out["baseline"] = dict(self.baseline)
        if self.repeat is not None:
            out["repeat"] = self.repeat.as_dict()
        if self.shard_days is not None:
            out["shard_days"] = self.shard_days
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "SweepSpec":
        if not isinstance(data, Mapping):
            raise ValueError(f"sweep spec must be a mapping, got {type(data).__name__}")
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown sweep spec keys: {', '.join(sorted(unknown))}")
        payload = dict(data)
        repeat = payload.pop("repeat", None)
        if repeat is not None:
            if not isinstance(repeat, Mapping):
                raise ValueError(f"repeat must be a mapping, got {repeat!r}")
            repeat = RepeatSpec.from_dict(repeat)
        for block in ("base", "axes", "baseline"):
            if block in payload and not isinstance(payload[block], Mapping):
                raise ValueError(
                    f"{block!r} must be a mapping, got {payload[block]!r}"
                )
        return cls(repeat=repeat, **payload)


def load_spec_file(path: str) -> SweepSpec:
    """A :class:`SweepSpec` from a JSON or YAML-subset file."""
    try:
        with open(path) as fh:
            text = fh.read()
    except OSError as exc:
        raise ValueError(f"cannot read sweep spec {path!r}: {exc}") from None
    try:
        data = json.loads(text)
    except json.JSONDecodeError:
        data = parse_simple_yaml(text)
    if not isinstance(data, dict):
        raise ValueError(f"sweep spec {path!r} is not a mapping")
    return SweepSpec.from_dict(data)


# ----------------------------------------------------------------------
# Settings → StudyConfig
# ----------------------------------------------------------------------
def resolve_config(settings: Mapping[str, Any]) -> StudyConfig:
    """The frozen :class:`StudyConfig` for one cell's flat settings.

    This is the normalization point: distinct spellings of the same
    experiment (``fault_profile: none`` vs ``null``) resolve to equal
    configs here, which is exactly what cell fingerprints hash — so the
    planner can refuse accidentally-duplicated cells.
    """
    for key in settings:
        if key not in AXES:
            raise _unknown_key_error("setting", key)

    machine = None
    if any(settings.get(k) is not None for k in ("tlb_entries", "page_kb", "memory_mb")):
        machine = POWER2_590
        tlb = machine.tlb
        if settings.get("tlb_entries") is not None:
            tlb = replace(tlb, entries=int(settings["tlb_entries"]))
        if settings.get("page_kb") is not None:
            tlb = replace(tlb, page_bytes=int(settings["page_kb"]) * KB)
        machine = replace(machine, tlb=tlb)
        if settings.get("memory_mb") is not None:
            machine = replace(machine, memory_bytes=int(settings["memory_mb"]) * MB)

    switch = None
    if any(
        settings.get(k) is not None
        for k in ("switch_latency_us", "switch_bandwidth_mb_s")
    ):
        base = SwitchConfig()
        switch = SwitchConfig(
            latency_seconds=(
                float(settings["switch_latency_us"]) * 1e-6
                if settings.get("switch_latency_us") is not None
                else base.latency_seconds
            ),
            bandwidth_bytes_per_s=(
                float(settings["switch_bandwidth_mb_s"]) * 1e6
                if settings.get("switch_bandwidth_mb_s") is not None
                else base.bandwidth_bytes_per_s
            ),
        )

    profile = None
    if settings.get("fault_profile") is not None:
        profile = FaultProfile.named(settings["fault_profile"])
        if profile.is_null:
            profile = None

    return StudyConfig(
        seed=int(settings.get("seed", 0)),
        n_days=int(settings.get("n_days", 30)),
        n_nodes=int(settings.get("n_nodes", 144)),
        n_users=int(settings.get("n_users", 60)),
        machine_config=machine,
        switch_config=switch,
        demand_mean=(
            float(settings["demand_mean"])
            if settings.get("demand_mean") is not None
            else None
        ),
        fault_profile=profile,
        accrual_backend=settings.get("accrual_backend", "auto"),
        scheduler_policy=settings.get("scheduler_policy", "backfill"),
        scheduler_wide_threshold=int(settings.get("scheduler_wide_threshold", 64)),
    )


# ----------------------------------------------------------------------
# Minimal YAML-subset parser (no dependencies)
# ----------------------------------------------------------------------
def _scalar(token: str) -> Any:
    token = token.strip()
    if token.startswith("[") and token.endswith("]"):
        inner = token[1:-1].strip()
        if not inner:
            return []
        return [_scalar(part) for part in inner.split(",")]
    if (token.startswith('"') and token.endswith('"') and len(token) >= 2) or (
        token.startswith("'") and token.endswith("'") and len(token) >= 2
    ):
        return token[1:-1]
    low = token.lower()
    if low in ("null", "~", "none", ""):
        return None
    if low == "true":
        return True
    if low == "false":
        return False
    try:
        return int(token)
    except ValueError:
        pass
    try:
        return float(token)
    except ValueError:
        pass
    return token


def _strip_comment(line: str) -> str:
    out: list[str] = []
    quote: str | None = None
    for ch in line:
        if quote is not None:
            out.append(ch)
            if ch == quote:
                quote = None
        elif ch in "\"'":
            quote = ch
            out.append(ch)
        elif ch == "#":
            break
        else:
            out.append(ch)
    return "".join(out).rstrip()


def parse_simple_yaml(text: str) -> Any:
    """Parse the YAML subset sweep specs use.

    Supported: nested mappings by 2+-space indentation, ``key: value``
    scalars, block lists (``- item``), inline lists (``[a, b]``),
    ``#`` comments, quoted strings, int/float/bool/null scalars.
    Unsupported constructs fail with a one-line error naming the line.
    """
    entries: list[tuple[int, str, int]] = []  # (indent, content, lineno)
    for lineno, raw in enumerate(text.splitlines(), start=1):
        if "\t" in raw[: len(raw) - len(raw.lstrip())]:
            raise ValueError(f"line {lineno}: tabs are not allowed in indentation")
        line = _strip_comment(raw)
        if not line.strip():
            continue
        indent = len(line) - len(line.lstrip(" "))
        entries.append((indent, line.strip(), lineno))
    if not entries:
        return {}
    value, next_i = _parse_block(entries, 0, entries[0][0])
    if next_i != len(entries):
        indent, content, lineno = entries[next_i]
        raise ValueError(f"line {lineno}: unexpected de-indented content {content!r}")
    return value


def _parse_block(
    entries: list[tuple[int, str, int]], i: int, indent: int
) -> tuple[Any, int]:
    if entries[i][1].startswith("- "):
        items: list = []
        while i < len(entries) and entries[i][0] == indent and entries[i][1].startswith("- "):
            items.append(_scalar(entries[i][1][2:]))
            i += 1
        return items, i
    mapping: dict = {}
    while i < len(entries) and entries[i][0] == indent:
        _, content, lineno = entries[i]
        if content.startswith("- "):
            raise ValueError(f"line {lineno}: list item in a mapping block")
        if ":" not in content:
            raise ValueError(f"line {lineno}: expected 'key: value', got {content!r}")
        key_text, _, rest = content.partition(":")
        key = key_text.strip().strip("\"'")
        if key in mapping:
            raise ValueError(f"line {lineno}: duplicate key {key!r}")
        rest = rest.strip()
        if rest:
            mapping[key] = _scalar(rest)
            i += 1
            continue
        i += 1
        if i < len(entries) and entries[i][0] > indent:
            mapping[key], i = _parse_block(entries, i, entries[i][0])
        else:
            mapping[key] = None
    return mapping, i
