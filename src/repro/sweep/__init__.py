"""Declarative scenario sweeps with differential reports.

The what-if layer over the reproduction: a validated
:class:`~repro.sweep.spec.SweepSpec` declares a base campaign and the
axes to cross (TLB entries, memory size, fault profile, scheduler
policy, switch latency, ...); the planner expands and fingerprints the
cells; the executor runs them through the serial/sharded runner or the
:mod:`repro.stats` Repeater with per-cell result caching; and the
report layer renders per-axis sensitivity tables and CI-aware
differential comparisons.  ``sp2-sweep`` is the CLI.

See docs/SWEEPS.md for the spec schema, cell caching and compare
semantics.
"""

from repro.sweep.cache import cell_path, load_cell, save_cell
from repro.sweep.executor import (
    CellResult,
    SweepResult,
    execute_cell,
    run_sweep,
)
from repro.sweep.planner import (
    CELL_VERSION,
    Cell,
    SweepPlan,
    cell_fingerprint,
    cell_name,
    format_value,
    parse_selector,
    plan_sweep,
    select_cell,
)
from repro.sweep.report import (
    compare_cells,
    render_compare,
    render_plan_table,
    render_sweep_report,
    sensitivity_tables,
)
from repro.sweep.spec import (
    AXES,
    AxisDef,
    RepeatSpec,
    SweepSpec,
    load_spec_file,
    parse_simple_yaml,
    resolve_config,
)

__all__ = [
    "AXES",
    "AxisDef",
    "CELL_VERSION",
    "Cell",
    "CellResult",
    "RepeatSpec",
    "SweepPlan",
    "SweepResult",
    "SweepSpec",
    "cell_fingerprint",
    "cell_name",
    "cell_path",
    "compare_cells",
    "execute_cell",
    "format_value",
    "load_cell",
    "load_spec_file",
    "parse_selector",
    "parse_simple_yaml",
    "plan_sweep",
    "render_compare",
    "render_plan_table",
    "render_sweep_report",
    "resolve_config",
    "run_sweep",
    "save_cell",
    "select_cell",
    "sensitivity_tables",
]
