"""Sensitivity tables and differential reports over sweep results.

Two consumers: ``sp2-sweep run``/``report`` render per-axis sensitivity
tables (the marginal mean of each key metric at each axis value — the
RZBENCH-style "what does this knob do" view), and ``sp2-sweep compare``
diffs every Table 1–4 cell and headline between two scenarios, flagging
deltas whose confidence intervals don't overlap (repeat sweeps only —
two point values can differ without evidence, so they are never
flagged).

Everything here consumes the JSON-safe sweep *document* rather than
live objects, so ``report`` and ``compare`` work identically on a
just-finished run and on a ``run --out`` file from last week.
"""

from __future__ import annotations

from typing import Any

from repro.analysis.report import PAPER_CLAIMS
from repro.util.tables import Table

#: The per-axis sensitivity columns: (metric key, column header).
SENSITIVITY_METRICS = (
    ("campaign.daily_gflops_mean", "Gflops/day"),
    ("campaign.utilization_mean", "Utilization"),
    ("headline.TLB miss ratio (lower bound)", "TLB miss"),
    ("headline.cache miss ratio (lower bound)", "Cache miss"),
    ("campaign.jobs_accounted", "Jobs"),
)

#: The compare flag for a delta whose CIs don't overlap.
FLAG = "*"


def _cells(document: dict[str, Any]) -> list[dict[str, Any]]:
    try:
        return document["sweep"]["cells"]
    except (KeyError, TypeError):
        raise ValueError(
            "document has no 'sweep' block — is it a 'sp2-sweep run --out' file?"
        ) from None


def find_cell(document: dict[str, Any], name: str) -> dict[str, Any]:
    cells = _cells(document)
    for cell in cells:
        if cell.get("name") == name:
            return cell
    raise ValueError(
        f"no cell named {name!r} in this sweep; cells: "
        f"{', '.join(c.get('name', '?') for c in cells)}"
    )


# ----------------------------------------------------------------------
# Plan rendering
# ----------------------------------------------------------------------
def render_plan_table(plan, cached: set[str] | None = None) -> Table:
    """One row per planned cell (``sp2-sweep plan``)."""
    t = Table(
        title=f"Sweep plan '{plan.spec.name}': {plan.n_cells} cells",
        columns=("#", "Cell", "Fingerprint", "Days", "Nodes", "Cached"),
    )
    for cell in plan.cells:
        label = cell.name + (" (baseline)" if cell.is_baseline else "")
        t.add_row(
            cell.index,
            label,
            cell.fingerprint[:12],
            cell.config.n_days,
            cell.config.n_nodes,
            "yes" if cached and cell.fingerprint in cached else "no",
        )
    return t


# ----------------------------------------------------------------------
# Sensitivity
# ----------------------------------------------------------------------
def sensitivity_tables(document: dict[str, Any]) -> list[Table]:
    """Marginal means of the key metrics along each axis.

    Each axis gets one table with a row per value: the mean of every
    :data:`SENSITIVITY_METRICS` entry across all cells carrying that
    value — the other axes average out, which is exactly what "per-axis
    sensitivity" means on a full cross-product.
    """
    axes: dict[str, list] = document.get("spec", {}).get("axes", {}) or {}
    cells = _cells(document)
    tables: list[Table] = []
    for axis, values in axes.items():
        t = Table(
            title=f"Sensitivity to {axis} (marginal means over "
            f"{len(cells)} cells)",
            columns=(axis, "Cells") + tuple(h for _, h in SENSITIVITY_METRICS),
        )
        for value in values:
            group = [c for c in cells if c.get("overrides", {}).get(axis) == value]
            row: list[object] = [_fmt_axis_value(value), len(group)]
            for metric, _ in SENSITIVITY_METRICS:
                sample = [
                    c["metrics"][metric]
                    for c in group
                    if metric in (c.get("metrics") or {})
                ]
                row.append(sum(sample) / len(sample) if sample else "")
            t.add_row(*row)
        tables.append(t)
    return tables


def _fmt_axis_value(value: Any) -> str:
    from repro.sweep.planner import format_value

    return format_value(value)


def render_sweep_report(document: dict[str, Any]) -> str:
    """The ``run``/``report`` text body: cells, then sensitivity."""
    sweep = document.get("sweep", {})
    cells = _cells(document)
    lines = [
        f"Sweep '{sweep.get('name', '?')}': {len(cells)} cells "
        f"({sweep.get('executed', '?')} executed, {sweep.get('reused', '?')} reused)",
        "",
    ]
    t = Table(
        title="Cells",
        columns=("Cell", "Gflops/day", "Utilization", "Jobs"),
    )
    for cell in cells:
        metrics = cell.get("metrics") or {}
        t.add_row(
            cell.get("name", "?"),
            metrics.get("campaign.daily_gflops_mean", ""),
            metrics.get("campaign.utilization_mean", ""),
            metrics.get("campaign.jobs_accounted", ""),
        )
    lines.append(t.render())
    for table in sensitivity_tables(document):
        lines.append("")
        lines.append(table.render())
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Differential comparison
# ----------------------------------------------------------------------
def _metric_order(metrics: dict[str, Any]) -> list[str]:
    """campaign.* first (insertion order), headlines in the paper's
    order, then the table cells sorted within each table."""
    campaign = [m for m in metrics if m.startswith("campaign.")]
    present = set(metrics)
    headlines = [
        f"headline.{claim}"
        for claim in PAPER_CLAIMS
        if f"headline.{claim}" in present
    ]
    tables = sorted(
        m for m in metrics if m.startswith(("table2.", "table3.", "table4."))
    )
    rest = sorted(
        present
        - set(campaign)
        - set(headlines)
        - set(tables)
    )
    return campaign + headlines + tables + rest


def cis_overlap(a: dict[str, Any], b: dict[str, Any]) -> bool:
    """Whether two ``{ci_low, ci_high}`` intervals overlap at all."""
    return not (a["ci_high"] < b["ci_low"] or b["ci_high"] < a["ci_low"])


def compare_cells(
    document: dict[str, Any],
    a_name: str,
    b_name: str,
) -> tuple[Table, int, int]:
    """Diff every metric of two cells; returns (table, flagged, compared).

    With per-cell estimates (a ``repeat`` sweep), a row is flagged
    :data:`FLAG` when the two confidence intervals do not overlap — the
    same evidence standard the benchmark gates use (docs/STATS.md).
    Point-value sweeps show deltas but never flag: one seed cannot
    distinguish signal from noise.
    """
    a = find_cell(document, a_name)
    b = find_cell(document, b_name)
    a_est = a.get("estimates") or {}
    b_est = b.get("estimates") or {}
    a_metrics = a.get("metrics") or {}
    b_metrics = b.get("metrics") or {}

    t = Table(
        title=f"Differential: {a_name} vs {b_name}",
        columns=("Metric", a_name, b_name, "Delta", "Delta %", "Sig"),
    )
    flagged = 0
    compared = 0
    for metric in _metric_order(a_metrics):
        if metric not in b_metrics:
            continue
        va, vb = a_metrics[metric], b_metrics[metric]
        delta = vb - va
        pct = f"{100.0 * delta / va:+.1f}%" if va else ""
        ea, eb = a_est.get(metric), b_est.get(metric)
        sig = ""
        if ea is not None and eb is not None:
            compared += 1
            if not cis_overlap(ea, eb):
                sig = FLAG
                flagged += 1
            cell_a = f"{va:.4g} ±{(ea['ci_high'] - ea['ci_low']) / 2:.2g}"
            cell_b = f"{vb:.4g} ±{(eb['ci_high'] - eb['ci_low']) / 2:.2g}"
        else:
            compared += 1
            cell_a, cell_b = va, vb
        t.add_row(metric, cell_a, cell_b, delta, pct, sig)
    return t, flagged, compared


def render_compare(document: dict[str, Any], a_name: str, b_name: str) -> str:
    table, flagged, compared = compare_cells(document, a_name, b_name)
    has_estimates = any(
        c.get("estimates") for c in _cells(document)
    )
    lines = [table.render(), ""]
    if has_estimates:
        lines.append(
            f"non-overlapping deltas: {flagged} of {compared} metrics "
            f"(flagged {FLAG!r}; CIs per cell, docs/SWEEPS.md)"
        )
    else:
        lines.append(
            f"compared {compared} metrics (single-seed cells: deltas "
            "carry no significance flags — add a repeat block for CIs)"
        )
    return "\n".join(lines)
