"""NFS home filesystems.

§2: "The NAS SP2 provided an NFS-mounted external filesystem accessible
by all nodes with 3 home filesystems of 8 GB each.  Data transfers from
the SP2 nodes to the home filesystems also occurred over the switch."

§5 adds the measured consequence: disk traffic appears in the DMA
read/write counters, averaging ≈3.2 MB/s system-wide.  The model tracks
capacity, serves reads/writes at a server-limited rate plus the switch
transfer time, and reports the byte flows the node layer converts to
DMA transfer counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.cluster.switch import HighPerformanceSwitch

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tracing.tracer import Tracer


@dataclass
class FileServer:
    """One 8 GB home filesystem server."""

    name: str
    capacity_bytes: float = 8e9
    #: Sustained server disk rate (mid-90s SCSI array).
    disk_rate_bytes_per_s: float = 12e6
    used_bytes: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0

    def allocate(self, nbytes: float) -> None:
        if nbytes < 0:
            raise ValueError("cannot allocate negative bytes")
        if self.used_bytes + nbytes > self.capacity_bytes:
            raise OSError(
                f"filesystem {self.name} full: "
                f"{self.used_bytes + nbytes:.3g} > {self.capacity_bytes:.3g} B"
            )
        self.used_bytes += nbytes

    def free(self, nbytes: float) -> None:
        self.used_bytes = max(0.0, self.used_bytes - nbytes)


class NFSFilesystem:
    """The trio of NFS home filesystems reached over the switch."""

    def __init__(
        self,
        switch: HighPerformanceSwitch,
        *,
        n_servers: int = 3,
        capacity_bytes: float = 8e9,
        tracer: "Tracer | None" = None,
    ) -> None:
        if n_servers <= 0:
            raise ValueError("need at least one file server")
        self.switch = switch
        self.servers = [
            FileServer(name=f"home{i}", capacity_bytes=capacity_bytes)
            for i in range(n_servers)
        ]
        self._rr = 0
        #: Span tracer; each transfer is recorded with its modeled time.
        self.tracer = tracer

    def _trace_io(
        self, op: str, owner: int, nbytes: float, server: FileServer, seconds: float
    ) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        from repro.tracing.span import CAT_FS

        self.tracer.record(
            op, CAT_FS, duration=seconds, owner=owner, bytes=nbytes, server=server.name
        )

    def server_for(self, owner: int) -> FileServer:
        """Home filesystems were assigned per user; hash by owner id."""
        return self.servers[int(owner) % len(self.servers)]

    def transfer_seconds(self, nbytes: float, server: FileServer) -> float:
        """Wall time for a transfer: switch time + server disk time.

        NFS serializes the two (request over the switch, then the disk),
        so the costs add; for the multi-megabyte CFD restart files both
        terms matter.
        """
        if nbytes < 0:
            raise ValueError("transfer size cannot be negative")
        return self.switch.message_seconds(nbytes) + nbytes / server.disk_rate_bytes_per_s

    def read(self, owner: int, nbytes: float) -> float:
        """A node reads from its home filesystem; returns wall seconds."""
        server = self.server_for(owner)
        server.bytes_read += nbytes
        seconds = self.transfer_seconds(nbytes, server)
        self._trace_io("read", owner, nbytes, server, seconds)
        return seconds

    def write(self, owner: int, nbytes: float) -> float:
        """A node writes to its home filesystem; returns wall seconds."""
        server = self.server_for(owner)
        server.bytes_written += nbytes
        seconds = self.transfer_seconds(nbytes, server)
        self._trace_io("write", owner, nbytes, server, seconds)
        return seconds

    @property
    def total_bytes_moved(self) -> float:
        return sum(s.bytes_read + s.bytes_written for s in self.servers)
