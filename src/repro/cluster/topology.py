"""The SP2 High Performance Switch topology (Stunkel et al., 1995).

The cost model in :mod:`repro.cluster.switch` treats the fabric as a
constant-latency pipe, which is all the campaign needs (§2: "the system
displayed little performance degradation when tested under a full load
of message-passing jobs").  This module builds the *structure* that
claim rests on: SP2 frames of 16 nodes, each frame carrying a switch
board of eight 8-port bidirectional crossbar chips arranged in two
stages (four node-side chips, four link-side chips, fully connected
inside the board), with link-side chips cabled to the other frames.

Built on :mod:`networkx`, it answers the structural questions the cost
model abstracts:

* route/hop counts between any two nodes (intra-frame: 3 chip hops;
  inter-frame: 5);
* bisection width, which is what makes aggregate bandwidth scale
  linearly with node count;
* link-load distribution under uniform traffic (no hot links — the
  "little degradation under full load" property).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

#: Nodes per SP2 frame.
FRAME_SIZE = 16
#: Node-side switch chips per frame (4 nodes each).
NODE_CHIPS_PER_FRAME = 4
#: Link-side chips per frame.
LINK_CHIPS_PER_FRAME = 4
#: Hardware latency per chip hop (the ~45 µs §2 quotes is dominated by
#: software; the wire/chip part is well under a microsecond).
CHIP_HOP_SECONDS = 125e-9


@dataclass(frozen=True)
class Route:
    """One node-to-node route through the fabric."""

    source: int
    destination: int
    path: tuple[str, ...]

    @property
    def chip_hops(self) -> int:
        """Switch chips traversed."""
        return sum(1 for v in self.path if isinstance(v, str) and v.startswith(("nc:", "lc:")))

    @property
    def hardware_latency_seconds(self) -> float:
        return self.chip_hops * CHIP_HOP_SECONDS


class HPSTopology:
    """A frames-of-16 SP2 switch fabric."""

    def __init__(self, n_nodes: int) -> None:
        if n_nodes <= 0:
            raise ValueError("need at least one node")
        self.n_nodes = n_nodes
        self.n_frames = (n_nodes + FRAME_SIZE - 1) // FRAME_SIZE
        self.graph = self._build()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @staticmethod
    def _node(n: int) -> int:
        return n

    @staticmethod
    def _node_chip(frame: int, chip: int) -> str:
        return f"nc:{frame}:{chip}"

    @staticmethod
    def _link_chip(frame: int, chip: int) -> str:
        return f"lc:{frame}:{chip}"

    def _build(self) -> nx.Graph:
        g = nx.Graph()
        for frame in range(self.n_frames):
            # Chips on this frame's switch board.
            ncs = [self._node_chip(frame, c) for c in range(NODE_CHIPS_PER_FRAME)]
            lcs = [self._link_chip(frame, c) for c in range(LINK_CHIPS_PER_FRAME)]
            g.add_nodes_from(ncs, kind="node-chip", frame=frame)
            g.add_nodes_from(lcs, kind="link-chip", frame=frame)
            # Node ports: 4 nodes per node-side chip.
            base = frame * FRAME_SIZE
            for local in range(min(FRAME_SIZE, self.n_nodes - base)):
                node = base + local
                g.add_node(node, kind="node", frame=frame)
                g.add_edge(node, ncs[local // 4], kind="node-link")
            # The board's internal stage: full bipartite nc ↔ lc.
            for nc in ncs:
                for lc in lcs:
                    g.add_edge(nc, lc, kind="board-link")
        # Inter-frame cables: link chip c of frame i ↔ link chip c of
        # every other frame (each chip has enough ports for the NAS
        # scale; larger systems add intermediate switch boards).
        for c in range(LINK_CHIPS_PER_FRAME):
            for i in range(self.n_frames):
                for j in range(i + 1, self.n_frames):
                    g.add_edge(
                        self._link_chip(i, c), self._link_chip(j, c), kind="frame-cable"
                    )
        return g

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def route(self, src: int, dst: int) -> Route:
        """Shortest route between two compute nodes."""
        for n in (src, dst):
            if not 0 <= n < self.n_nodes:
                raise ValueError(f"node {n} out of range")
        path = nx.shortest_path(self.graph, src, dst)
        return Route(source=src, destination=dst, path=tuple(path))

    def chip_hops(self, src: int, dst: int) -> int:
        return self.route(src, dst).chip_hops

    def frame_of(self, node: int) -> int:
        return node // FRAME_SIZE

    def bisection_width(self) -> int:
        """Frame-cable links crossing a half/half frame split."""
        if self.n_frames < 2:
            # Within one frame the board's bipartite stage is the cut.
            return NODE_CHIPS_PER_FRAME * LINK_CHIPS_PER_FRAME // 2
        half = self.n_frames // 2
        left = set(range(half))
        return sum(
            1
            for u, v, data in self.graph.edges(data=True)
            if data.get("kind") == "frame-cable"
            and ((int(u.split(":")[1]) in left) != (int(v.split(":")[1]) in left))
        )

    def link_load_under_uniform_traffic(self) -> dict[str, float]:
        """Mean shortest-path load per link kind (edge betweenness over
        compute-node pairs), normalized so 1.0 = average load.

        The SP2 claim: no link kind is a hotspot — loads stay within a
        small factor of each other as the machine grows.
        """
        nodes = list(range(self.n_nodes))
        bet = nx.edge_betweenness_centrality_subset(
            self.graph, sources=nodes, targets=nodes, normalized=False
        )
        by_kind: dict[str, list[float]] = {}
        for (u, v), load in bet.items():
            kind = self.graph.edges[u, v].get("kind", "?")
            by_kind.setdefault(kind, []).append(load)
        all_loads = [l for ls in by_kind.values() for l in ls]
        mean = sum(all_loads) / len(all_loads) if all_loads else 1.0
        return {
            kind: (sum(ls) / len(ls)) / mean if mean else 0.0
            for kind, ls in by_kind.items()
        }

    def summary(self) -> str:
        intra = self.chip_hops(0, 1)
        inter = self.chip_hops(0, FRAME_SIZE) if self.n_frames > 1 else intra
        return (
            f"HPS fabric: {self.n_nodes} nodes in {self.n_frames} frames; "
            f"{intra} chip hops intra-frame, {inter} inter-frame; "
            f"bisection width {self.bisection_width()} cables"
        )
