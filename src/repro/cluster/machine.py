"""The assembled SP2: 144 nodes, one switch, the NFS home filesystems.

This is the object PBS schedules onto and the RS2HPM collector samples.
Node allocation here is pure bookkeeping (which nodes are free); the
*policy* lives in :mod:`repro.pbs.scheduler`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.cluster.filesystem import NFSFilesystem
from repro.cluster.switch import HighPerformanceSwitch
from repro.power2.batch import make_store, resolve_backend
from repro.power2.config import MachineConfig, POWER2_590, SwitchConfig
from repro.power2.node import Node, PhaseKind, WorkPhase

#: The NAS SP2 size.
NAS_NODE_COUNT = 144


class SP2Machine:
    """A distributed-memory RS6000/590 cluster.

    ``accrual_backend`` selects how node counters integrate over time:
    ``"scalar"`` (default) keeps the legacy per-node accumulators;
    ``"auto"``/``"vectorized"``/``"numpy"``/``"python"`` move every
    node's accumulators into one shared
    :class:`~repro.power2.batch.CounterStore` so collector passes and
    job transitions run as flat array sweeps.  Both produce bitwise
    identical measurements (see :mod:`repro.power2.batch`).
    """

    def __init__(
        self,
        n_nodes: int = NAS_NODE_COUNT,
        config: MachineConfig | None = None,
        *,
        accrual_backend: str = "scalar",
        switch_config: SwitchConfig | None = None,
    ) -> None:
        if n_nodes <= 0:
            raise ValueError("machine needs at least one node")
        self.config = config or POWER2_590
        self.nodes: list[Node] = [Node(i, self.config) for i in range(n_nodes)]
        self.accrual_backend = resolve_backend(accrual_backend)
        #: The shared counter store (None on the scalar backend).
        self.store = None
        if self.accrual_backend != "scalar":
            self.store = make_store(n_nodes, self.accrual_backend)
            for node in self.nodes:
                node.attach_store(self.store, node.node_id)
        self.switch = HighPerformanceSwitch(switch_config)
        self.filesystem = NFSFilesystem(self.switch)
        self._free: set[int] = set(range(n_nodes))
        self._allocations: dict[int, tuple[int, ...]] = {}
        self._next_alloc_id = 0
        #: Crashed nodes: withheld from allocation until repaired.
        self._down: set[int] = set()

    @property
    def n_nodes(self) -> int:
        return len(self.nodes)

    @property
    def n_free(self) -> int:
        return len(self._free)

    @property
    def peak_gflops(self) -> float:
        """Aggregate peak: 144 × 267 Mflops ≈ 38.4 Gflops for NAS."""
        return self.n_nodes * self.config.peak_mflops / 1e3

    # ------------------------------------------------------------------
    # Allocation bookkeeping (users got dedicated nodes, §2)
    # ------------------------------------------------------------------
    def allocate(self, n_nodes: int) -> tuple[int, tuple[int, ...]]:
        """Reserve ``n_nodes`` dedicated nodes; returns (alloc_id, node ids).

        Raises :class:`RuntimeError` if not enough nodes are free — the
        scheduler is responsible for not over-committing.
        """
        if n_nodes <= 0:
            raise ValueError("must allocate at least one node")
        if n_nodes > len(self._free):
            raise RuntimeError(
                f"requested {n_nodes} nodes but only {len(self._free)} free"
            )
        chosen = tuple(sorted(self._free)[:n_nodes])
        self._free.difference_update(chosen)
        alloc_id = self._next_alloc_id
        self._next_alloc_id += 1
        self._allocations[alloc_id] = chosen
        return alloc_id, chosen

    def release(self, alloc_id: int) -> tuple[int, ...]:
        """Return an allocation's nodes to the free pool.

        Crashed nodes stay out of the pool — they rejoin at
        :meth:`repair_node`, not when the job that died on them is
        cleaned up.
        """
        try:
            nodes = self._allocations.pop(alloc_id)
        except KeyError:
            raise KeyError(f"unknown allocation id {alloc_id}") from None
        overlap = self._free.intersection(nodes)
        if overlap:
            raise RuntimeError(f"nodes {sorted(overlap)} double-freed")
        self._free.update(n for n in nodes if n not in self._down)
        return nodes

    def allocation_nodes(self, alloc_id: int) -> tuple[int, ...]:
        return self._allocations[alloc_id]

    def busy_node_ids(self) -> set[int]:
        return set(range(self.n_nodes)) - self._free - self._down

    # ------------------------------------------------------------------
    # Failure transitions (driven by repro.faults.injector)
    # ------------------------------------------------------------------
    @property
    def down_node_ids(self) -> set[int]:
        return set(self._down)

    def crash_node(self, node_id: int) -> None:
        """Take a node out of service (hardware failure).

        Idle nodes leave the free pool immediately; a node running a job
        stays in its allocation until the scheduler kills the job, and
        :meth:`release` then withholds it from the pool.
        """
        if not 0 <= node_id < self.n_nodes:
            raise ValueError(f"no node {node_id} in a {self.n_nodes}-node machine")
        self._down.add(node_id)
        self._free.discard(node_id)

    def repair_node(self, node_id: int) -> None:
        """Return a crashed node to service (and to the free pool)."""
        if node_id not in self._down:
            raise ValueError(f"node {node_id} is not down")
        self._down.discard(node_id)
        if not any(node_id in nodes for nodes in self._allocations.values()):
            self._free.add(node_id)

    # ------------------------------------------------------------------
    # Sampling support
    # ------------------------------------------------------------------
    def node(self, node_id: int) -> Node:
        return self.nodes[node_id]

    def iter_nodes(self, ids: Sequence[int] | None = None) -> Iterable[Node]:
        if ids is None:
            return iter(self.nodes)
        return (self.nodes[i] for i in ids)

    def idle_all(self, seconds: float, node_ids: Iterable[int] | None = None) -> None:
        """Advance idle time on the given nodes (default: the free ones)."""
        ids = self._free if node_ids is None else node_ids
        for i in ids:
            self.nodes[i].run_phase(WorkPhase(kind=PhaseKind.IDLE, seconds=seconds))
