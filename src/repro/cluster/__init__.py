"""The SP2 machine substrate: switch, filesystems, and node assembly.

§2 of the paper describes the pieces modelled here:

* :mod:`repro.cluster.switch` — the High Performance Switch: 45 µs
  latency, 34 MB/s node-to-node bandwidth, linearly scaling aggregate
  bandwidth, message-passing cost model;
* :mod:`repro.cluster.filesystem` — the NFS-mounted home filesystems
  (3 × 8 GB) whose traffic also crosses the switch and shows up in the
  DMA counters;
* :mod:`repro.cluster.machine` — the 144-node assembly with node
  allocation bookkeeping for PBS.
"""

from repro.cluster.switch import HighPerformanceSwitch, MessageCost
from repro.cluster.filesystem import NFSFilesystem, FileServer
from repro.cluster.machine import SP2Machine
from repro.cluster.topology import HPSTopology

__all__ = [
    "HighPerformanceSwitch",
    "MessageCost",
    "NFSFilesystem",
    "FileServer",
    "SP2Machine",
    "HPSTopology",
]
