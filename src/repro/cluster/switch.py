"""The SP2 High Performance Switch (Stunkel et al., 1995).

§2 gives the operational characteristics the study depends on: ≈45 µs
latency, 34 MB/s node-to-node bandwidth, aggregate bandwidth scaling
linearly with processor count, and little degradation under full
message-passing load.  The model is therefore a contention-light
latency/bandwidth cost model:

* point-to-point message time = latency + bytes / bandwidth;
* nearest-neighbour exchange phases (the dominant CFD pattern, §4) cost
  one message time per neighbour pair, with optional overlap for
  asynchronous message passing (the 40 Mflops/node Navier–Stokes code
  of §6 used asynchronous messaging);
* every byte moved is visible to the *node* as DMA transfers — the §5
  observation that "most of the DMA traffic represents message-passing
  I/O".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.power2.config import SP2_SWITCH, SwitchConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.tracing.tracer import Tracer


@dataclass(frozen=True)
class MessageCost:
    """Wall time and DMA traffic for one communication phase on one node."""

    seconds: float
    bytes_sent: float
    bytes_received: float

    @property
    def total_bytes(self) -> float:
        return self.bytes_sent + self.bytes_received


class HighPerformanceSwitch:
    """Latency/bandwidth cost model of the SP2 switch fabric."""

    def __init__(
        self,
        config: SwitchConfig | None = None,
        *,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.config = config or SP2_SWITCH
        #: Total bytes ever carried (for utilization reporting).
        self.bytes_carried = 0.0
        self.messages_carried = 0
        #: Span tracer; each accounted message/exchange is recorded with
        #: its modeled duration.
        self.tracer = tracer
        #: Fabric degradation factor (>= 1): latency is multiplied and
        #: bandwidth divided by it during a degradation episode
        #: (driven by :mod:`repro.faults.injector`).
        self.degradation = 1.0

    @property
    def latency_seconds(self) -> float:
        return self.config.latency_seconds * self.degradation

    @property
    def bandwidth_bytes_per_s(self) -> float:
        return self.config.bandwidth_bytes_per_s / self.degradation

    def degrade(self, factor: float) -> None:
        """Enter a degradation episode (route faults, contention)."""
        if factor < 1.0:
            raise ValueError("degradation factor must be >= 1")
        self.degradation = factor

    def restore(self) -> None:
        """Return the fabric to nominal performance."""
        self.degradation = 1.0

    def message_seconds(self, nbytes: float) -> float:
        """Time for one point-to-point message."""
        if nbytes < 0:
            raise ValueError("message size cannot be negative")
        return self.latency_seconds + nbytes / self.bandwidth_bytes_per_s

    def send(self, nbytes: float) -> MessageCost:
        """Account one message; returns the sender-side cost."""
        t = self.message_seconds(nbytes)
        self.bytes_carried += nbytes
        self.messages_carried += 1
        if self.tracer is not None and self.tracer.enabled:
            from repro.tracing.span import CAT_SWITCH

            self.tracer.record("send", CAT_SWITCH, duration=t, bytes=nbytes)
        return MessageCost(seconds=t, bytes_sent=nbytes, bytes_received=0.0)

    def exchange(
        self,
        nbytes_per_neighbor: float,
        n_neighbors: int,
        *,
        asynchronous: bool = False,
        overlap_fraction: float = 0.7,
    ) -> MessageCost:
        """A nearest-neighbour halo exchange as seen by one node.

        Synchronous exchange serializes the per-neighbour messages (each
        send waits for its matching receive); asynchronous messaging
        overlaps all but ``1 - overlap_fraction`` of the transfer time,
        which is how the best codes in §6 sustained their rates.
        """
        if n_neighbors < 0:
            raise ValueError("neighbour count cannot be negative")
        if not 0.0 <= overlap_fraction <= 1.0:
            raise ValueError("overlap_fraction must be in [0, 1]")
        one = self.message_seconds(nbytes_per_neighbor)
        if asynchronous:
            # Sends proceed concurrently; latency is paid once and the
            # exposed transfer time shrinks by the overlap factor.
            seconds = self.latency_seconds + (
                (one - self.latency_seconds) * n_neighbors * (1.0 - overlap_fraction)
            )
        else:
            seconds = one * n_neighbors
        total = nbytes_per_neighbor * n_neighbors
        self.bytes_carried += 2.0 * total  # sent and received
        self.messages_carried += 2 * n_neighbors
        if self.tracer is not None and self.tracer.enabled:
            from repro.tracing.span import CAT_SWITCH

            self.tracer.record(
                "exchange",
                CAT_SWITCH,
                duration=seconds,
                neighbors=n_neighbors,
                bytes=2.0 * total,
                asynchronous=asynchronous,
            )
        return MessageCost(seconds=seconds, bytes_sent=total, bytes_received=total)

    def aggregate_bandwidth(self, n_nodes: int) -> float:
        """§2: aggregate bandwidth scales linearly with processors."""
        if n_nodes < 0:
            raise ValueError("node count cannot be negative")
        if not self.config.per_node_scaling:
            return self.bandwidth_bytes_per_s
        return self.bandwidth_bytes_per_s * n_nodes

    def global_sync_seconds(self, n_nodes: int) -> float:
        """A barrier/allreduce: log2(n) latency hops."""
        if n_nodes <= 1:
            return 0.0
        hops = max(1, (n_nodes - 1).bit_length())
        return self.latency_seconds * hops
