"""RS2HPM — the software stack over the POWER2 hardware monitor.

Models the toolset the paper used (Maki's POWER2 hardware performance
tools plus Saphir's PHPM extensions, §3): an event catalog with counter
-group selection and verification, a kernel-level monitor interface with
multipass sampling, the per-node data-collection daemon, the 15-minute
system-wide cron collector, per-job prologue/epilogue reports, and the
derived-metric algebra every table in the paper is computed from.
"""

from repro.hpm.events import EventCatalog, CounterGroup, NAS_SELECTION
from repro.hpm.monitor_api import MonitorInterface, MultipassSampler
from repro.hpm.daemon import NodeDaemon
from repro.hpm.collector import SystemCollector, SystemSample
from repro.hpm.jobreport import render_job_report, parse_job_report
from repro.hpm.phpm import ParallelJobReport
from repro.hpm.program import ProgramMonitor, ProgramReport
from repro.hpm.derived import DerivedRates, workload_rates

__all__ = [
    "EventCatalog",
    "CounterGroup",
    "NAS_SELECTION",
    "MonitorInterface",
    "MultipassSampler",
    "NodeDaemon",
    "SystemCollector",
    "SystemSample",
    "render_job_report",
    "ParallelJobReport",
    "ProgramMonitor",
    "ProgramReport",
    "parse_job_report",
    "DerivedRates",
    "workload_rates",
]
