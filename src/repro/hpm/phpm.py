"""PHPM — parallel hardware performance monitoring (Saphir, 1996).

§3 credits Bill Saphir with "valuable extensions of these tools to allow
monitoring of individual job performance, as well as global system
performance".  This module is that layer: given one job's per-node
counter deltas (from the PBS prologue/epilogue), it produces the
parallel view a message-passing programmer needs:

* per-counter reductions across the job's nodes (sum / min / max / mean);
* load-imbalance metrics (max/mean flop ratio — 1.0 is perfectly
  balanced; synchronous codes run at the speed of the slowest node);
* straggler identification, including the §6 case where the straggler
  is *paging* (its system-mode counts give it away).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pbs.job import JobRecord


@dataclass(frozen=True)
class CounterReduction:
    """One counter reduced across a job's nodes."""

    counter: str
    total: float
    mean: float
    minimum: float
    maximum: float

    @property
    def imbalance(self) -> float:
        """max/mean; 1.0 means perfectly balanced."""
        return self.maximum / self.mean if self.mean > 0 else 1.0


@dataclass(frozen=True)
class NodeDiagnosis:
    """Per-node health within one job."""

    node_id: int
    flops: float
    flop_share: float
    system_user_fxu_ratio: float

    @property
    def paging_suspect(self) -> bool:
        """§6's signature on a single node."""
        return self.system_user_fxu_ratio > 1.0


def _flops(deltas: dict[str, int]) -> float:
    return JobRecord.flops_from_deltas(deltas)


def _sys_user_ratio(deltas: dict[str, int]) -> float:
    user = deltas.get("user.fxu0", 0) + deltas.get("user.fxu1", 0)
    system = deltas.get("system.fxu0", 0) + deltas.get("system.fxu1", 0)
    if user == 0:
        return float("inf") if system else 0.0
    return system / user


class ParallelJobReport:
    """The PHPM view of one finished job."""

    def __init__(self, record: JobRecord) -> None:
        if not record.counter_deltas:
            raise ValueError(f"job {record.job_id} has no per-node counter data")
        self.record = record
        self._node_ids = sorted(record.counter_deltas)

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def reduce(self, counter: str) -> CounterReduction:
        """Reduce one flat-labelled counter across the job's nodes."""
        values = np.array(
            [self.record.counter_deltas[n].get(counter, 0) for n in self._node_ids],
            dtype=float,
        )
        return CounterReduction(
            counter=counter,
            total=float(values.sum()),
            mean=float(values.mean()),
            minimum=float(values.min()),
            maximum=float(values.max()),
        )

    def reductions(self, counters: list[str]) -> dict[str, CounterReduction]:
        return {c: self.reduce(c) for c in counters}

    # ------------------------------------------------------------------
    # Balance
    # ------------------------------------------------------------------
    def node_flops(self) -> np.ndarray:
        return np.array(
            [_flops(self.record.counter_deltas[n]) for n in self._node_ids]
        )

    def flop_imbalance(self) -> float:
        """max/mean flop ratio across nodes; 1.0 is perfect balance."""
        flops = self.node_flops()
        mean = flops.mean()
        return float(flops.max() / mean) if mean > 0 else 1.0

    def diagnose_nodes(self) -> list[NodeDiagnosis]:
        """Per-node flop share and paging suspicion, worst first."""
        flops = self.node_flops()
        total = flops.sum()
        out = [
            NodeDiagnosis(
                node_id=nid,
                flops=float(f),
                flop_share=float(f / total) if total > 0 else 0.0,
                system_user_fxu_ratio=_sys_user_ratio(self.record.counter_deltas[nid]),
            )
            for nid, f in zip(self._node_ids, flops)
        ]
        out.sort(key=lambda d: d.flops)
        return out

    def stragglers(self, *, threshold: float = 0.8) -> list[NodeDiagnosis]:
        """Nodes producing less than ``threshold`` × the mean flops."""
        flops = self.node_flops()
        mean = flops.mean()
        if mean == 0:
            return []
        return [d for d in self.diagnose_nodes() if d.flops < threshold * mean]

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def summary(self) -> str:
        r = self.record
        flops = self.node_flops()
        lines = [
            f"PHPM job {r.job_id} ({r.app_name}): {len(self._node_ids)} nodes, "
            f"{r.walltime_seconds:.0f}s, {r.total_mflops:.1f} Mflops total",
            f"  per-node Mflops: min {flops.min() / r.walltime_seconds / 1e6:.2f}  "
            f"mean {flops.mean() / r.walltime_seconds / 1e6:.2f}  "
            f"max {flops.max() / r.walltime_seconds / 1e6:.2f}  "
            f"(imbalance {self.flop_imbalance():.2f})",
        ]
        stragglers = self.stragglers()
        if stragglers:
            worst = stragglers[0]
            cause = "paging" if worst.paging_suspect else "unknown"
            lines.append(
                f"  stragglers: {len(stragglers)} node(s); worst node "
                f"{worst.node_id} at {worst.flop_share:.1%} share "
                f"(suspected cause: {cause})"
            )
        return "\n".join(lines)
