"""The POWER2 monitor's selectable event space and counter groups.

§3: "The SP2 POWER2 Performance Monitor consist of 22 32-bit counters
located on the SCU chip ... The POWER2 counters provide a set of 5
counters and 16 reportable events each for the FPU, the FXU, the ICU,
and the SCU.  The selected 22 events are a subset of the 320 (some
overlapping) signals which can be selected and reported by software
[Welbon, 1994]."  And: "each combination must be implemented and
verified in the monitoring software."

This module models that selection layer: a catalog of selectable events
per unit, counter groups (an assignment of one event to each physical
counter slot), and a verification registry — only *verified* groups may
be programmed, exactly the constraint NAS worked under.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.power2.counters import COUNTER_LAYOUT

#: Physical counter slots per unit group, per §3.
SLOTS_PER_UNIT: dict[str, int] = {"FXU": 5, "FPU0": 5, "FPU1": 5, "ICU": 2, "SCU": 5}

#: Reportable events per unit (§3 says 16 each for the four unit kinds).
EVENTS_PER_UNIT = 16


def _unit_events(unit: str, names: list[str]) -> list[str]:
    """Pad a unit's event list to the architectural 16 with reserved
    signal names (the real chip exposes more signals than anyone used)."""
    if len(names) > EVENTS_PER_UNIT:
        raise ValueError(f"{unit}: more than {EVENTS_PER_UNIT} events")
    reserved = [f"{unit.lower()}_signal_{i}" for i in range(len(names), EVENTS_PER_UNIT)]
    return names + reserved


#: Selectable signals, keyed by unit.  The named prefixes are the events
#: the NAS selection and the RS2HPM documentation mention; the rest are
#: reserved slots standing in for the remainder of Welbon's 320 signals.
EVENT_SPACE: dict[str, list[str]] = {
    "FXU": _unit_events(
        "FXU",
        [
            "fxu0_insts",
            "fxu1_insts",
            "dcache_misses",
            "tlb_misses",
            "cycles",
            "dcache_dir_searches",
            "fxu_stall_cycles",
            "int_mul_div",
        ],
    ),
    "FPU0": _unit_events(
        "FPU0",
        ["insts", "fp_add", "fp_mul", "fp_div", "fp_muladd", "fp_sqrt", "fp_store_overlap"],
    ),
    "FPU1": _unit_events(
        "FPU1",
        ["insts", "fp_add", "fp_mul", "fp_div", "fp_muladd", "fp_sqrt", "fp_store_overlap"],
    ),
    "ICU": _unit_events(
        "ICU",
        ["type1_insts", "type2_insts", "branches_taken", "icache_fetches", "dispatch_stalls"],
    ),
    "SCU": _unit_events(
        "SCU",
        [
            "icache_reloads",
            "dcache_reloads",
            "dcache_stores",
            "dma_reads",
            "dma_writes",
            "sio_bus_busy",
            "mem_refresh",
        ],
    ),
}


@dataclass(frozen=True)
class CounterGroup:
    """One programmable assignment of events to physical counter slots.

    ``selection`` maps ``unit`` → tuple of event names, one per slot.
    """

    name: str
    selection: dict[str, tuple[str, ...]] = field(default_factory=dict)

    def validate(self) -> None:
        """Check the assignment is physically realizable."""
        for unit, slots in SLOTS_PER_UNIT.items():
            chosen = self.selection.get(unit)
            if chosen is None:
                raise ValueError(f"group {self.name!r} missing unit {unit}")
            if len(chosen) != slots:
                raise ValueError(
                    f"group {self.name!r}: unit {unit} needs {slots} events, "
                    f"got {len(chosen)}"
                )
            space = EVENT_SPACE[unit]
            for ev in chosen:
                if ev not in space:
                    raise ValueError(f"group {self.name!r}: {unit} has no event {ev!r}")
            if len(set(chosen)) != len(chosen):
                raise ValueError(f"group {self.name!r}: duplicate event in {unit}")

    @property
    def n_counters(self) -> int:
        return sum(len(v) for v in self.selection.values())


#: Table 1 — the NAS selection, expressed as a counter group.
NAS_SELECTION = CounterGroup(
    name="nas-table1",
    selection={
        "FXU": ("fxu0_insts", "fxu1_insts", "dcache_misses", "tlb_misses", "cycles"),
        "FPU0": ("insts", "fp_add", "fp_mul", "fp_div", "fp_muladd"),
        "FPU1": ("insts", "fp_add", "fp_mul", "fp_div", "fp_muladd"),
        "ICU": ("type1_insts", "type2_insts"),
        "SCU": ("icache_reloads", "dcache_reloads", "dcache_stores", "dma_reads", "dma_writes"),
    },
)


class EventCatalog:
    """Registry of counter groups and their verification status.

    §3's constraint: a group must be "implemented and verified in the
    monitoring software" before the kernel extension will program it.
    """

    def __init__(self) -> None:
        self._groups: dict[str, CounterGroup] = {}
        self._verified: set[str] = set()
        self.register(NAS_SELECTION, verified=True)

    def register(self, group: CounterGroup, *, verified: bool = False) -> None:
        group.validate()
        self._groups[group.name] = group
        if verified:
            self._verified.add(group.name)

    def verify(self, name: str) -> None:
        """Mark a registered group as verified (after software testing)."""
        if name not in self._groups:
            raise KeyError(f"unknown counter group {name!r}")
        self._verified.add(name)

    def get(self, name: str) -> CounterGroup:
        group = self._groups.get(name)
        if group is None:
            raise KeyError(f"unknown counter group {name!r}")
        if name not in self._verified:
            raise PermissionError(
                f"counter group {name!r} is registered but not verified; "
                "the monitor refuses unverified selections (§3)"
            )
        return group

    def groups(self) -> list[str]:
        return sorted(self._groups)

    def is_verified(self, name: str) -> bool:
        return name in self._verified


def table1_rows() -> list[tuple[str, str, str]]:
    """Regenerate Table 1 from the counter layout (label, slot, text)."""
    rows = []
    for spec in COUNTER_LAYOUT:
        if spec.name.startswith(("fpu0_fp_", "fpu1_fp_")):
            label = "fpop." + spec.name.split("_", 1)[1]
        else:
            label = "user." + spec.name
        rows.append((label, f"{spec.group}[{spec.slot}]", spec.description))
    return rows
