"""Per-job RS2HPM report files.

§3: the PBS prologue/epilogue scripts "obtain counter values at the
beginning and end of each job for these nodes.  These values are written
to a file for later processing and viewing by both users and system
personnel."  This module is that file format: a plain-text render of one
job's per-node counter deltas plus the headline derived rates, and a
parser so stored reports round-trip.
"""

from __future__ import annotations

from typing import Mapping

from repro.hpm.derived import workload_rates
from repro.pbs.job import JobRecord

_HEADER = "# RS2HPM job report v1"


def render_job_report(record: JobRecord) -> str:
    """Render one finished job as the epilogue report text."""
    lines = [
        _HEADER,
        f"job_id: {record.job_id}",
        f"user: {record.user}",
        f"app: {record.app_name}",
        f"nodes_requested: {record.nodes_requested}",
        f"node_ids: {','.join(str(n) for n in record.node_ids)}",
        f"submit_time: {record.submit_time:.3f}",
        f"start_time: {record.start_time:.3f}",
        f"end_time: {record.end_time:.3f}",
    ]
    wall = record.walltime_seconds
    if wall > 0 and record.node_ids:
        rates = workload_rates(record.summed_deltas(), wall, len(record.node_ids))
        lines.append(f"mflops_per_node: {rates.mflops_total:.4f}")
        lines.append(f"system_user_fxu_ratio: {rates.system_user_fxu_ratio:.4f}")
    for nid in sorted(record.counter_deltas):
        lines.append(f"[node {nid}]")
        for name, value in sorted(record.counter_deltas[nid].items()):
            lines.append(f"{name} = {value}")
    return "\n".join(lines) + "\n"


def parse_job_report(text: str) -> JobRecord:
    """Parse a report back into a :class:`JobRecord`.

    Derived-rate lines are ignored (they are recomputed from the
    counters, never trusted from the file).
    """
    lines = [ln.rstrip() for ln in text.splitlines() if ln.strip()]
    if not lines or lines[0] != _HEADER:
        raise ValueError("not an RS2HPM job report")
    meta: dict[str, str] = {}
    deltas: dict[int, dict[str, int]] = {}
    current: dict[str, int] | None = None
    for ln in lines[1:]:
        if ln.startswith("[node "):
            nid = int(ln[len("[node ") : -1])
            current = {}
            deltas[nid] = current
        elif current is not None:
            name, _, value = ln.partition(" = ")
            if not value:
                raise ValueError(f"malformed counter line: {ln!r}")
            current[name.strip()] = int(value)
        else:
            key, _, value = ln.partition(": ")
            if not value:
                raise ValueError(f"malformed header line: {ln!r}")
            meta[key.strip()] = value.strip()

    required = {
        "job_id",
        "user",
        "app",
        "nodes_requested",
        "node_ids",
        "submit_time",
        "start_time",
        "end_time",
    }
    missing = required - set(meta)
    if missing:
        raise ValueError(f"report missing fields: {sorted(missing)}")

    return JobRecord(
        job_id=int(meta["job_id"]),
        user=int(meta["user"]),
        app_name=meta["app"],
        nodes_requested=int(meta["nodes_requested"]),
        node_ids=tuple(int(x) for x in meta["node_ids"].split(",") if x),
        submit_time=float(meta["submit_time"]),
        start_time=float(meta["start_time"]),
        end_time=float(meta["end_time"]),
        counter_deltas=deltas,
    )


def summarize_deltas(deltas: Mapping[str, float], seconds: float, n_nodes: int) -> str:
    """One-paragraph human summary of a counter block (used by the CLI)."""
    r = workload_rates(deltas, seconds, n_nodes)
    return (
        f"{r.mflops_total:.1f} Mflops/node over {seconds:.0f}s on {n_nodes} nodes "
        f"({r.gflops_system():.2f} Gflops system); "
        f"Mips {r.mips_total:.1f}, fma fraction {r.fma_flop_fraction:.0%}, "
        f"flops/memref {r.flops_per_memory_inst:.2f}, "
        f"sys/user FXU {r.system_user_fxu_ratio:.2f}"
    )
