"""Derived-metric algebra — how every number in Tables 2–4 is computed.

Input is a flat counter-delta mapping (``user.fxu0`` …) plus the wall
seconds it covers and the number of nodes it sums over.  All rates are
*per node*, in millions per second, matching the paper's convention
("These rates represent single node values and system rates may be
obtained by multiplying by 144").

The flop algebra follows §3/§5 exactly:

* flops = adds + multiplies + divides + 2 × fma, where the monitor's
  divide counters always read zero (hardware bug) — so measured flops
  understate true flops by the ≈3% §3 estimates;
* Mflops-add (Table 3) = pure adds + fma adds; Mflops-fma = fma count
  (its multiply half); Mflops-mult = pure multiplies;
* memory instructions ≈ FXU0 + FXU1 (a *lower bound* on the cache-miss
  ratio denominator, §5);
* Mips = FPU + FXU + ICU instructions; Mops additionally counts the
  second operation of each fma.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.power2.config import MachineConfig, POWER2_590


def _g(deltas: Mapping[str, float], key: str) -> float:
    return float(deltas.get(key, 0))


@dataclass(frozen=True)
class DerivedRates:
    """Per-node rates and ratios derived from one counter-delta block."""

    seconds: float
    n_nodes: int

    # OPS (Mflops)
    mflops_total: float
    mflops_add: float
    mflops_div: float
    mflops_mul: float
    mflops_fma: float

    # INST (Mips)
    mips_fp_total: float
    mips_fp_unit0: float
    mips_fp_unit1: float
    mips_fxu_total: float
    mips_fxu_unit0: float
    mips_fxu_unit1: float
    mips_icu: float

    # CACHE (millions/s)
    dcache_miss_rate: float
    tlb_miss_rate: float
    icache_miss_rate: float

    # I/O (million transfers/s)
    dma_read_rate: float
    dma_write_rate: float

    # Mode split
    system_user_fxu_ratio: float
    user_cycle_fraction: float

    @property
    def mips_total(self) -> float:
        """Total instruction rate — Table 2's "Mips" row."""
        return self.mips_fp_total + self.mips_fxu_total + self.mips_icu

    @property
    def mops_total(self) -> float:
        """Operation rate — Table 2's "Mops" row (fma counts twice)."""
        return self.mips_total + self.mflops_fma

    @property
    def fpu_ratio(self) -> float:
        """FPU0:FPU1 instruction ratio (§5 measured ≈1.7)."""
        return (
            self.mips_fp_unit0 / self.mips_fp_unit1
            if self.mips_fp_unit1 > 0
            else float("inf")
        )

    @property
    def flops_per_memory_inst(self) -> float:
        """Register-reuse figure of merit (§5: 0.53 workload, 3.0 matmul)."""
        return (
            self.mflops_total / self.mips_fxu_total
            if self.mips_fxu_total > 0
            else 0.0
        )

    @property
    def fma_flop_fraction(self) -> float:
        """Fraction of flops produced by fma instructions (§5: ≈54%)."""
        return (
            2.0 * self.mflops_fma / self.mflops_total
            if self.mflops_total > 0
            else 0.0
        )

    @property
    def branch_fraction(self) -> float:
        """ICU share of all instructions — the paper's branch estimate."""
        return self.mips_icu / self.mips_total if self.mips_total > 0 else 0.0

    @property
    def dcache_miss_ratio(self) -> float:
        """Misses per memory instruction, memory ≈ FXU0+FXU1 (§5: ≥1%)."""
        return (
            self.dcache_miss_rate / self.mips_fxu_total
            if self.mips_fxu_total > 0
            else 0.0
        )

    @property
    def tlb_miss_ratio(self) -> float:
        return (
            self.tlb_miss_rate / self.mips_fxu_total
            if self.mips_fxu_total > 0
            else 0.0
        )

    @property
    def icache_miss_fraction(self) -> float:
        """I-cache misses per instruction fetched (§5: ≈0.4%)."""
        return (
            self.icache_miss_rate / self.mips_total if self.mips_total > 0 else 0.0
        )

    def delay_per_memory_inst(self, config: MachineConfig = POWER2_590) -> float:
        """§5's stall metric: (8·dcache + 45·tlb misses) / memory insts."""
        if self.mips_fxu_total == 0:
            return 0.0
        cyc = (
            self.dcache_miss_rate * config.dcache_miss_cycles
            + self.tlb_miss_rate * config.tlb_miss_cycles
        )
        return cyc / self.mips_fxu_total

    def gflops_system(self, n_nodes: int | None = None) -> float:
        """Whole-machine rate: per-node Mflops × node count / 1000."""
        n = self.n_nodes if n_nodes is None else n_nodes
        return self.mflops_total * n / 1e3

    @property
    def dma_bytes_per_s(self) -> float:
        """DMA traffic in bytes/s (≈32 B per transfer, §5's arithmetic)."""
        from repro.power2.node import DMA_TRANSFER_BYTES

        return (self.dma_read_rate + self.dma_write_rate) * 1e6 * DMA_TRANSFER_BYTES


def workload_rates(
    deltas: Mapping[str, float], seconds: float, n_nodes: int
) -> DerivedRates:
    """Derive per-node rates from counter deltas summed over ``n_nodes``.

    ``seconds`` is the wall-clock span of the deltas.  Rates are reported
    per node: each summed count is divided by ``seconds × n_nodes``.
    """
    if seconds <= 0:
        raise ValueError("interval must have positive duration")
    if n_nodes <= 0:
        raise ValueError("need at least one node")
    per = 1.0 / (seconds * n_nodes * 1e6)  # counts → per-node M/s

    fp_add = _g(deltas, "user.fpu0_fp_add") + _g(deltas, "user.fpu1_fp_add")
    fp_mul = _g(deltas, "user.fpu0_fp_mul") + _g(deltas, "user.fpu1_fp_mul")
    fp_div = _g(deltas, "user.fpu0_fp_div") + _g(deltas, "user.fpu1_fp_div")
    fp_fma = _g(deltas, "user.fpu0_fp_muladd") + _g(deltas, "user.fpu1_fp_muladd")

    user_fxu = _g(deltas, "user.fxu0") + _g(deltas, "user.fxu1")
    system_fxu = _g(deltas, "system.fxu0") + _g(deltas, "system.fxu1")
    user_cycles = _g(deltas, "user.cycles")
    system_cycles = _g(deltas, "system.cycles")
    total_cycles = user_cycles + system_cycles

    return DerivedRates(
        seconds=seconds,
        n_nodes=n_nodes,
        # Table 3's add row includes the fma adds; its fma row is the fma
        # multiplies; the div row is the broken counter (reads 0).
        mflops_total=(fp_add + fp_mul + fp_div + 2.0 * fp_fma) * per,
        mflops_add=(fp_add + fp_fma) * per,
        mflops_div=fp_div * per,
        mflops_mul=fp_mul * per,
        mflops_fma=fp_fma * per,
        mips_fp_total=(_g(deltas, "user.fpu0") + _g(deltas, "user.fpu1")) * per,
        mips_fp_unit0=_g(deltas, "user.fpu0") * per,
        mips_fp_unit1=_g(deltas, "user.fpu1") * per,
        mips_fxu_total=user_fxu * per,
        mips_fxu_unit0=_g(deltas, "user.fxu0") * per,
        mips_fxu_unit1=_g(deltas, "user.fxu1") * per,
        mips_icu=(_g(deltas, "user.icu0") + _g(deltas, "user.icu1")) * per,
        dcache_miss_rate=_g(deltas, "user.dcache_mis") * per,
        tlb_miss_rate=_g(deltas, "user.tlb_mis") * per,
        icache_miss_rate=_g(deltas, "user.icache_reload") * per,
        dma_read_rate=_g(deltas, "user.dma_read") * per,
        dma_write_rate=_g(deltas, "user.dma_write") * per,
        system_user_fxu_ratio=(system_fxu / user_fxu) if user_fxu > 0 else 0.0,
        user_cycle_fraction=(user_cycles / total_cycles) if total_cycles > 0 else 0.0,
    )
