"""Per-program measurement — §3's user-facing RS2HPM commands.

"For individual programs to be reported, users must place commands into
their batch scripts or preface interactive sessions with the appropriate
RS2HPM commands."  This module is that command pair as a Python context
manager: snapshot on entry, snapshot on exit, difference, derive.

Phases can be annotated (``mark``) so a solver's init / iterate / output
sections get separate counter blocks — the workflow a NAS user tuning a
CFD code would follow with the real tools.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.hpm.derived import DerivedRates, workload_rates
from repro.power2.counters import snapshot_delta
from repro.power2.node import Node


@dataclass(frozen=True)
class PhaseCounts:
    """One marked phase's counter deltas and derived rates."""

    name: str
    seconds: float
    deltas: dict[str, int]

    @property
    def rates(self) -> DerivedRates:
        return workload_rates(self.deltas, self.seconds, 1)


@dataclass
class ProgramReport:
    """Everything a finished ProgramMonitor run measured."""

    phases: list[PhaseCounts] = field(default_factory=list)

    @property
    def total_seconds(self) -> float:
        return sum(p.seconds for p in self.phases)

    def totals(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for p in self.phases:
            for k, v in p.deltas.items():
                out[k] = out.get(k, 0) + v
        return out

    @property
    def rates(self) -> DerivedRates:
        if self.total_seconds <= 0:
            raise ValueError("program accrued no wall time")
        return workload_rates(self.totals(), self.total_seconds, 1)

    def phase(self, name: str) -> PhaseCounts:
        for p in self.phases:
            if p.name == name:
                return p
        raise KeyError(f"no phase named {name!r}")

    def hotspots(self) -> list[tuple[str, float]]:
        """Phases ranked by share of total wall time."""
        total = self.total_seconds
        if total <= 0:
            return []
        ranked = sorted(self.phases, key=lambda p: p.seconds, reverse=True)
        return [(p.name, p.seconds / total) for p in ranked]


class ProgramMonitor:
    """Measure a program's execution on one node, phase by phase.

    >>> node = Node(0)
    >>> with ProgramMonitor(node) as pm:            # doctest: +SKIP
    ...     run_initialization(node)
    ...     pm.mark("iterate")
    ...     run_solver(node)
    >>> pm.report.rates.mflops_total                # doctest: +SKIP

    The monitor reads the node's simulated clock through the wall time
    the node itself accounts (``node.wall_seconds``), so it composes
    with both the phase API and the rate API.
    """

    def __init__(self, node: Node, *, first_phase: str = "main") -> None:
        self.node = node
        self.report = ProgramReport()
        self._phase_name = first_phase
        self._phase_start: float | None = None
        self._phase_snapshot: dict[str, int] | None = None
        self._active = False

    # ------------------------------------------------------------------
    def __enter__(self) -> "ProgramMonitor":
        self._active = True
        self._begin_phase(self._phase_name)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._end_phase()
        self._active = False

    def mark(self, name: str) -> None:
        """Close the current phase and open ``name``."""
        if not self._active:
            raise RuntimeError("mark() outside an active ProgramMonitor")
        self._end_phase()
        self._begin_phase(name)

    # ------------------------------------------------------------------
    def _begin_phase(self, name: str) -> None:
        self._phase_name = name
        self._phase_start = self.node.wall_seconds
        self._phase_snapshot = self.node.snapshot()

    def _end_phase(self) -> None:
        assert self._phase_snapshot is not None and self._phase_start is not None
        seconds = self.node.wall_seconds - self._phase_start
        deltas = snapshot_delta(self._phase_snapshot, self.node.snapshot())
        if seconds > 0 or any(deltas.values()):
            self.report.phases.append(
                PhaseCounts(name=self._phase_name, seconds=seconds, deltas=deltas)
            )
