"""The per-node RS2HPM data-collection daemon.

§3: "The RS2HPM daemon, executing on all nodes of the SP2, allows
automatic sampling and data access over the network via TCP."  The
transport is irrelevant to the study (see DESIGN.md substitution 3), so
the daemon here answers "requests" as direct method calls, but keeps the
daemon-shaped behaviour that matters:

* it serves counter snapshots for its node whether or not user processes
  are executing;
* it is individually unreachable when its node is down — the collector
  must tolerate missing nodes (§3 samples "all the SP2 nodes which are
  available").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hpm.monitor_api import MonitorInterface, MonitorReading
from repro.power2.node import Node


class DaemonUnavailable(ConnectionError):
    """Raised when querying a daemon whose node is down."""


@dataclass
class NodeDaemon:
    """One node's snapshot server."""

    interface: MonitorInterface
    available: bool = True

    @classmethod
    def for_node(cls, node: Node) -> "NodeDaemon":
        return cls(interface=MonitorInterface(node))

    @property
    def node_id(self) -> int:
        return self.interface.node.node_id

    def request_snapshot(self, now: float) -> MonitorReading:
        """Serve a counter snapshot (the collector's TCP request)."""
        if not self.available:
            raise DaemonUnavailable(f"node {self.node_id} is not responding")
        return self.interface.read(now)

    def request_vector(self, now: float, out=None):
        """Vectorized snapshot: both banks in FLAT_NAMES order (int64).

        Same data as :meth:`request_snapshot`, minus the dict packing —
        the collector's per-node fast path.  ``out`` writes in place.
        """
        if not self.available:
            raise DaemonUnavailable(f"node {self.node_id} is not responding")
        node = self.interface.node
        node.sync(now)
        return node.monitor.snapshot_vector(out)

    def mark_down(self) -> None:
        self.available = False

    def mark_up(self) -> None:
        self.available = True
