"""The kernel-extension analogue: programming and reading the monitor.

RS2HPM shipped a kernel extension plus a user library (§3).  Two pieces
are modelled:

* :class:`MonitorInterface` — program a *verified* counter group onto a
  node's monitor, read snapshots, and difference them with 32-bit wrap
  handling;
* :class:`MultipassSampler` — §3's "multipass sampling mode": the chip
  exposes more signals (≈320) than the 22 physical counters, so tools
  rotate through several counter groups over time and scale each
  group's counts by the inverse of its duty cycle to estimate
  full-interval totals.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hpm.events import CounterGroup, EventCatalog
from repro.power2.counters import snapshot_delta
from repro.power2.node import Node


@dataclass(frozen=True)
class MonitorReading:
    """One read: flat ``mode.counter`` values plus the group in force."""

    time: float
    group: str
    values: dict[str, int]


class MonitorInterface:
    """Per-node monitor programming and reading."""

    def __init__(self, node: Node, catalog: EventCatalog | None = None) -> None:
        self.node = node
        self.catalog = catalog or EventCatalog()
        self._group: CounterGroup = self.catalog.get("nas-table1")

    @property
    def group(self) -> CounterGroup:
        return self._group

    def program(self, group_name: str) -> None:
        """Select a counter group; raises for unverified groups (§3)."""
        self._group = self.catalog.get(group_name)

    def read(self, now: float) -> MonitorReading:
        """Sync the node to ``now`` and read all counters."""
        self.node.sync(now)
        return MonitorReading(time=now, group=self._group.name, values=self.node.snapshot())

    @staticmethod
    def delta(before: MonitorReading, after: MonitorReading) -> dict[str, int]:
        """Wrap-safe counter difference between two reads."""
        if before.group != after.group:
            raise ValueError(
                f"cannot diff across counter groups ({before.group} vs {after.group})"
            )
        if after.time < before.time:
            raise ValueError("readings out of order")
        return snapshot_delta(before.values, after.values)


class MultipassSampler:
    """Rotate through several counter groups, extrapolating totals.

    Given ``groups`` g₁..gₙ sampled round-robin with equal time slices,
    an event counted only while its group is programmed is scaled by n
    to estimate its full-interval count.  The estimate is unbiased for
    steady workloads — and visibly noisy for bursty ones, which is why
    the paper's 22-event selection stayed fixed for nine months.
    """

    def __init__(self, interface: MonitorInterface, group_names: list[str]) -> None:
        if not group_names:
            raise ValueError("need at least one group to sample")
        for name in group_names:
            interface.catalog.get(name)  # raises if unknown/unverified
        self.interface = interface
        self.group_names = list(group_names)
        self._pass_idx = 0

    @property
    def n_passes(self) -> int:
        return len(self.group_names)

    def sample(self, start: float, end: float) -> dict[str, dict[str, float]]:
        """Sample [start, end) in equal slices, one per group.

        Returns ``{group_name: {counter: estimated_full_interval_count}}``
        with each group's measured slice counts scaled by ``n_passes``.
        """
        if end <= start:
            raise ValueError("sampling interval must have positive length")
        slice_len = (end - start) / self.n_passes
        out: dict[str, dict[str, float]] = {}
        t = start
        for name in self.group_names:
            self.interface.program(name)
            before = self.interface.read(t)
            t += slice_len
            after = self.interface.read(t)
            counts = MonitorInterface.delta(before, after)
            out[name] = {k: v * float(self.n_passes) for k, v in counts.items()}
            self._pass_idx += 1
        return out
