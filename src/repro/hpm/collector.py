"""The 15-minute system-wide collection cron job.

§3: "At 15-minute intervals, the cron daemon runs a script to collect
data from all the SP2 nodes which are available for user jobs and stores
this data for later analysis."  The collector polls every node daemon,
stores one :class:`SystemSample` per interval, and the analysis layer
differences consecutive samples to build the daily/15-minute rate series
behind Figure 1 and the 5.7 Gflops 15-minute maximum.

Storage is an ``(n_nodes, 44)`` int64 matrix per sample (user bank then
system bank, see :data:`repro.power2.counters.FLAT_NAMES`); a 270-day
campaign takes ~26k samples × 144 nodes, so the per-sample path must be
vectorized (profiled: the dict-based path was 30× slower).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import TYPE_CHECKING

import numpy as np

from repro.hpm.daemon import DaemonUnavailable, NodeDaemon
from repro.power2.counters import FLAT_NAMES
from repro.sim.engine import Simulator
from repro.sim.periodic import PeriodicTask

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.bus import EventBus
    from repro.tracing.tracer import Tracer

#: The paper's sampling cadence.
SAMPLE_INTERVAL_SECONDS = 15 * 60.0


@dataclass(frozen=True)
class SystemSample:
    """One cron pass: per-node counter snapshots at one instant."""

    time: float
    node_ids: tuple[int, ...]
    #: Shape (len(node_ids), 44): user bank then system bank per row.
    matrix: np.ndarray
    #: Node ids that did not answer this pass.
    missing: tuple[int, ...] = ()

    def nodes(self) -> list[int]:
        return sorted(self.node_ids)

    @property
    def unreachable(self) -> tuple[int, ...]:
        """Node ids whose daemon did not answer this pass (sorted).

        Telemetry's node-gap rule reads this to alert on daemon outages
        rather than merely tolerating them.
        """
        return tuple(sorted(self.missing))

    @property
    def n_unreachable(self) -> int:
        return len(self.missing)

    def snapshot_for(self, node_id: int) -> dict[str, int]:
        """One node's flat-labelled snapshot (compatibility view)."""
        row = self.matrix[self.node_ids.index(node_id)]
        return {name: int(v) for name, v in zip(FLAT_NAMES, row)}


@dataclass(frozen=True)
class IntervalCounts:
    """Summed counter deltas between two consecutive samples."""

    start: float
    end: float
    totals: dict[str, int]
    n_nodes: int
    #: True when this interval spans one or more dropped collector
    #: passes: its counts are real (the counters kept accumulating) but
    #: cover more than one cadence period, so per-interval *rates* are
    #: effectively interpolated across the gap.
    interpolated: bool = False

    @property
    def seconds(self) -> float:
        return self.end - self.start


def sample_delta(before: SystemSample, after: SystemSample) -> IntervalCounts:
    """Counter deltas between two samples, summed over the nodes present
    in both (a node missing from either is skipped, as the real scripts
    had to do).  Shared by the batch :meth:`SystemCollector.intervals`
    path and the streaming telemetry service's incremental path."""
    if before.node_ids == after.node_ids:
        diff = after.matrix - before.matrix
        n_common = len(before.node_ids)
    else:
        common = sorted(set(before.node_ids) & set(after.node_ids))
        bi = [before.node_ids.index(n) for n in common]
        ai = [after.node_ids.index(n) for n in common]
        diff = after.matrix[ai] - before.matrix[bi]
        n_common = len(common)
    if np.any(diff < 0):
        raise AssertionError("software counters went backwards")
    sums = diff.sum(axis=0)
    totals = {name: int(v) for name, v in zip(FLAT_NAMES, sums) if v}
    return IntervalCounts(
        start=before.time, end=after.time, totals=totals, n_nodes=n_common
    )


class SampleSeries:
    """Interval algebra over an ordered run of :class:`SystemSample`.

    Base of :class:`SystemCollector` (which *produces* samples on the
    simulation clock) and of the parallel runner's merged series (which
    *concatenates* rebased shard samples) — both expose the same
    ``samples`` / ``intervals()`` surface the analysis layer consumes.
    """

    def __init__(
        self,
        samples: "list[SystemSample] | None" = None,
        *,
        cadence: float | None = None,
    ) -> None:
        self.samples: list[SystemSample] = samples if samples is not None else []
        self._intervals_cache: list[IntervalCounts] | None = None
        #: Nominal sample spacing; intervals spanning well over one
        #: cadence period (dropped passes) are flagged interpolated.
        #: ``None`` disables flagging.
        self.cadence = cadence

    def intervals(self) -> list[IntervalCounts]:
        """Counter deltas between consecutive samples, summed over the
        nodes present in both (a node missing from either is skipped for
        that interval, as the real scripts had to do).  With a known
        cadence, intervals spanning a collector gap carry
        ``interpolated=True``."""
        if self._intervals_cache is not None:
            return self._intervals_cache
        out: list[IntervalCounts] = []
        for before, after in zip(self.samples, self.samples[1:]):
            iv = sample_delta(before, after)
            if self.cadence is not None and iv.seconds > self.cadence * 1.5:
                iv = dataclasses.replace(iv, interpolated=True)
            out.append(iv)
        self._intervals_cache = out
        return out

    def gap_intervals(self) -> list[IntervalCounts]:
        """The intervals that span dropped collector passes."""
        return [iv for iv in self.intervals() if iv.interpolated]

    def interval_matrix(self, counter: str) -> tuple[np.ndarray, np.ndarray]:
        """(interval end times, per-interval summed counts) for one
        counter — the fast path for time-series analysis."""
        ivs = self.intervals()
        times = np.array([iv.end for iv in ivs])
        counts = np.array([iv.totals.get(counter, 0) for iv in ivs], dtype=float)
        return times, counts


class SystemCollector(SampleSeries):
    """Collects and stores system-wide samples on the simulation clock."""

    def __init__(
        self,
        daemons: list[NodeDaemon],
        *,
        interval: float = SAMPLE_INTERVAL_SECONDS,
        bus: "EventBus | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        if not daemons:
            raise ValueError("collector needs at least one node daemon")
        super().__init__(cadence=interval)
        self.daemons = daemons
        self.interval = interval
        self.bus = bus
        #: Span tracer; each cron pass becomes one span on the machine
        #: timeline (sample publication happens inside it, so alerts
        #: fired from the sample carry this span's id).
        self.tracer = tracer
        #: Nodes unreachable as of the latest pass (transition tracking
        #: for the node.down / node.up bus topics).
        self._down: set[int] = set()
        #: Fault-injection hook: when set, the next cron pass is lost
        #: (no sample stored) — the §3 pipeline's missing data files.
        self._drop_next = False
        self.passes_dropped = 0
        # Batched fast path: when every daemon's node shares one counter
        # store (vectorized accrual backends), a cron pass is a single
        # masked sweep over the store instead of a per-daemon loop.
        self._store = None
        self._slots: list[int] = []
        nodes = [d.interface.node for d in daemons]
        store = getattr(nodes[0], "_store", None)
        if store is not None and all(
            getattr(n, "_store", None) is store for n in nodes
        ):
            self._store = store
            self._slots = [n._slot for n in nodes]

    def attach(self, sim: Simulator) -> PeriodicTask:
        """Arm the cron job; also takes the t=0 baseline sample."""
        self.collect(sim.now)
        return PeriodicTask(sim, self.interval, lambda s: self.collect(s.now), name="rs2hpm-cron")

    def drop_next_pass(self) -> None:
        """Suppress the next cron pass (fault injection)."""
        self._drop_next = True

    def collect(self, now: float) -> SystemSample | None:
        """One cron pass over all node daemons.

        Returns ``None`` (and stores nothing) when the pass was dropped
        by fault injection; the next successful pass's interval then
        spans the gap and is flagged interpolated.
        """
        if self._drop_next:
            self._drop_next = False
            self.passes_dropped += 1
            if self.bus is not None:
                from repro.telemetry.bus import TOPIC_COLLECTOR_GAP, CollectorGap

                self.bus.publish(
                    TOPIC_COLLECTOR_GAP,
                    CollectorGap(time=now, passes_dropped=self.passes_dropped),
                )
            return None
        if self.tracer is None or not self.tracer.enabled:
            return self._collect(now)
        from repro.tracing.span import CAT_HPM

        with self.tracer.span("cron-pass", CAT_HPM) as span:
            sample = self._collect(now)
            span.args["nodes"] = len(sample.node_ids)
            span.args["missing"] = len(sample.missing)
        return sample

    def _collect(self, now: float) -> SystemSample:
        if self._store is not None:
            ids, missing, matrix = self._collect_batched(now)
        else:
            ids, missing, matrix = self._collect_scalar(now)
        sample = SystemSample(
            time=now, node_ids=tuple(ids), matrix=matrix, missing=tuple(missing)
        )
        self.samples.append(sample)
        self._intervals_cache = None
        self._publish(sample)
        return sample

    def _collect_scalar(self, now: float):
        """Per-daemon polling loop (legacy scalar accrual backend)."""
        matrix = np.empty((len(self.daemons), len(FLAT_NAMES)), dtype=np.int64)
        ids: list[int] = []
        missing: list[int] = []
        row = 0
        for daemon in self.daemons:
            try:
                daemon.request_vector(now, out=matrix[row])
            except DaemonUnavailable:
                missing.append(daemon.node_id)
                continue
            ids.append(daemon.node_id)
            row += 1
        matrix = matrix[:row].copy() if row < len(self.daemons) else matrix
        return ids, missing, matrix

    def _collect_batched(self, now: float):
        """One masked sweep over the shared counter store.

        Unreachable nodes are masked *out of the sweep entirely* — the
        scalar path never syncs a node whose daemon is down, and a down
        node's clock advancing in two pieces instead of one would change
        its accumulators bitwise.  Gap flagging (``missing``) follows the
        same daemon order as the scalar loop.
        """
        ids: list[int] = []
        missing: list[int] = []
        slots: list[int] = []
        for daemon, slot in zip(self.daemons, self._slots):
            if daemon.available:
                ids.append(daemon.node_id)
                slots.append(slot)
            else:
                missing.append(daemon.node_id)
        self._store.sync_slots(slots, now)
        matrix = self._store.snapshot_matrix(slots)
        return ids, missing, matrix

    def _publish(self, sample: SystemSample) -> None:
        """Feed the streaming side: the sample itself, plus node
        reachability transitions (down on first missed pass, up on the
        first answered one)."""
        if self.bus is None:
            return
        from repro.telemetry.bus import (
            TOPIC_NODE_DOWN,
            TOPIC_NODE_UP,
            TOPIC_SAMPLE,
            NodeStateChanged,
            SampleTaken,
        )

        now_down = set(sample.missing)
        for node_id in sorted(now_down - self._down):
            self.bus.publish(
                TOPIC_NODE_DOWN, NodeStateChanged(time=sample.time, node_id=node_id, up=False)
            )
        for node_id in sorted(self._down - now_down):
            self.bus.publish(
                TOPIC_NODE_UP, NodeStateChanged(time=sample.time, node_id=node_id, up=True)
            )
        self._down = now_down
        self.bus.publish(TOPIC_SAMPLE, SampleTaken(time=sample.time, sample=sample))
