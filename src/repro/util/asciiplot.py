"""Terminal rendering of the paper's figures.

There is no plotting library in the offline environment, so every figure
harness emits (a) a CSV-able data series and (b) an ASCII rendering good
enough to eyeball the *shape* the paper shows: the Figure 1 time series,
the Figure 2 walltime histogram, and the Figure 3/5 scatters.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def _normalize(
    values: np.ndarray, lo: float | None, hi: float | None
) -> tuple[np.ndarray, float, float]:
    vmin = float(np.min(values)) if lo is None else lo
    vmax = float(np.max(values)) if hi is None else hi
    if vmax <= vmin:
        vmax = vmin + 1.0
    return (values - vmin) / (vmax - vmin), vmin, vmax


def ascii_series(
    y: Sequence[float],
    *,
    width: int = 72,
    height: int = 16,
    title: str = "",
    ymin: float | None = None,
    ymax: float | None = None,
    marker: str = "*",
) -> str:
    """Render a 1-D series as a fixed-size character plot (Figures 1, 4)."""
    arr = np.asarray(y, dtype=float)
    if arr.size == 0:
        return title + "\n(empty series)"
    # Downsample/bin the x axis to the plot width using bin means.
    bins = np.array_split(arr, min(width, arr.size))
    binned = np.array([b.mean() for b in bins])
    norm, vmin, vmax = _normalize(binned, ymin, ymax)
    rows = np.clip((norm * (height - 1)).round().astype(int), 0, height - 1)
    grid = [[" "] * len(binned) for _ in range(height)]
    for x, r in enumerate(rows):
        grid[height - 1 - r][x] = marker
    lines = [title] if title else []
    lines.append(f"{vmax:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{vmin:10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * len(binned))
    return "\n".join(lines)


def ascii_histogram(
    labels: Sequence[object],
    counts: Sequence[float],
    *,
    width: int = 50,
    title: str = "",
) -> str:
    """Horizontal bar chart keyed by label (Figure 2)."""
    vals = np.asarray(counts, dtype=float)
    if len(labels) != vals.size:
        raise ValueError("labels and counts must have equal length")
    lines = [title] if title else []
    if vals.size == 0:
        lines.append("(empty histogram)")
        return "\n".join(lines)
    peak = vals.max() if vals.max() > 0 else 1.0
    label_w = max(len(str(lb)) for lb in labels)
    for lb, v in zip(labels, vals):
        bar = "#" * int(round(width * v / peak))
        lines.append(f"{str(lb).rjust(label_w)} | {bar} {v:.3g}")
    return "\n".join(lines)


def ascii_scatter(
    x: Sequence[float],
    y: Sequence[float],
    *,
    width: int = 72,
    height: int = 20,
    title: str = "",
    marker: str = "o",
) -> str:
    """2-D scatter (Figures 3 and 5)."""
    xs = np.asarray(x, dtype=float)
    ys = np.asarray(y, dtype=float)
    if xs.shape != ys.shape:
        raise ValueError("x and y must have equal length")
    lines = [title] if title else []
    if xs.size == 0:
        lines.append("(empty scatter)")
        return "\n".join(lines)
    nx, xmin, xmax = _normalize(xs, None, None)
    ny, ymin, ymax = _normalize(ys, None, None)
    grid = [[" "] * width for _ in range(height)]
    cols = np.clip((nx * (width - 1)).round().astype(int), 0, width - 1)
    rows = np.clip((ny * (height - 1)).round().astype(int), 0, height - 1)
    for c, r in zip(cols, rows):
        grid[height - 1 - r][c] = marker
    lines.append(f"{ymax:10.3g} +" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " |" + "".join(row))
    lines.append(f"{ymin:10.3g} +" + "".join(grid[-1]))
    lines.append(" " * 12 + "-" * width)
    lines.append(" " * 12 + f"{xmin:<.3g}".ljust(width - 8) + f"{xmax:>.3g}")
    return "\n".join(lines)
