"""Shared utilities for the SP2/HPM reproduction.

This subpackage holds the small, dependency-free building blocks used by
every other layer: physical-unit helpers and machine constants
(:mod:`repro.util.units`), deterministic random-stream management
(:mod:`repro.util.rng`), statistics used by the paper's analysis
(:mod:`repro.util.stats`), and plain-text rendering of tables and figures
(:mod:`repro.util.tables`, :mod:`repro.util.asciiplot`).
"""

from repro.util.units import (
    KILO,
    MEGA,
    GIGA,
    MICROSECOND,
    bytes_per_word,
    mflops,
    gflops,
    per_second_to_mega,
)
from repro.util.rng import RngStreams
from repro.util.stats import (
    moving_average,
    summary,
    time_weighted_mean,
    RunningStats,
)
from repro.util.tables import Table, render_table
from repro.util.asciiplot import ascii_scatter, ascii_series, ascii_histogram

__all__ = [
    "KILO",
    "MEGA",
    "GIGA",
    "MICROSECOND",
    "bytes_per_word",
    "mflops",
    "gflops",
    "per_second_to_mega",
    "RngStreams",
    "moving_average",
    "summary",
    "time_weighted_mean",
    "RunningStats",
    "Table",
    "render_table",
    "ascii_scatter",
    "ascii_series",
    "ascii_histogram",
]
