"""Unit helpers and SP2 machine constants.

The paper reports rates in Mflops/Mips/Mops (millions per second), sizes
in kB/MB/GB, and times in seconds or microseconds.  Centralizing the
conversions keeps the counter algebra in :mod:`repro.hpm.derived` free of
magic numbers.
"""

from __future__ import annotations

KILO = 1_000
MEGA = 1_000_000
GIGA = 1_000_000_000

KIB = 1024
MIB = 1024 * 1024
GIB = 1024 * 1024 * 1024

MICROSECOND = 1e-6

#: Bytes in one machine word on the POWER2 (64-bit floating point data
#: moves in 8-byte words; the paper's DMA transfers are 4 or 8 words).
WORD_BYTES = 8


def bytes_per_word(words: float) -> float:
    """Convert a word count to bytes using the POWER2 8-byte word."""
    return words * WORD_BYTES


def mflops(flops: float, seconds: float) -> float:
    """Rate in millions of floating-point operations per second."""
    if seconds <= 0.0:
        return 0.0
    return flops / seconds / MEGA


def gflops(flops: float, seconds: float) -> float:
    """Rate in billions of floating-point operations per second."""
    if seconds <= 0.0:
        return 0.0
    return flops / seconds / GIGA


def per_second_to_mega(count: float, seconds: float) -> float:
    """Generic count → millions-per-second rate (the paper's M*/S rows)."""
    if seconds <= 0.0:
        return 0.0
    return count / seconds / MEGA
