"""Statistics used by the paper's analysis.

The paper reports moving averages (Figures 1 and 4), means and standard
deviations over a filtered day sample (Tables 2 and 3), and a
*time-weighted* average Mflops per node for the batch-job database (§6).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


def moving_average(values: np.ndarray | list[float], window: int) -> np.ndarray:
    """Trailing moving average with a warm-up ramp.

    The first ``i < window`` points average everything seen so far, which
    matches how the paper's moving-average curves start at the first day
    rather than after a gap.
    """
    x = np.asarray(values, dtype=float)
    if window <= 0:
        raise ValueError(f"window must be positive, got {window}")
    if x.ndim != 1:
        raise ValueError("moving_average expects a 1-D series")
    if x.size == 0:
        return x.copy()
    csum = np.cumsum(x)
    out = np.empty_like(csum)
    head = min(window, x.size)
    out[:head] = csum[:head] / np.arange(1, head + 1)
    if x.size > window:
        out[window:] = (csum[window:] - csum[:-window]) / window
    return out


@dataclass(frozen=True)
class Summary:
    """Mean/std/min/max of a sample, as reported in Tables 2 and 3."""

    mean: float
    std: float
    min: float
    max: float
    n: int


def summary(values: np.ndarray | list[float]) -> Summary:
    """Sample summary; ``std`` is the population std the paper's era used."""
    x = np.asarray(values, dtype=float)
    if x.size == 0:
        return Summary(0.0, 0.0, 0.0, 0.0, 0)
    return Summary(
        mean=float(np.mean(x)),
        std=float(np.std(x)),
        min=float(np.min(x)),
        max=float(np.max(x)),
        n=int(x.size),
    )


def time_weighted_mean(
    values: np.ndarray | list[float], weights: np.ndarray | list[float]
) -> float:
    """Weighted mean, e.g. per-job Mflops weighted by wall-clock time (§6)."""
    v = np.asarray(values, dtype=float)
    w = np.asarray(weights, dtype=float)
    if v.shape != w.shape:
        raise ValueError(f"shape mismatch: values {v.shape} vs weights {w.shape}")
    if np.any(w < 0):
        raise ValueError("weights must be non-negative")
    total = w.sum()
    if total == 0.0:
        return 0.0
    return float(np.dot(v, w) / total)


class RunningStats:
    """Welford online mean/variance — used by long-running collectors."""

    def __init__(self) -> None:
        self.n = 0
        self._mean = 0.0
        self._m2 = 0.0

    def add(self, x: float) -> None:
        self.n += 1
        delta = x - self._mean
        self._mean += delta / self.n
        self._m2 += delta * (x - self._mean)

    @property
    def mean(self) -> float:
        return self._mean if self.n else 0.0

    @property
    def variance(self) -> float:
        return self._m2 / self.n if self.n else 0.0

    @property
    def std(self) -> float:
        return float(np.sqrt(self.variance))

    def merge(self, other: "RunningStats") -> "RunningStats":
        """Combine two disjoint streams (parallel reduction of collectors)."""
        merged = RunningStats()
        merged.n = self.n + other.n
        if merged.n == 0:
            return merged
        delta = other._mean - self._mean
        merged._mean = self._mean + delta * other.n / merged.n
        merged._m2 = self._m2 + other._m2 + delta**2 * self.n * other.n / merged.n
        return merged
