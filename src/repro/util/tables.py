"""Plain-text table rendering for the experiment harness.

Each benchmark regenerates one of the paper's tables and prints it in the
same row order; this module does the formatting so the generators only
produce ``(label, values...)`` rows.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence


@dataclass
class Table:
    """A titled grid of cells with a header row.

    Cells may be strings or numbers; numbers are formatted with
    ``float_fmt`` (default three significant decimals like the paper).
    """

    title: str
    columns: Sequence[str]
    rows: list[list[object]] = field(default_factory=list)
    float_fmt: str = "{:.3g}"

    def add_row(self, *cells: object) -> None:
        if len(cells) != len(self.columns):
            raise ValueError(
                f"row has {len(cells)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(cells))

    def add_section(self, label: str) -> None:
        """A full-width section divider row (Table 3's OPS/INST/CACHE/IO)."""
        self.rows.append([f"-- {label} --"] + [""] * (len(self.columns) - 1))

    def column(self, name: str) -> list[object]:
        """Extract a column by header name, skipping section rows."""
        idx = list(self.columns).index(name)
        return [r[idx] for r in self.rows if not _is_section(r)]

    def as_dict(self) -> dict[str, list[object]]:
        return {c: self.column(c) for c in self.columns}

    def render(self) -> str:
        return render_table(self)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()


def _is_section(row: Sequence[object]) -> bool:
    first = row[0]
    return isinstance(first, str) and first.startswith("-- ")


def _fmt(cell: object, float_fmt: str) -> str:
    if isinstance(cell, bool):
        return str(cell)
    if isinstance(cell, float):
        return float_fmt.format(cell)
    if isinstance(cell, int):
        return str(cell)
    return str(cell)


def render_table(table: Table) -> str:
    """Render to a boxed, column-aligned ASCII table."""
    header = [str(c) for c in table.columns]
    body = [[_fmt(c, table.float_fmt) for c in row] for row in table.rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Iterable[str]) -> str:
        return "| " + " | ".join(c.ljust(w) for c, w in zip(cells, widths)) + " |"

    sep = "+-" + "-+-".join("-" * w for w in widths) + "-+"
    out = [table.title, sep, line(header), sep]
    for row in body:
        out.append(line(row))
    out.append(sep)
    return "\n".join(out)
