"""Deterministic random-stream management.

Every stochastic component of the simulation (job arrivals, kernel mixes,
per-day demand, paging noise, ...) draws from its own named child stream
derived from a single campaign seed.  This gives two properties the study
harness relies on:

* **Reproducibility** — a campaign is fully determined by one integer seed.
* **Isolation** — adding draws to one component does not perturb any other
  component's stream, so calibration stays stable as the code evolves.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A tree of named, independent :class:`numpy.random.Generator` streams.

    >>> streams = RngStreams(seed=42)
    >>> arrivals = streams.get("pbs.arrivals")
    >>> arrivals is streams.get("pbs.arrivals")
    True
    >>> streams.get("workload.mix") is arrivals
    False
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = int(seed)
        self._root = np.random.SeedSequence(self.seed)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream is derived from the campaign seed and a stable hash of
        the name, so the same (seed, name) pair always yields the same
        sequence regardless of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(_stable_hash(name),),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """A per-entity stream, e.g. one per job: ``spawn("job", job_id)``."""
        return self.get(f"{name}#{int(index)}")

    def names(self) -> list[str]:
        """Names of all streams created so far (for diagnostics)."""
        return sorted(self._streams)


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash (``hash()`` is salted per process)."""
    h = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h >> 1
