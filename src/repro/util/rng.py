"""Deterministic random-stream management.

Every stochastic component of the simulation (job arrivals, kernel mixes,
per-day demand, paging noise, ...) draws from its own named child stream
derived from a single campaign seed.  This gives two properties the study
harness relies on:

* **Reproducibility** — a campaign is fully determined by one integer seed.
* **Isolation** — adding draws to one component does not perturb any other
  component's stream, so calibration stays stable as the code evolves.
"""

from __future__ import annotations

import numpy as np


class RngStreams:
    """A tree of named, independent :class:`numpy.random.Generator` streams.

    >>> streams = RngStreams(seed=42)
    >>> arrivals = streams.get("pbs.arrivals")
    >>> arrivals is streams.get("pbs.arrivals")
    True
    >>> streams.get("workload.mix") is arrivals
    False
    """

    def __init__(self, seed: int = 0, *, spawn_key: tuple[int, ...] = ()) -> None:
        self.seed = int(seed)
        #: Key prefix every named child derives under.  ``()`` is the
        #: campaign root; shard trees use ``(_SHARD_TAG, shard_id)`` so
        #: their name-space cannot collide with the root's (child keys
        #: have different lengths).
        self.spawn_key = tuple(int(k) for k in spawn_key)
        for k in self.spawn_key:
            # SeedSequence rejects negative spawn keys with an opaque
            # numpy error; fail early with the actual offending value.
            if k < 0:
                raise ValueError(
                    f"spawn_key entries must be non-negative, got {k} in {self.spawn_key}"
                )
        self._root = np.random.SeedSequence(self.seed, spawn_key=self.spawn_key)
        self._streams: dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use.

        The stream is derived from the campaign seed and a stable hash of
        the name, so the same (seed, name) pair always yields the same
        sequence regardless of creation order.
        """
        gen = self._streams.get(name)
        if gen is None:
            child = np.random.SeedSequence(
                entropy=self._root.entropy,
                spawn_key=(*self.spawn_key, _stable_hash(name)),
            )
            gen = np.random.default_rng(child)
            self._streams[name] = gen
        return gen

    def spawn(self, name: str, index: int) -> np.random.Generator:
        """A per-entity stream, e.g. one per job: ``spawn("job", job_id)``."""
        return self.get(f"{name}#{int(index)}")

    def names(self) -> list[str]:
        """Names of all streams created so far (for diagnostics)."""
        return sorted(self._streams)


#: Spawn-key tag separating shard stream trees from everything else.
_SHARD_TAG = 0x5348_4152_44  # "SHARD"

#: Spawn-key tag for fleet-member stream trees (:mod:`repro.fleet`).
_FLEET_TAG = 0x464C_4545_54  # "FLEET"


def spawn_stream(
    seed: int, shard_id: int, *, namespace: tuple[int, ...] = ()
) -> RngStreams:
    """An :class:`RngStreams` tree for one shard of a sharded campaign.

    Shard ``shard_id`` of campaign ``seed`` always receives the same
    stream tree — independent of how many shards exist, how many worker
    processes execute them, or in which order they are scheduled.  This
    is the determinism anchor of :mod:`repro.parallel`: a shard's random
    draws are a pure function of ``(seed, shard_id)``.

    The shard tree is disjoint from the campaign-root tree
    (``RngStreams(seed)``) and from every other shard's tree by
    construction: child spawn keys are ``(tag, shard_id, name_hash)``
    versus the root's ``(name_hash,)``.

    ``namespace`` prefixes the spawn key — fleet members pass
    :func:`member_key` so member *m*'s shard trees are disjoint from
    every other member's (and from single-machine campaigns) while
    remaining a pure function of ``(seed, member name, shard_id)``.
    """
    if shard_id < 0:
        raise ValueError(f"shard_id must be non-negative, got {shard_id}")
    return RngStreams(seed, spawn_key=(*namespace, _SHARD_TAG, int(shard_id)))


def member_key(name: str) -> tuple[int, int]:
    """The spawn-key namespace of fleet member ``name``.

    Keyed by the member's *name*, not its position in the fleet spec, so
    per-member random realizations (fault schedules, shard trees) are
    invariant to member ordering.
    """
    return (_FLEET_TAG, _stable_hash(name))


def member_streams(seed: int, name: str) -> RngStreams:
    """The campaign-root stream tree of fleet member ``name``.

    Disjoint from the single-machine root tree (``RngStreams(seed)``),
    from shard trees, and from every other member's tree by spawn-key
    construction.
    """
    return RngStreams(seed, spawn_key=member_key(name))


def _stable_hash(name: str) -> int:
    """A process-stable 63-bit hash (``hash()`` is salted per process)."""
    h = 1469598103934665603  # FNV-1a 64-bit offset basis
    for byte in name.encode("utf-8"):
        h ^= byte
        h = (h * 1099511628211) & 0xFFFFFFFFFFFFFFFF
    return h >> 1
