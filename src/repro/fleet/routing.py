"""Shared fleet demand, routed onto member machines.

One demand model feeds the whole fleet: the user population, the AR(1)
demand walk and every per-submission draw come from the *fleet* seed's
root streams — the same streams, in the same order, as the
single-machine :func:`repro.workload.traces.generate_trace`.  Routing
decisions consume no draws from the submission stream (policies are
either deterministic or draw from their own ``fleet.*`` streams), which
gives the degenerate contract the tests pin:

* a **single-member** fleet draws a submission stream byte-identical to
  the single-machine trace at the same seed, under *any* policy;
* routed member traces always partition the fleet stream — job counts
  sum to the fleet demand no matter the policy or fleet shape.

Per day, the node-second budget is ``demand × total fleet nodes``, the
fleet-scale analogue of one machine's ``demand × n_nodes``; each drawn
job is routed to a member and its node count clamped to that member's
capacity exactly the way the single-machine generator clamps to its
machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.fleet.spec import FleetSpec
from repro.util.rng import RngStreams
from repro.workload.apps import ApplicationTemplate, application
from repro.workload.profile import JobProfile
from repro.workload.traces import SECONDS_PER_DAY, CampaignTrace, Submission
from repro.workload.users import DemandModel, UserPopulation


@dataclass
class FleetTrace:
    """The routed fleet submission stream.

    ``member_traces`` hold each machine's share on the *campaign* clock;
    ``assignments`` records the routing decision per fleet submission in
    draw order (diagnostics and the routing property tests).
    """

    spec: FleetSpec
    member_traces: dict[str, CampaignTrace]
    demand_levels: np.ndarray
    assignments: list[str] = field(default_factory=list)

    @property
    def total_submissions(self) -> int:
        return len(self.assignments)

    def routed_counts(self) -> dict[str, int]:
        return {name: len(t.submissions) for name, t in self.member_traces.items()}


class RoutingPolicy:
    """Chooses a member index for each drawn job.

    ``choose`` must not consume from the submission stream — policies are
    deterministic functions of the routing state (plus their own named
    streams, drawn up-front) so the fleet's submission draws stay
    byte-aligned with the single-machine generator.
    """

    name = "abstract"

    def choose(self, user_id: int, app: ApplicationTemplate, eligible: list[int]) -> int:
        raise NotImplementedError

    def commit(self, member_index: int, node_seconds: float) -> None:
        """Observe the routed job (load trackers use this)."""


class HomeCenterPolicy(RoutingPolicy):
    """Every user has a home center; jobs run there when they fit.

    Homes are drawn once per user from the ``fleet.homes`` stream,
    weighted by member capacity — big centers host more users, the way
    allocations are granted.  A job whose application cannot run on the
    home machine falls back to the largest eligible member.
    """

    name = "home-center"

    def __init__(self, spec: FleetSpec, streams: RngStreams) -> None:
        rng = streams.get("fleet.homes")
        weights = np.array([m.n_nodes for m in spec.members], dtype=float)
        weights /= weights.sum()
        self._members = spec.members
        self.homes = [
            int(rng.choice(len(spec.members), p=weights)) for _ in range(spec.n_users)
        ]

    def choose(self, user_id: int, app: ApplicationTemplate, eligible: list[int]) -> int:
        home = self.homes[user_id]
        if home in eligible:
            return home
        return max(eligible, key=lambda i: (self._members[i].n_nodes, -i))


class LeastLoadedPolicy(RoutingPolicy):
    """Route to the eligible member with the lowest committed load.

    Load is routed node-seconds over capacity — the meta-scheduler view
    of "which center has the shortest queue" without simulating the
    queues themselves.  Ties break toward the earlier member, so the
    decision is a pure function of the routing history.
    """

    name = "least-loaded"

    def __init__(self, spec: FleetSpec, streams: RngStreams) -> None:
        self._capacity = [float(m.n_nodes) for m in spec.members]
        self._committed = [0.0] * len(spec.members)

    def choose(self, user_id: int, app: ApplicationTemplate, eligible: list[int]) -> int:
        return min(eligible, key=lambda i: (self._committed[i] / self._capacity[i], i))

    def commit(self, member_index: int, node_seconds: float) -> None:
        self._committed[member_index] += node_seconds


class RoundRobinPolicy(RoutingPolicy):
    """Cycle through the members, skipping ineligible ones."""

    name = "round-robin"

    def __init__(self, spec: FleetSpec, streams: RngStreams) -> None:
        self._n = len(spec.members)
        self._next = 0

    def choose(self, user_id: int, app: ApplicationTemplate, eligible: list[int]) -> int:
        for step in range(self._n):
            candidate = (self._next + step) % self._n
            if candidate in eligible:
                self._next = (candidate + 1) % self._n
                return candidate
        raise AssertionError("choose() called with no eligible member")


_POLICIES = {
    HomeCenterPolicy.name: HomeCenterPolicy,
    LeastLoadedPolicy.name: LeastLoadedPolicy,
    RoundRobinPolicy.name: RoundRobinPolicy,
}


def make_policy(spec: FleetSpec, streams: RngStreams) -> RoutingPolicy:
    """Instantiate the spec's routing policy (validated by FleetSpec)."""
    try:
        cls = _POLICIES[spec.routing]
    except KeyError:  # pragma: no cover - FleetSpec already rejects this
        raise ValueError(f"unknown routing policy {spec.routing!r}") from None
    return cls(spec, streams)


def _clamp_nodes(app: ApplicationTemplate, nodes: int, capacity: int) -> int:
    """The single-machine generator's clamp, against one member."""
    if nodes > capacity:
        return max(c for c in app.node_choices if c <= capacity)
    return nodes


def generate_fleet_trace(spec: FleetSpec) -> FleetTrace:
    """Draw the shared fleet demand and route it onto the members.

    The draw sequence per submission — pick user, pick app, sample
    nodes, instantiate profile, pick time-of-day — is byte-for-byte the
    single-machine sequence; only the eligibility test and the clamp run
    against the routed member's capacity instead of "the" machine's.

    Routing runs over the members in *name order*, whatever order the
    spec lists them in: homes, load tie-breaks and round-robin cycles
    are functions of the member set, so reordering the spec's member
    tuple never changes any member's routed trace.
    """
    spec = replace(spec, members=tuple(sorted(spec.members, key=lambda m: m.name)))
    streams = RngStreams(spec.seed)
    population = UserPopulation(spec.n_users, streams.get("workload.population"))
    if spec.demand_mean is None:
        demand = DemandModel(streams.get("workload.demand"), spec.n_days)
    else:
        demand = DemandModel(
            streams.get("workload.demand"), spec.n_days, mean=spec.demand_mean
        )
    sub_rng = streams.get("workload.submissions")
    policy = make_policy(spec, streams)

    members = spec.members
    total_nodes = spec.total_nodes
    member_subs: dict[str, list[Submission]] = {m.name: [] for m in members}
    assignments: list[str] = []

    for day in range(spec.n_days):
        budget = demand.demand(day) * total_nodes * SECONDS_PER_DAY
        spent = 0.0
        while spent < budget:
            user = population.pick_user(sub_rng)
            app = application(user.pick_app(sub_rng))
            eligible = [
                i for i, m in enumerate(members) if min(app.node_choices) <= m.n_nodes
            ]
            if not eligible:
                continue  # this code cannot run anywhere in the fleet
            target = policy.choose(user.user_id, app, eligible)
            member = members[target]
            nodes = _clamp_nodes(app, app.sample_nodes(sub_rng), member.n_nodes)
            profile: JobProfile = app.instantiate(sub_rng, nodes=nodes)
            t = day * SECONDS_PER_DAY + demand.submit_time_in_day(sub_rng)
            sub = Submission(
                time=t,
                user=user.user_id,
                app_name=app.name,
                nodes=profile.nodes,
                profile=profile,
            )
            member_subs[member.name].append(sub)
            assignments.append(member.name)
            spent += sub.node_seconds
            policy.commit(target, sub.node_seconds)

    traces: dict[str, CampaignTrace] = {}
    for member in members:
        subs = sorted(member_subs[member.name], key=lambda s: s.time)
        traces[member.name] = CampaignTrace(
            seed=spec.seed,
            n_days=spec.n_days,
            n_nodes=member.n_nodes,
            submissions=subs,
            demand_levels=demand.levels.copy(),
        )
    return FleetTrace(
        spec=spec,
        member_traces=traces,
        demand_levels=demand.levels.copy(),
        assignments=assignments,
    )
