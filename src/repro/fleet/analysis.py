"""XDMoD-style cross-machine workload analysis.

The modern descendants of the paper compare centers, not nodes: per
-center utilization, job-size distribution and application mix, side by
side across a federation (XDMoD's NSF-wide tables, the Blue Waters
workload report).  This module reduces a :class:`~repro.fleet.runner.
FleetDataset` to a JSON-ready **fleet summary** — the ``sp2-fleet
--json`` block, pinned by a golden file — and renders the comparison
tables from that summary, so saved runs (``sp2-fleet report saved.json``)
and live runs share one rendering path.
"""

from __future__ import annotations

from typing import Any

from repro.fleet.runner import FleetDataset
from repro.power2.config import POWER2_590
from repro.util.tables import Table


def _member_summary(fleet: FleetDataset, name: str) -> dict[str, Any]:
    member = fleet.spec.member(name)
    dataset = fleet.member(name)
    daily = dataset.daily_gflops()
    util = dataset.daily_utilization()[: len(daily)] if daily.size else dataset.daily_utilization()
    acct = dataset.accounting
    cfg = member.machine_config() or POWER2_590
    peak_gflops = member.n_nodes * cfg.peak_mflops / 1e3

    job_sizes: dict[str, dict[str, float]] = {}
    app_mix: dict[str, float] = {}
    for r in acct.records:
        node_seconds = r.nodes_requested * r.walltime_seconds
        bucket = job_sizes.setdefault(str(r.nodes_requested), {"jobs": 0, "node_seconds": 0.0})
        bucket["jobs"] += 1
        bucket["node_seconds"] += node_seconds
        app_mix[r.app_name] = app_mix.get(r.app_name, 0.0) + node_seconds

    out: dict[str, Any] = {
        "name": name,
        "n_nodes": member.n_nodes,
        "fault_profile": member.fault_profile,
        "peak_gflops": peak_gflops,
        "routed_submissions": len(fleet.trace.member_traces[name].submissions),
        "jobs_accounted": len(acct),
        "utilization_mean": float(util.mean()) if util.size else 0.0,
        "utilization_max": float(util.max()) if util.size else 0.0,
        "daily_gflops_mean": float(daily.mean()) if daily.size else 0.0,
        "daily_gflops_max": float(daily.max()) if daily.size else 0.0,
        "efficiency": (
            float(daily.mean()) / peak_gflops if daily.size and peak_gflops else 0.0
        ),
        "time_weighted_mflops_per_node": acct.time_weighted_mflops_per_node(),
        "job_sizes": dict(sorted(job_sizes.items(), key=lambda kv: int(kv[0]))),
        "app_mix_node_seconds": dict(sorted(app_mix.items())),
    }
    if dataset.telemetry is not None:
        out["alerts_total"] = dataset.telemetry.summary()["alerts_total"]
    if dataset.faults is not None:
        from repro.faults.report import fault_summary

        out["faults"] = fault_summary(dataset.faults)
    return out


def fleet_summary(fleet: FleetDataset) -> dict[str, Any]:
    """The ``--json`` fleet block: spec echo plus per-center metrics."""
    members = [_member_summary(fleet, m.name) for m in fleet.spec.members]
    total_nodes = fleet.spec.total_nodes
    return {
        "fleet": {
            "name": fleet.spec.name,
            "seed": fleet.spec.seed,
            "n_days": fleet.spec.n_days,
            "n_users": fleet.spec.n_users,
            "routing": fleet.spec.routing,
            "n_members": len(members),
            "total_nodes": total_nodes,
            "total_submissions": fleet.trace.total_submissions,
            "total_jobs_accounted": sum(m["jobs_accounted"] for m in members),
            "fleet_gflops_mean": sum(m["daily_gflops_mean"] for m in members),
            # Node-weighted: the utilization of the federation seen as
            # one big machine.
            "utilization_mean": sum(
                m["utilization_mean"] * m["n_nodes"] for m in members
            )
            / total_nodes,
            "members": members,
        }
    }


def _fleet_block(summary: dict[str, Any]) -> dict[str, Any]:
    """Accept either the full ``--json`` document or the block itself."""
    return summary.get("fleet", summary)


def utilization_table(summary: dict[str, Any]) -> Table:
    """Per-center utilization and delivered performance."""
    block = _fleet_block(summary)
    t = Table(
        title=f"Fleet utilization by center ({block['n_days']} days, "
        f"routing={block['routing']})",
        columns=(
            "Center",
            "Nodes",
            "Faults",
            "Jobs",
            "Util avg",
            "Util max",
            "Gflops avg",
            "Eff %",
            "MF/node (tw)",
        ),
    )
    for m in block["members"]:
        t.add_row(
            m["name"],
            m["n_nodes"],
            m["fault_profile"],
            m["jobs_accounted"],
            m["utilization_mean"],
            m["utilization_max"],
            m["daily_gflops_mean"],
            100.0 * m["efficiency"],
            m["time_weighted_mflops_per_node"],
        )
    t.add_section("fleet")
    t.add_row(
        "(all)",
        block["total_nodes"],
        "",
        block["total_jobs_accounted"],
        block["utilization_mean"],
        "",
        block["fleet_gflops_mean"],
        "",
        "",
    )
    return t


def job_size_table(summary: dict[str, Any]) -> Table:
    """Job-size distribution per center (% of node-seconds)."""
    block = _fleet_block(summary)
    members = block["members"]
    sizes = sorted(
        {int(s) for m in members for s in m["job_sizes"]},
    )
    t = Table(
        title="Job-size distribution (% of node-seconds per center)",
        columns=("Nodes/job", *[m["name"] for m in members]),
    )
    totals = {
        m["name"]: sum(b["node_seconds"] for b in m["job_sizes"].values())
        for m in members
    }
    for size in sizes:
        row: list[object] = [size]
        for m in members:
            bucket = m["job_sizes"].get(str(size))
            total = totals[m["name"]]
            share = 100.0 * bucket["node_seconds"] / total if bucket and total else 0.0
            row.append(share)
        t.add_row(*row)
    return t


def app_mix_table(summary: dict[str, Any]) -> Table:
    """Application mix per center (% of node-seconds)."""
    block = _fleet_block(summary)
    members = block["members"]
    fleet_totals: dict[str, float] = {}
    for m in members:
        for app, ns in m["app_mix_node_seconds"].items():
            fleet_totals[app] = fleet_totals.get(app, 0.0) + ns
    apps = sorted(fleet_totals, key=lambda a: (-fleet_totals[a], a))
    t = Table(
        title="Application mix (% of node-seconds per center)",
        columns=("Application", *[m["name"] for m in members]),
    )
    totals = {
        m["name"]: sum(m["app_mix_node_seconds"].values()) for m in members
    }
    for app in apps:
        row: list[object] = [app]
        for m in members:
            total = totals[m["name"]]
            share = (
                100.0 * m["app_mix_node_seconds"].get(app, 0.0) / total
                if total
                else 0.0
            )
            row.append(share)
        t.add_row(*row)
    return t


def render_fleet_report(summary: dict[str, Any]) -> str:
    """The full cross-center comparison: all three tables."""
    block = _fleet_block(summary)
    header = (
        f"Fleet {block['name']!r}: {block['n_members']} centers, "
        f"{block['total_nodes']} nodes, {block['n_users']} users, "
        f"seed {block['seed']} — {block['total_submissions']} submissions routed "
        f"via {block['routing']}"
    )
    return "\n\n".join(
        [
            header,
            utilization_table(summary).render(),
            job_size_table(summary).render(),
            app_mix_table(summary).render(),
        ]
    )


#: The per-center metrics ``compare_fleets`` diffs, with display labels.
_COMPARE_METRICS = (
    ("jobs_accounted", "jobs"),
    ("utilization_mean", "util avg"),
    ("daily_gflops_mean", "Gflops avg"),
    ("time_weighted_mflops_per_node", "MF/node (tw)"),
)


def compare_fleets(
    a: dict[str, Any], b: dict[str, Any], *, label_a: str = "A", label_b: str = "B"
) -> Table:
    """Center-by-center diff of two fleet runs (XDMoD's compare view).

    Centers present in only one run get a one-sided row; the delta
    column is the relative change from ``a`` to ``b``.
    """
    block_a, block_b = _fleet_block(a), _fleet_block(b)
    by_name_a = {m["name"]: m for m in block_a["members"]}
    by_name_b = {m["name"]: m for m in block_b["members"]}
    names = list(by_name_a) + [n for n in by_name_b if n not in by_name_a]
    t = Table(
        title=f"Fleet comparison: {label_a} vs {label_b}",
        columns=("Center", "Metric", label_a, label_b, "Delta %"),
    )
    for name in names:
        ma, mb = by_name_a.get(name), by_name_b.get(name)
        for key, label in _COMPARE_METRICS:
            va = ma[key] if ma else None
            vb = mb[key] if mb else None
            if va is not None and vb is not None and va:
                delta = 100.0 * (vb - va) / va
                t.add_row(name, label, va, vb, delta)
            else:
                t.add_row(
                    name,
                    label,
                    va if va is not None else "-",
                    vb if vb is not None else "-",
                    "",
                )
    return t
