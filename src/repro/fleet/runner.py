"""The federation runner: one fleet campaign, member by member.

Each member machine runs its routed share of the fleet demand as an
ordinary single-machine campaign — serially by default, or through the
existing sharded runner (:mod:`repro.parallel`) when ``workers`` /
``shard_days`` are given.  Determinism contract, extending the shard
runner's:

* every member's dataset is a pure function of ``(spec, member name)``
  — never of member ordering, worker count, or scheduling order (fault
  schedules come from a member-*name*-keyed RNG namespace, traces from
  the fleet-level routed stream);
* a **single-member** fleet run is byte-identical to the single-machine
  :func:`repro.core.study.run_study` path at the same seed — same
  trace, same fault schedule, same samples, same reports.  A one-member
  fleet *is* the single-machine study (its fault namespace is the
  campaign root, not a member key, to keep that contract exact even
  under fault injection).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.study import StudyDataset, WorkloadStudy
from repro.fleet.routing import FleetTrace, generate_fleet_trace
from repro.fleet.spec import FleetSpec, MemberSpec
from repro.util.rng import RngStreams, member_key


@dataclass
class MemberResult:
    """One machine's campaign inside a fleet run."""

    spec: MemberSpec
    dataset: StudyDataset


@dataclass
class FleetDataset:
    """Everything a fleet campaign measured, per member."""

    spec: FleetSpec
    trace: FleetTrace
    members: list[MemberResult]

    def member(self, name: str) -> StudyDataset:
        for m in self.members:
            if m.spec.name == name:
                return m.dataset
        raise KeyError(f"no fleet member named {name!r}")

    def datasets(self) -> dict[str, StudyDataset]:
        return {m.spec.name: m.dataset for m in self.members}


def _member_fault_namespace(spec: FleetSpec, member: MemberSpec) -> tuple[int, ...]:
    """Single-member fleets use the campaign-root tree (the degenerate
    contract above); real fleets key each member's faults by name."""
    if len(spec.members) == 1:
        return ()
    return member_key(member.name)


def run_fleet(
    spec: FleetSpec,
    *,
    workers: int | None = None,
    shard_days: int | None = None,
    member_hook: Callable[[MemberSpec, WorkloadStudy], None] | None = None,
) -> FleetDataset:
    """Run the whole fleet campaign and return the per-member datasets.

    With ``workers``/``shard_days``, each member campaign executes
    through the sharded runner on its routed trace (split into day-range
    shards); member output depends on the shard plan but never on the
    worker count, exactly like single-machine campaigns.

    ``member_hook`` is called with ``(member_spec, study)`` after each
    serial member study is wired but before it runs — the seam the ops
    service uses to tap member buses for live federation (taps only
    subscribe extra consumers, so hooked runs stay byte-identical).
    Sharded member campaigns have no live bus to tap; the hook is
    rejected there rather than silently skipped.
    """
    if member_hook is not None and (workers is not None or shard_days is not None):
        raise ValueError(
            "member_hook requires the serial member path (sharded member "
            "campaigns replay telemetry at merge time; stream the merged "
            "dataset instead)"
        )
    trace = generate_fleet_trace(spec)
    sharded = workers is not None or shard_days is not None
    results: list[MemberResult] = []
    for member in spec.members:
        config = spec.member_config(member)
        member_trace = trace.member_traces[member.name]
        namespace = _member_fault_namespace(spec, member)
        if sharded:
            from repro.parallel.runner import run_parallel_study

            dataset = run_parallel_study(
                config,
                workers=workers or 1,
                shard_days=shard_days,
                trace=member_trace,
                fault_namespace=namespace,
            )
        else:
            fault_streams = (
                RngStreams(spec.seed, spawn_key=namespace) if namespace else None
            )
            study = WorkloadStudy(config, fault_streams=fault_streams)
            study.sim.label = f"fleet:{member.name}"
            if member_hook is not None:
                member_hook(member, study)
            dataset = study.run(member_trace)
        results.append(MemberResult(spec=member, dataset=dataset))
    return FleetDataset(spec=spec, trace=trace, members=results)
