"""Declarative fleet description: N heterogeneous SP2-class machines.

The paper measured exactly one 144-node SP2; its modern descendants
(XDMoD's NSF-wide workload analysis, the Blue Waters workload report)
measure *fleets* of heterogeneous centers and compare workloads across
them.  A :class:`FleetSpec` is the declarative counterpart of
:class:`repro.core.study.StudyConfig` at fleet scale: a shared user
population and demand model, a job-routing policy, and one
:class:`MemberSpec` per machine — node count, memory size, TLB shape,
switch characteristics and fault profile all per member.

Both specs are frozen, validated at construction (bad day counts, node
counts, routing or fault-profile names fail with a ``ValueError`` naming
the offending value, not a traceback deep inside the sim), and round-trip
through plain dicts so fleet definitions can live in JSON files.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.study import StudyConfig
from repro.faults.profile import PROFILES, FaultProfile
from repro.power2.config import POWER2_590, MachineConfig, SwitchConfig, TLBGeometry

#: Routing policies :mod:`repro.fleet.routing` implements.
ROUTING_POLICIES = ("home-center", "least-loaded", "round-robin")

MB = 1024 * 1024


@dataclass(frozen=True)
class MemberSpec:
    """One machine of the fleet.

    Overrides default to ``None`` = the NAS SP2 value (POWER2/590 nodes,
    45 µs / 34 MB/s switch), so a member that only states a node count is
    a smaller-or-larger NAS machine.
    """

    name: str
    n_nodes: int
    #: Named fault profile (:data:`repro.faults.profile.PROFILES`).
    fault_profile: str = "none"
    #: Per-node memory (MB); the §6 paging pathologies scale with this.
    memory_mb: int | None = None
    #: TLB entries per node (power-of-two sized machines shipped 512).
    tlb_entries: int | None = None
    #: Switch fabric overrides.
    switch_latency_us: float | None = None
    switch_bandwidth_mb_s: float | None = None

    def __post_init__(self) -> None:
        if not self.name or not str(self.name).strip():
            raise ValueError("member name cannot be empty")
        if self.n_nodes <= 0:
            raise ValueError(
                f"member {self.name!r}: n_nodes must be positive, got {self.n_nodes}"
            )
        if self.fault_profile not in PROFILES:
            raise ValueError(
                f"member {self.name!r}: unknown fault profile "
                f"{self.fault_profile!r}; available: {', '.join(sorted(PROFILES))}"
            )
        for fname in ("memory_mb", "tlb_entries", "switch_latency_us", "switch_bandwidth_mb_s"):
            value = getattr(self, fname)
            if value is not None and value <= 0:
                raise ValueError(
                    f"member {self.name!r}: {fname} must be positive, got {value}"
                )

    # ------------------------------------------------------------------
    # Concrete configuration objects
    # ------------------------------------------------------------------
    def machine_config(self) -> MachineConfig | None:
        """The member's per-node constants (None = POWER2/590 defaults)."""
        if self.memory_mb is None and self.tlb_entries is None:
            return None
        cfg = POWER2_590
        if self.memory_mb is not None:
            cfg = replace(cfg, memory_bytes=self.memory_mb * MB)
        if self.tlb_entries is not None:
            cfg = replace(cfg, tlb=TLBGeometry(entries=self.tlb_entries))
        return cfg

    def switch_config(self) -> SwitchConfig | None:
        """The member's switch fabric (None = SP2 HPS defaults)."""
        if self.switch_latency_us is None and self.switch_bandwidth_mb_s is None:
            return None
        base = SwitchConfig()
        return SwitchConfig(
            latency_seconds=(
                self.switch_latency_us * 1e-6
                if self.switch_latency_us is not None
                else base.latency_seconds
            ),
            bandwidth_bytes_per_s=(
                self.switch_bandwidth_mb_s * 1e6
                if self.switch_bandwidth_mb_s is not None
                else base.bandwidth_bytes_per_s
            ),
        )

    def fault_profile_obj(self) -> FaultProfile | None:
        profile = FaultProfile.named(self.fault_profile)
        return None if profile.is_null else profile

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "n_nodes": self.n_nodes}
        if self.fault_profile != "none":
            out["fault_profile"] = self.fault_profile
        for fname in ("memory_mb", "tlb_entries", "switch_latency_us", "switch_bandwidth_mb_s"):
            value = getattr(self, fname)
            if value is not None:
                out[fname] = value
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "MemberSpec":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(
                f"unknown member spec keys: {', '.join(sorted(unknown))}"
            )
        return cls(**data)


@dataclass(frozen=True)
class FleetSpec:
    """A fleet campaign: shared demand, routed onto member machines."""

    members: tuple[MemberSpec, ...]
    name: str = "fleet"
    seed: int = 0
    n_days: int = 30
    #: The *fleet-level* user population; every member draws jobs from
    #: the same users (the "millions of users" axis scales here).
    n_users: int = 60
    #: Cross-machine job routing policy (:data:`ROUTING_POLICIES`).
    routing: str = "home-center"
    demand_mean: float | None = None
    accrual_backend: str = "auto"

    def __post_init__(self) -> None:
        if isinstance(self.members, list):  # tolerate list literals
            object.__setattr__(self, "members", tuple(self.members))
        if not self.members:
            raise ValueError("a fleet needs at least one member machine")
        names = [m.name for m in self.members]
        if len(set(names)) != len(names):
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate member names: {', '.join(dupes)}")
        if self.n_days <= 0:
            raise ValueError(f"n_days must be positive, got {self.n_days}")
        if self.n_users <= 0:
            raise ValueError(f"n_users must be positive, got {self.n_users}")
        if self.routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown routing policy {self.routing!r}; available: "
                f"{', '.join(ROUTING_POLICIES)}"
            )
        if self.demand_mean is not None and self.demand_mean <= 0:
            raise ValueError(f"demand_mean must be positive, got {self.demand_mean}")

    @property
    def total_nodes(self) -> int:
        """Aggregate fleet capacity; the shared demand model budgets
        node-seconds against this the way one machine budgets against
        its own node count."""
        return sum(m.n_nodes for m in self.members)

    def member(self, name: str) -> MemberSpec:
        for m in self.members:
            if m.name == name:
                return m
        raise KeyError(f"no fleet member named {name!r}")

    def member_config(self, member: MemberSpec) -> StudyConfig:
        """The member's single-machine campaign configuration.

        The member inherits the *fleet* seed: its submission trace comes
        from the routed fleet demand, and its fault schedule from a
        member-name-keyed RNG namespace, so no per-member seed juggling
        is needed — and a single-member fleet is configured identically
        to the plain single-machine study.
        """
        return StudyConfig(
            seed=self.seed,
            n_days=self.n_days,
            n_nodes=member.n_nodes,
            n_users=self.n_users,
            machine_config=member.machine_config(),
            switch_config=member.switch_config(),
            demand_mean=self.demand_mean,
            fault_profile=member.fault_profile_obj(),
            accrual_backend=self.accrual_backend,
        )

    def to_dict(self) -> dict:
        out: dict = {
            "name": self.name,
            "seed": self.seed,
            "n_days": self.n_days,
            "n_users": self.n_users,
            "routing": self.routing,
            "members": [m.to_dict() for m in self.members],
        }
        if self.demand_mean is not None:
            out["demand_mean"] = self.demand_mean
        if self.accrual_backend != "auto":
            out["accrual_backend"] = self.accrual_backend
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "FleetSpec":
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown fleet spec keys: {', '.join(sorted(unknown))}")
        payload = dict(data)
        members = payload.pop("members", None)
        if not members:
            raise ValueError("fleet spec needs a non-empty 'members' list")
        return cls(
            members=tuple(MemberSpec.from_dict(m) for m in members),
            **payload,
        )


# ----------------------------------------------------------------------
# Presets (the CLI's --preset and the docs' running examples)
# ----------------------------------------------------------------------
def _demo2() -> FleetSpec:
    """A two-machine smoke fleet: small, fast, heterogeneous."""
    return FleetSpec(
        name="demo2",
        members=(
            MemberSpec(name="west", n_nodes=32),
            MemberSpec(name="east", n_nodes=64, memory_mb=64),
        ),
        n_days=5,
        n_users=16,
    )


def _demo3() -> FleetSpec:
    """The three-center heterogeneous fleet the docs analyze: a small
    memory-starved center on a slower fabric, the NAS reference machine,
    and a large center with a fast fabric but an unreliable first year."""
    return FleetSpec(
        name="demo3",
        members=(
            MemberSpec(
                name="lewis",
                n_nodes=64,
                memory_mb=64,
                switch_latency_us=90.0,
                switch_bandwidth_mb_s=17.0,
                fault_profile="mild",
            ),
            MemberSpec(name="ames", n_nodes=144),
            MemberSpec(
                name="langley",
                n_nodes=256,
                memory_mb=256,
                tlb_entries=1024,
                switch_latency_us=30.0,
                switch_bandwidth_mb_s=68.0,
                fault_profile="pathological",
            ),
        ),
        n_days=30,
        n_users=120,
    )


PRESETS: dict[str, "FleetSpec"] = {
    "demo2": _demo2(),
    "demo3": _demo3(),
}


def preset(name: str) -> FleetSpec:
    """Look up a preset fleet by name."""
    try:
        return PRESETS[name]
    except KeyError:
        raise ValueError(
            f"unknown fleet preset {name!r}; available: {', '.join(sorted(PRESETS))}"
        ) from None
