"""Fleet federation: many heterogeneous SP2-class machines, one workload.

The paper measured one 144-node SP2 for one month; this package scales
that methodology across a *fleet* — N machines with heterogeneous node
counts, memory, TLB and switch configurations and fault profiles, fed by
a shared user population whose jobs are routed across centers, with
XDMoD-style cross-machine analysis over the merged results.

Layers:

* :mod:`repro.fleet.spec` — declarative :class:`FleetSpec` /
  :class:`MemberSpec` (validated, JSON round-trip, presets);
* :mod:`repro.fleet.routing` — shared demand generation plus
  home-center / least-loaded / round-robin routing policies;
* :mod:`repro.fleet.runner` — member campaigns through the serial or
  sharded runner, deterministic per ``(spec, member name)``;
* :mod:`repro.fleet.analysis` — per-center utilization, job-size and
  application-mix comparison tables plus the ``--json`` fleet block.
"""

from repro.fleet.analysis import (
    app_mix_table,
    compare_fleets,
    fleet_summary,
    job_size_table,
    render_fleet_report,
    utilization_table,
)
from repro.fleet.routing import FleetTrace, generate_fleet_trace, make_policy
from repro.fleet.runner import FleetDataset, MemberResult, run_fleet
from repro.fleet.spec import (
    PRESETS,
    ROUTING_POLICIES,
    FleetSpec,
    MemberSpec,
    preset,
)

__all__ = [
    "PRESETS",
    "ROUTING_POLICIES",
    "FleetDataset",
    "FleetSpec",
    "FleetTrace",
    "MemberResult",
    "MemberSpec",
    "app_mix_table",
    "compare_fleets",
    "fleet_summary",
    "generate_fleet_trace",
    "job_size_table",
    "make_policy",
    "preset",
    "render_fleet_report",
    "run_fleet",
    "utilization_table",
]
