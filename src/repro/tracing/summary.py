"""Whole-trace summaries for ``sp2-trace summary``."""

from __future__ import annotations

from typing import Any, Iterable

from repro.tracing.span import CAT_JOB, Span


def trace_summary(spans: Iterable[Span]) -> dict[str, Any]:
    """JSON-ready facts about one recorded trace."""
    spans = list(spans)
    by_cat: dict[str, int] = {}
    t0 = t1 = 0.0
    for s in spans:
        by_cat[s.category] = by_cat.get(s.category, 0) + 1
        if s.start < t0:
            t0 = s.start
        if s.end is not None and s.end > t1:
            t1 = s.end
    jobs = sorted(
        int(s.args.get("job_id", 0)) for s in spans if s.category == CAT_JOB
    )
    return {
        "spans": len(spans),
        "by_category": dict(sorted(by_cat.items())),
        "jobs_traced": len(jobs),
        "first_job": jobs[0] if jobs else None,
        "last_job": jobs[-1] if jobs else None,
        "sim_seconds": t1 - t0,
    }


def render_trace_summary(summary: dict[str, Any]) -> str:
    lines = [
        f"spans      : {summary['spans']} over {summary['sim_seconds'] / 86400:.2f} "
        "simulated days",
        f"jobs traced: {summary['jobs_traced']}"
        + (
            f" (ids {summary['first_job']}..{summary['last_job']})"
            if summary["jobs_traced"]
            else ""
        ),
        "by category:",
    ]
    for cat, count in summary["by_category"].items():
        lines.append(f"  {cat:<14s} {count:8d}")
    return "\n".join(lines)
