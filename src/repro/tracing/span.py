"""Spans: the unit of the tracing layer.

A span is one named interval of *simulated* time with a parent link, a
category, and free-form args — the same shape Chrome's trace-event
format and Perfetto use, so the exporters are a direct mapping.  Span
ids are small sequential strings (``s1``, ``s2``, …) assigned by the
tracer, which keeps recorded traces byte-reproducible for a fixed seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

# ----------------------------------------------------------------------
# Categories (the ``cat`` field of every span)
# ----------------------------------------------------------------------

#: One whole campaign (root of the machine-wide timeline).
CAT_CAMPAIGN = "campaign"
#: One simulator event dispatch (zero sim-time duration).
CAT_SIM_EVENT = "sim.event"
#: One PBS scheduling pass.
CAT_SCHED = "pbs.sched"
#: A batch job's whole life, submit → epilogue (one tree per job).
CAT_JOB = "pbs.job"
#: Job lifecycle states under the root: ``queued`` and ``running``.
CAT_JOB_STATE = "pbs.state"
#: Prologue/epilogue counter snapshots.
CAT_JOB_SNAPSHOT = "pbs.snapshot"
#: Synthesized wall-time attribution segments under ``running``.
CAT_JOB_PHASE = "job.phase"
#: One 15-minute collector cron pass.
CAT_HPM = "hpm.collect"
#: Switch messages / exchanges (modeled duration).
CAT_SWITCH = "switch"
#: NFS home-filesystem transfers (modeled duration).
CAT_FS = "fs"
#: Node-level work phases (the phase-execution path).
CAT_NODE_PHASE = "node.phase"

#: The wall-time attribution buckets of the critical-path analyzer.
PHASE_KINDS = ("compute", "switch-wait", "io", "paging")


@dataclass
class Span:
    """One named interval of simulated time."""

    span_id: str
    name: str
    category: str
    start: float
    end: float | None = None
    parent_id: str | None = None
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def finished(self) -> bool:
        return self.end is not None

    @property
    def duration(self) -> float:
        """Sim seconds covered; open spans report zero."""
        return (self.end - self.start) if self.end is not None else 0.0

    def to_dict(self) -> dict[str, Any]:
        """JSON-ready flat form (the JSONL exporter's row)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "start": self.start,
            "end": self.end,
            "args": self.args,
        }

    @classmethod
    def from_dict(cls, row: dict[str, Any]) -> "Span":
        return cls(
            span_id=row["id"],
            name=row["name"],
            category=row["cat"],
            start=row["start"],
            end=row["end"],
            parent_id=row.get("parent"),
            args=dict(row.get("args") or {}),
        )

    def rebase(self, *, time_offset: float = 0.0, id_offset: int = 0) -> "Span":
        """A copy shifted onto another clock/id space.

        Shard merges use this: shard *k*'s spans keep their internal
        structure but move to the campaign clock (``time_offset`` =
        shard start in seconds) and into a disjoint id range
        (``id_offset`` = ``k × SPAN_ID_STRIDE``), so merged traces stay
        unique-id'd and sortable by the exporters' ``(start, id)`` key.
        """
        return Span(
            span_id=_offset_id(self.span_id, id_offset),
            name=self.name,
            category=self.category,
            start=self.start + time_offset,
            end=None if self.end is None else self.end + time_offset,
            parent_id=(
                None if self.parent_id is None else _offset_id(self.parent_id, id_offset)
            ),
            args=dict(self.args),
        )


def _offset_id(span_id: str, offset: int) -> str:
    """Shift a tracer-assigned ``s<n>`` id by ``offset``."""
    if offset == 0:
        return span_id
    return f"s{int(span_id[1:]) + offset}"


def span_index(
    spans: Iterable[Span],
) -> tuple[dict[str, Span], dict[str | None, list[Span]]]:
    """``(by_id, children)`` maps for tree walks.

    ``children[None]`` lists the roots; child lists keep span-id order,
    which for tracer-assigned ids is creation order.
    """
    by_id: dict[str, Span] = {}
    children: dict[str | None, list[Span]] = {}
    for span in spans:
        by_id[span.span_id] = span
        children.setdefault(span.parent_id, []).append(span)
    return by_id, children
