"""Per-job critical-path analysis over a recorded span tree.

The paper could say *that* the SP2 sustained ~3% of peak but had to
infer *why* from aggregate counters (§5's "invisible waits").  With a
span tree per job the question inverts: each job's wall time is
attributed to the four places it can go — compute, switch wait, I/O,
paging — from the phase segments the scheduler synthesized under the
job's ``running`` span, and the longest root-to-leaf chain of the tree
is reported as the job's critical path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from repro.tracing.span import (
    CAT_JOB,
    CAT_JOB_PHASE,
    CAT_JOB_STATE,
    PHASE_KINDS,
    Span,
    span_index,
)


@dataclass(frozen=True)
class JobCriticalPath:
    """Wall-time attribution for one finished job."""

    job_id: int
    app_name: str
    nodes: int
    queue_wait_seconds: float
    wall_seconds: float
    #: Seconds per attribution bucket (keys ⊆ :data:`PHASE_KINDS`).
    breakdown: dict[str, float]
    #: Longest root-to-leaf chain: ``(span name, seconds)`` pairs.
    chain: tuple[tuple[str, float], ...]

    @property
    def dominant(self) -> str:
        """Where most of the wall time went."""
        if not self.breakdown:
            return "compute"
        return max(self.breakdown, key=lambda k: self.breakdown[k])

    def fraction(self, kind: str) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.breakdown.get(kind, 0.0) / self.wall_seconds


def longest_chain(
    root: Span, children: dict[str | None, list[Span]]
) -> tuple[tuple[str, float], ...]:
    """Greedy max-duration descent from ``root`` to a leaf."""
    chain: list[tuple[str, float]] = []
    node = root
    while node is not None:
        chain.append((node.name, node.duration))
        kids = children.get(node.span_id, [])
        node = max(kids, key=lambda s: s.duration) if kids else None
    return tuple(chain)


def _analyze_root(
    root: Span, children: dict[str | None, list[Span]]
) -> JobCriticalPath:
    states = {
        s.name: s for s in children.get(root.span_id, []) if s.category == CAT_JOB_STATE
    }
    queued = states.get("queued")
    running = states.get("running")
    breakdown: dict[str, float] = {}
    if running is not None:
        for child in children.get(running.span_id, []):
            if child.category == CAT_JOB_PHASE:
                breakdown[child.name] = breakdown.get(child.name, 0.0) + child.duration
    wall = running.duration if running is not None else 0.0
    # Whatever the phase segments did not cover is compute (a profile
    # without fraction diagnostics yields no segments at all).
    covered = sum(breakdown.values())
    if wall > covered + 1e-9:
        breakdown["compute"] = breakdown.get("compute", 0.0) + (wall - covered)
    return JobCriticalPath(
        job_id=int(root.args.get("job_id", 0)),
        app_name=str(root.args.get("app", "?")),
        nodes=int(root.args.get("nodes", 0)),
        queue_wait_seconds=queued.duration if queued is not None else 0.0,
        wall_seconds=wall,
        breakdown=breakdown,
        chain=longest_chain(root, children),
    )


def analyze_jobs(spans: Iterable[Span]) -> list[JobCriticalPath]:
    """One :class:`JobCriticalPath` per finished job, job-id order."""
    spans = list(spans)
    _, children = span_index(spans)
    roots = sorted(
        (s for s in spans if s.category == CAT_JOB),
        key=lambda s: s.args.get("job_id", 0),
    )
    return [_analyze_root(r, children) for r in roots]


def machine_attribution(paths: Iterable[JobCriticalPath]) -> dict[str, float]:
    """Node-second-weighted attribution over every traced job.

    Weighting by width (nodes × seconds) answers the machine-level
    question — where did the *cluster's* time go — rather than the
    per-job average.
    """
    totals = {kind: 0.0 for kind in PHASE_KINDS}
    for p in paths:
        for kind, seconds in p.breakdown.items():
            totals[kind] = totals.get(kind, 0.0) + seconds * max(p.nodes, 1)
    return totals


def render_critical_path(path: JobCriticalPath) -> str:
    """Operator text for one job's attribution + chain."""
    wall = path.wall_seconds
    lines = [
        f"job {path.job_id} ({path.app_name}, {path.nodes} nodes): "
        f"wall {wall:.0f}s after {path.queue_wait_seconds:.0f}s queued",
    ]
    for kind in PHASE_KINDS:
        seconds = path.breakdown.get(kind, 0.0)
        if seconds > 0:
            lines.append(f"  {kind:<12s} {seconds:10.1f}s  {path.fraction(kind):6.1%}")
    chain = " -> ".join(f"{name} ({seconds:.0f}s)" for name, seconds in path.chain)
    lines.append(f"  critical path: {chain}")
    lines.append(f"  dominant: {path.dominant}")
    return "\n".join(lines)
