"""Trace exporters: compact JSONL and Chrome trace-event JSON.

JSONL is the recording format (`sp2-trace record` writes it): one span
per line, keys sorted, floats in Python ``repr`` form — two recordings
of the same seed are byte-identical files.

The Chrome trace-event form (`sp2-trace export --format chrome`) loads
directly in Perfetto (https://ui.perfetto.dev) or ``chrome://tracing``:
each span becomes a complete (``"ph": "X"``) event with microsecond
timestamps of *simulated* time.  Track layout:

* pid 0 — the machine: sim dispatch + scheduler (tid 0), the 15-minute
  collector (tid 1), switch/filesystem/node models (tid 2);
* pid = job id — one process per batch job, so a flagged job's
  queued → running → phase tree reads as one self-contained track.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Iterable

from repro.tracing.span import (
    CAT_FS,
    CAT_HPM,
    CAT_JOB,
    CAT_NODE_PHASE,
    CAT_SWITCH,
    Span,
    span_index,
)

#: Machine-track thread ids by category (pid 0).
_MACHINE_TIDS = {CAT_HPM: 1, CAT_SWITCH: 2, CAT_FS: 2, CAT_NODE_PHASE: 2}
_MACHINE_TID_NAMES = {0: "sim+scheduler", 1: "rs2hpm collector", 2: "cost models"}


def _sorted(spans: Iterable[Span]) -> list[Span]:
    """Deterministic order: sim start time, then creation id."""
    return sorted(spans, key=lambda s: (s.start, int(s.span_id.lstrip("s"))))


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------

def spans_to_jsonl(spans: Iterable[Span]) -> str:
    lines = [json.dumps(s.to_dict(), sort_keys=True) for s in _sorted(spans)]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(spans: Iterable[Span], path: str | pathlib.Path) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(spans_to_jsonl(spans))
    return path


def read_jsonl(path: str | pathlib.Path) -> list[Span]:
    spans = []
    for line in pathlib.Path(path).read_text().splitlines():
        if line.strip():
            spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Chrome trace-event JSON
# ----------------------------------------------------------------------

def _job_pid(span: Span, by_id: dict[str, Span]) -> int | None:
    """Job id of the ``pbs.job`` root above ``span``, if any."""
    node: Span | None = span
    while node is not None:
        if node.category == CAT_JOB:
            return int(node.args.get("job_id", 0))
        node = by_id.get(node.parent_id) if node.parent_id else None
    return None


def spans_to_chrome(spans: Iterable[Span]) -> dict[str, Any]:
    """The trace-event JSON object (``json.dump`` it to a file)."""
    ordered = _sorted(spans)
    by_id, _ = span_index(ordered)
    events: list[dict[str, Any]] = []
    pids_seen: dict[int, str] = {}
    for span in ordered:
        job = _job_pid(span, by_id)
        if job is not None:
            pid, tid = job, 0
            pids_seen.setdefault(pid, f"job {job}")
        else:
            pid, tid = 0, _MACHINE_TIDS.get(span.category, 0)
            pids_seen.setdefault(0, "sp2 machine")
        args = dict(span.args)
        args["span_id"] = span.span_id
        if span.parent_id:
            args["parent_id"] = span.parent_id
        events.append(
            {
                "name": span.name,
                "cat": span.category,
                "ph": "X",
                "ts": round(span.start * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": pid,
                "tid": tid,
                "args": args,
            }
        )
    meta: list[dict[str, Any]] = []
    for pid in sorted(pids_seen):
        meta.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": pids_seen[pid]},
            }
        )
        tids = _MACHINE_TID_NAMES if pid == 0 else {0: "lifecycle"}
        for tid, label in sorted(tids.items()):
            meta.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": label},
                }
            )
    return {"traceEvents": meta + events, "displayTimeUnit": "ms"}


def write_chrome_trace(
    spans: Iterable[Span], path: str | pathlib.Path
) -> pathlib.Path:
    path = pathlib.Path(path)
    path.write_text(json.dumps(spans_to_chrome(spans), sort_keys=True) + "\n")
    return path


def validate_chrome_trace(obj: Any) -> list[str]:
    """Schema check for trace-event JSON; returns problems (empty = ok).

    Covers what Perfetto's importer actually requires: a ``traceEvents``
    array of objects with name/ph/pid/tid, timestamps on duration
    events, and non-negative microsecond times.
    """
    errors: list[str] = []
    if not isinstance(obj, dict):
        return ["top level must be an object"]
    events = obj.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents array"]
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            errors.append(f"{where}: not an object")
            continue
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                errors.append(f"{where}: missing {key!r}")
        ph = ev.get("ph")
        if ph not in ("X", "B", "E", "M", "i", "I", "C"):
            errors.append(f"{where}: unknown phase {ph!r}")
        if ph == "X":
            if not isinstance(ev.get("ts"), (int, float)) or ev["ts"] < 0:
                errors.append(f"{where}: complete event needs ts >= 0")
            if not isinstance(ev.get("dur"), (int, float)) or ev["dur"] < 0:
                errors.append(f"{where}: complete event needs dur >= 0")
        if "args" in ev and not isinstance(ev["args"], dict):
            errors.append(f"{where}: args must be an object")
    return errors
