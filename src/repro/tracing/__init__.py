"""Structured tracing across the simulation stack.

The second observability pillar (the first is :mod:`repro.telemetry`):
span trees over *simulated* time.  Every layer of the stack is
instrumented — simulator event dispatch, PBS job lifecycle, the
15-minute collector cron, switch/filesystem cost models and node phase
execution — producing one span tree per batch job plus a machine-wide
timeline, exportable to Chrome trace-event JSON (open it in Perfetto)
or compact JSONL, and analyzable into per-job critical paths.

Tracing is off by default everywhere (``tracer=None``) and a disabled
tracer records nothing, so untraced campaigns are byte-identical to
pre-tracing builds.  See ``docs/TRACING.md``.
"""

from repro.tracing.critical_path import (
    JobCriticalPath,
    analyze_jobs,
    machine_attribution,
    render_critical_path,
)
from repro.tracing.export import (
    read_jsonl,
    spans_to_chrome,
    spans_to_jsonl,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.tracing.span import PHASE_KINDS, Span, span_index
from repro.tracing.summary import render_trace_summary, trace_summary
from repro.tracing.tracer import NULL_TRACER, Tracer

__all__ = [
    "Tracer",
    "NULL_TRACER",
    "Span",
    "span_index",
    "PHASE_KINDS",
    "JobCriticalPath",
    "analyze_jobs",
    "machine_attribution",
    "render_critical_path",
    "spans_to_chrome",
    "spans_to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
    "read_jsonl",
    "validate_chrome_trace",
    "trace_summary",
    "render_trace_summary",
]
