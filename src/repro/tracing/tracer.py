"""The span tracer: low overhead on, zero side effects off.

The tracer runs on the *simulation* clock (a ``clock`` callable,
normally ``lambda: sim.now``), so spans are ordered in simulated time
and a recorded trace is deterministic for a fixed campaign seed — no
wall-clock ever enters a span.

Three ways to open a span:

* ``with tracer.span("name", CAT):`` — lexical; pushes onto the current
  stack so spans opened inside become children (parent propagation);
* ``tracer.begin(...)`` / ``tracer.finish(span)`` — non-lexical, for
  intervals that start in one simulator event and end in another (a
  job's ``running`` span spans thousands of dispatches);
* ``@tracer.trace("name", CAT)`` — decorator sugar over ``span``.

``tracer.record(...)`` appends an already-closed span with a *modeled*
duration — how the switch/filesystem/node cost models report intervals
without advancing the clock.

Disabled tracers (``enabled=False``) allocate nothing and record
nothing: every entry point returns the shared ``_NULL_SPAN`` and the
context manager is a prebuilt singleton.  Instrumented call sites
additionally guard with ``tracer is not None`` so an untraced campaign
pays only an attribute test.
"""

from __future__ import annotations

import functools
import itertools
from contextlib import contextmanager
from typing import Any, Callable, Iterator

from repro.tracing.span import CAT_JOB, Span

#: Sentinel meaning "parent to the current stack top" (``parent=None``
#: explicitly forces a root span).
_CURRENT = object()

#: The span handed out by disabled tracers.  Shared and inert; writes to
#: its ``args`` land in a dict nobody reads.
_NULL_SPAN = Span(span_id="s0", name="", category="", start=0.0, end=0.0)


class Tracer:
    """Collects spans on a simulated clock.

    Parameters
    ----------
    clock:
        Zero-argument callable returning the current simulated time.
        Defaults to a constant 0.0 (standalone model use); a campaign
        binds the simulator with :meth:`bind_clock`.
    enabled:
        ``False`` makes every operation a no-op.
    bus:
        Optional telemetry :class:`~repro.telemetry.bus.EventBus`; every
        finished span is published to the ``trace.span`` topic so the
        online side can reference spans (alerts carry the id of the
        collector pass they fired in).
    """

    def __init__(
        self,
        clock: Callable[[], float] | None = None,
        *,
        enabled: bool = True,
        bus: Any = None,
    ) -> None:
        self.clock: Callable[[], float] = clock if clock is not None else (lambda: 0.0)
        self.enabled = enabled
        self.bus = bus
        #: Finished spans in finish order.
        self.spans: list[Span] = []
        self._stack: list[Span] = []
        self._ids = itertools.count(1)

    def bind_clock(self, clock: Callable[[], float]) -> None:
        """Point the tracer at a (new) time source."""
        self.clock = clock

    # ------------------------------------------------------------------
    # Core span lifecycle
    # ------------------------------------------------------------------
    @property
    def current(self) -> Span | None:
        """Innermost open lexical span, or ``None``."""
        return self._stack[-1] if self._stack else None

    def begin(
        self,
        name: str,
        category: str = "span",
        *,
        parent: Span | None | object = _CURRENT,
        start: float | None = None,
        **args: Any,
    ) -> Span:
        """Open a span without entering it lexically.

        The caller keeps the handle and later calls :meth:`finish`.
        ``parent`` defaults to the current lexical span; pass ``None``
        to force a root (one tree per job hangs off such a root).
        """
        if not self.enabled:
            return _NULL_SPAN
        if parent is _CURRENT:
            parent = self.current
        return Span(
            span_id=f"s{next(self._ids)}",
            name=name,
            category=category,
            start=self.clock() if start is None else start,
            parent_id=parent.span_id if parent is not None else None,  # type: ignore[union-attr]
            args=args,
        )

    def finish(self, span: Span, *, end: float | None = None) -> Span:
        """Close an open span; records it and publishes to the bus."""
        if not self.enabled or span is _NULL_SPAN:
            return span
        if span.finished:
            raise ValueError(f"span {span.span_id} ({span.name!r}) already finished")
        t = self.clock() if end is None else end
        if t < span.start:
            raise ValueError(
                f"span {span.span_id} cannot end before it starts ({t} < {span.start})"
            )
        span.end = t
        self.spans.append(span)
        if self.bus is not None:
            from repro.telemetry.bus import TOPIC_SPAN, SpanFinished

            self.bus.publish(TOPIC_SPAN, SpanFinished(time=t, span=span))
        return span

    def record(
        self,
        name: str,
        category: str = "span",
        *,
        duration: float = 0.0,
        start: float | None = None,
        parent: Span | None | object = _CURRENT,
        **args: Any,
    ) -> Span:
        """Append an already-closed span with a modeled duration."""
        if not self.enabled:
            return _NULL_SPAN
        if duration < 0:
            raise ValueError("span duration cannot be negative")
        span = self.begin(name, category, parent=parent, start=start, **args)
        return self.finish(span, end=span.start + duration)

    def instant(self, name: str, category: str = "span", **args: Any) -> Span:
        """A zero-duration marker at the current time."""
        return self.record(name, category, **args)

    # ------------------------------------------------------------------
    # Lexical API
    # ------------------------------------------------------------------
    @contextmanager
    def span(
        self,
        name: str,
        category: str = "span",
        *,
        parent: Span | None | object = _CURRENT,
        **args: Any,
    ) -> Iterator[Span]:
        """Context manager: open, push as current, finish on exit.

        The yielded span's ``args`` may be mutated inside the block
        (e.g. attach a result count once it is known).
        """
        if not self.enabled:
            yield _NULL_SPAN
            return
        span = self.begin(name, category, parent=parent, **args)
        self._stack.append(span)
        try:
            yield span
        finally:
            self._stack.pop()
            self.finish(span)

    def trace(
        self, name: str | None = None, category: str = "func"
    ) -> Callable[[Callable], Callable]:
        """Decorator form: each call of the function becomes a span."""

        def decorate(fn: Callable) -> Callable:
            label = name if name is not None else fn.__name__

            @functools.wraps(fn)
            def wrapper(*a: Any, **kw: Any):
                if not self.enabled:
                    return fn(*a, **kw)
                with self.span(label, category):
                    return fn(*a, **kw)

            return wrapper

        return decorate

    # ------------------------------------------------------------------
    # Views
    # ------------------------------------------------------------------
    def job_roots(self) -> list[Span]:
        """The per-job root spans, job-id order."""
        roots = [s for s in self.spans if s.category == CAT_JOB]
        roots.sort(key=lambda s: s.args.get("job_id", 0))
        return roots

    def counts_by_category(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for s in self.spans:
            out[s.category] = out.get(s.category, 0) + 1
        return out


#: Shared disabled tracer, for call sites that want a non-None default.
NULL_TRACER = Tracer(enabled=False)
