"""qsub / qstat / qdel — the PBS command surface.

A thin facade over :class:`~repro.pbs.scheduler.PBSServer` mirroring the
commands NAS users typed (§2: PBS handled parallel scheduling, resource
policy enforcement, and interactive login).  ``qsub`` takes a batch
script, runs it through the workload catalog, and submits; ``qstat``
renders the queue/running state; ``qdel`` cancels.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.pbs.job import JobSpec, JobState
from repro.pbs.scheduler import PBSServer
from repro.pbs.scripts import BatchRequest, parse_batch_script
from repro.util.rng import RngStreams
from repro.workload.apps import application


@dataclass(frozen=True)
class QstatRow:
    job_id: int
    name: str
    user: int
    nodes: int
    state: str
    elapsed_seconds: float


class PBSCommands:
    """The user-command surface for one PBS server."""

    def __init__(self, server: PBSServer, *, seed: int = 0) -> None:
        self.server = server
        self._streams = RngStreams(seed)
        self._names: dict[int, str] = {}

    # ------------------------------------------------------------------
    def qsub(self, script: str, *, user: int = 0) -> JobSpec:
        """Submit a batch script; returns the job."""
        request = parse_batch_script(script)
        return self.qsub_request(request, user=user)

    def qsub_request(self, request: BatchRequest, *, user: int = 0) -> JobSpec:
        template = application(request.app_name)
        rng = self._streams.spawn("qsub", self.server._next_job_id)
        profile = template.instantiate(rng, nodes=request.nodes)
        if request.walltime_seconds is not None:
            # The user's walltime limit caps the run (PBS enforced it).
            profile = type(profile)(
                app_name=profile.app_name,
                kernel_name=profile.kernel_name,
                nodes=profile.nodes,
                walltime_seconds=min(
                    profile.walltime_seconds, request.walltime_seconds
                ),
                memory_bytes_per_node=profile.memory_bytes_per_node,
                user_rates=profile.user_rates,
                system_rates=profile.system_rates,
                mflops_per_node=profile.mflops_per_node,
                compute_fraction=profile.compute_fraction,
                comm_fraction=profile.comm_fraction,
                io_fraction=profile.io_fraction,
            )
        job = self.server.submit(user, request.app_name, request.nodes, profile)
        if request.job_name:
            self._names[job.job_id] = request.job_name
        return job

    # ------------------------------------------------------------------
    def qstat(self) -> list[QstatRow]:
        """Queue + running state, queued first (as qstat printed it)."""
        now = self.server.sim.now
        rows = [
            QstatRow(
                job_id=j.job_id,
                name=self._names.get(j.job_id, j.app_name),
                user=j.user,
                nodes=j.nodes_requested,
                state=j.state.value,
                elapsed_seconds=now - j.submit_time,
            )
            for j in self.server.queue.queued_jobs()
        ]
        for rj in self.server.running.values():
            job = rj.job
            rows.append(
                QstatRow(
                    job_id=job.job_id,
                    name=self._names.get(job.job_id, job.app_name),
                    user=job.user,
                    nodes=job.nodes_requested,
                    state=job.state.value,
                    elapsed_seconds=now - rj.start_time,
                )
            )
        return rows

    def qstat_render(self) -> str:
        rows = self.qstat()
        lines = [f"{'Job':>5s} {'Name':<16s} {'User':>5s} {'Nodes':>5s} {'S':>2s} {'Elap':>8s}"]
        for r in rows:
            lines.append(
                f"{r.job_id:>5d} {r.name:<16.16s} {r.user:>5d} {r.nodes:>5d} "
                f"{r.state:>2s} {r.elapsed_seconds:>8.0f}"
            )
        return "\n".join(lines)

    # ------------------------------------------------------------------
    def qdel(self, job_id: int) -> bool:
        """Cancel a queued job.  Running jobs could not be checkpointed
        (§6), so — like the real system — qdel only removes queued ones
        here; returns False for running/unknown jobs."""
        job = self.server.queue.remove(job_id)
        if job is None:
            return False
        job.state = JobState.EXITED
        return True
