"""The PBS submit queue, with NAS's drain-for-wide-jobs policy.

§6: "System administrators could not checkpoint MPI/PVM jobs and had to
rely upon draining the queues to allow jobs requesting more than
64-nodes to execute."  The queue is therefore FIFO with *conditional
backfill*: narrower jobs may start ahead of a blocked head-of-queue job
— unless the blocked job is wide (>64 nodes), in which case the queue
drains (nothing new starts) until the wide job fits.
"""

from __future__ import annotations

from collections import deque
from typing import Iterator

from repro.pbs.job import JobSpec, JobState


class JobQueue:
    """FIFO queue with drain semantics for wide jobs."""

    def __init__(self, *, wide_threshold: int = 64, backfill: bool = True) -> None:
        self.wide_threshold = wide_threshold
        self.backfill = backfill
        self._q: deque[JobSpec] = deque()

    def __len__(self) -> int:
        return len(self._q)

    def __iter__(self) -> Iterator[JobSpec]:
        return iter(self._q)

    @property
    def empty(self) -> bool:
        return not self._q

    def submit(self, job: JobSpec) -> None:
        if job.state is not JobState.QUEUED:
            raise ValueError(f"job {job.job_id} is {job.state}, not queued")
        self._q.append(job)

    def draining_for(self, free_nodes: int) -> JobSpec | None:
        """The wide head-of-queue job the machine is draining for, if any."""
        if not self._q:
            return None
        head = self._q[0]
        if head.nodes_requested > self.wide_threshold and head.nodes_requested > free_nodes:
            return head
        return None

    def pop_startable(self, free_nodes: int) -> JobSpec | None:
        """Remove and return the next job that may start now.

        Policy:

        * the head starts if it fits;
        * if the head is a *wide* job that does not fit, the queue drains
          — nothing else may start;
        * otherwise (narrow blocked head) backfill: the first queued job
          that fits may start.
        """
        if not self._q:
            return None
        head = self._q[0]
        if head.nodes_requested <= free_nodes:
            return self._q.popleft()
        if head.nodes_requested > self.wide_threshold or not self.backfill:
            return None  # draining (or strict FIFO)
        for i, job in enumerate(self._q):
            if job.nodes_requested <= free_nodes:
                del self._q[i]
                return job
        return None

    def remove(self, job_id: int) -> JobSpec | None:
        """Remove a queued job by id (qdel); returns it, or None."""
        for job in self._q:
            if job.job_id == job_id:
                self._q.remove(job)
                return job
        return None

    def queued_jobs(self) -> list[JobSpec]:
        return list(self._q)
