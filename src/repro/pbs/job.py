"""Job specifications, states, and accounting records."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping, Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class ExecutionProfile(Protocol):
    """What PBS needs to know to run a job (implemented by
    :class:`repro.workload.profile.JobProfile`).

    The profile describes a job's steady-state behaviour on *each* of its
    dedicated nodes: per-second counter rate vectors for the user and
    system banks (bank-ordered, see
    :func:`repro.power2.counters.rates_vector`), the wall time the job
    will hold its nodes, and its per-node memory demand.
    """

    @property
    def walltime_seconds(self) -> float: ...

    @property
    def memory_bytes_per_node(self) -> float: ...

    @property
    def user_rates(self) -> np.ndarray: ...

    @property
    def system_rates(self) -> np.ndarray: ...

    @property
    def mflops_per_node(self) -> float: ...


class JobState(enum.Enum):
    QUEUED = "Q"
    RUNNING = "R"
    EXITED = "E"
    #: Killed by a node failure with no retries left (never requeued).
    KILLED = "K"


@dataclass
class JobSpec:
    """One submission to the PBS server."""

    job_id: int
    user: int
    app_name: str
    nodes_requested: int
    submit_time: float
    profile: ExecutionProfile
    state: JobState = JobState.QUEUED
    #: How many times a node failure has sent this job back to the queue.
    retries: int = 0

    def __post_init__(self) -> None:
        if self.nodes_requested <= 0:
            raise ValueError("jobs must request at least one node")
        if self.submit_time < 0:
            raise ValueError("submit time cannot be negative")

    @property
    def is_wide(self) -> bool:
        """Jobs over 64 nodes needed the queues drained (§6)."""
        return self.nodes_requested > 64


@dataclass
class JobRecord:
    """Epilogue-time accounting for one finished job.

    ``counter_deltas`` holds the per-node prologue→epilogue counter
    differences, flat-labelled (``user.fxu0`` …) exactly as the RS2HPM
    prologue/epilogue scripts wrote them (§3).
    """

    job_id: int
    user: int
    app_name: str
    nodes_requested: int
    node_ids: tuple[int, ...]
    submit_time: float
    start_time: float
    end_time: float
    counter_deltas: dict[int, dict[str, int]] = field(default_factory=dict)

    @property
    def walltime_seconds(self) -> float:
        return self.end_time - self.start_time

    @property
    def queue_wait_seconds(self) -> float:
        return self.start_time - self.submit_time

    @property
    def node_seconds(self) -> float:
        return self.walltime_seconds * len(self.node_ids)

    def summed_deltas(self) -> dict[str, int]:
        """Counter deltas summed over the job's nodes."""
        total: dict[str, int] = {}
        for per_node in self.counter_deltas.values():
            for name, v in per_node.items():
                total[name] = total.get(name, 0) + v
        return total

    @staticmethod
    def flops_from_deltas(deltas: Mapping[str, int]) -> float:
        """The paper's flop count from raw counters: adds + multiplies +
        2 × fma, summed over both FPUs (divides unreported, §3)."""
        return (
            deltas.get("user.fpu0_fp_add", 0)
            + deltas.get("user.fpu1_fp_add", 0)
            + deltas.get("user.fpu0_fp_mul", 0)
            + deltas.get("user.fpu1_fp_mul", 0)
            + deltas.get("user.fpu0_fp_div", 0)
            + deltas.get("user.fpu1_fp_div", 0)
            + 2 * deltas.get("user.fpu0_fp_muladd", 0)
            + 2 * deltas.get("user.fpu1_fp_muladd", 0)
        )

    @property
    def total_mflops(self) -> float:
        """Whole-job Mflops rate (Figure 4's y-axis for 16-node jobs)."""
        wall = self.walltime_seconds
        if wall <= 0:
            return 0.0
        return self.flops_from_deltas(self.summed_deltas()) / wall / 1e6

    @property
    def mflops_per_node(self) -> float:
        """Per-node Mflops rate (Figure 3's y-axis)."""
        if not self.node_ids:
            return 0.0
        return self.total_mflops / len(self.node_ids)

    @property
    def flops_per_memory_inst(self) -> float:
        """§7: 'The ratio of flops to memory references was 1.0' for
        the batch jobs (memory ≈ FXU0+FXU1, the §5 approximation)."""
        d = self.summed_deltas()
        fxu = d.get("user.fxu0", 0) + d.get("user.fxu1", 0)
        if fxu == 0:
            return 0.0
        return self.flops_from_deltas(d) / fxu

    @property
    def fma_flop_fraction(self) -> float:
        """Fraction of this job's flops produced by fma instructions."""
        d = self.summed_deltas()
        fma = d.get("user.fpu0_fp_muladd", 0) + d.get("user.fpu1_fp_muladd", 0)
        flops = self.flops_from_deltas(d)
        return 2.0 * fma / flops if flops > 0 else 0.0

    @property
    def system_user_fxu_ratio(self) -> float:
        """§6's paging signature: system-mode vs user-mode FXU counts."""
        d = self.summed_deltas()
        user = d.get("user.fxu0", 0) + d.get("user.fxu1", 0)
        system = d.get("system.fxu0", 0) + d.get("system.fxu1", 0)
        if user == 0:
            return float("inf") if system else 0.0
        return system / user
