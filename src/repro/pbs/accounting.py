"""The batch-job accounting database behind §6.

Collects :class:`~repro.pbs.job.JobRecord` rows and implements the
paper's batch-job analyses:

* the 600-second wall-clock filter ("this discussion examines only jobs
  exceeding 600 seconds of wall clock time");
* walltime binned by nodes requested (Figure 2);
* per-node Mflops vs nodes requested (Figure 3);
* per-node-count job histories (Figure 4 uses the 16-node series);
* the time-weighted per-node Mflops average (§6: 19 Mflops).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.pbs.job import JobRecord
from repro.util.stats import time_weighted_mean


@dataclass(frozen=True)
class NodeBin:
    """One x-position of Figures 2/3: jobs requesting ``nodes`` nodes."""

    nodes: int
    job_count: int
    total_walltime_seconds: float
    mean_mflops_per_node: float


class AccountingLog:
    """Append-only job record store with the paper's query set."""

    #: §6's filter: ignore short (interactive / benchmarking) jobs.
    MIN_WALLTIME_SECONDS = 600.0

    def __init__(self) -> None:
        self.records: list[JobRecord] = []

    def append(self, record: JobRecord) -> None:
        if record.end_time < record.start_time:
            raise ValueError(f"job {record.job_id} ends before it starts")
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def filtered(self, *, min_walltime: float | None = None) -> list[JobRecord]:
        """Jobs above the wall-clock threshold, in end-time order."""
        cutoff = self.MIN_WALLTIME_SECONDS if min_walltime is None else min_walltime
        out = [r for r in self.records if r.walltime_seconds > cutoff]
        out.sort(key=lambda r: r.end_time)
        return out

    def time_weighted_mflops_per_node(self) -> float:
        """§6: the time-weighted average for the jobs in this database
        (the paper measured 19 Mflops per node)."""
        recs = self.filtered()
        if not recs:
            return 0.0
        rates = [r.mflops_per_node for r in recs]
        weights = [r.walltime_seconds for r in recs]
        return time_weighted_mean(rates, weights)

    def mean_flops_per_memref(self) -> float:
        """Walltime-weighted flops/memref over the filtered jobs —
        §7's 1.0 register-reuse indictment."""
        recs = self.filtered()
        if not recs:
            return 0.0
        return time_weighted_mean(
            [r.flops_per_memory_inst for r in recs],
            [r.walltime_seconds for r in recs],
        )

    def top_decile_fma_fraction(self) -> float:
        """fma flop fraction of the best-performing decile of jobs —
        §7: 'the better-performing individual codes perform at least 80%
        of their operations from fma instructions'."""
        recs = self.filtered()
        if not recs:
            return 0.0
        recs = sorted(recs, key=lambda r: r.mflops_per_node, reverse=True)
        top = recs[: max(1, len(recs) // 10)]
        return float(np.mean([r.fma_flop_fraction for r in top]))

    def walltime_by_nodes(self) -> list[NodeBin]:
        """Figure 2/3 data: one bin per distinct nodes-requested value."""
        recs = self.filtered()
        bins: dict[int, list[JobRecord]] = {}
        for r in recs:
            bins.setdefault(r.nodes_requested, []).append(r)
        out = []
        for nodes in sorted(bins):
            rs = bins[nodes]
            out.append(
                NodeBin(
                    nodes=nodes,
                    job_count=len(rs),
                    total_walltime_seconds=float(
                        sum(r.walltime_seconds for r in rs)
                    ),
                    mean_mflops_per_node=float(
                        np.mean([r.mflops_per_node for r in rs])
                    ),
                )
            )
        return out

    def history_for_nodes(self, nodes: int) -> list[JobRecord]:
        """Figure 4: the job-id-ordered history for one node count."""
        recs = [r for r in self.filtered() if r.nodes_requested == nodes]
        recs.sort(key=lambda r: r.job_id)
        return recs

    def most_popular_nodes(self) -> int:
        """The node count with the most accumulated walltime (§6: 16)."""
        bins = self.walltime_by_nodes()
        if not bins:
            raise ValueError("no accounted jobs")
        return max(bins, key=lambda b: b.total_walltime_seconds).nodes

    def paging_scatter(self) -> tuple[np.ndarray, np.ndarray]:
        """Per-job (system/user FXU ratio, Mflops-per-node) pairs — the
        job-level analogue of Figure 5."""
        recs = self.filtered()
        x = np.array([r.system_user_fxu_ratio for r in recs])
        y = np.array([r.mflops_per_node for r in recs])
        finite = np.isfinite(x)
        return x[finite], y[finite]
