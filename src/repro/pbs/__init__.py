"""The Portable Batch System, as NAS ran it on the SP2.

§2: "NAS employed its Portable Batch System (PBS) for job management.
Key features of PBS included support for parallel job scheduling and
direct enforcement of resource allocation policies."  §6 adds the
operational constraints the reproduction needs: jobs got *dedicated*
nodes, MPI/PVM jobs could not be checkpointed, and administrators had to
**drain the queues** to let jobs requesting more than 64 nodes run.

* :mod:`repro.pbs.job` — job specs, states and accounting records;
* :mod:`repro.pbs.queue` — the submit queue with drain semantics;
* :mod:`repro.pbs.scheduler` — the server: allocation, start/end events,
  prologue/epilogue counter capture hooks;
* :mod:`repro.pbs.accounting` — the job-record database behind §6's
  batch-job analysis (600-second filter, walltime-by-nodes, per-job
  Mflops).
"""

from repro.pbs.job import JobSpec, JobState, JobRecord
from repro.pbs.queue import JobQueue
from repro.pbs.scheduler import PBSServer
from repro.pbs.accounting import AccountingLog
from repro.pbs.scripts import BatchRequest, ScriptError, parse_batch_script
from repro.pbs.qcmds import PBSCommands

__all__ = [
    "JobSpec",
    "JobState",
    "JobRecord",
    "JobQueue",
    "PBSServer",
    "AccountingLog",
    "BatchRequest",
    "ScriptError",
    "parse_batch_script",
    "PBSCommands",
]
