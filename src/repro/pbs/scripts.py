"""PBS batch scripts — the user's side of §2/§3.

NAS users drove the SP2 with shell scripts carrying ``#PBS`` directives;
to get per-program counter reports they had to "place commands into
their batch scripts" (§3).  This module parses that script dialect into
a structured request the server can run:

* ``#PBS -l nodes=N`` / ``#PBS -l walltime=HH:MM:SS`` resource lists
  (comma-combined forms included), ``#PBS -N name``, ``#PBS -q queue``;
* an application line naming a catalog code (e.g. ``mpirun -np 16
  ./arc3d``) mapped onto the workload templates;
* ``rs2hpm start`` / ``rs2hpm stop`` markers requesting per-program
  measurement.

Unknown directives raise — PBS rejected malformed scripts rather than
guessing.
"""

from __future__ import annotations

import re
import shlex
from dataclasses import dataclass, field

#: Executable-name → application-template mapping; the names are the
#: style of code names NAS ran (CFD solver binaries).
DEFAULT_APP_ALIASES: dict[str, str] = {
    "arc3d": "multiblock_cfd",
    "overflow": "multiblock_cfd",
    "cfl3d": "multiblock_cfd",
    "optcfd": "opt_sweep",
    "upwell": "navier_stokes_async",
    "vecport": "legacy_vector",
    "emscat": "spectral_em",
    "gridgen": "nonfp_preproc",
    "bigjob": "wide_paging",
    "widesync": "wide_sync",
    "bt": "npb_bt_benchmark",
    "matmul": "matmul_benchmark",
}


class ScriptError(ValueError):
    """A malformed batch script."""


@dataclass
class BatchRequest:
    """The parsed content of one batch script."""

    nodes: int = 1
    walltime_seconds: float | None = None
    job_name: str = ""
    queue: str = "batch"
    app_name: str = ""
    app_args: tuple[str, ...] = ()
    #: ``rs2hpm start/stop`` present → user wants a per-program report.
    wants_hpm_report: bool = False
    raw_directives: list[str] = field(default_factory=list)

    def validate(self) -> None:
        if self.nodes <= 0:
            raise ScriptError("nodes must be positive")
        if not self.app_name:
            raise ScriptError("script runs no known application")
        if self.walltime_seconds is not None and self.walltime_seconds <= 0:
            raise ScriptError("walltime must be positive")


def _parse_walltime(text: str) -> float:
    parts = text.split(":")
    if not 1 <= len(parts) <= 3 or not all(p.isdigit() for p in parts):
        raise ScriptError(f"bad walltime {text!r} (expected [HH:]MM:SS or seconds)")
    nums = [int(p) for p in parts]
    while len(nums) < 3:
        nums.insert(0, 0)
    h, m, s = nums
    return float(h * 3600 + m * 60 + s)


def _parse_resource_list(text: str, req: BatchRequest) -> None:
    for item in text.split(","):
        key, _, value = item.partition("=")
        key, value = key.strip(), value.strip()
        if not value:
            raise ScriptError(f"bad resource item {item!r}")
        if key == "nodes":
            if not value.isdigit():
                raise ScriptError(f"bad node count {value!r}")
            req.nodes = int(value)
        elif key == "walltime":
            req.walltime_seconds = _parse_walltime(value)
        elif key in ("mem", "ncpus"):
            pass  # accepted and ignored, as the SP2's PBS did
        else:
            raise ScriptError(f"unknown resource {key!r}")


_DIRECTIVE = re.compile(r"^#PBS\s+-(\w)\s+(.*\S)\s*$")


def parse_batch_script(
    text: str, *, app_aliases: dict[str, str] | None = None
) -> BatchRequest:
    """Parse one batch script into a :class:`BatchRequest`."""
    aliases = DEFAULT_APP_ALIASES if app_aliases is None else app_aliases
    req = BatchRequest()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#PBS"):
            m = _DIRECTIVE.match(line)
            if not m:
                raise ScriptError(f"line {lineno}: malformed directive {line!r}")
            flag, value = m.group(1), m.group(2)
            req.raw_directives.append(line)
            if flag == "l":
                _parse_resource_list(value, req)
            elif flag == "N":
                req.job_name = value
            elif flag == "q":
                req.queue = value
            elif flag in ("o", "e", "j", "m", "M", "A"):
                pass  # output/mail/accounting directives: accepted
            else:
                raise ScriptError(f"line {lineno}: unknown directive -{flag}")
            continue
        if line.startswith("#"):
            continue  # comment / shebang
        words = shlex.split(line)
        if not words:
            continue
        if words[0] == "rs2hpm":
            if len(words) < 2 or words[1] not in ("start", "stop"):
                raise ScriptError(f"line {lineno}: rs2hpm needs start|stop")
            req.wants_hpm_report = True
            continue
        # An application invocation: strip launcher prefixes.
        cmd = words
        if cmd[0] in ("mpirun", "poe"):
            # skip launcher options like -np N / -procs N
            i = 1
            while i < len(cmd) and cmd[i].startswith("-"):
                i += 2
            cmd = cmd[i:]
            if not cmd:
                raise ScriptError(f"line {lineno}: launcher without a program")
        exe = cmd[0].rsplit("/", 1)[-1].lstrip("./")
        if exe in aliases:
            if req.app_name:
                raise ScriptError(f"line {lineno}: script runs two applications")
            req.app_name = aliases[exe]
            req.app_args = tuple(cmd[1:])
        # Unknown shell lines (cd, cp to NFS, etc.) are fine.
    req.validate()
    return req
