"""The PBS server: submission, scheduling, prologue/epilogue.

Drives jobs through the machine on the simulation clock:

* ``submit`` queues a job and pokes the scheduler;
* the scheduler starts every startable job (FIFO + backfill, draining
  for wide jobs — policy in :class:`~repro.pbs.queue.JobQueue`);
* job start = allocate dedicated nodes, pin memory, run the *prologue*
  (per-node counter snapshot, §3), install the job's steady counter
  rates on its nodes, schedule the end event;
* job end = sync and snapshot again (*epilogue*), diff the snapshots,
  release nodes and memory, append the accounting record, reschedule.

Paging is applied here, not in the profile: the job's per-node memory
demand is compared against node memory, and an oversubscribed job has
its rates transformed (user progress slowed, system-mode fault work
added) by :func:`apply_paging_to_rates` — this is how the §6 cliff
reaches the counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.cluster.machine import SP2Machine
from repro.pbs.accounting import AccountingLog
from repro.pbs.job import ExecutionProfile, JobRecord, JobSpec, JobState
from repro.pbs.queue import JobQueue
from repro.power2.config import MachineConfig
from repro.power2.counters import rates_vector, snapshot_delta
from repro.power2.node import (
    DMA_TRANSFER_BYTES,
    PAGING_CPU_BUSY_FRACTION,
    PAGING_SYSTEM_FXU_RATE,
    PAGING_SYSTEM_ICU_RATE,
    compute_paging_state,
)
from repro.sim.engine import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry.bus import EventBus
    from repro.tracing.span import Span
    from repro.tracing.tracer import Tracer


def apply_paging_to_rates(
    user_rates: np.ndarray,
    system_rates: np.ndarray,
    demand_bytes: float,
    config: MachineConfig,
) -> tuple[np.ndarray, np.ndarray, float]:
    """Transform a job's steady rates for memory oversubscription.

    Returns ``(user, system, slowdown)`` where user rates are scaled by
    ``1 - stolen_fraction`` (user-mode progress only happens in the wall
    time paging leaves over) and system rates gain the fault-service
    instruction and cycle rates plus the page-traffic DMA rates.
    """
    paging = compute_paging_state(demand_bytes, config.memory_bytes, config)
    if paging.fault_rate_per_s == 0.0:
        return user_rates, system_rates, 1.0
    stolen = paging.stolen_fraction
    remain = 1.0 - stolen
    faults = paging.fault_rate_per_s
    page_transfers = faults * config.tlb.page_bytes / DMA_TRANSFER_BYTES
    fault_rates = rates_vector(
        {
            "fxu0": stolen * PAGING_SYSTEM_FXU_RATE * 0.5,
            "fxu1": stolen * PAGING_SYSTEM_FXU_RATE * 0.5,
            "icu0": stolen * PAGING_SYSTEM_ICU_RATE,
            "cycles": stolen * config.clock_hz * PAGING_CPU_BUSY_FRACTION,
            "dma_read": page_transfers * 0.4,
            "dma_write": page_transfers * 0.6,
        }
    )
    return user_rates * remain, system_rates + fault_rates, remain


def phase_segments(
    profile, config: MachineConfig, wall_seconds: float
) -> list[tuple[str, float]]:
    """Attribute a job's wall time to compute / switch-wait / io / paging.

    The campaign fast path homogenizes a job into steady counter rates,
    so the per-phase structure is reconstructed from the profile's
    fraction diagnostics plus the same paging physics PBS applied at
    start: the stolen fraction of wall time is paging, the remainder is
    split by the profile's compute/comm/io fractions.  Profiles without
    fraction diagnostics attribute everything to compute.
    """
    paging = compute_paging_state(
        profile.memory_bytes_per_node, config.memory_bytes, config
    )
    stolen = paging.stolen_fraction
    active = wall_seconds * (1.0 - stolen)
    compute = getattr(profile, "compute_fraction", 1.0)
    comm = getattr(profile, "comm_fraction", 0.0)
    io = getattr(profile, "io_fraction", 0.0)
    norm = compute + comm + io
    if norm <= 0:
        compute, norm = 1.0, 1.0
    segments = [
        ("compute", active * compute / norm),
        ("switch-wait", active * comm / norm),
        ("io", active * io / norm),
        ("paging", wall_seconds * stolen),
    ]
    return [(name, seconds) for name, seconds in segments if seconds > 0.0]


@dataclass
class RunningJob:
    """Everything the server holds about one job in execution."""

    job: JobSpec
    alloc_id: int
    node_ids: tuple[int, ...]
    start_time: float
    #: Per-node prologue counter snapshots (§3).
    prologue: dict[int, dict[str, int]]
    #: The scheduled epilogue event — cancelled if the job is killed.
    end_event: "object | None" = None
    #: Effective per-node memory demand (profile demand × any storm
    #: pressure at start time); released symmetrically at end/kill.
    memory_per_node: float = 0.0


class PBSServer:
    """Job manager for one :class:`~repro.cluster.machine.SP2Machine`."""

    def __init__(
        self,
        sim: Simulator,
        machine: SP2Machine,
        *,
        queue: JobQueue | None = None,
        accounting: AccountingLog | None = None,
        bus: "EventBus | None" = None,
        tracer: "Tracer | None" = None,
    ) -> None:
        self.sim = sim
        self.machine = machine
        # NOT `queue or JobQueue()`: an empty JobQueue is falsy (__len__).
        self.queue = queue if queue is not None else JobQueue()
        self.accounting = accounting if accounting is not None else AccountingLog()
        #: Telemetry event bus; job lifecycle events are published here.
        self.bus = bus
        #: Span tracer; each job grows one span tree (root at submit,
        #: queued/running states, phase attribution at epilogue).
        self.tracer = tracer
        self.running: dict[int, RunningJob] = {}
        #: Open (root, state) spans per traced job id.
        self._job_spans: dict[int, tuple["Span", "Span"]] = {}
        self._next_job_id = 1
        #: Optional observer called with each finished JobRecord.
        self.on_job_end: Callable[[JobRecord], None] | None = None
        # Failure handling (driven by repro.faults.injector).
        #: How many times a node-failure kill may requeue a job.
        self.max_retries = 3
        #: Memory-demand multiplier applied to newly started jobs
        #: (paging-storm episodes set it above 1).
        self.memory_pressure = 1.0
        self.jobs_killed = 0
        self.jobs_requeued = 0
        self.retries_exhausted = 0

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(
        self, user: int, app_name: str, nodes: int, profile: ExecutionProfile
    ) -> JobSpec:
        """Queue a job at the current simulation time."""
        if nodes > self.machine.n_nodes:
            raise ValueError(
                f"job wants {nodes} nodes; machine has {self.machine.n_nodes}"
            )
        job = JobSpec(
            job_id=self._next_job_id,
            user=user,
            app_name=app_name,
            nodes_requested=nodes,
            submit_time=self.sim.now,
            profile=profile,
        )
        self._next_job_id += 1
        self.queue.submit(job)
        self._open_job_spans(job)
        self.schedule_pass()
        return job

    def _open_job_spans(self, job: JobSpec) -> None:
        if self.tracer is None or not self.tracer.enabled:
            return
        from repro.tracing.span import CAT_JOB, CAT_JOB_STATE

        # One tree per job: the root is deliberately unparented so a
        # job's whole life is a self-contained trace process.
        root = self.tracer.begin(
            f"job-{job.job_id}",
            CAT_JOB,
            parent=None,
            job_id=job.job_id,
            user=job.user,
            app=job.app_name,
            nodes=job.nodes_requested,
        )
        queued = self.tracer.begin("queued", CAT_JOB_STATE, parent=root)
        self._job_spans[job.job_id] = (root, queued)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule_pass(self) -> int:
        """Start every job the policy allows; returns how many started."""
        if self.tracer is None or not self.tracer.enabled:
            return self._schedule_pass()
        from repro.tracing.span import CAT_SCHED

        with self.tracer.span("schedule-pass", CAT_SCHED) as span:
            started = self._schedule_pass()
            span.args["started"] = started
            span.args["queued"] = len(self.queue)
        return started

    def _schedule_pass(self) -> int:
        started = 0
        while True:
            job = self.queue.pop_startable(self.machine.n_free)
            if job is None:
                break
            self._start_job(job)
            started += 1
        return started

    def _start_job(self, job: JobSpec) -> None:
        now = self.sim.now
        alloc_id, node_ids = self.machine.allocate(job.nodes_requested)
        job.state = JobState.RUNNING

        profile = job.profile
        # A paging storm inflates every starting job's resident demand —
        # the injected §6 oversubscription pathology.
        demand = profile.memory_bytes_per_node * self.memory_pressure
        user, system, _ = apply_paging_to_rates(
            profile.user_rates, profile.system_rates, demand, self.machine.config
        )
        flops_per_s = profile.mflops_per_node * 1e6
        walltime = profile.walltime_seconds

        # A degraded switch stretches the communication share of the
        # job's wall time; user-mode progress slows by the same factor
        # (total user counts are conserved: rate/slow × wall×slow).
        degradation = self.machine.switch.degradation
        if degradation > 1.0:
            comm = getattr(profile, "comm_fraction", 0.0)
            slow = 1.0 + comm * (degradation - 1.0)
            if slow > 1.0:
                user = user / slow
                flops_per_s /= slow
                walltime *= slow

        # Prologue: snapshot counters on each allocated node (§3).
        prologue: dict[int, dict[str, int]] = {}
        for nid in node_ids:
            node = self.machine.node(nid)
            node.sync(now)
            prologue[nid] = node.snapshot()
            node.assign_memory(demand)
            node.install_rates(now, user, system, busy=True, flops_per_s=flops_per_s)

        running = RunningJob(
            job=job,
            alloc_id=alloc_id,
            node_ids=node_ids,
            start_time=now,
            prologue=prologue,
            memory_per_node=demand,
        )
        self.running[job.job_id] = running
        if job.job_id in self._job_spans:
            from repro.tracing.span import CAT_JOB_SNAPSHOT, CAT_JOB_STATE

            root, queued = self._job_spans[job.job_id]
            self.tracer.finish(queued, end=now)
            running_span = self.tracer.begin(
                "running", CAT_JOB_STATE, parent=root, node_ids=list(node_ids)
            )
            self.tracer.record(
                "prologue", CAT_JOB_SNAPSHOT, parent=running_span, nodes=len(node_ids)
            )
            self._job_spans[job.job_id] = (root, running_span)
        if self.bus is not None:
            from repro.telemetry.bus import TOPIC_JOB_START, JobStarted

            self.bus.publish(
                TOPIC_JOB_START,
                JobStarted(
                    time=now,
                    job_id=job.job_id,
                    user=job.user,
                    app_name=job.app_name,
                    nodes_requested=job.nodes_requested,
                    node_ids=node_ids,
                ),
            )
        running.end_event = self.sim.schedule(
            walltime,
            lambda sim, job_id=job.job_id: self._end_job(job_id),
            name=f"end-job-{job.job_id}",
        )

    def _end_job(self, job_id: int) -> None:
        now = self.sim.now
        rj = self.running.pop(job_id)
        job, alloc_id, node_ids = rj.job, rj.alloc_id, rj.node_ids
        start_time, prologue = rj.start_time, rj.prologue
        job.state = JobState.EXITED

        # Epilogue: sync, snapshot, diff against the prologue (§3).
        deltas: dict[int, dict[str, int]] = {}
        for nid in node_ids:
            node = self.machine.node(nid)
            node.sync(now)
            deltas[nid] = snapshot_delta(prologue[nid], node.snapshot())
            node.release_memory(rj.memory_per_node)
            node.install_rates(now)  # back to idle background

        self.machine.release(alloc_id)
        record = JobRecord(
            job_id=job.job_id,
            user=job.user,
            app_name=job.app_name,
            nodes_requested=job.nodes_requested,
            node_ids=node_ids,
            submit_time=job.submit_time,
            start_time=start_time,
            end_time=now,
            counter_deltas=deltas,
        )
        self.accounting.append(record)
        if job_id in self._job_spans:
            from repro.tracing.span import CAT_JOB_PHASE, CAT_JOB_SNAPSHOT

            root, running_span = self._job_spans.pop(job_id)
            # Synthesize the wall-time attribution segments the critical
            # path analyzer consumes, laid end-to-end under `running`.
            cursor = start_time
            for name, seconds in phase_segments(
                job.profile, self.machine.config, now - start_time
            ):
                self.tracer.record(
                    name,
                    CAT_JOB_PHASE,
                    parent=running_span,
                    start=cursor,
                    duration=seconds,
                )
                cursor += seconds
            self.tracer.record(
                "epilogue", CAT_JOB_SNAPSHOT, parent=running_span, nodes=len(node_ids)
            )
            self.tracer.finish(running_span, end=now)
            root.args["mflops"] = round(record.total_mflops, 3)
            self.tracer.finish(root, end=now)
        if self.bus is not None:
            from repro.telemetry.bus import TOPIC_JOB_END, JobEnded

            self.bus.publish(TOPIC_JOB_END, JobEnded(time=now, record=record))
        if self.on_job_end is not None:
            self.on_job_end(record)
        self.schedule_pass()

    # ------------------------------------------------------------------
    # Failure handling (node crashes, driven by the fault injector)
    # ------------------------------------------------------------------
    def kill_jobs_on_node(self, node_id: int) -> list[JobSpec]:
        """Kill every running job allocated on ``node_id``.

        MPI/PVM jobs could not survive a node loss (§6: they could not
        even be checkpointed), so the whole job dies, its *surviving*
        nodes return to the pool, and the job is requeued — up to
        :attr:`max_retries` times — as the resubmission users performed
        by hand.  Returns the killed jobs.
        """
        doomed = [
            rj.job.job_id for rj in self.running.values() if node_id in rj.node_ids
        ]
        killed = [self._kill_job(job_id, node_id) for job_id in doomed]
        if killed:
            # The dead job's surviving nodes just came back to the pool.
            self.schedule_pass()
        return killed

    def _kill_job(self, job_id: int, node_id: int) -> JobSpec:
        now = self.sim.now
        rj = self.running.pop(job_id)
        job = rj.job
        if rj.end_event is not None:
            rj.end_event.cancel()
        # No epilogue: a dead job leaves no accounting record, exactly
        # like the real failed runs the §6 logs never captured.  Nodes
        # are synced and returned to idle; the crashed node itself is
        # withheld from the free pool by the machine.
        for nid in rj.node_ids:
            node = self.machine.node(nid)
            node.sync(now)
            node.release_memory(rj.memory_per_node)
            node.install_rates(now)
        self.machine.release(rj.alloc_id)
        self.jobs_killed += 1

        if job_id in self._job_spans:
            root, running_span = self._job_spans.pop(job_id)
            running_span.args["killed_by_node"] = node_id
            self.tracer.finish(running_span, end=now)
            root.args["killed"] = True
            self.tracer.finish(root, end=now)

        requeued = job.retries < self.max_retries
        if requeued:
            job.retries += 1
            job.state = JobState.QUEUED
            self.queue.submit(job)
            self.jobs_requeued += 1
            self._open_job_spans(job)
        else:
            job.state = JobState.KILLED
            self.retries_exhausted += 1

        if self.bus is not None:
            from repro.telemetry.bus import TOPIC_JOB_KILLED, JobKilled

            self.bus.publish(
                TOPIC_JOB_KILLED,
                JobKilled(
                    time=now,
                    job_id=job.job_id,
                    user=job.user,
                    app_name=job.app_name,
                    node_id=node_id,
                    requeued=requeued,
                ),
            )
        return job

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def n_running(self) -> int:
        return len(self.running)

    def busy_node_count(self) -> int:
        return sum(len(rj.node_ids) for rj in self.running.values())
