"""``sp2-trace`` — record and analyze span traces of a campaign.

Where ``sp2-ops`` shows the streaming counters, ``sp2-trace`` is the
drill-down: run a seeded campaign with the span tracer attached, save
the trace, open it in Perfetto, and attribute each job's wall time to
compute / switch wait / I/O / paging.

Examples::

    sp2-trace record --seed 42 --days 2 --nodes 16 --out trace.jsonl
    sp2-trace export trace.jsonl --format chrome --out trace.json
    sp2-trace critical-path trace.jsonl --job 7
    sp2-trace summary trace.jsonl
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import time

from repro.tracing import (
    Tracer,
    analyze_jobs,
    machine_attribution,
    read_jsonl,
    render_critical_path,
    render_trace_summary,
    spans_to_chrome,
    trace_summary,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
)
from repro.tracing.span import PHASE_KINDS


def _add_campaign_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--seed", type=int, default=0, help="campaign seed (default 0)")
    p.add_argument("--days", type=int, default=2, help="campaign length in days")
    p.add_argument("--nodes", type=int, default=16, help="cluster size")
    p.add_argument("--users", type=int, default=8, help="user population size")


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------

def cmd_record(args: argparse.Namespace) -> int:
    from repro.core.study import StudyConfig, WorkloadStudy

    tracer = Tracer()
    cfg = StudyConfig(
        seed=args.seed, n_days=args.days, n_nodes=args.nodes, n_users=args.users
    )
    t0 = time.time()
    print(
        f"Recording {args.days}-day campaign on {args.nodes} nodes "
        f"(seed {args.seed}) with tracing on...",
        file=sys.stderr,
    )
    WorkloadStudy(cfg, tracer=tracer).run()
    print(f"Campaign done in {time.time() - t0:.1f}s.", file=sys.stderr)

    if not tracer.spans:
        # Exit-code convention (CONTRIBUTING.md): a recording that
        # captured nothing is an operational failure, not a success.
        print(
            "error: campaign recorded zero spans — nothing to export "
            "(check --days)",
            file=sys.stderr,
        )
        return 1
    out = write_jsonl(tracer.spans, args.out)
    print(f"wrote {len(tracer.spans)} spans to {out}")
    if args.chrome is not None:
        chrome = write_chrome_trace(tracer.spans, args.chrome)
        print(f"wrote Chrome trace to {chrome} (open in https://ui.perfetto.dev)")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    spans = read_jsonl(args.trace)
    if not spans:
        print(f"error: {args.trace} holds no spans", file=sys.stderr)
        return 1
    if args.format == "chrome":
        obj = spans_to_chrome(spans)
        errors = validate_chrome_trace(obj)
        if errors:
            for err in errors[:10]:
                print(f"error: {err}", file=sys.stderr)
            return 1
        out = pathlib.Path(args.out)
        out.write_text(json.dumps(obj, sort_keys=True) + "\n")
        print(
            f"wrote {len(obj['traceEvents'])} trace events to {out} "
            "(valid trace-event JSON; open in https://ui.perfetto.dev)"
        )
    else:  # jsonl re-serialization (normalizes ordering)
        out = write_jsonl(spans, args.out)
        print(f"wrote {len(spans)} spans to {out}")
    return 0


def cmd_critical_path(args: argparse.Namespace) -> int:
    spans = read_jsonl(args.trace)
    paths = analyze_jobs(spans)
    if not paths:
        print("error: trace holds no finished job span trees", file=sys.stderr)
        return 1
    if args.job is not None:
        paths = [p for p in paths if p.job_id == args.job]
        if not paths:
            print(f"error: no traced job with id {args.job}", file=sys.stderr)
            return 2
    for p in paths:
        print(render_critical_path(p))
        print()
    totals = machine_attribution(paths)
    grand = sum(totals.values())
    if grand > 0:
        parts = "  ".join(
            f"{kind} {totals[kind] / grand:.1%}" for kind in PHASE_KINDS
        )
        print(f"machine-wide attribution ({len(paths)} jobs, node-second weighted):")
        print(f"  {parts}")
    return 0


def cmd_summary(args: argparse.Namespace) -> int:
    spans = read_jsonl(args.trace)
    print(render_trace_summary(trace_summary(spans)))
    return 0


# ----------------------------------------------------------------------
# Entry point
# ----------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="sp2-trace",
        description="Span tracing for SP2 measurement campaigns.",
    )
    sub = p.add_subparsers(dest="command", required=True)

    p_rec = sub.add_parser("record", help="run a seeded campaign with tracing on")
    _add_campaign_args(p_rec)
    p_rec.add_argument(
        "--out", type=pathlib.Path, default=pathlib.Path("trace.jsonl"),
        help="JSONL trace output path (default trace.jsonl)",
    )
    p_rec.add_argument(
        "--chrome", type=pathlib.Path, default=None,
        help="also write a Chrome trace-event JSON here",
    )
    p_rec.set_defaults(func=cmd_record)

    p_exp = sub.add_parser("export", help="convert a recorded JSONL trace")
    p_exp.add_argument("trace", type=pathlib.Path, help="recorded .jsonl trace")
    p_exp.add_argument(
        "--format", choices=("chrome", "jsonl"), default="chrome",
        help="output format (default chrome)",
    )
    p_exp.add_argument("--out", type=pathlib.Path, required=True, help="output path")
    p_exp.set_defaults(func=cmd_export)

    p_cp = sub.add_parser(
        "critical-path", help="per-job wall-time attribution + longest chain"
    )
    p_cp.add_argument("trace", type=pathlib.Path, help="recorded .jsonl trace")
    p_cp.add_argument("--job", type=int, default=None, help="only this job id")
    p_cp.set_defaults(func=cmd_critical_path)

    p_sum = sub.add_parser("summary", help="span counts and coverage of a trace")
    p_sum.add_argument("trace", type=pathlib.Path, help="recorded .jsonl trace")
    p_sum.set_defaults(func=cmd_summary)
    return p


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
