"""Queue policy: FIFO, backfill, drain for wide jobs (§6)."""

import numpy as np
import pytest

from repro.pbs.job import JobSpec, JobState
from repro.pbs.queue import JobQueue
from repro.power2.counters import BANK_SIZE


class FakeProfile:
    walltime_seconds = 1000.0
    memory_bytes_per_node = 64e6
    user_rates = np.zeros(BANK_SIZE)
    system_rates = np.zeros(BANK_SIZE)
    mflops_per_node = 10.0


def job(job_id: int, nodes: int) -> JobSpec:
    return JobSpec(
        job_id=job_id,
        user=0,
        app_name="t",
        nodes_requested=nodes,
        submit_time=0.0,
        profile=FakeProfile(),
    )


class TestFIFO:
    def test_head_starts_when_it_fits(self):
        q = JobQueue()
        q.submit(job(1, 8))
        q.submit(job(2, 8))
        assert q.pop_startable(16).job_id == 1
        assert q.pop_startable(16).job_id == 2

    def test_empty_queue_returns_none(self):
        assert JobQueue().pop_startable(100) is None

    def test_submit_requires_queued_state(self):
        j = job(1, 4)
        j.state = JobState.RUNNING
        with pytest.raises(ValueError):
            JobQueue().submit(j)


class TestBackfill:
    def test_narrow_blocked_head_allows_backfill(self):
        q = JobQueue()
        q.submit(job(1, 32))  # narrow but does not fit
        q.submit(job(2, 8))
        assert q.pop_startable(16).job_id == 2
        assert len(q) == 1  # head still waiting

    def test_backfill_disabled_is_strict_fifo(self):
        q = JobQueue(backfill=False)
        q.submit(job(1, 32))
        q.submit(job(2, 8))
        assert q.pop_startable(16) is None

    def test_backfill_skips_jobs_that_do_not_fit(self):
        q = JobQueue()
        q.submit(job(1, 32))
        q.submit(job(2, 24))
        q.submit(job(3, 4))
        assert q.pop_startable(16).job_id == 3


class TestDrain:
    def test_wide_blocked_head_drains_queue(self):
        """§6: queues drained for >64-node jobs — no backfill past one."""
        q = JobQueue()
        q.submit(job(1, 96))
        q.submit(job(2, 4))
        assert q.pop_startable(64) is None  # small job must wait too

    def test_wide_job_starts_once_machine_drains(self):
        q = JobQueue()
        q.submit(job(1, 96))
        q.submit(job(2, 4))
        assert q.pop_startable(144).job_id == 1
        assert q.pop_startable(48).job_id == 2

    def test_draining_for_reports_blocking_job(self):
        q = JobQueue()
        q.submit(job(1, 96))
        assert q.draining_for(64).job_id == 1
        assert q.draining_for(144) is None

    def test_64_nodes_is_not_wide(self):
        q = JobQueue()
        q.submit(job(1, 64))
        q.submit(job(2, 4))
        assert q.pop_startable(32).job_id == 2  # backfill allowed

    def test_custom_threshold(self):
        q = JobQueue(wide_threshold=16)
        q.submit(job(1, 24))
        q.submit(job(2, 4))
        assert q.pop_startable(8) is None


class TestIntrospection:
    def test_queued_jobs_snapshot(self):
        q = JobQueue()
        q.submit(job(1, 4))
        q.submit(job(2, 8))
        assert [j.job_id for j in q.queued_jobs()] == [1, 2]

    def test_iteration_and_len(self):
        q = JobQueue()
        for i in range(3):
            q.submit(job(i, 2))
        assert len(q) == 3
        assert len(list(q)) == 3
