"""Job records: counter-delta algebra (§3's flop counting, §6's ratio)."""

import pytest

from repro.pbs.job import JobRecord, JobSpec, JobState


def record(**overrides) -> JobRecord:
    base = dict(
        job_id=1,
        user=3,
        app_name="multiblock_cfd",
        nodes_requested=2,
        node_ids=(0, 1),
        submit_time=0.0,
        start_time=100.0,
        end_time=1100.0,
        counter_deltas={
            0: {
                "user.fpu0_fp_add": 3_000_000,
                "user.fpu0_fp_mul": 1_000_000,
                "user.fpu0_fp_muladd": 2_000_000,
                "user.fxu0": 5_000_000,
                "user.fxu1": 5_000_000,
                "system.fxu0": 500_000,
                "system.fxu1": 500_000,
            },
            1: {
                "user.fpu1_fp_add": 1_000_000,
                "user.fpu1_fp_muladd": 500_000,
                "user.fxu0": 2_000_000,
                "user.fxu1": 2_000_000,
                "system.fxu0": 100_000,
                "system.fxu1": 100_000,
            },
        },
    )
    base.update(overrides)
    return JobRecord(**base)


class TestTimes:
    def test_walltime_and_wait(self):
        r = record()
        assert r.walltime_seconds == 1000.0
        assert r.queue_wait_seconds == 100.0
        assert r.node_seconds == 2000.0


class TestFlopAlgebra:
    def test_summed_deltas_adds_across_nodes(self):
        d = record().summed_deltas()
        assert d["user.fxu0"] == 7_000_000

    def test_flops_from_deltas_fma_counts_twice(self):
        d = record().summed_deltas()
        flops = JobRecord.flops_from_deltas(d)
        # adds (3e6 + 1e6) + muls (1e6) + 2 × fma (2e6 + 0.5e6)
        assert flops == 4e6 + 1e6 + 2 * 2.5e6

    def test_total_mflops(self):
        r = record()
        assert r.total_mflops == pytest.approx(10e6 / 1000.0 / 1e6)

    def test_mflops_per_node(self):
        r = record()
        assert r.mflops_per_node == pytest.approx(r.total_mflops / 2)

    def test_zero_walltime_yields_zero_rate(self):
        r = record(end_time=100.0)
        assert r.total_mflops == 0.0


class TestSystemUserRatio:
    def test_ratio(self):
        r = record()
        assert r.system_user_fxu_ratio == pytest.approx(1.2e6 / 14e6)

    def test_ratio_with_zero_user(self):
        r = record(
            counter_deltas={0: {"system.fxu0": 10, "user.fxu0": 0}},
        )
        assert r.system_user_fxu_ratio == float("inf")

    def test_ratio_all_zero(self):
        r = record(counter_deltas={0: {}})
        assert r.system_user_fxu_ratio == 0.0


class TestJobSpec:
    def test_wide_threshold_is_64(self):
        class P:
            walltime_seconds = 1.0
            memory_bytes_per_node = 0.0
            user_rates = None
            system_rates = None
            mflops_per_node = 0.0

        narrow = JobSpec(1, 0, "a", 64, 0.0, P())
        wide = JobSpec(2, 0, "a", 65, 0.0, P())
        assert not narrow.is_wide
        assert wide.is_wide

    def test_invalid_nodes_rejected(self):
        class P:
            pass

        with pytest.raises(ValueError):
            JobSpec(1, 0, "a", 0, 0.0, P())

    def test_starts_queued(self):
        class P:
            pass

        assert JobSpec(1, 0, "a", 1, 0.0, P()).state is JobState.QUEUED


class TestRegisterReuseProperties:
    def test_flops_per_memory_inst(self):
        r = record()
        d = r.summed_deltas()
        expected = JobRecord.flops_from_deltas(d) / (
            d["user.fxu0"] + d["user.fxu1"]
        )
        assert r.flops_per_memory_inst == pytest.approx(expected)

    def test_flops_per_memory_inst_no_fxu(self):
        r = record(counter_deltas={0: {"user.fpu0_fp_add": 100}})
        assert r.flops_per_memory_inst == 0.0

    def test_fma_flop_fraction(self):
        r = record()
        d = r.summed_deltas()
        fma = d["user.fpu0_fp_muladd"] + d.get("user.fpu1_fp_muladd", 0)
        assert r.fma_flop_fraction == pytest.approx(
            2 * fma / JobRecord.flops_from_deltas(d)
        )

    def test_fma_fraction_no_flops(self):
        r = record(counter_deltas={0: {"user.fxu0": 100}})
        assert r.fma_flop_fraction == 0.0
