"""Batch-script parsing (#PBS directives + rs2hpm commands)."""

import pytest

from repro.pbs.scripts import BatchRequest, ScriptError, parse_batch_script

GOOD = """\
#!/bin/sh
#PBS -N wingflow
#PBS -l nodes=16,walltime=02:30:00
#PBS -q batch
#PBS -o run.out
cd $HOME/cases/wing
rs2hpm start
mpirun -np 16 ./arc3d wing.inp
rs2hpm stop
cp solution.q $HOME/results/
"""


class TestHappyPath:
    def test_full_script(self):
        req = parse_batch_script(GOOD)
        assert req.nodes == 16
        assert req.walltime_seconds == 2 * 3600 + 30 * 60
        assert req.job_name == "wingflow"
        assert req.queue == "batch"
        assert req.app_name == "multiblock_cfd"
        assert req.app_args == ("wing.inp",)
        assert req.wants_hpm_report

    def test_minimal_script(self):
        req = parse_batch_script("#PBS -l nodes=4\n./gridgen in.g\n")
        assert req.nodes == 4
        assert req.app_name == "nonfp_preproc"
        assert not req.wants_hpm_report
        assert req.walltime_seconds is None

    def test_separate_resource_directives(self):
        req = parse_batch_script(
            "#PBS -l nodes=8\n#PBS -l walltime=45:00\n./bt\n"
        )
        assert req.nodes == 8
        assert req.walltime_seconds == 2700.0
        assert req.app_name == "npb_bt_benchmark"

    def test_poe_launcher(self):
        req = parse_batch_script("#PBS -l nodes=28\npoe -procs 28 ./upwell case1\n")
        assert req.app_name == "navier_stokes_async"

    def test_walltime_seconds_form(self):
        req = parse_batch_script("#PBS -l nodes=1,walltime=900\n./matmul\n")
        assert req.walltime_seconds == 900.0

    def test_ignored_directives_accepted(self):
        req = parse_batch_script("#PBS -m abe\n#PBS -l nodes=2,mem=64mb\n./vecport\n")
        assert req.nodes == 2

    def test_shell_noise_ignored(self):
        req = parse_batch_script(
            "# a comment\n\n echo starting \n#PBS -l nodes=2\n./emscat\n"
        )
        assert req.app_name == "spectral_em"


class TestErrors:
    def test_malformed_directive(self):
        with pytest.raises(ScriptError, match="malformed"):
            parse_batch_script("#PBS nodes=4\n./arc3d\n")

    def test_unknown_directive(self):
        with pytest.raises(ScriptError, match="unknown directive"):
            parse_batch_script("#PBS -Z whatever\n./arc3d\n")

    def test_unknown_resource(self):
        with pytest.raises(ScriptError, match="unknown resource"):
            parse_batch_script("#PBS -l gpus=4\n./arc3d\n")

    def test_bad_walltime(self):
        with pytest.raises(ScriptError, match="bad walltime"):
            parse_batch_script("#PBS -l nodes=2,walltime=2h\n./arc3d\n")

    def test_bad_node_count(self):
        with pytest.raises(ScriptError, match="bad node count"):
            parse_batch_script("#PBS -l nodes=sixteen\n./arc3d\n")

    def test_no_application(self):
        with pytest.raises(ScriptError, match="no known application"):
            parse_batch_script("#PBS -l nodes=2\necho hello\n")

    def test_two_applications(self):
        with pytest.raises(ScriptError, match="two applications"):
            parse_batch_script("#PBS -l nodes=2\n./arc3d\n./emscat\n")

    def test_rs2hpm_without_verb(self):
        with pytest.raises(ScriptError, match="rs2hpm"):
            parse_batch_script("#PBS -l nodes=2\nrs2hpm\n./arc3d\n")

    def test_launcher_without_program(self):
        with pytest.raises(ScriptError, match="launcher"):
            parse_batch_script("#PBS -l nodes=2\nmpirun -np 2\n./arc3d\n")

    def test_validate_rejects_zero_nodes(self):
        req = BatchRequest(nodes=0, app_name="multiblock_cfd")
        with pytest.raises(ScriptError):
            req.validate()
