"""qsub / qstat / qdel facade."""

import pytest

from repro.cluster.machine import SP2Machine
from repro.pbs.qcmds import PBSCommands
from repro.pbs.scheduler import PBSServer
from repro.sim.engine import Simulator

SCRIPT_16 = "#PBS -N wing\n#PBS -l nodes=16,walltime=01:00:00\n./arc3d\n"
SCRIPT_128 = "#PBS -l nodes=128\n./widesync\n"


def commands(n_nodes=144) -> PBSCommands:
    sim = Simulator()
    return PBSCommands(PBSServer(sim, SP2Machine(n_nodes)), seed=4)


class TestQsub:
    def test_submits_and_starts(self):
        q = commands()
        job = q.qsub(SCRIPT_16)
        assert job.nodes_requested == 16
        assert q.server.n_running == 1

    def test_walltime_limit_enforced(self):
        q = commands()
        q.qsub(SCRIPT_16)
        q.server.sim.run()
        rec = q.server.accounting.records[0]
        assert rec.walltime_seconds <= 3600.0 + 1e-6

    def test_deterministic_given_seed(self):
        a = commands().qsub(SCRIPT_16)
        b = commands().qsub(SCRIPT_16)
        assert a.profile.mflops_per_node == b.profile.mflops_per_node

    def test_bad_script_raises(self):
        with pytest.raises(Exception):
            commands().qsub("#PBS -l nodes=two\n./arc3d\n")


class TestQstat:
    def test_running_and_queued_rows(self):
        q = commands(n_nodes=16)
        q.qsub(SCRIPT_16)        # fills the machine
        q.qsub(SCRIPT_16)        # queued behind it
        rows = q.qstat()
        states = sorted(r.state for r in rows)
        assert states == ["Q", "R"]

    def test_named_job_shown(self):
        q = commands()
        q.qsub(SCRIPT_16)
        rows = q.qstat()
        assert rows[0].name == "wing"

    def test_render(self):
        q = commands()
        q.qsub(SCRIPT_16)
        out = q.qstat_render()
        assert "wing" in out and " R " in out

    def test_empty(self):
        assert len(commands().qstat()) == 0


class TestQdel:
    def test_deletes_queued_job(self):
        q = commands(n_nodes=16)
        q.qsub(SCRIPT_16)
        queued = q.qsub(SCRIPT_16)
        assert q.qdel(queued.job_id) is True
        assert all(r.job_id != queued.job_id for r in q.qstat())

    def test_cannot_delete_running_job(self):
        """§6: MPI/PVM jobs could not be checkpointed."""
        q = commands(n_nodes=16)
        running = q.qsub(SCRIPT_16)
        assert q.qdel(running.job_id) is False
        assert q.server.n_running == 1

    def test_unknown_job(self):
        assert commands().qdel(999) is False

    def test_deleted_job_never_runs(self):
        q = commands(n_nodes=16)
        q.qsub(SCRIPT_16)
        queued = q.qsub(SCRIPT_16)
        q.qdel(queued.job_id)
        q.server.sim.run()
        ids = {r.job_id for r in q.server.accounting.records}
        assert queued.job_id not in ids
