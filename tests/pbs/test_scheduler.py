"""PBS server: scheduling flow, prologue/epilogue, paging transform."""

import numpy as np
import pytest

from repro.cluster.machine import SP2Machine
from repro.pbs.scheduler import PBSServer, apply_paging_to_rates
from repro.power2.config import POWER2_590
from repro.power2.counters import counter_index, rates_vector
from repro.sim.engine import Simulator


class Profile:
    """Minimal ExecutionProfile for scheduler tests."""

    def __init__(self, walltime=2000.0, memory=64e6, fpu_rate=1e6):
        self.walltime_seconds = walltime
        self.memory_bytes_per_node = memory
        self.user_rates = rates_vector(
            {"fpu0": fpu_rate, "fpu0_fp_add": fpu_rate, "fxu0": 2 * fpu_rate, "cycles": 3e7}
        )
        self.system_rates = rates_vector({"fxu0": 1e5, "cycles": 1e6})
        self.mflops_per_node = fpu_rate / 1e6


def server(n_nodes=16) -> PBSServer:
    return PBSServer(Simulator(), SP2Machine(n_nodes))


class TestLifecycle:
    def test_job_starts_immediately_when_nodes_free(self):
        s = server()
        s.submit(0, "app", 4, Profile())
        assert s.n_running == 1
        assert s.machine.n_free == 12

    def test_job_ends_on_schedule_and_releases_nodes(self):
        s = server()
        s.submit(0, "app", 4, Profile(walltime=500.0))
        s.sim.run()
        assert s.n_running == 0
        assert s.machine.n_free == 16
        assert len(s.accounting) == 1
        assert s.accounting.records[0].walltime_seconds == pytest.approx(500.0)

    def test_queued_job_starts_after_blocker_ends(self):
        s = server(n_nodes=8)
        s.submit(0, "big", 8, Profile(walltime=100.0))
        s.submit(1, "next", 8, Profile(walltime=100.0))
        assert s.n_running == 1
        s.sim.run()
        recs = s.accounting.records
        assert len(recs) == 2
        assert recs[1].start_time == pytest.approx(100.0)

    def test_too_wide_job_rejected(self):
        s = server(n_nodes=8)
        with pytest.raises(ValueError):
            s.submit(0, "app", 9, Profile())

    def test_job_ids_monotonic(self):
        s = server()
        a = s.submit(0, "a", 1, Profile())
        b = s.submit(0, "b", 1, Profile())
        assert b.job_id == a.job_id + 1

    def test_on_job_end_observer(self):
        s = server()
        seen = []
        s.on_job_end = seen.append
        s.submit(0, "app", 2, Profile(walltime=10.0))
        s.sim.run()
        assert len(seen) == 1 and seen[0].app_name == "app"


class TestCounterCapture:
    def test_epilogue_deltas_match_rates(self):
        s = server()
        s.submit(0, "app", 2, Profile(walltime=1000.0, fpu_rate=1e6))
        s.sim.run()
        rec = s.accounting.records[0]
        assert set(rec.counter_deltas) == set(rec.node_ids)
        for deltas in rec.counter_deltas.values():
            assert deltas["user.fpu0"] == pytest.approx(1e9, rel=1e-6)

    def test_mflops_per_node_from_counters(self):
        s = server()
        s.submit(0, "app", 2, Profile(walltime=1000.0, fpu_rate=5e6))
        s.sim.run()
        rec = s.accounting.records[0]
        # fp_add rate == fpu rate, so 5 Mflops/node.
        assert rec.mflops_per_node == pytest.approx(5.0, rel=1e-6)

    def test_deltas_isolate_consecutive_jobs(self):
        """The second job's prologue must not see the first job's work."""
        s = server(n_nodes=2)
        s.submit(0, "first", 2, Profile(walltime=100.0, fpu_rate=1e6))
        s.submit(0, "second", 2, Profile(walltime=100.0, fpu_rate=3e6))
        s.sim.run()
        first, second = s.accounting.records
        assert first.counter_deltas[0]["user.fpu0"] == pytest.approx(1e8, rel=1e-6)
        assert second.counter_deltas[0]["user.fpu0"] == pytest.approx(3e8, rel=1e-6)

    def test_memory_released_after_job(self):
        s = server()
        s.submit(0, "app", 2, Profile(walltime=10.0, memory=100e6))
        s.sim.run()
        assert all(n.memory_used == 0.0 for n in s.machine.nodes)


class TestPagingTransform:
    def test_no_paging_within_memory(self):
        user = rates_vector({"fpu0": 1e6})
        system = rates_vector({"fxu0": 1e5})
        u, sys_, slow = apply_paging_to_rates(user, system, 100e6, POWER2_590)
        assert slow == 1.0
        np.testing.assert_array_equal(u, user)
        np.testing.assert_array_equal(sys_, system)

    def test_oversubscription_slows_user_and_inflates_system(self):
        user = rates_vector({"fpu0": 1e6, "fxu0": 2e6})
        system = rates_vector({"fxu0": 1e5})
        u, sys_, slow = apply_paging_to_rates(user, system, 200e6, POWER2_590)
        assert slow < 0.1
        assert u[counter_index("fpu0")] < 0.1e6
        assert sys_[counter_index("fxu0")] > 1e6  # VMM work dominates

    def test_paging_adds_dma_page_traffic(self):
        user = rates_vector({"fpu0": 1e6})
        system = rates_vector({})
        _, sys_, _ = apply_paging_to_rates(user, system, 200e6, POWER2_590)
        assert sys_[counter_index("dma_read")] > 0
        assert sys_[counter_index("dma_write")] > 0

    def test_paging_job_end_to_end(self):
        """§6: a thrashing job's record shows system FXU > user FXU."""
        s = server()
        s.submit(0, "thrash", 2, Profile(walltime=1000.0, memory=1.8 * 128 * 1024 * 1024))
        s.sim.run()
        rec = s.accounting.records[0]
        assert rec.system_user_fxu_ratio > 1.0
        assert rec.mflops_per_node < 0.1


class TestUtilizationProbe:
    def test_busy_node_count(self):
        s = server()
        s.submit(0, "a", 3, Profile())
        s.submit(0, "b", 5, Profile())
        assert s.busy_node_count() == 8


class TestInjectedCollaborators:
    def test_empty_queue_instance_is_respected(self):
        """Regression: `queue or JobQueue()` discarded caller-supplied
        (empty, hence falsy) queues, silently reverting the policy."""
        from repro.pbs.accounting import AccountingLog
        from repro.pbs.queue import JobQueue

        q = JobQueue(wide_threshold=1)
        log = AccountingLog()
        s = PBSServer(Simulator(), SP2Machine(4), queue=q, accounting=log)
        assert s.queue is q
        assert s.accounting is log
