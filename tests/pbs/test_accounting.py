"""Accounting log: §6's filters and figure queries."""

import numpy as np
import pytest

from repro.pbs.accounting import AccountingLog
from repro.pbs.job import JobRecord


def record(job_id, nodes, wall, mflops_per_node=20.0, end=None, sys_ratio=0.01):
    """A synthetic record whose counters yield the requested rate."""
    flops_per_node = mflops_per_node * 1e6 * wall
    user_fxu = 2e7 * wall
    deltas = {
        nid: {
            "user.fpu0_fp_add": int(flops_per_node),
            "user.fxu0": int(user_fxu / 2),
            "user.fxu1": int(user_fxu / 2),
            "system.fxu0": int(sys_ratio * user_fxu),
        }
        for nid in range(nodes)
    }
    start = 0.0 if end is None else end - wall
    return JobRecord(
        job_id=job_id,
        user=0,
        app_name="app",
        nodes_requested=nodes,
        node_ids=tuple(range(nodes)),
        submit_time=0.0,
        start_time=start,
        end_time=start + wall,
        counter_deltas=deltas,
    )


class TestFilter:
    def test_600_second_filter(self):
        """§6: 'only jobs exceeding 600 seconds of wall clock time'."""
        log = AccountingLog()
        log.append(record(1, 4, 599.0))
        log.append(record(2, 4, 601.0))
        assert [r.job_id for r in log.filtered()] == [2]

    def test_custom_threshold(self):
        log = AccountingLog()
        log.append(record(1, 4, 100.0))
        assert len(log.filtered(min_walltime=50.0)) == 1

    def test_filtered_sorted_by_end_time(self):
        log = AccountingLog()
        log.append(record(1, 4, 1000.0, end=5000.0))
        log.append(record(2, 4, 1000.0, end=2000.0))
        assert [r.job_id for r in log.filtered()] == [2, 1]

    def test_invalid_record_rejected(self):
        log = AccountingLog()
        bad = record(1, 2, 100.0)
        bad.end_time = bad.start_time - 1.0
        with pytest.raises(ValueError):
            log.append(bad)


class TestAggregates:
    def test_time_weighted_mflops(self):
        log = AccountingLog()
        log.append(record(1, 4, 1000.0, mflops_per_node=10.0))
        log.append(record(2, 4, 3000.0, mflops_per_node=30.0))
        expected = (10 * 1000 + 30 * 3000) / 4000
        assert log.time_weighted_mflops_per_node() == pytest.approx(expected, rel=1e-6)

    def test_time_weighted_empty(self):
        assert AccountingLog().time_weighted_mflops_per_node() == 0.0

    def test_walltime_by_nodes_bins(self):
        log = AccountingLog()
        log.append(record(1, 16, 1000.0))
        log.append(record(2, 16, 2000.0))
        log.append(record(3, 8, 700.0))
        bins = {b.nodes: b for b in log.walltime_by_nodes()}
        assert bins[16].job_count == 2
        assert bins[16].total_walltime_seconds == 3000.0
        assert bins[8].job_count == 1

    def test_most_popular_nodes_by_walltime(self):
        """Figure 2's criterion is accumulated walltime, not job count."""
        log = AccountingLog()
        log.append(record(1, 16, 10000.0))
        for i in range(5):
            log.append(record(10 + i, 8, 700.0))
        assert log.most_popular_nodes() == 16

    def test_most_popular_empty_raises(self):
        with pytest.raises(ValueError):
            AccountingLog().most_popular_nodes()

    def test_history_for_nodes_ordered_by_job_id(self):
        log = AccountingLog()
        log.append(record(5, 16, 1000.0))
        log.append(record(2, 16, 1000.0))
        log.append(record(3, 8, 1000.0))
        hist = log.history_for_nodes(16)
        assert [r.job_id for r in hist] == [2, 5]

    def test_paging_scatter_drops_infinite_ratios(self):
        log = AccountingLog()
        log.append(record(1, 4, 1000.0))
        weird = record(2, 4, 1000.0)
        for d in weird.counter_deltas.values():
            d["user.fxu0"] = 0
            d["user.fxu1"] = 0
        log.append(weird)
        x, y = log.paging_scatter()
        assert np.isfinite(x).all()
        assert len(x) == 1


class TestRegisterReuseAggregates:
    def test_mean_flops_per_memref(self):
        log = AccountingLog()
        log.append(record(1, 4, 1000.0, mflops_per_node=20.0))
        # record(): flops = 20e6*wall per node; user fxu = 2e7*wall per
        # node → flops/memref = 1.0 by construction.
        assert log.mean_flops_per_memref() == pytest.approx(1.0, rel=1e-6)

    def test_mean_flops_per_memref_empty(self):
        assert AccountingLog().mean_flops_per_memref() == 0.0

    def test_top_decile_fma_fraction_empty(self):
        assert AccountingLog().top_decile_fma_fraction() == 0.0

    def test_top_decile_picks_fastest(self):
        log = AccountingLog()
        # Ten slow jobs with no fma, one fast job that is all fma.
        for i in range(10):
            log.append(record(i, 4, 1000.0, mflops_per_node=5.0))
        fast = record(99, 4, 1000.0, mflops_per_node=50.0)
        for d in fast.counter_deltas.values():
            d["user.fpu0_fp_muladd"] = d.pop("user.fpu0_fp_add") // 2
        log.append(fast)
        assert log.top_decile_fma_fraction() == pytest.approx(1.0)
