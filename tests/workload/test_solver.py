"""The instrumented Jacobi solver: numerics + counted instruction mixes."""

import numpy as np
import pytest

from repro.power2.pipeline import CycleModel
from repro.workload.solver import DecomposedJacobi, JacobiSolver


class TestNumerics:
    def test_residual_decreases(self):
        s = JacobiSolver((12, 12, 12))
        s.f[1:-1, 1:-1, 1:-1] = 1.0
        first = s.sweep()
        for _ in range(30):
            last = s.sweep()
        assert last < first

    def test_zero_rhs_zero_solution_is_fixed_point(self):
        s = JacobiSolver((8, 8, 8))
        assert s.sweep() == 0.0
        assert np.all(s.u == 0.0)

    def test_converges_to_laplace_interior_mean(self):
        """With u=1 on one face and f=0, Jacobi relaxes toward the
        harmonic interpolation — interior values strictly within the
        boundary range."""
        s = JacobiSolver((10, 10, 10))
        s.u[0, :, :] = 1.0  # Dirichlet via the halo
        for _ in range(400):
            s.u[0, :, :] = 1.0
            s.sweep()
        interior = s.u[1:-1, 1:-1, 1:-1]
        assert 0.0 < interior.mean() < 1.0
        assert interior[0].mean() > interior[-1].mean()  # gradient off the hot face

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            JacobiSolver((0, 4, 4))


class TestInstrumentation:
    def test_counts_scale_with_points(self):
        small = JacobiSolver((8, 8, 8)).sweep_counts()
        big = JacobiSolver((16, 8, 8)).sweep_counts()
        assert big.flops == 2 * small.flops
        assert big.loads == 2 * small.loads

    def test_stencil_arithmetic(self):
        c = JacobiSolver((10, 10, 10)).sweep_counts()
        assert c.points == 1000
        assert c.flops == 8000.0
        assert c.flops_per_memref == pytest.approx(1.0)

    def test_mix_flops_match_counts(self):
        s = JacobiSolver((10, 10, 10))
        mix = s.sweep_mix()
        assert mix.flops == pytest.approx(s.sweep_counts().flops)
        assert mix.memory_insts == pytest.approx(
            s.sweep_counts().loads + s.sweep_counts().stores
        )

    def test_costed_rate_in_cfd_band(self):
        """The counted stencil through the cycle model lands in §5's
        measured CFD band — real code meets the statistical model."""
        s = JacobiSolver((50, 50, 50))
        result = CycleModel().execute(
            s.sweep_mix(), s.memory_behaviour(), s.dependency_profile()
        )
        assert 10.0 <= result.mflops <= 40.0


class TestDecomposed:
    def test_iterate_reduces_residual(self):
        d = DecomposedJacobi((24, 24, 24), 8)
        d.set_uniform_load(1.0)
        first = d.iterate(1)
        last = d.iterate(20)
        assert last < first
        assert d.iterations_done == 21

    def test_halo_exchange_moves_face_bytes(self):
        d = DecomposedJacobi((24, 24, 24), 8)
        for s in d.solvers:
            s.u[1:-1, 1:-1, 1:-1] = 1.0
        moved = d.exchange_halos()
        # 8 ranks in a 2x2x2 grid, 3 faces each of 12x12 doubles.
        assert moved == pytest.approx(8 * 3 * 12 * 12 * 8)

    def test_halo_exchange_transfers_values(self):
        d = DecomposedJacobi((8, 4, 4), 2)  # split along x
        d.solvers[0].u[1:-1, 1:-1, 1:-1] = 7.0
        d.exchange_halos()
        # Rank 1's low-x halo now holds rank 0's high interior plane.
        assert np.all(d.solvers[1].u[0, 1:-1, 1:-1] == 7.0)

    def test_decomposed_matches_single_domain(self):
        """Splitting must not change the mathematics: after the same
        number of sweeps the decomposed interior equals the global one."""
        glob = JacobiSolver((8, 8, 8))
        glob.f[1:-1, 1:-1, 1:-1] = 1.0
        d = DecomposedJacobi((8, 8, 8), 2)
        d.set_uniform_load(1.0)
        for _ in range(12):
            glob.sweep()
            d.iterate(1)
        left = d.solvers[0].u[1:-1, 1:-1, 1:-1]
        np.testing.assert_allclose(
            left, glob.u[1:5, 1:-1, 1:-1], rtol=1e-12, atol=1e-12
        )

    def test_per_rank_mix_and_halo_bytes(self):
        d = DecomposedJacobi((96, 96, 32), 28, variables=25)
        mix = d.per_rank_mix(0)
        assert mix.flops > 0
        assert d.halo_bytes_per_iteration(0) > 0
