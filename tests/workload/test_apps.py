"""Application catalog: distributions and §4–§6 characteristics."""

import numpy as np
import pytest

from repro.util.rng import RngStreams
from repro.workload.apps import APPLICATIONS, application, popularity_weights

MB = 1024 * 1024


def rng():
    return RngStreams(123).get("test.apps")


class TestCatalog:
    def test_lookup(self):
        assert application("multiblock_cfd").name == "multiblock_cfd"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            application("nope")

    def test_popularity_weights_normalized(self):
        names, w = popularity_weights()
        assert len(names) == len(APPLICATIONS)
        assert w.sum() == pytest.approx(1.0)

    def test_multiblock_is_most_popular(self):
        """§4: multiblock aerodynamics codes are the workload majority."""
        top = max(APPLICATIONS.values(), key=lambda a: a.popularity)
        assert top.name == "multiblock_cfd"

    def test_every_app_instantiates(self):
        r = rng()
        for app in APPLICATIONS.values():
            p = app.instantiate(r)
            assert p.walltime_seconds > 0
            assert p.nodes in app.node_choices


class TestNodeDistributions:
    def test_sample_nodes_within_choices(self):
        r = rng()
        app = application("multiblock_cfd")
        for _ in range(50):
            assert app.sample_nodes(r) in app.node_choices

    def test_wide_paging_jobs_are_wide(self):
        """§6: the paging jobs request more than 64 nodes."""
        assert min(application("wide_paging").node_choices) > 64

    def test_navier_stokes_peaks_at_28(self):
        app = application("navier_stokes_async")
        idx = int(np.argmax(app.node_weights))
        assert app.node_choices[idx] == 28

    def test_explicit_nodes_override(self):
        p = application("multiblock_cfd").instantiate(rng(), nodes=4)
        assert p.nodes == 4


class TestJobCharacteristics:
    def test_wide_paging_oversubscribes_memory(self):
        """§6: automatic arrays blow past the 128 MB node memory."""
        p = application("wide_paging").instantiate(rng())
        assert p.memory_bytes_per_node > 128 * MB

    def test_normal_jobs_fit_in_memory(self):
        r = rng()
        for _ in range(20):
            p = application("multiblock_cfd").instantiate(r)
            assert p.memory_bytes_per_node <= 128 * MB

    def test_champion_app_fastest_per_node(self):
        """§6: the asynchronous Navier-Stokes code leads Figure 3."""
        r = rng()
        champs = [application("navier_stokes_async").instantiate(r).mflops_per_node for _ in range(10)]
        bulk = [application("multiblock_cfd").instantiate(r).mflops_per_node for _ in range(10)]
        assert np.mean(champs) > 1.4 * np.mean(bulk)
        assert 30.0 <= np.mean(champs) <= 55.0

    def test_benchmark_jobs_below_600s_filter(self):
        """NPB BT runs are short, so §6's filter removes them."""
        r = rng()
        walls = [application("npb_bt_benchmark").instantiate(r).walltime_seconds for _ in range(20)]
        assert np.median(walls) < 600.0

    def test_matmul_benchmark_is_single_node_and_fast(self):
        p = application("matmul_benchmark").instantiate(rng())
        assert p.nodes == 1
        assert p.mflops_per_node > 150.0

    def test_jitter_creates_spread(self):
        """Figure 4's ±200 Mflops spread needs per-job variability."""
        r = rng()
        rates = [
            application("multiblock_cfd").instantiate(r, nodes=16).mflops_per_node
            for _ in range(40)
        ]
        assert np.std(rates) > 2.0

    def test_determinism_from_seed(self):
        a = application("multiblock_cfd").instantiate(RngStreams(9).get("s"))
        b = application("multiblock_cfd").instantiate(RngStreams(9).get("s"))
        assert a.mflops_per_node == b.mflops_per_node
        assert a.nodes == b.nodes
