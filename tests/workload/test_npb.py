"""NPB 2.1 suite models."""

import pytest

from repro.workload.npb import NPB_SUITE, npb, suite_report


class TestCatalog:
    def test_lookup(self):
        assert npb("BT").name == "BT"
        assert npb("bt", "b").klass == "B"

    def test_unknown_raises(self):
        with pytest.raises(KeyError):
            npb("ZZ")

    def test_suite_covers_the_npb2_codes(self):
        names = {spec.name for spec in NPB_SUITE.values()}
        assert {"BT", "SP", "LU", "MG", "FT", "EP"} <= names

    def test_bt_uses_49_processes(self):
        """Table 4's BT measurement was on 49 CPUs."""
        assert npb("BT").processes == 49


class TestProfiles:
    def test_every_entry_builds_a_profile(self):
        for key, spec in NPB_SUITE.items():
            p = spec.job_profile()
            assert p.walltime_seconds > 0, key
            assert p.mflops_per_node > 0, key

    def test_bt_matches_table4(self):
        p = npb("BT").job_profile()
        assert 35.0 <= p.mflops_per_node <= 50.0  # paper: 44

    def test_walltime_consistent_with_rate(self):
        spec = npb("LU")
        p = spec.job_profile()
        flops_per_node = spec.total_gflop * 1e9 / spec.processes
        assert p.walltime_seconds == pytest.approx(
            flops_per_node / (p.mflops_per_node * 1e6), rel=1e-6
        )

    def test_class_b_runs_longer_than_class_a(self):
        assert npb("BT", "B").job_profile().walltime_seconds > (
            npb("BT", "A").job_profile().walltime_seconds
        )


class TestSuiteShape:
    """Qualitative orderings the NPB 2.1 SP2 results showed."""

    def _rates(self):
        return {r["benchmark"]: r for r in suite_report()}

    def test_bt_beats_sp(self):
        """BT ran markedly faster than SP on the SP2 (NPB 2.1 report)."""
        r = self._rates()
        assert r["BT.A"]["mflops_per_node"] > 1.3 * r["SP.A"]["mflops_per_node"]

    def test_ep_is_compute_pure(self):
        r = self._rates()
        # One reduction per batch is EP's only communication.
        assert r["EP.A"]["comm_fraction"] < 0.02
        assert r["EP.A"]["dcache_ratio"] < 0.002

    def test_ft_and_mg_stress_memory(self):
        r = self._rates()
        for name in ("FT.A", "MG.A"):
            assert r[name]["tlb_ratio"] > r["BT.A"]["tlb_ratio"]

    def test_sp_is_comm_heaviest_pseudo_app(self):
        r = self._rates()
        assert r["SP.A"]["comm_fraction"] > r["BT.A"]["comm_fraction"]
        assert r["SP.A"]["comm_fraction"] > r["LU.A"]["comm_fraction"]

    def test_report_row_fields(self):
        row = suite_report()[0]
        assert {
            "benchmark",
            "processes",
            "mflops_per_node",
            "total_gflops",
            "walltime_s",
            "comm_fraction",
            "dcache_ratio",
            "tlb_ratio",
        } <= set(row)
