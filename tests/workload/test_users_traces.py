"""User population, demand model, and campaign traces."""

import numpy as np
import pytest

from repro.util.rng import RngStreams
from repro.workload.traces import generate_trace, submissions_by_app
from repro.workload.users import DemandModel, UserPopulation


def rng(name="t"):
    return RngStreams(5).get(name)


class TestUserPopulation:
    def test_population_size(self):
        assert len(UserPopulation(10, rng())) == 10

    def test_zero_users_rejected(self):
        with pytest.raises(ValueError):
            UserPopulation(0, rng())

    def test_preferences_are_distributions(self):
        pop = UserPopulation(20, rng())
        for u in pop.users:
            assert u.app_weights.sum() == pytest.approx(1.0)
            assert (u.app_weights >= 0).all()

    def test_users_differ(self):
        pop = UserPopulation(5, rng())
        assert not np.allclose(pop.users[0].app_weights, pop.users[1].app_weights)

    def test_pick_app_is_known(self):
        pop = UserPopulation(5, rng())
        r = rng("pick")
        for _ in range(20):
            name = pop.pick_user(r).pick_app(r)
            assert isinstance(name, str) and name


class TestDemandModel:
    def test_levels_bounded(self):
        dm = DemandModel(rng(), 300)
        assert (dm.levels > 0).all()
        assert (dm.levels <= 1.08).all()

    def test_weekends_lower(self):
        dm = DemandModel(rng(), 700)
        weekday = np.mean([dm.demand(d) for d in range(700) if d % 7 < 5])
        weekend = np.mean([dm.demand(d) for d in range(700) if d % 7 >= 5])
        assert weekend < weekday

    def test_autocorrelation(self):
        """Figure 1's swings come from a *correlated* demand walk."""
        dm = DemandModel(rng(), 500)
        x = dm.levels
        r = np.corrcoef(x[:-1], x[1:])[0, 1]
        assert r > 0.4

    def test_zero_days_rejected(self):
        with pytest.raises(ValueError):
            DemandModel(rng(), 0)

    def test_submit_times_within_day(self):
        dm = DemandModel(rng(), 10)
        r = rng("times")
        ts = [dm.submit_time_in_day(r) for _ in range(200)]
        assert all(0.0 <= t < 86400.0 for t in ts)

    def test_work_hours_bulge(self):
        dm = DemandModel(rng(), 10)
        r = rng("bulge")
        ts = np.array([dm.submit_time_in_day(r) for _ in range(2000)])
        afternoon = ((ts > 11 * 3600) & (ts < 18 * 3600)).mean()
        assert afternoon > 0.35  # uniform would give ~0.29


class TestTraces:
    def test_determinism(self):
        a = generate_trace(3, n_days=3, n_nodes=32, n_users=5)
        b = generate_trace(3, n_days=3, n_nodes=32, n_users=5)
        assert len(a.submissions) == len(b.submissions)
        assert all(
            x.time == y.time and x.app_name == y.app_name
            for x, y in zip(a.submissions, b.submissions)
        )

    def test_different_seeds_differ(self):
        a = generate_trace(3, n_days=3, n_nodes=32, n_users=5)
        b = generate_trace(4, n_days=3, n_nodes=32, n_users=5)
        assert [s.time for s in a.submissions] != [s.time for s in b.submissions]

    def test_sorted_by_time(self):
        t = generate_trace(1, n_days=5, n_nodes=64, n_users=10)
        times = [s.time for s in t.submissions]
        assert times == sorted(times)

    def test_submissions_within_horizon(self):
        t = generate_trace(1, n_days=5, n_nodes=64, n_users=10)
        assert all(0 <= s.time < t.horizon_seconds for s in t.submissions)

    def test_nodes_respect_machine_size(self):
        t = generate_trace(2, n_days=5, n_nodes=32, n_users=10)
        assert all(s.nodes <= 32 for s in t.submissions)

    def test_offered_load_tracks_demand(self):
        t = generate_trace(1, n_days=20, n_nodes=144, n_users=40)
        mean_demand = t.demand_levels.mean()
        assert t.offered_load() == pytest.approx(mean_demand, rel=0.35)

    def test_app_mix_spans_catalog(self):
        t = generate_trace(1, n_days=20, n_nodes=144, n_users=40)
        counts = submissions_by_app(t)
        present = [name for name, c in counts.items() if c > 0]
        assert len(present) >= 7
        assert counts["multiblock_cfd"] == max(counts.values())

    def test_zero_days_rejected(self):
        with pytest.raises(ValueError):
            generate_trace(0, n_days=0)
