"""Kernel catalog: mixes, access patterns, paper anchors."""

import pytest

from repro.power2.config import POWER2_590
from repro.power2.pipeline import CycleModel
from repro.workload.kernels import KERNELS, AccessPattern, kernel


class TestCatalog:
    def test_lookup(self):
        assert kernel("cfd_multiblock").name == "cfd_multiblock"

    def test_unknown_kernel_raises(self):
        with pytest.raises(KeyError, match="unknown kernel"):
            kernel("nope")

    def test_all_kernels_produce_valid_mixes(self):
        for k in KERNELS.values():
            mix = k.mix_for_flops(1e6)
            mix.validate()
            if k.fma_flop_fraction + k.div_flop_fraction < 1.0:
                assert mix.flops == pytest.approx(1e6, rel=1e-9), k.name

    def test_all_memory_behaviours_valid(self):
        for k in KERNELS.values():
            k.memory_behaviour().validate()


class TestMixProperties:
    def test_fma_fraction_respected(self):
        k = kernel("cfd_multiblock")
        mix = k.mix_for_flops(1e6)
        assert 2 * mix.fp_fma / mix.flops == pytest.approx(k.fma_flop_fraction)

    def test_mem_insts_per_flop_respected(self):
        for name in ("cfd_multiblock", "matmul_blocked"):
            k = kernel(name)
            mix = k.mix_for_flops(1e6)
            assert mix.memory_insts / mix.flops == pytest.approx(
                k.mem_insts_per_flop
            ), name

    def test_matmul_register_reuse_is_3(self):
        """§5: flops per memory instruction = 3.0 for the matmul."""
        mix = kernel("matmul_blocked").mix_for_flops(1e6)
        assert mix.flops / mix.memory_insts == pytest.approx(3.0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            kernel("cfd_multiblock").mix_for_flops(-1.0)

    def test_zero_flops_gives_empty_mix(self):
        mix = kernel("cfd_multiblock").mix_for_flops(0.0)
        assert mix.total_insts == 0.0

    def test_with_override(self):
        k = kernel("cfd_multiblock").with_(fma_flop_fraction=0.8)
        assert k.fma_flop_fraction == 0.8
        assert kernel("cfd_multiblock").fma_flop_fraction != 0.8  # original intact


class TestAccessPattern:
    def test_sequential_no_reuse_matches_table4(self):
        """Table 4's Sequential Access column: 3% cache, 0.2% TLB."""
        seq = kernel("sequential_access").access
        assert seq.dcache_miss_ratio(POWER2_590) == pytest.approx(8 / 256)
        assert seq.tlb_miss_ratio(POWER2_590) == pytest.approx(8 / 4096)

    def test_reuse_scales_miss_ratio(self):
        a = AccessPattern(reuse_fraction=0.0)
        b = AccessPattern(reuse_fraction=0.5)
        assert b.dcache_miss_ratio() == pytest.approx(0.5 * a.dcache_miss_ratio())

    def test_tlb_locality_factor(self):
        plain = AccessPattern(reuse_fraction=0.5)
        blocky = AccessPattern(reuse_fraction=0.5, tlb_locality_factor=2.0)
        assert blocky.tlb_miss_ratio() == pytest.approx(2 * plain.tlb_miss_ratio())
        assert blocky.dcache_miss_ratio() == plain.dcache_miss_ratio()

    def test_tlb_ratio_capped_at_one(self):
        crazy = AccessPattern(reuse_fraction=0.0, stride_bytes=4096, tlb_locality_factor=10.0)
        assert crazy.tlb_miss_ratio() == 1.0


class TestPaperAnchors:
    """Full-tilt rates through the cycle model (the §5 anchors)."""

    def _mflops(self, name: str) -> float:
        k = kernel(name)
        r = CycleModel().execute(k.mix_for_flops(1e6), k.memory_behaviour(), k.deps)
        return r.mflops

    def test_matmul_anchor(self):
        assert 200 <= self._mflops("matmul_blocked") <= 267

    def test_npb_bt_anchor(self):
        assert 38 <= self._mflops("npb_bt") <= 50

    def test_cfd_band(self):
        assert 22 <= self._mflops("cfd_multiblock") <= 38

    def test_legacy_is_slow(self):
        assert self._mflops("legacy_vector") < 0.7 * self._mflops("cfd_multiblock")

    def test_nonfp_is_slowest(self):
        rates = {n: self._mflops(n) for n in KERNELS}
        assert min(rates, key=rates.get) == "nonfp_preproc"

    def test_tuned_beats_workload(self):
        """§7: the better-performing codes use fma ≥80% and more
        registers — they must come out faster."""
        assert self._mflops("cfd_tuned") > 1.4 * self._mflops("cfd_multiblock")
