"""Job profiles: rates from kernel + parallel structure."""

import pytest

from repro.power2.counters import BANK_SIZE, counter_index
from repro.workload.kernels import kernel
from repro.workload.profile import CommPattern, IOPattern, build_job_profile


def build(**overrides):
    args = dict(
        app_name="test",
        kernel=kernel("cfd_multiblock"),
        nodes=16,
        flops_per_node_per_iteration=3e8,
        walltime_seconds=3600.0,
        memory_bytes_per_node=64e6,
        comm=CommPattern(neighbors=6, bytes_per_neighbor=5e5, global_syncs=2),
        io=IOPattern(bytes_per_checkpoint=6e7),
    )
    args.update(overrides)
    return build_job_profile(**args)


class TestStructure:
    def test_rate_vectors_bank_ordered(self):
        p = build()
        assert p.user_rates.shape == (BANK_SIZE,)
        assert p.system_rates.shape == (BANK_SIZE,)

    def test_fractions_sum_to_one(self):
        p = build()
        assert p.compute_fraction + p.comm_fraction + p.io_fraction == pytest.approx(1.0)

    def test_mflops_consistent_with_counters(self):
        p = build()
        flops_rate = (
            p.user_rates[counter_index("fpu0_fp_add")]
            + p.user_rates[counter_index("fpu1_fp_add")]
            + p.user_rates[counter_index("fpu0_fp_mul")]
            + p.user_rates[counter_index("fpu1_fp_mul")]
            + p.user_rates[counter_index("fpu0_fp_div")]
            + p.user_rates[counter_index("fpu1_fp_div")]
            + 2 * p.user_rates[counter_index("fpu0_fp_muladd")]
            + 2 * p.user_rates[counter_index("fpu1_fp_muladd")]
        )
        assert flops_rate / 1e6 == pytest.approx(p.mflops_per_node, rel=1e-6)

    def test_dma_rates_present_with_comm(self):
        p = build()
        assert p.user_rates[counter_index("dma_read")] > 0
        assert p.user_rates[counter_index("dma_write")] > 0

    def test_no_comm_no_message_dma(self):
        p = build(comm=CommPattern(), io=IOPattern())
        assert p.user_rates[counter_index("dma_read")] == 0.0

    def test_system_rates_include_protocol_work(self):
        with_comm = build()
        without = build(comm=CommPattern(), io=IOPattern())
        assert (
            with_comm.system_rates[counter_index("fxu0")]
            > without.system_rates[counter_index("fxu0")]
        )


class TestBehaviour:
    def test_serial_fraction_lowers_rate(self):
        fast = build(serial_fraction=0.0)
        slow = build(serial_fraction=0.5)
        assert slow.mflops_per_node < fast.mflops_per_node
        assert slow.mflops_per_node == pytest.approx(0.5 * fast.mflops_per_node, rel=0.01)

    def test_async_comm_beats_sync(self):
        sync = build(comm=CommPattern(neighbors=6, bytes_per_neighbor=5e5))
        async_ = build(
            comm=CommPattern(neighbors=6, bytes_per_neighbor=5e5, asynchronous=True)
        )
        assert async_.mflops_per_node > sync.mflops_per_node

    def test_more_comm_lowers_rate(self):
        light = build(comm=CommPattern(neighbors=2, bytes_per_neighbor=1e5))
        heavy = build(comm=CommPattern(neighbors=8, bytes_per_neighbor=2e6))
        assert heavy.mflops_per_node < light.mflops_per_node
        assert heavy.comm_fraction > light.comm_fraction

    def test_io_fraction_scales_with_checkpoint(self):
        none = build(io=IOPattern())
        big = build(io=IOPattern(bytes_per_checkpoint=5e8, iterations_per_checkpoint=10))
        assert none.io_fraction == 0.0
        assert big.io_fraction > 0.0

    def test_single_node_has_no_comm(self):
        p = build(nodes=1)
        assert p.comm_fraction == 0.0
        # No message traffic (dma_write is receive-only here); checkpoint
        # writes still appear as dma_read (memory → device).
        assert p.user_rates[counter_index("dma_write")] == 0.0
        assert p.user_rates[counter_index("dma_read")] > 0.0


class TestValidation:
    def test_zero_nodes_rejected(self):
        with pytest.raises(ValueError):
            build(nodes=0)

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            build(flops_per_node_per_iteration=-1.0)

    def test_bad_serial_fraction_rejected(self):
        with pytest.raises(ValueError):
            build(serial_fraction=1.0)

    def test_zero_walltime_rejected(self):
        with pytest.raises(ValueError):
            build(walltime_seconds=0.0)

    def test_no_work_rejected(self):
        with pytest.raises(ValueError):
            build(
                flops_per_node_per_iteration=0.0,
                comm=CommPattern(),
                io=IOPattern(),
            )
