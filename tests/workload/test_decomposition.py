"""Domain decomposition: partitioning and neighbour invariants."""

import pytest

from repro.workload.decomposition import Decomposition, factor3


class TestFactor3:
    @pytest.mark.parametrize("p,expected_prod", [(1, 1), (8, 8), (16, 16), (28, 28), (49, 49), (144, 144)])
    def test_product(self, p, expected_prod):
        a, b, c = factor3(p)
        assert a * b * c == expected_prod

    def test_cubic_when_possible(self):
        assert sorted(factor3(8)) == [2, 2, 2]
        assert sorted(factor3(64)) == [4, 4, 4]

    def test_prime_degenerates_gracefully(self):
        dims = factor3(7)
        assert sorted(dims) == [1, 1, 7]

    def test_invalid(self):
        with pytest.raises(ValueError):
            factor3(0)


class TestDecomposition:
    def test_subdomains_cover_grid(self):
        for shape, ranks in [((50, 50, 50), 8), ((96, 96, 32), 28), ((51, 47, 53), 16)]:
            d = Decomposition(shape, ranks)
            d.check()

    def test_balance_near_one_for_divisible_grid(self):
        d = Decomposition((64, 64, 64), 8)
        assert d.balance() == pytest.approx(1.0)

    def test_balance_bounded_for_ragged_grid(self):
        d = Decomposition((50, 50, 50), 16)
        assert 1.0 <= d.balance() < 1.3

    def test_rank_coords_roundtrip(self):
        d = Decomposition((32, 32, 32), 16)
        for r in range(16):
            assert d.rank_of(d.coords_of(r)) == r

    def test_neighbors_symmetric(self):
        d = Decomposition((32, 32, 32), 8)
        for r in range(8):
            for label, nb in d.neighbors(r).items():
                flipped = label[0] + ("-" if label[1] == "+" else "+")
                assert d.neighbors(nb)[flipped] == r

    def test_interior_rank_has_six_neighbors(self):
        d = Decomposition((60, 60, 60), 27)  # 3x3x3
        center = d.rank_of((1, 1, 1))
        assert len(d.neighbors(center)) == 6

    def test_corner_rank_has_three_neighbors(self):
        d = Decomposition((60, 60, 60), 27)
        assert len(d.neighbors(0)) == 3

    def test_halo_bytes_match_paper_scale(self):
        """§4's typical block: ~50³ points, 25 variables — halos in the
        hundreds of kilobytes per face."""
        d = Decomposition((100, 100, 100), 8)  # 50^3 per rank
        halo = d.halo_bytes(0, variables=25)
        # 3 faces (corner rank) × 50² × 25 × 8 B = 1.5 MB
        assert halo == pytest.approx(3 * 50 * 50 * 25 * 8)

    def test_too_many_processors_rejected(self):
        with pytest.raises(ValueError):
            Decomposition((4, 4, 4), 125)

    def test_explicit_proc_grid(self):
        d = Decomposition((96, 96, 32), 28, proc_grid=(7, 2, 2))
        d.check()
        assert d.subdomain(0).shape[1] == 48

    def test_bad_proc_grid_rejected(self):
        with pytest.raises(ValueError):
            Decomposition((32, 32, 32), 8, proc_grid=(2, 2, 3))
