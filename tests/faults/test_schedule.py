"""The pre-drawn fault timeline: determinism, structure, stream isolation."""

from repro.faults.events import (
    COLLECTOR_DROPOUT,
    NODE_CRASH,
    NODE_REPAIR,
)
from repro.faults.profile import PROFILES, FaultProfile
from repro.faults.schedule import generate_fault_schedule
from repro.util.rng import RngStreams

HORIZON = 30 * 86400.0
INTERVAL = 900.0

BUSY = FaultProfile(
    name="busy",
    node_mtbf_days=5.0,
    node_mttr_hours=4.0,
    switch_mtbf_days=4.0,
    storm_mtbf_days=6.0,
    collector_dropout_rate=0.02,
)


def draw(profile=BUSY, seed=7, n_nodes=16, horizon=HORIZON):
    return generate_fault_schedule(
        profile,
        RngStreams(seed),
        horizon_seconds=horizon,
        n_nodes=n_nodes,
        sample_interval=INTERVAL,
    )


class TestDeterminism:
    def test_same_inputs_same_schedule(self):
        assert draw() == draw()

    def test_different_seed_different_schedule(self):
        assert draw(seed=7) != draw(seed=8)

    def test_schedule_is_time_sorted_and_in_horizon(self):
        events = draw()
        assert events  # the busy profile must actually produce faults
        assert all(0.0 <= ev.time < HORIZON for ev in events)
        assert [ev.time for ev in events] == sorted(ev.time for ev in events)


class TestStructure:
    def test_crash_repair_alternate_per_node(self):
        events = draw()
        by_node: dict[int, list[str]] = {}
        for ev in events:
            if ev.kind in (NODE_CRASH, NODE_REPAIR):
                by_node.setdefault(ev.target, []).append(ev.kind)
        assert by_node
        for kinds in by_node.values():
            # Strict alternation starting with a crash; the final repair
            # may be truncated by the horizon.
            expected = [NODE_CRASH, NODE_REPAIR] * len(kinds)
            assert kinds == expected[: len(kinds)]

    def test_dropouts_precede_the_pass_they_suppress(self):
        dropouts = [ev for ev in draw() if ev.kind == COLLECTOR_DROPOUT]
        assert dropouts
        for ev in dropouts:
            # k * interval - 1 for integer k >= 1: never the t=0 baseline.
            assert (ev.time + 1.0) % INTERVAL == 0.0
            assert ev.time + 1.0 >= INTERVAL


class TestStreamIsolation:
    def test_dropout_times_independent_of_other_processes(self):
        """The dropout coin flips come from their own stream, so turning
        the other fault processes off doesn't move a single dropout."""
        only_dropouts = FaultProfile(
            name="drops", collector_dropout_rate=BUSY.collector_dropout_rate
        )
        full = [ev.time for ev in draw() if ev.kind == COLLECTOR_DROPOUT]
        alone = [ev.time for ev in draw(only_dropouts) if ev.kind == COLLECTOR_DROPOUT]
        assert full == alone

    def test_node_schedules_are_per_node_streams(self):
        """Halving the node count leaves the surviving nodes' crash
        times untouched (streams are spawned per node id)."""
        wide = draw(n_nodes=16)
        narrow = draw(n_nodes=8)

        def node_times(events, nid):
            return [ev.time for ev in events if ev.target == nid]

        for nid in range(8):
            assert node_times(wide, nid) == node_times(narrow, nid)


class TestPresets:
    def test_pathological_outfails_mild(self):
        mild = draw(PROFILES["mild"], horizon=90 * 86400.0)
        path = draw(PROFILES["pathological"], horizon=90 * 86400.0)
        assert len(path) > len(mild)
