"""Availability / MTBF reporting over fault logs."""

import math

from repro.faults.events import (
    NODE_CRASH,
    NODE_REPAIR,
    STORM_END,
    STORM_START,
    FaultEvent,
    FaultLog,
)
from repro.faults.report import availability_table, fault_summary, render_fault_report

DAY = 86400.0


def sample_log() -> FaultLog:
    """Two crashes (one repaired, one open at the horizon) on 4 nodes
    over 10 days, plus a 6-hour storm."""
    log = FaultLog(
        events=[
            FaultEvent(time=1 * DAY, kind=NODE_CRASH, target=0),
            FaultEvent(time=1 * DAY + 7200, kind=NODE_REPAIR, target=0),
            FaultEvent(time=4 * DAY, kind=NODE_CRASH, target=2),
            FaultEvent(time=2 * DAY, kind=STORM_START, value=1.5),
            FaultEvent(time=2 * DAY + 6 * 3600, kind=STORM_END),
        ],
        jobs_killed=3,
        jobs_requeued=2,
        retries_exhausted=1,
        passes_dropped=4,
    )
    log.finalize(10 * DAY, n_nodes=4)
    return log


class TestDerivedFacts:
    def test_downtime_clips_open_episode_at_horizon(self):
        log = sample_log()
        assert log.node_down_seconds == 7200 + 6 * DAY
        assert log.storm_seconds == 6 * 3600

    def test_availability_and_mtbf(self):
        log = sample_log()
        expected = 1.0 - (7200 + 6 * DAY) / (4 * 10 * DAY)
        assert math.isclose(log.availability(), expected)
        assert math.isclose(log.observed_mtbf_node_days(), 4 * 10 / 2)
        assert math.isclose(log.observed_mttr_hours(), (7200 + 6 * DAY) / 3600 / 2)

    def test_empty_log_is_fully_available(self):
        log = FaultLog()
        log.finalize(10 * DAY, n_nodes=4)
        assert log.availability() == 1.0
        assert log.observed_mtbf_node_days() == float("inf")
        assert log.observed_mttr_hours() == 0.0


class TestTable:
    def test_table_reports_the_counters(self):
        text = availability_table(sample_log()).render()
        assert "node crashes" in text
        assert "jobs killed" in text
        assert render_fault_report(sample_log()) == text

    def test_infinite_mtbf_renders_as_dash(self):
        log = FaultLog()
        log.finalize(DAY, n_nodes=4)
        rows = {r[0]: r[1] for r in availability_table(log).rows if len(r) >= 2}
        assert rows["observed MTBF"] == "-"


class TestSummary:
    def test_summary_is_json_ready(self):
        s = fault_summary(sample_log())
        assert s["events_total"] == 5
        assert s["events_by_kind"][NODE_CRASH] == 2
        assert s["jobs_killed"] == 3 and s["passes_dropped"] == 4
        assert math.isclose(s["observed_mtbf_node_days"], 20.0)

    def test_infinite_mtbf_becomes_null(self):
        log = FaultLog()
        log.finalize(DAY, n_nodes=4)
        assert fault_summary(log)["observed_mtbf_node_days"] is None


class TestMerge:
    def test_merged_logs_sum_exposure_and_counters(self):
        a, b = sample_log(), sample_log()
        merged = FaultLog.merged([a, b.rebase(10 * DAY)])
        assert merged.horizon_seconds == 20 * DAY
        assert merged.n_nodes == 4
        assert merged.jobs_killed == 6
        assert merged.node_down_seconds == 2 * a.node_down_seconds
        assert math.isclose(merged.availability(), a.availability())
        assert [e.time for e in merged.events] == sorted(e.time for e in merged.events)
