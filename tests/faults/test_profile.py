"""Fault profiles: validation, null detection, named presets."""

import pickle

import pytest

from repro.faults.profile import PROFILES, FaultProfile


class TestValidation:
    @pytest.mark.parametrize(
        "field",
        [
            "node_mtbf_days",
            "node_mttr_hours",
            "switch_mtbf_days",
            "switch_mttr_hours",
            "storm_mtbf_days",
            "storm_duration_hours",
        ],
    )
    def test_negative_rates_rejected(self, field):
        with pytest.raises(ValueError, match=field):
            FaultProfile(**{field: -1.0})

    def test_degradation_below_one_rejected(self):
        with pytest.raises(ValueError, match="switch_degradation"):
            FaultProfile(switch_degradation=0.5)

    def test_memory_pressure_below_one_rejected(self):
        with pytest.raises(ValueError, match="storm_memory_pressure"):
            FaultProfile(storm_memory_pressure=0.9)

    @pytest.mark.parametrize("rate", [-0.1, 1.0, 1.5])
    def test_dropout_rate_outside_unit_interval_rejected(self, rate):
        with pytest.raises(ValueError, match="collector_dropout_rate"):
            FaultProfile(collector_dropout_rate=rate)

    def test_negative_retries_rejected(self):
        with pytest.raises(ValueError, match="max_job_retries"):
            FaultProfile(max_job_retries=-1)


class TestNull:
    def test_default_profile_is_null(self):
        assert FaultProfile().is_null

    def test_none_preset_is_null(self):
        assert PROFILES["none"].is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"node_mtbf_days": 30.0},
            {"switch_mtbf_days": 20.0},
            {"storm_mtbf_days": 10.0},
            {"collector_dropout_rate": 0.01},
        ],
    )
    def test_any_enabled_process_breaks_null(self, kwargs):
        assert not FaultProfile(**kwargs).is_null


class TestNamed:
    def test_presets_resolve_by_name(self):
        for name, preset in PROFILES.items():
            assert FaultProfile.named(name) is preset
            assert preset.name == name

    def test_unknown_name_lists_available(self):
        with pytest.raises(ValueError, match="mild"):
            FaultProfile.named("catastrophic")

    def test_non_null_presets_enable_something(self):
        assert not PROFILES["mild"].is_null
        assert not PROFILES["pathological"].is_null


class TestDataBehaviour:
    def test_profile_is_hashable_and_picklable(self):
        p = PROFILES["mild"]
        assert hash(p) == hash(PROFILES["mild"])
        assert pickle.loads(pickle.dumps(p)) == p

    def test_to_dict_round_trips(self):
        p = PROFILES["pathological"]
        assert FaultProfile(**p.to_dict()) == p

    def test_describe_mentions_enabled_processes(self):
        text = PROFILES["mild"].describe()
        assert "node crashes" in text
        assert "paging storms" in text
        assert "(all processes disabled)" in FaultProfile().describe()
